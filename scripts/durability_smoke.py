#!/usr/bin/env python
"""CI smoke for durable checking (docs/ROBUSTNESS.md).

The kill-9-and-resume acceptance path, end to end through the CLI:

1. a crash-free baseline campaign runs with a write-ahead journal;
2. the same campaign is SIGKILLed mid-run (the injected
   ``engine_crash:kill`` fault) — the journal must show admitted jobs
   still owed;
3. ``--resume`` replays the journal and finishes the run: the verdict
   tallies must equal the baseline, every admitted job must reach a
   terminal state, and the cache must hold exactly one entry per key;
4. a second ``--resume`` must be a pure cache replay: >= 90% of the
   jobs answered from the cache with nothing re-checked.

Exit status 0 means all four held; any assertion failure is fatal.
Artifacts: ``DURABILITY_journal.jsonl`` (the crashed run's journal) and
``DURABILITY_recovery.json`` (recovery summaries + comparison numbers).
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile

from repro.campaign import replay_journal

DRIVERS = "tracedrv,imca"


def campaign(work, name, *extra):
    """One CLI campaign run; output goes to a log file, not a pipe — a
    SIGKILLed parent orphans its pool workers, and inherited pipe ends
    would block a capture long after the kill."""
    log = os.path.join(work, f"{name}.log")
    with open(log, "a") as out:
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "campaign",
             "--drivers", DRIVERS, "--jobs", "2",
             "--cache-dir", os.path.join(work, f"{name}-cache"),
             "--journal", os.path.join(work, f"{name}.jsonl"),
             "--summary-json", os.path.join(work, f"{name}.json"),
             *extra],
            stdout=out, stderr=subprocess.STDOUT, timeout=300)
    with open(log) as f:
        return proc.returncode, f.read()


def summary(work, name):
    with open(os.path.join(work, f"{name}.json")) as f:
        return json.load(f)


def cache_keys(work, name):
    keys = []
    with open(os.path.join(work, f"{name}-cache", "results.jsonl")) as f:
        for line in f:
            if line.strip().endswith("}"):  # torn tails are noise, not keys
                keys.append(json.loads(line)["key"])
    return keys


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kill-hit", type=int, default=4,
                        help="engine_crash hit index for the SIGKILL (default 4)")
    args = parser.parse_args(argv)
    work = tempfile.mkdtemp(prefix="kiss-durability-smoke-")

    clean_rc, clean_log = campaign(work, "clean")
    assert clean_rc in (0, 1, 2), f"baseline failed ({clean_rc}):\n{clean_log}"
    clean = summary(work, "clean")
    print(f"baseline: {clean['jobs']} jobs, verdicts {clean['verdicts']}")

    crash_rc, crash_log = campaign(
        work, "crash", "--inject", f"engine_crash:kill:hits={args.kill_hit}")
    assert crash_rc == -9, f"expected SIGKILL, got {crash_rc}:\n{crash_log}"
    plan = replay_journal(os.path.join(work, "crash.jsonl"))
    assert plan.admitted > 0 and plan.incomplete > 0, plan.summary()
    print(f"kill -9 landed: {plan.incomplete}/{plan.admitted} jobs owed")
    shutil.copy(os.path.join(work, "crash.jsonl"), "DURABILITY_journal.jsonl")
    crashed_doc = plan.summary_doc()

    resume_rc, resume_log = campaign(work, "crash", "--resume")
    assert resume_rc == clean_rc, f"resume exited {resume_rc}:\n{resume_log}"
    resumed = summary(work, "crash")
    assert resumed["verdicts"] == clean["verdicts"], (
        f"verdict drift after resume: {resumed['verdicts']} != {clean['verdicts']}")
    after = replay_journal(os.path.join(work, "crash.jsonl"))
    assert after.incomplete == 0, after.summary()
    for name in ("clean", "crash"):
        keys = cache_keys(work, name)
        assert len(keys) == len(set(keys)), f"{name}: duplicate cache entries"
    print(f"resume: verdicts match the baseline, journal settled, "
          f"{len(cache_keys(work, 'crash'))} unique cache entries")

    again_rc, again_log = campaign(work, "crash", "--resume")
    assert again_rc == clean_rc, f"second resume exited {again_rc}:\n{again_log}"
    replay = summary(work, "crash")
    hits, total = replay["cache"]["hits"], replay["jobs"]
    need = -(-total * 9 // 10)  # ceil(0.9 * total)
    assert hits >= need, f"only {hits}/{total} jobs answered from cache on resume"
    print(f"second resume: pure replay, {hits}/{total} cache hits")

    with open("DURABILITY_recovery.json", "w") as f:
        json.dump({"crashed": crashed_doc, "settled": after.summary_doc(),
                   "baseline_verdicts": clean["verdicts"],
                   "resumed_verdicts": resumed["verdicts"],
                   "replay_cache_hits": hits, "jobs": total}, f, indent=2)
    print("wrote DURABILITY_journal.jsonl, DURABILITY_recovery.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
