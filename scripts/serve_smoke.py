#!/usr/bin/env python
"""CI smoke for the checking service (docs/SERVICE.md).

Starts `python -m repro serve` as a real subprocess, drives it through
the stdlib client, and asserts the service contract end to end:

1. every submission's event stream validates against ``kiss-serve/1``
   and ends in exactly one ``done`` event with the expected verdict;
2. resubmitting the corpus answers >= 90% from the content-addressed
   cache (``cache: "hit"``);
3. SIGTERM drains cleanly — nothing new is admitted and the server
   exits 0.

Exit status 0 means all three held; any assertion failure is fatal.
"""

import argparse
import json
import signal
import subprocess
import sys
import tempfile
import time

from repro.serve import ServeClient, ServeError, validate_serve_event

SAFE = (
    "int g;\nvoid worker() { g = 1; }\n"
    "void main() { async worker(); g = 1; assert(g == 1 && SALT > 0); }\n"
)
RACY = (
    "struct EXT { int a; }\n"
    "void worker(EXT *e) { e->a = 1; }\n"
    "void main() { EXT *e; e = malloc(EXT); async worker(e); e->a = 2; }\n"
)


def corpus(n):
    """n - 1 distinct safe assertion jobs plus one racy race-prop job."""
    jobs = [{"program": SAFE.replace("SALT", str(i + 1))} for i in range(n - 1)]
    jobs.append({"program": RACY, "prop": "race", "target": "EXT.a"})
    return jobs


def check_stream(client, job_id):
    events = list(client.events(job_id))
    for event in events:
        validate_serve_event(event)
    done = [e for e in events if e["event"] == "done"]
    assert len(done) == 1, f"{job_id}: {len(done)} done events"
    assert events[-1]["event"] == "done", f"{job_id}: stream not done-terminated"
    return done[0]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=10, help="corpus size")
    parser.add_argument("--jobs", type=int, default=2, help="server workers")
    args = parser.parse_args(argv)

    cache_dir = tempfile.mkdtemp(prefix="kiss-serve-smoke-")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--jobs", str(args.jobs), "--cache-dir", cache_dir,
         "--quota-rate", "500", "--quota-burst", "500"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        ready = json.loads(proc.stdout.readline())
        assert ready["event"] == "serve_listening", ready
        client = ServeClient("127.0.0.1", ready["port"], tenant="ci")

        jobs = corpus(args.count)
        first = [client.check(timeout=300, **job) for job in jobs]
        verdicts = [d["result"]["verdict"] for d in first]
        assert verdicts == ["safe"] * (args.count - 1) + ["error"], verdicts
        for doc in first:
            done = check_stream(client, doc["job"])
            assert done["verdict"] == doc["result"]["verdict"]
        print(f"checked {args.count} programs, verdicts as expected")

        second = [client.check(timeout=300, **job) for job in jobs]
        hits = sum(1 for d in second if d["result"]["cache"] == "hit")
        need = -(-args.count * 9 // 10)  # ceil(0.9 * count)
        assert hits >= need, f"only {hits}/{args.count} resubmissions hit the cache"
        print(f"resubmission: {hits}/{args.count} cache hits")

        stats = client.stats()
        assert stats["cache"]["entries"] >= args.count - 1  # racy job caches too
        assert stats["counts"]["cache_hits"] >= hits

        proc.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and proc.poll() is None:
            try:
                status, _ = client.submit("int h;\nvoid main() { h = 3; }\n")
                assert status != 202, "admitted a job while draining"
            except (ServeError, OSError):
                pass  # 503 while draining, then connection refused
            time.sleep(0.05)
        code = proc.wait(timeout=30)
        assert code == 0, f"drain exited {code}: {proc.stderr.read()}"
        print("SIGTERM drained cleanly (exit 0)")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
