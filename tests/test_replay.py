"""Validate mapped KISS error traces by replaying them concurrently.

These tests close the loop on the paper's completeness claim: every
error trace KISS produces, once mapped back (Figure 1's bottom arrow),
must be realizable by the original concurrent program.
"""

import pytest

from repro.concheck.replay import replay_trace
from repro.core.checker import Kiss
from repro.core.race import RaceTarget
from repro.drivers import DEVICE_EXTENSION, bluetooth_program, toastmon_program
from repro.lang import parse_core


def mapped_assertion_trace(src, max_ts):
    # statement ids are per-parse, so the replayed program must be the
    # very object KISS checked (the transform itself never mutates it)
    prog = parse_core(src)
    r = Kiss(max_ts=max_ts).check_assertions(prog)
    assert r.is_error
    return prog, r.concurrent_trace


def test_replay_single_thread_assert():
    prog, tr = mapped_assertion_trace("void main() { assert(false); }", 0)
    assert replay_trace(prog, tr).ok


def test_replay_inline_async():
    prog, tr = mapped_assertion_trace(
        """
        bool flag;
        void worker() { flag = true; }
        void main() { async worker(); assert(!flag); }
        """,
        0,
    )
    assert replay_trace(prog, tr).ok


def test_replay_parked_dispatch():
    prog, tr = mapped_assertion_trace(
        """
        int phase;
        void worker() { assume(phase == 1); phase = 2; }
        void main() { async worker(); phase = 1; assume(phase == 2); assert(false); }
        """,
        1,
    )
    assert replay_trace(prog, tr).ok


def test_replay_two_parked_threads():
    prog, tr = mapped_assertion_trace(
        """
        int a; int b;
        void w1() { a = 1; }
        void w2() { assume(a == 1); b = 1; }
        void main() { async w2(); async w1(); assume(b == 1); assert(false); }
        """,
        2,
    )
    assert replay_trace(prog, tr).ok


def test_replay_bluetooth_assertion_trace():
    """The §2.3 walkthrough end to end: KISS's ts=1 error trace is a real
    execution of the Figure 2 driver."""
    prog = bluetooth_program()
    r = Kiss(max_ts=1).check_assertions(prog)
    assert r.is_error
    result = replay_trace(prog, r.concurrent_trace)
    assert result.ok, result.reason


def test_replay_race_trace_is_feasible():
    prog = parse_core(
        """
        int g;
        void worker() { g = 2; }
        void main() { async worker(); g = 1; }
        """
    )
    r = Kiss(max_ts=0).check_race(prog, RaceTarget.global_var("g"))
    assert r.is_race
    result = replay_trace(prog, r.concurrent_trace, expect="feasible")
    assert result.ok, result.reason


def test_replay_bluetooth_race_trace():
    prog = bluetooth_program()
    r = Kiss(max_ts=0).check_race(
        prog, RaceTarget.field_of(DEVICE_EXTENSION, "stoppingFlag")
    )
    assert r.is_race
    result = replay_trace(prog, r.concurrent_trace, expect="feasible")
    assert result.ok, result.reason


def test_replay_toastmon_race_trace():
    prog = toastmon_program()
    r = Kiss(max_ts=0).check_race(
        prog, RaceTarget.field_of("DEVICE_EXTENSION", "DevicePnPState")
    )
    assert r.is_race
    result = replay_trace(prog, r.concurrent_trace, expect="feasible")
    assert result.ok, result.reason


def test_replay_rejects_fabricated_schedule():
    """A nonsense schedule (wrong thread for the failing assert) must not
    replay — the validator is not vacuous."""
    src = """
    bool flag;
    void worker() { flag = true; }
    void main() { async worker(); assert(!flag); }
    """
    prog, tr = mapped_assertion_trace(src, 0)
    # corrupt: claim the final assert was executed by the worker thread
    tr.steps[-1].tid = 1
    assert not replay_trace(prog, tr).ok


def test_replay_rejects_reordered_steps():
    src = """
    int phase;
    void worker() { assume(phase == 1); phase = 2; }
    void main() { async worker(); phase = 1; assume(phase == 2); assert(false); }
    """
    prog, tr = mapped_assertion_trace(src, 1)
    tr.steps.reverse()
    assert not replay_trace(prog, tr).ok
