"""Tests for Lipton-reduction atomicity inference (§6.1 future work)."""

import pytest

from repro.analysis.atomicity import AtomicityAnalyzer, Mover, infer_atomicity
from repro.drivers.osmodel import OS_MODEL_SRC
from repro.lang import parse_core


def analyzer(src):
    return AtomicityAnalyzer(parse_core(OS_MODEL_SRC + src))


def test_lock_acquire_is_right_mover():
    a = analyzer("void main() { }")
    assert a.proc_mover("KeAcquireSpinLock") is Mover.R


def test_lock_release_is_left_mover():
    a = analyzer("void main() { }")
    assert a.proc_mover("KeReleaseSpinLock") is Mover.L


def test_locked_increment_is_atomic():
    a = analyzer(
        """
        int SpinLock; int g;
        void locked_inc() {
          KeAcquireSpinLock(&SpinLock);
          g = g + 1;
          KeReleaseSpinLock(&SpinLock);
        }
        void other() { KeAcquireSpinLock(&SpinLock); g = 0; KeReleaseSpinLock(&SpinLock); }
        void main() { async other(); locked_inc(); }
        """
    )
    # R ; B(protected access) ; L — the canonical reducible pattern
    assert a.is_atomic("locked_inc")


def test_two_lock_sections_not_atomic():
    a = analyzer(
        """
        int SpinLock; int g;
        void double_section() {
          KeAcquireSpinLock(&SpinLock);
          g = g + 1;
          KeReleaseSpinLock(&SpinLock);
          KeAcquireSpinLock(&SpinLock);
          g = g + 1;
          KeReleaseSpinLock(&SpinLock);
        }
        void other() { KeAcquireSpinLock(&SpinLock); g = 0; KeReleaseSpinLock(&SpinLock); }
        void main() { async other(); double_section(); }
        """
    )
    # R B L R B L: another thread can interleave between the sections
    assert not a.is_atomic("double_section")


def test_racy_access_breaks_atomicity_of_locked_section():
    a = analyzer(
        """
        int SpinLock; int g; int unprotected;
        void mixed() {
          KeAcquireSpinLock(&SpinLock);
          g = g + 1;
          KeReleaseSpinLock(&SpinLock);
          unprotected = unprotected + 1;
          KeAcquireSpinLock(&SpinLock);
          g = g + 1;
          KeReleaseSpinLock(&SpinLock);
        }
        void other() { unprotected = 5; }
        void main() { async other(); mixed(); }
        """
    )
    assert not a.is_atomic("mixed")


def test_thread_local_function_is_both_mover():
    a = analyzer(
        """
        void pure(int x) { int y; y = x + 1; y = y * 2; }
        void main() { pure(3); }
        """
    )
    assert a.proc_mover("pure") is Mover.B


def test_interlocked_ops_atomic():
    a = analyzer("void main() { }")
    assert a.is_atomic("InterlockedIncrement")
    assert a.is_atomic("InterlockedCompareExchange")


def test_single_racy_access_is_atomic_but_not_mover():
    a = analyzer(
        """
        int g;
        void writer() { g = 1; }
        void main() { async writer(); g = 2; }
        """
    )
    # one racy action is still a single atomic action...
    assert a.proc_mover("writer") is Mover.A
    assert a.is_atomic("writer")


def test_racy_access_after_commit_breaks_reduction():
    a = analyzer(
        """
        int g; int h;
        void two_races() { g = 1; h = 1; }
        void other() { g = 2; h = 2; }
        void main() { async other(); two_races(); }
        """
    )
    # two independent racy actions cannot reduce to one
    assert not a.is_atomic("two_races")


def test_report_covers_all_functions():
    src = OS_MODEL_SRC + """
    int SpinLock; int g;
    void f() { KeAcquireSpinLock(&SpinLock); g = 1; KeReleaseSpinLock(&SpinLock); }
    void other() { KeAcquireSpinLock(&SpinLock); g = 0; KeReleaseSpinLock(&SpinLock); }
    void main() { async other(); f(); }
    """
    verdicts = infer_atomicity(parse_core(src))
    assert verdicts["f"] is True
    assert set(verdicts) == set(parse_core(src).functions)


def test_recursion_conservatively_non_atomic():
    a = analyzer(
        """
        int g;
        void rec() { g = g + 1; rec(); }
        void other() { g = 5; }
        void main() { async other(); rec(); }
        """
    )
    assert not a.is_atomic("rec")


def test_bluetooth_iodecrement_not_atomic():
    """BCSP_IoDecrement: atomic decrement THEN an unprotected event write
    that races — not reducible.  This is why the stop path misbehaves."""
    from repro.drivers.bluetooth import BLUETOOTH_SRC

    a = AtomicityAnalyzer(parse_core(BLUETOOTH_SRC))
    assert not a.is_atomic("BCSP_IoDecrement")
