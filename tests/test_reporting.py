"""Tests for table rendering and experiment records."""

import pytest

from repro.drivers import PAPER_TABLE1, PAPER_TABLE2, check_driver, spec_by_name
from repro.drivers.corpus import DriverRunResult, FieldOutcome
from repro.reporting import agreement_note, render_table
from repro.reporting.results import ExperimentRecord, table1_record, table2_record


def test_render_table_alignment():
    out = render_table(["a", "bb"], [["xxx", 1], ["y", 22]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert lines[1].startswith("a  ")
    assert "---" in lines[2]
    assert len(lines) == 5


def test_render_table_widens_to_content():
    out = render_table(["h"], [["wide-content"]])
    header, sep, row = out.splitlines()
    assert len(sep) >= len("wide-content")


def test_agreement_note():
    assert "3/4" in agreement_note(3, 4, "X")
    assert "100%" in agreement_note(0, 0, "X")


def test_experiment_record_matching():
    rec = ExperimentRecord("t")
    rec.add("a", {"races": 1}, {"races": 1, "extra": 5})
    rec.add("b", {"races": 2}, {"races": 3})
    assert rec.matches == 1
    assert rec.total == 2


def test_record_json_roundtrip(tmp_path):
    rec = ExperimentRecord("table1", notes="n")
    rec.add("drv", {"races": 1}, {"races": 1})
    path = tmp_path / "r.json"
    rec.save(str(path))
    back = ExperimentRecord.load(str(path))
    assert back.experiment == "table1"
    assert back.notes == "n"
    assert back.matches == 1


def _fake_run(name, races, noraces, unresolved):
    outcomes = (
        [FieldOutcome(f"r{i}", "race") for i in range(races)]
        + [FieldOutcome(f"n{i}", "no-race") for i in range(noraces)]
        + [FieldOutcome(f"u{i}", "unresolved") for i in range(unresolved)]
    )
    return DriverRunResult(name, outcomes)


def test_table1_record_from_runs():
    run = _fake_run("imca", 1, 4, 0)
    rec = table1_record([run], PAPER_TABLE1)
    assert rec.rows[0].matches


def test_table1_record_detects_mismatch():
    run = _fake_run("imca", 0, 5, 0)
    rec = table1_record([run], PAPER_TABLE1)
    assert not rec.rows[0].matches


def test_table2_record_missing_driver_counts_zero():
    rec = table2_record([], {"imca": 1})
    assert rec.rows[0].measured["races"] == 0
    assert not rec.rows[0].matches


def test_end_to_end_record_for_smallest_driver():
    spec = spec_by_name("tracedrv")
    run = check_driver(spec)
    rec = table1_record([run], PAPER_TABLE1)
    assert rec.matches == 1
