"""Tests for table rendering and experiment records."""

import pytest

from repro.campaign.jobs import JobResult
from repro.campaign.telemetry import summarize
from repro.drivers import PAPER_TABLE1, PAPER_TABLE2, check_driver, spec_by_name
from repro.drivers.corpus import DriverRunResult, FieldOutcome
from repro.reporting import agreement_note, display_width, render_table
from repro.reporting.results import ExperimentRecord, table1_record, table2_record


def test_render_table_alignment():
    out = render_table(["a", "bb"], [["xxx", 1], ["y", 22]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert lines[1].startswith("a  ")
    assert "---" in lines[2]
    assert len(lines) == 5


def test_render_table_widens_to_content():
    out = render_table(["h"], [["wide-content"]])
    header, sep, row = out.splitlines()
    assert len(sep) >= len("wide-content")


def test_render_table_golden():
    out = render_table(
        ["Driver", "Races"],
        [["tracedrv", 0], ["fakemodem", 3]],
        title="T",
    )
    assert out == "\n".join(
        [
            "T",
            "Driver     Races",
            "---------  -----",
            "tracedrv   0    ",
            "fakemodem  3    ",
        ]
    )


def test_agreement_note():
    assert "3/4" in agreement_note(3, 4, "X")
    assert "100%" in agreement_note(0, 0, "X")


# ---------------------------------------------------------------------------
# Display width (unicode alignment)
# ---------------------------------------------------------------------------


def test_display_width_ascii_matches_len():
    for s in ("", "a", "driver_name", "Wall(s)"):
        assert display_width(s) == len(s)


def test_display_width_wide_characters_count_double():
    assert display_width("日本") == 4
    assert display_width("ｆｕｌｌ") == 8  # fullwidth forms
    assert display_width("x日y") == 4


def test_display_width_combining_marks_count_zero():
    assert display_width("é") == 1  # e + combining acute
    assert display_width("ño") == 2


def test_render_table_aligns_mixed_width_rows():
    out = render_table(
        ["name", "n"],
        [["日本語", 1], ["état", 2], ["plain", 3]],
    )
    widths = {display_width(line) for line in out.splitlines()}
    assert len(widths) == 1  # every rendered line occupies the same columns


def test_render_table_wide_header():
    out = render_table(["名前", "n"], [["ab", 1]])
    header, sep, row = out.splitlines()
    assert display_width(header) == display_width(sep) == display_width(row)
    assert sep.startswith("----")  # separator sized to display width, not len


# ---------------------------------------------------------------------------
# Campaign summary (Table 1 shape)
# ---------------------------------------------------------------------------


def _job(driver, verdict, *, cache_hit=False, wall_s=1.0):
    return JobResult(
        job_id=f"{driver}/f{id(object())}",
        driver=driver,
        prop="race",
        target="S.f",
        verdict=verdict,
        error_kind="race" if verdict == "error" else None,
        wall_s=wall_s,
        cache_hit=cache_hit,
    )


def test_summarize_golden():
    results = [
        _job("imca", "error"),
        _job("imca", "safe", cache_hit=True),
        _job("tracedrv", "resource-bound", wall_s=2.5),
    ]
    assert summarize(results, wall_s=4.5) == "\n".join(
        [
            "Campaign summary (Table 1 shape)",
            "Driver    Fields  Races  No Races  Unresolved  Cached  Wall(s)",
            "--------  ------  -----  --------  ----------  ------  -------",
            "imca      2       1      1         0           1       2.0    ",
            "tracedrv  1       0      0         1           0       2.5    ",
            "Total     3       1      1         1           1       4.5    ",
            "cache: skipped 1/3 jobs (33%)",
            "campaign wall clock: 4.50s",
        ]
    )


def test_summarize_without_wall_clock_omits_line():
    out = summarize([_job("imca", "safe")])
    assert "campaign wall clock" not in out


def test_experiment_record_matching():
    rec = ExperimentRecord("t")
    rec.add("a", {"races": 1}, {"races": 1, "extra": 5})
    rec.add("b", {"races": 2}, {"races": 3})
    assert rec.matches == 1
    assert rec.total == 2


def test_record_json_roundtrip(tmp_path):
    rec = ExperimentRecord("table1", notes="n")
    rec.add("drv", {"races": 1}, {"races": 1})
    path = tmp_path / "r.json"
    rec.save(str(path))
    back = ExperimentRecord.load(str(path))
    assert back.experiment == "table1"
    assert back.notes == "n"
    assert back.matches == 1


def _fake_run(name, races, noraces, unresolved):
    outcomes = (
        [FieldOutcome(f"r{i}", "race") for i in range(races)]
        + [FieldOutcome(f"n{i}", "no-race") for i in range(noraces)]
        + [FieldOutcome(f"u{i}", "unresolved") for i in range(unresolved)]
    )
    return DriverRunResult(name, outcomes)


def test_table1_record_from_runs():
    run = _fake_run("imca", 1, 4, 0)
    rec = table1_record([run], PAPER_TABLE1)
    assert rec.rows[0].matches


def test_table1_record_detects_mismatch():
    run = _fake_run("imca", 0, 5, 0)
    rec = table1_record([run], PAPER_TABLE1)
    assert not rec.rows[0].matches


def test_table2_record_missing_driver_counts_zero():
    rec = table2_record([], {"imca": 1})
    assert rec.rows[0].measured["races"] == 0
    assert not rec.rows[0].matches


def test_end_to_end_record_for_smallest_driver():
    spec = spec_by_name("tracedrv")
    run = check_driver(spec)
    rec = table1_record([run], PAPER_TABLE1)
    assert rec.matches == 1


def test_job_result_witness_roundtrip():
    """A certificate attached to a JobResult survives the persistence
    round-trip (this is what the campaign cache and --witness-dir rely
    on), and results without one serialize exactly as before."""
    doc = {"schema": "kiss-witness/1", "kind": "reached-set",
           "program_sha256": "ab" * 32}
    r = _job("imca", "safe")
    r.witness = doc
    back = JobResult.from_dict(r.to_dict())
    assert back.witness == doc
    plain = _job("imca", "safe")
    assert "witness" not in plain.to_dict()
    assert JobResult.from_dict(plain.to_dict()).witness is None
