"""Unit tests for the Steensgaard points-to analysis."""

import pytest

from repro.analysis.alias import AliasAnalysis
from repro.lang import parse_core


def analysis(src):
    prog = parse_core(src)
    return prog, AliasAnalysis(prog)


def may(aa, prog, fn, var, loc):
    return aa.may_point_to(prog.functions[fn], var, loc)


def test_address_of_global_points_to_it():
    prog, aa = analysis("int g; void main() { int *p; p = &g; }")
    assert may(aa, prog, "main", "p", aa.global_loc("g"))


def test_unrelated_global_not_pointed():
    prog, aa = analysis("int g; int h; void main() { int *p; p = &g; }")
    assert not may(aa, prog, "main", "p", aa.global_loc("h"))


def test_copy_propagates_points_to():
    prog, aa = analysis("int g; void main() { int *p; int *q; p = &g; q = p; }")
    assert may(aa, prog, "main", "q", aa.global_loc("g"))


def test_call_binds_arguments():
    prog, aa = analysis(
        "int g; void f(int *x) { *x = 1; } void main() { int *p; p = &g; f(p); }"
    )
    assert may(aa, prog, "f", "x", aa.global_loc("g"))


def test_call_does_not_invent_aliases():
    prog, aa = analysis(
        "int g; int h; void f(int *x) { } void main() { int *p; int *q; p = &g; q = &h; f(p); }"
    )
    assert not may(aa, prog, "f", "x", aa.global_loc("h"))


def test_return_value_flows_to_caller():
    prog, aa = analysis(
        "int g; int* mk() { int *r; r = &g; return r; } void main() { int *p; p = mk(); }"
    )
    assert may(aa, prog, "main", "p", aa.global_loc("g"))


def test_field_address_points_to_field_location():
    prog, aa = analysis(
        "struct S { int a; int b; } void main() { S *e; int *p; e = malloc(S); p = &e->a; }"
    )
    assert may(aa, prog, "main", "p", aa.field_loc("S", "a"))
    assert not may(aa, prog, "main", "p", aa.field_loc("S", "b"))


def test_field_store_and_load_of_pointers():
    prog, aa = analysis(
        """
        struct S { int *ptr; }
        int g;
        void main() {
          S *e; int *p; int *q;
          e = malloc(S);
          p = &g;
          e->ptr = p;
          q = e->ptr;
        }
        """
    )
    assert may(aa, prog, "main", "q", aa.global_loc("g"))


def test_store_through_pointer_to_pointer():
    prog, aa = analysis(
        """
        int g;
        void main() {
          int *p; int **pp; int *q;
          p = &g;
          pp = &p;
          *pp = p;
          q = *pp;
        }
        """
    )
    assert may(aa, prog, "main", "q", aa.global_loc("g"))


def test_unification_merges_both_targets():
    # Steensgaard is unification-based: assigning both &g and &h to p
    # merges g and h into one class — p may point to both (imprecision,
    # never unsoundness)
    prog, aa = analysis(
        "int g; int h; void main() { int *p; p = &g; p = &h; }"
    )
    assert may(aa, prog, "main", "p", aa.global_loc("g"))
    assert may(aa, prog, "main", "p", aa.global_loc("h"))


def test_unknown_variable_is_conservative():
    prog, aa = analysis("int g; void main() { }")
    assert may(aa, prog, "main", "not_a_var", aa.global_loc("g"))


def test_locals_of_different_functions_distinct():
    prog, aa = analysis(
        """
        int g; int h;
        void f() { int *p; p = &g; }
        void main() { int *p; p = &h; f(); }
        """
    )
    assert may(aa, prog, "f", "p", aa.global_loc("g"))
    assert not may(aa, prog, "f", "p", aa.global_loc("h"))
    assert not may(aa, prog, "main", "p", aa.global_loc("g"))


def test_async_arguments_bound_like_calls():
    prog, aa = analysis(
        "int g; void worker(int *x) { *x = 1; } void main() { int *p; p = &g; async worker(p); }"
    )
    assert may(aa, prog, "worker", "x", aa.global_loc("g"))


def test_indirect_call_result_conservative():
    prog, aa = analysis(
        """
        int g;
        int* mk() { int *r; r = &g; return r; }
        void main() { func v; int *p; v = mk; p = v(); }
        """
    )
    # the indirect call may target mk, so p may point to g
    assert may(aa, prog, "main", "p", aa.global_loc("g"))
