"""Integration tests: classic concurrency kernels end to end.

Each scenario is checked three ways where meaningful: ground truth by
the interleaving checker, KISS at the paper's ts bounds, and (for
errors) trace replay.  These exercise the whole stack — parser,
lowering, both transformations, scheduler synthesis, backends.
"""

import pytest

from repro.concheck import check_concurrent
from repro.core.checker import Kiss
from repro.core.race import RaceTarget
from repro.lang import parse_core

pytestmark = pytest.mark.slow  # heavy end-to-end suite; deselect with -m "not slow"


PRODUCER_CONSUMER = """
int buffer; bool full;
void producer() {
  buffer = 42;
  full = true;
}
void main() {
  int got;
  async producer();
  assume(full);
  got = buffer;
  assert(got == 42);
}
"""


def test_producer_consumer_safe():
    prog = parse_core(PRODUCER_CONSUMER)
    assert check_concurrent(prog).is_safe
    assert Kiss(max_ts=1).check_assertions(parse_core(PRODUCER_CONSUMER)).is_safe


def test_producer_consumer_broken_ordering():
    # setting `full` before the data is published is a real bug; both
    # checkers must see it
    src = PRODUCER_CONSUMER.replace(
        "buffer = 42;\n  full = true;", "full = true;\n  buffer = 42;"
    )
    assert check_concurrent(parse_core(src)).is_error
    r = Kiss(max_ts=1, validate_traces=True).check_assertions(parse_core(src))
    assert r.is_error and r.trace_validated


PETERSON = """
bool flag0; bool flag1; int turn; int in_critical;

void thread1() {
  flag1 = true;
  turn = 0;
  iter { assume(flag0 && turn == 0); }
  assume(!(flag0 && turn == 0));
  // critical section
  atomic { in_critical = in_critical + 1; }
  assert(in_critical == 1);
  atomic { in_critical = in_critical - 1; }
  flag1 = false;
}

void main() {
  flag0 = true;
  turn = 1;
  async thread1();
  iter { assume(flag1 && turn == 1); }
  assume(!(flag1 && turn == 1));
  // critical section
  atomic { in_critical = in_critical + 1; }
  assert(in_critical == 1);
  atomic { in_critical = in_critical - 1; }
  flag0 = false;
}
"""


def test_peterson_mutual_exclusion_holds():
    """Peterson's algorithm: ground truth says the critical sections are
    mutually exclusive; KISS (unsound direction) must not report a
    phantom violation."""
    assert check_concurrent(parse_core(PETERSON), max_states=300_000).is_safe
    assert Kiss(max_ts=1).check_assertions(parse_core(PETERSON)).is_safe


def test_naive_lock_set_before_check_is_mutex_but_can_hang():
    # the set-then-check two-flag "lock": mutual exclusion actually holds
    # (the failure mode is both threads blocking), so no assertion fails
    src = """
    bool flag0; bool flag1; int in_critical;
    void thread1() {
      flag1 = true;
      assume(!flag0);
      atomic { in_critical = in_critical + 1; }
      assert(in_critical == 1);
      atomic { in_critical = in_critical - 1; }
      flag1 = false;
    }
    void main() {
      async thread1();
      flag0 = true;
      assume(!flag1);
      atomic { in_critical = in_critical + 1; }
      assert(in_critical == 1);
      atomic { in_critical = in_critical - 1; }
      flag0 = false;
    }
    """
    assert check_concurrent(parse_core(src)).is_safe
    assert Kiss(max_ts=1).check_assertions(parse_core(src)).is_safe


def test_naive_lock_check_before_set_fails_mutex():
    # TOCTOU flavour: both threads can pass the check before either flag
    # is set — both enter.  The violating schedule is balanced (the
    # spawned thread runs one contiguous partial block), so KISS at
    # ts = 1 finds it.
    src = """
    bool flag0; bool flag1; int in_critical;
    void thread1() {
      assume(!flag0);
      flag1 = true;
      atomic { in_critical = in_critical + 1; }
      assert(in_critical == 1);
      atomic { in_critical = in_critical - 1; }
      flag1 = false;
    }
    void main() {
      async thread1();
      assume(!flag1);
      flag0 = true;
      atomic { in_critical = in_critical + 1; }
      assert(in_critical == 1);
      atomic { in_critical = in_critical - 1; }
      flag0 = false;
    }
    """
    assert check_concurrent(parse_core(src)).is_error
    r = Kiss(max_ts=1, validate_traces=True).check_assertions(parse_core(src))
    assert r.is_error and r.trace_validated


TICKET_LOCK = """
int next_ticket; int now_serving; int g;

void take_and_work() {
  int my;
  atomic { my = next_ticket; next_ticket = next_ticket + 1; }
  assume(now_serving == my);
  g = g + 1;
  atomic { now_serving = now_serving + 1; }
}

void main() {
  async take_and_work();
  take_and_work();
  assume(g == 2);
  assert(g == 2);
}
"""


def test_ticket_lock_serializes_increments():
    assert check_concurrent(parse_core(TICKET_LOCK), max_states=300_000).is_safe
    assert Kiss(max_ts=1).check_assertions(parse_core(TICKET_LOCK)).is_safe


def test_ticket_lock_protects_against_race():
    # g is only touched while holding the ticket: after one thread's
    # access is recorded (and the thread killed mid-critical-section),
    # the other thread can never be served — no conflicting access
    r = Kiss(max_ts=0).check_race(parse_core(TICKET_LOCK), RaceTarget.global_var("g"))
    assert r.is_safe


BARRIER = """
int arrived; bool go; int result;

void worker() {
  atomic { arrived = arrived + 1; }
  assume(go);
  atomic { result = result + 10; }
}

void main() {
  async worker();
  async worker();
  atomic { arrived = arrived + 1; }
  assume(arrived == 3);
  go = true;
  assume(result == 20);
  assert(result == 20);
}
"""


def test_barrier_releases_all_workers():
    assert check_concurrent(parse_core(BARRIER), max_states=400_000).is_safe
    assert Kiss(max_ts=2).check_assertions(parse_core(BARRIER)).is_safe


def test_reference_counted_resource_lifecycle():
    """The Bluetooth pattern generalized: last-one-out frees; use after
    free asserted against."""
    src = """
    int refs; bool freed;
    void user() {
      int r;
      atomic {
        r = refs;
        if (r > 0) { refs = refs + 1; }
      }
      if (r > 0) {
        assert(!freed);
        atomic { refs = refs - 1; }
      }
    }
    void releaser() {
      int r;
      atomic { refs = refs - 1; r = refs; }
      assume(r == 0);
      freed = true;
    }
    void main() {
      refs = 1;
      async user();
      releaser();
    }
    """
    # the test-and-increment is atomic (the FIXED idiom): safe
    assert check_concurrent(parse_core(src)).is_error is False
    assert Kiss(max_ts=1).check_assertions(parse_core(src)).is_safe


def test_reference_counting_broken_toctou():
    """The actual Bluetooth bug pattern: check outside the atomic."""
    src = """
    int refs; bool freed;
    void user() {
      int r;
      r = refs;
      if (r > 0) {
        atomic { refs = refs + 1; }
        assert(!freed);
        atomic { refs = refs - 1; }
      }
    }
    void releaser() {
      int r;
      atomic { refs = refs - 1; r = refs; }
      assume(r == 0);
      freed = true;
    }
    void main() {
      refs = 1;
      async releaser();
      user();
    }
    """
    # the Bluetooth role assignment: the interruptible check-then-act
    # runs on the main thread, the releaser is parked and dispatched
    # mid-flight — the violating execution is balanced
    assert check_concurrent(parse_core(src)).is_error
    r = Kiss(max_ts=1, validate_traces=True).check_assertions(parse_core(src))
    assert r.is_error and r.trace_validated


def test_toctou_with_swapped_roles_is_a_coverage_gap():
    """The same bug with the roles swapped (user parked, releaser on
    main) needs an unbalanced schedule — the spawned user must be
    interrupted by main and then resume.  KISS misses it at every ts
    bound: the paper's qualitative unsoundness, precisely characterized."""
    src = """
    int refs; bool freed;
    void user() {
      int r;
      r = refs;
      if (r > 0) {
        atomic { refs = refs + 1; }
        assert(!freed);
        atomic { refs = refs - 1; }
      }
    }
    void releaser() {
      int r;
      atomic { refs = refs - 1; r = refs; }
      assume(r == 0);
      freed = true;
    }
    void main() {
      refs = 1;
      async user();
      releaser();
    }
    """
    ground = check_concurrent(parse_core(src))
    assert ground.is_error  # the bug is real...
    from repro.concheck.executions import is_balanced, thread_string

    assert not is_balanced(thread_string(ground.trace))  # ...but unbalanced
    balanced_only = check_concurrent(parse_core(src), balanced_only=True)
    assert balanced_only.is_safe  # no balanced execution exposes it
    for bound in (0, 1, 2):
        assert Kiss(max_ts=bound).check_assertions(parse_core(src)).is_safe
