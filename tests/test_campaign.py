"""Tests for the campaign engine (repro.campaign): cache-key stability,
parallel-vs-serial verdict equivalence, timeout/crash degradation, the
result cache, and telemetry."""

import json
import os

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignScheduler,
    CheckJob,
    ResultCache,
    Telemetry,
    cache_key,
    corpus_jobs,
    run_corpus_campaign,
)
from repro.core.checker import Kiss
from repro.drivers import DEVICE_EXTENSION, bluetooth_program, spec_by_name

RACY_SRC = """
struct EXT { int a; int b; }
void worker(EXT *e) { e->a = 1; }
void main() {
  EXT *e;
  e = malloc(EXT);
  async worker(e);
  e->a = 2;
}
"""


def job(source=RACY_SRC, target="EXT.a", **config):
    return CheckJob(job_id=f"t/{target}", driver="t", source=source, target=target,
                    config=config)


# -- job model ---------------------------------------------------------------------


def test_job_validation():
    with pytest.raises(ValueError):
        CheckJob(job_id="x", driver="d", source=RACY_SRC, prop="race", target=None)
    with pytest.raises(ValueError):
        CheckJob(job_id="x", driver="d", source=RACY_SRC, prop="frobnicate", target="g")


def test_table_verdict_mapping():
    r = CampaignScheduler().run([job()])[0]
    assert r.verdict == "error" and r.error_kind == "race"
    assert r.table_verdict == "race"
    safe = CampaignScheduler().run([job(target="EXT.b")])[0]
    assert safe.table_verdict == "no-race"
    bound = CampaignScheduler().run([job(max_states=3)])[0]
    assert bound.verdict == "resource-bound" and bound.table_verdict == "unresolved"


# -- cache keys --------------------------------------------------------------------


def test_cache_key_stable_across_formatting():
    assert cache_key(job()) == cache_key(job())
    reformatted = RACY_SRC.replace("\n", "\n\n").replace("  ", "    ")
    assert cache_key(job(source=reformatted)) == cache_key(job())


def test_cache_key_changes_with_program_edit():
    edited = RACY_SRC.replace("e->a = 2;", "e->b = 2;")
    assert cache_key(job(source=edited)) != cache_key(job())


def test_cache_key_changes_with_config_and_target():
    assert cache_key(job(max_states=7)) != cache_key(job())
    assert cache_key(job(max_ts=1)) != cache_key(job())
    assert cache_key(job(target="EXT.b")) != cache_key(job())


# -- result cache ------------------------------------------------------------------


def test_cache_roundtrip_and_warm_hits(tmp_path):
    d = str(tmp_path / "cache")
    first = CampaignScheduler(CampaignConfig(cache_dir=d)).run([job(), job(target="EXT.b")])
    assert not any(r.cache_hit for r in first)
    # a fresh scheduler reloads the JSONL store
    second = CampaignScheduler(CampaignConfig(cache_dir=d)).run([job(), job(target="EXT.b")])
    assert all(r.cache_hit for r in second)
    assert [r.verdict for r in second] == [r.verdict for r in first]
    assert [r.table_verdict for r in second] == [r.table_verdict for r in first]


def test_cache_tolerates_corrupt_lines(tmp_path):
    d = str(tmp_path / "cache")
    CampaignScheduler(CampaignConfig(cache_dir=d)).run([job()])
    cache = ResultCache(d)
    with open(cache.path, "a") as f:
        f.write("{torn wri\n")
    reloaded = ResultCache(d)
    assert len(reloaded) == 1
    assert reloaded.get(cache_key(job())) is not None


def test_cache_skips_stale_schema_entries(tmp_path):
    """Entries written before the schema tag (retroactively kiss-cache/1)
    or under any other tag must be recomputed — never trusted, never a
    crash (the key derivation changed under them)."""
    d = str(tmp_path / "cache")
    key = cache_key(job())
    fresh = CampaignScheduler(CampaignConfig(cache_dir=d)).run([job()])[0]
    stale_lines = [
        json.dumps({"key": key, "result": fresh.to_dict()}),  # pre-tag layout
        json.dumps({"schema": "kiss-cache/1", "key": key, "result": fresh.to_dict()}),
        json.dumps({"schema": 7, "key": key, "result": fresh.to_dict()}),
    ]
    stale_dir = str(tmp_path / "stale")
    os.makedirs(stale_dir)
    with open(os.path.join(stale_dir, "results.jsonl"), "w") as f:
        f.write("\n".join(stale_lines) + "\n")
    stale = ResultCache(stale_dir)
    assert len(stale) == 0
    assert stale.get(key) is None  # miss: the scheduler would recompute
    # recomputing through the stale store repopulates it under the new tag
    recomputed = CampaignScheduler(CampaignConfig(cache_dir=stale_dir)).run([job()])[0]
    assert not recomputed.cache_hit
    assert recomputed.verdict == fresh.verdict
    assert ResultCache(stale_dir).get(key) is not None


def test_disabled_cache_never_hits():
    cache = ResultCache(None)
    assert cache.get("deadbeef") is None
    assert cache.hits == 0


# -- parallel vs serial ------------------------------------------------------------


def test_parallel_matches_serial_on_corpus_subset():
    specs = [spec_by_name("tracedrv"), spec_by_name("imca"), spec_by_name("toaster/toastmon")]
    jobs = corpus_jobs(specs)
    serial = CampaignScheduler(CampaignConfig(jobs=1)).run(jobs)
    parallel = CampaignScheduler(CampaignConfig(jobs=2)).run(jobs)
    assert [(r.job_id, r.table_verdict) for r in serial] == [
        (r.job_id, r.table_verdict) for r in parallel
    ]
    # and both match the paper: imca/toastmon have exactly one racy field
    by_driver = {}
    for r in serial:
        by_driver.setdefault(r.driver, []).append(r.table_verdict)
    assert by_driver["tracedrv"].count("race") == 0
    assert by_driver["imca"].count("race") == 1
    assert by_driver["toaster/toastmon"].count("race") == 1


def test_check_races_on_struct_parallel_matches_serial():
    prog = bluetooth_program()
    serial = Kiss(max_ts=0).check_races_on_struct(prog, DEVICE_EXTENSION)
    parallel = Kiss(max_ts=0).check_races_on_struct(prog, DEVICE_EXTENSION, jobs=2)
    assert set(serial) == set(parallel)
    for f in serial:
        assert serial[f].verdict == parallel[f].verdict
        assert serial[f].error_kind == parallel[f].error_kind
    assert parallel["stoppingFlag"].is_race


# -- timeouts, retries, degradation ------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2])
def test_timeout_degrades_to_resource_bound(workers):
    heavy = corpus_jobs([spec_by_name("moufiltr")], max_states=10**9)[:1]
    sched = CampaignScheduler(CampaignConfig(jobs=workers, timeout=0.05, retries=1))
    r = sched.run(heavy)[0]
    assert r.verdict == "resource-bound"
    assert r.table_verdict == "unresolved"
    assert "timeout" in r.detail
    assert r.attempts == 2  # first try + one bounded retry


def test_crash_degrades_to_resource_bound_after_retries():
    bad = CheckJob(job_id="bad", driver="bad", source="void main( {", target="X.f")
    r = CampaignScheduler(CampaignConfig(retries=1)).run([bad])[0]
    assert r.verdict == "resource-bound"
    assert r.detail.startswith("crash:")
    assert r.attempts == 2


def test_degraded_results_are_not_cached(tmp_path):
    d = str(tmp_path / "cache")
    heavy = corpus_jobs([spec_by_name("moufiltr")], max_states=10**9)[:1]
    cfg = CampaignConfig(timeout=0.05, retries=0, cache_dir=d)
    CampaignScheduler(cfg).run(heavy)
    # a re-run with headroom must try again, not replay the timeout
    r = CampaignScheduler(CampaignConfig(cache_dir=d, timeout=120)).run(
        corpus_jobs([spec_by_name("moufiltr")], max_states=300_000)[:1]
    )[0]
    assert not r.cache_hit


# -- telemetry ---------------------------------------------------------------------


def test_telemetry_stream_and_summary(tmp_path):
    path = str(tmp_path / "events.jsonl")
    cfg = CampaignConfig(cache_dir=str(tmp_path / "cache"), telemetry_path=path)
    sched = CampaignScheduler(cfg)
    results = sched.run([job(), job(target="EXT.b")])
    events = [json.loads(line) for line in open(path)]
    kinds = [e["event"] for e in events]
    assert kinds[0] == "campaign_start" and kinds[-1] == "campaign_end"
    assert kinds.count("job_start") == 2 and kinds.count("job_end") == 2
    ends = [e for e in events if e["event"] == "job_end"]
    assert {e["cache"] for e in ends} == {"miss"}
    assert events[-1]["verdicts"] == {"error": 1, "safe": 1}
    summary = sched.summary(results)
    assert "Campaign summary" in summary and "cache: skipped 0/2" in summary
    # warm re-run reports hits
    sched2 = CampaignScheduler(CampaignConfig(cache_dir=cfg.cache_dir))
    results2 = sched2.run([job(), job(target="EXT.b")])
    assert "cache: skipped 2/2 jobs (100%)" in sched2.summary(results2)


# -- edge cases --------------------------------------------------------------------


def test_cache_hit_survives_execution_option_change(tmp_path):
    """map_traces/validate_traces are execution options, not verdict
    inputs: flipping them must NOT invalidate cached results."""
    d = str(tmp_path / "cache")
    cold = CampaignScheduler(CampaignConfig(cache_dir=d)).run([job()])[0]
    assert not cold.cache_hit
    reconfigured = job(map_traces=True, validate_traces=True)
    assert cache_key(reconfigured) == cache_key(job())
    warm = CampaignScheduler(CampaignConfig(cache_dir=d)).run([reconfigured])[0]
    assert warm.cache_hit
    assert warm.verdict == cold.verdict


def test_cache_hit_survives_witness_option_change(tmp_path):
    """witness is an execution option like map_traces: flipping it must
    not fork the cache key, and a certificate captured on the cold run
    rides along in the cached entry."""
    d = str(tmp_path / "cache")
    safe = job(target="EXT.b", witness=True)  # EXT.b is the safe field
    assert cache_key(safe) == cache_key(job(target="EXT.b"))
    cold = CampaignScheduler(CampaignConfig(cache_dir=d)).run([safe])[0]
    assert not cold.cache_hit and cold.verdict == "safe"
    assert cold.witness is not None
    assert cold.witness["schema"] == "kiss-witness/1"
    # warm hit with the flag off still serves the cached result
    warm = CampaignScheduler(CampaignConfig(cache_dir=d)).run(
        [job(target="EXT.b")])[0]
    assert warm.cache_hit and warm.verdict == "safe"
    assert warm.witness == cold.witness


def test_timeout_on_first_job_of_pool_batch():
    """The very first job submitted to the pool timing out must degrade
    just that job — the rest of the batch completes normally and input
    order is preserved."""
    slow_src = """
        void main() {
          int i; int j;
          i = 0;
          while (i < 10000) {
            i = i + 1;
            j = 0;
            while (j < 10000) { j = j + 1; }
          }
        }
    """
    heavy = CheckJob(job_id="t/heavy", driver="t", source=slow_src,
                     prop="assertion", config={"max_states": 10**9})
    batch = [heavy, job(target="EXT.a"), job(target="EXT.b")]
    results = CampaignScheduler(
        CampaignConfig(jobs=2, timeout=0.5, retries=0)
    ).run(batch)
    assert [r.job_id for r in results] == [j.job_id for j in batch]
    assert results[0].verdict == "resource-bound" and "timeout" in results[0].detail
    assert results[1].verdict == "error"
    assert results[2].verdict == "safe"


def test_empty_job_matrix(tmp_path):
    path = str(tmp_path / "events.jsonl")
    sched = CampaignScheduler(CampaignConfig(telemetry_path=path))
    results = sched.run([])
    assert results == []
    kinds = [json.loads(line)["event"] for line in open(path)]
    assert kinds == ["campaign_start", "campaign_end"]
    assert "Campaign summary" in sched.summary(results)


def test_corpus_campaign_matches_check_driver():
    from repro.drivers import check_driver

    spec = spec_by_name("imca")
    direct = check_driver(spec)
    runs, results, _ = run_corpus_campaign([spec])
    assert runs[0].races == direct.races
    assert runs[0].no_races == direct.no_races
    assert runs[0].unresolved == direct.unresolved
    assert [o.field for o in runs[0].outcomes] == [o.field for o in direct.outcomes]
