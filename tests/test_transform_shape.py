"""Structural tests: the transformation output matches Figure 4
statement-for-statement.

These inspect the *shape* of the emitted code — prefix placement, RAISE
form, call-site propagation, put/dispatch structure — independent of any
checker behaviour.
"""

import pytest

from repro.core import names
from repro.core.transform import KissTransformer, kiss_transform
from repro.lang import ast, parse_core


def transformed_main(src, max_ts=0):
    out = kiss_transform(parse_core(src), max_ts=max_ts)
    return out, out.functions["main"].body.stmts


def is_raise_choice(s):
    """choice { skip } or { raise := true; return }"""
    if not isinstance(s, ast.Choice) or len(s.branches) < 2:
        return False
    first = s.branches[0].stmts
    last = s.branches[-1].stmts
    return (
        len(first) == 1
        and isinstance(first[0], ast.Skip)
        and isinstance(last[0], ast.Assign)
        and isinstance(last[0].lhs, ast.Var)
        and last[0].lhs.name == names.RAISE_VAR
        and isinstance(last[-1], ast.Return)
    )


def test_simple_statement_gets_raise_prefix():
    _, stmts = transformed_main("int g; void main() { g = 1; }")
    assert is_raise_choice(stmts[0])
    assert isinstance(stmts[1], ast.Assign)
    assert stmts[1].kiss_tag is None  # the original statement, untouched


def test_every_original_statement_prefixed():
    src = "int g; void main() { g = 1; g = 2; g = 3; }"
    _, stmts = transformed_main(src)
    originals = [i for i, s in enumerate(stmts) if s.kiss_tag is None]
    assert len(originals) == 3
    for i in originals:
        assert is_raise_choice(stmts[i - 1]), f"statement {i} missing its prefix"


def test_schedule_called_before_statements_when_ts_positive():
    src = "void w() { } void main() { async w(); skip; }"
    _, stmts = transformed_main(src, max_ts=1)
    calls = [
        s for s in stmts if isinstance(s, ast.Call) and s.func.name == names.SCHEDULE_FN
    ]
    assert calls, "schedule() must be called in the instrumented body"


def test_no_schedule_calls_at_ts_zero():
    src = "void w() { } void main() { async w(); skip; }"
    out, _ = transformed_main(src, max_ts=0)
    for f in out.functions.values():
        for s in ast.walk_stmts(f.body):
            if isinstance(s, ast.Call):
                assert s.func.name != names.SCHEDULE_FN


def test_call_followed_by_raise_propagation():
    src = "void f() { } void main() { f(); }"
    _, stmts = transformed_main(src)
    call_idx = next(
        i for i, s in enumerate(stmts) if isinstance(s, ast.Call) and s.func.name == "f"
    )
    after = stmts[call_idx + 1]
    # if (raise) return — lowered: choice{assume(raise); return [] ...}
    assert isinstance(after, ast.Choice)
    guard = after.branches[0].stmts[0]
    assert isinstance(guard, ast.Assume)
    assert isinstance(guard.cond, ast.Var) and guard.cond.name == names.RAISE_VAR
    assert isinstance(after.branches[0].stmts[1], ast.Return)


def test_return_prefixed_by_schedule_but_not_raise():
    src = "void w() { } int f() { return 1; } void main() { async w(); int x; x = f(); }"
    out = kiss_transform(parse_core(src), max_ts=1)
    f_stmts = out.functions["f"].body.stmts
    ret_idx = next(i for i, s in enumerate(f_stmts) if isinstance(s, ast.Return))
    before = f_stmts[ret_idx - 1]
    assert isinstance(before, ast.Call) and before.func.name == names.SCHEDULE_FN
    assert not is_raise_choice(before)


def test_atomic_body_not_instrumented():
    src = "int g; void main() { atomic { g = g + 1; g = g - 1; } }"
    _, stmts = transformed_main(src)
    at = next(s for s in stmts if isinstance(s, ast.Atomic))
    for inner in at.body.stmts:
        assert not is_raise_choice(inner), "no prefixes inside atomic"


def test_async_at_ts0_is_sync_call_plus_raise_reset():
    src = "void w() { } void main() { async w(); }"
    _, stmts = transformed_main(src, max_ts=0)
    call_idx = next(
        i for i, s in enumerate(stmts) if isinstance(s, ast.Call) and s.func.name == "w"
    )
    assert stmts[call_idx].kiss_tag == "inline-async"
    reset = stmts[call_idx + 1]
    assert isinstance(reset, ast.Assign) and reset.lhs.name == names.RAISE_VAR
    assert isinstance(reset.rhs, ast.BoolLit) and reset.rhs.value is False


def test_async_at_ts1_branches_on_room():
    src = "void w() { } void main() { async w(); }"
    _, stmts = transformed_main(src, max_ts=1)
    # room test assigned, then choice(put, inline)
    room_idx = next(
        i
        for i, s in enumerate(stmts)
        if isinstance(s, ast.Assign)
        and isinstance(s.rhs, ast.Binary)
        and s.rhs.op == "<"
        and isinstance(s.rhs.left, ast.Var)
        and s.rhs.left.name == names.TS_SIZE
    )
    branch = stmts[room_idx + 1]
    assert isinstance(branch, ast.Choice) and len(branch.branches) == 2
    put_branch = branch.branches[0]
    tags = [s.kiss_tag for s in ast.walk_stmts(put_branch)]
    assert "put" in tags
    inline_branch = branch.branches[1]
    tags2 = [s.kiss_tag for s in ast.walk_stmts(inline_branch)]
    assert "inline-async" in tags2


def test_schedule_body_shape():
    src = "void w() { } void main() { async w(); }"
    out = kiss_transform(parse_core(src), max_ts=2)
    sched = out.functions[names.SCHEDULE_FN]
    [it] = sched.body.stmts
    assert isinstance(it, ast.Iter)
    [choice] = it.body.stmts
    assert isinstance(choice, ast.Choice)
    # one dispatch branch per (family, slot)
    assert len(choice.branches) == 2
    for b in choice.branches:
        calls = [s for s in b.stmts if isinstance(s, ast.Call)]
        assert any(c.kiss_tag == "dispatch" for c in calls)
        resets = [
            s
            for s in b.stmts
            if isinstance(s, ast.Assign)
            and isinstance(s.lhs, ast.Var)
            and s.lhs.name == names.RAISE_VAR
        ]
        assert resets, "raise must be reset after a dispatched thread ends"


def test_check_entry_shape():
    src = "void w() { } void main() { async w(); }"
    out = kiss_transform(parse_core(src), max_ts=1)
    entry = out.functions[names.CHECK_FN].body.stmts
    # raise := false; [[main]](); raise := false; schedule()
    assert isinstance(entry[0], ast.Assign) and entry[0].lhs.name == names.RAISE_VAR
    root = next(s for s in entry if isinstance(s, ast.Call) and s.func.name == "main")
    assert root.kiss_tag == "root"
    assert isinstance(entry[-1], ast.Call) and entry[-1].func.name == names.SCHEDULE_FN


def test_raise_return_carries_type_correct_default():
    src = """
    void w() { }
    int f() { async w(); return 1; }
    bool g() { async w(); return true; }
    void main() { int a; bool b; a = f(); b = g(); }
    """
    out = kiss_transform(parse_core(src), max_ts=1)
    for fname, expect in (("f", ast.IntLit), ("g", ast.BoolLit)):
        rets = [
            s
            for s in ast.walk_stmts(out.functions[fname].body)
            if isinstance(s, ast.Return) and s.kiss_tag == "instr"
        ]
        assert rets
        assert all(isinstance(r.value, expect) for r in rets)


def test_transform_is_deterministic():
    src = "bool f; void w() { f = true; } void main() { async w(); assert(!f); }"
    from repro.lang.pretty import pretty_program

    prog = parse_core(src)
    t1 = pretty_program(KissTransformer(max_ts=1).transform(prog))
    t2 = pretty_program(KissTransformer(max_ts=1).transform(prog))
    assert t1 == t2
