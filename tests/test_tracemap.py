"""Tests for sequential→concurrent error-trace mapping."""

import pytest

from repro.core.checker import Kiss
from repro.core.race import RaceTarget
from repro.concheck.executions import is_balanced
from repro.drivers.bluetooth import DEVICE_EXTENSION, bluetooth_program
from repro.lang import parse_core


def assertion_trace(src, max_ts):
    r = Kiss(max_ts=max_ts).check_assertions(parse_core(src))
    assert r.is_error, "expected an error"
    return r.concurrent_trace


def test_single_thread_trace_all_tid_zero():
    tr = assertion_trace("void main() { assert(false); }", max_ts=0)
    assert set(tr.thread_string()) == {0}


def test_inline_async_introduces_second_thread():
    tr = assertion_trace(
        """
        bool flag;
        void worker() { flag = true; }
        void main() { async worker(); assert(!flag); }
        """,
        max_ts=0,
    )
    assert set(tr.thread_string()) >= {0, 1}
    # the spawn pseudo-step belongs to the parent
    spawns = [s for s in tr if s.kind == "spawn"]
    assert len(spawns) == 1 and spawns[0].tid == 0


def test_worker_steps_attributed_to_worker_thread():
    tr = assertion_trace(
        """
        bool flag;
        void worker() { flag = true; }
        void main() { async worker(); assert(!flag); }
        """,
        max_ts=0,
    )
    flag_writes = [s for s in tr if "flag = true" in s.text]
    assert flag_writes and all(s.tid == 1 for s in flag_writes)
    asserts = [s for s in tr if "assert" in s.text]
    assert asserts and asserts[-1].tid == 0


def test_parked_thread_dispatch_attribution():
    tr = assertion_trace(
        """
        int phase;
        void worker() { assume(phase == 1); phase = 2; }
        void main() { async worker(); phase = 1; assume(phase == 2); assert(false); }
        """,
        max_ts=1,
    )
    # order: main sets phase=1 (t0), then worker runs (t1), then main asserts (t0)
    s = tr.thread_string()
    assert s[0] == 0
    assert 1 in s
    assert s[-1] == 0  # the failing assert is main's
    # and main truly resumes after the worker block: 0 ... 1 ... 0
    first1 = s.index(1)
    assert any(t == 0 for t in s[first1:])


def test_mapped_traces_are_balanced():
    """Theorem 1: KISS only simulates balanced executions, so every mapped
    trace's thread string must be balanced."""
    sources = [
        ("void main() { assert(false); }", 0),
        (
            """
            bool flag;
            void worker() { flag = true; }
            void main() { async worker(); assert(!flag); }
            """,
            0,
        ),
        (
            """
            int phase;
            void worker() { assume(phase == 1); phase = 2; }
            void main() { async worker(); phase = 1; assume(phase == 2); assert(false); }
            """,
            1,
        ),
        (
            """
            int a; int b;
            void w1() { a = 1; }
            void w2() { assume(a == 1); b = 1; }
            void main() { async w2(); async w1(); assume(b == 1); assert(false); }
            """,
            2,
        ),
    ]
    for src, max_ts in sources:
        tr = assertion_trace(src, max_ts)
        assert is_balanced(tr.thread_string()), (src, tr.thread_string())


def test_race_trace_is_balanced_and_has_two_access_threads():
    r = Kiss(max_ts=0).check_race(
        bluetooth_program(), RaceTarget.field_of(DEVICE_EXTENSION, "stoppingFlag")
    )
    tr = r.concurrent_trace
    assert is_balanced(tr.thread_string())
    acc = tr.access_steps()
    assert len(acc) == 2
    assert acc[0].tid != acc[1].tid


def test_bluetooth_assertion_trace_matches_paper_walkthrough():
    """Section 2.3's scenario: main parks PnpStop, PnpAdd runs and calls
    IoIncrement; PnpStop is dispatched mid-increment; main's thread then
    fails the assert."""
    r = Kiss(max_ts=1).check_assertions(bluetooth_program())
    tr = r.concurrent_trace
    s = tr.thread_string()
    assert is_balanced(s)
    # two threads participate
    assert set(s) == {0, 1}
    # the failing assertion (last step) is in the PnpAdd thread (main, t0)
    assert s[-1] == 0
    # PnpStop's effect (stopped = true) is attributed to thread 1
    stops = [st for st in tr if "stopped = true" in st.text]
    assert stops and all(st.tid == 1 for st in stops)


def test_no_trace_for_safe_results():
    r = Kiss(max_ts=1).check_assertions(
        parse_core("void main() { assert(true); }")
    )
    assert r.is_safe and r.concurrent_trace is None


def test_trace_format_is_printable():
    tr = assertion_trace("void main() { assert(false); }", max_ts=0)
    text = tr.format()
    assert "t0" in text
