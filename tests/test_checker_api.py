"""Tests for the high-level Kiss facade."""

import pytest

from repro.core.checker import Kiss, KissResult
from repro.core.race import RaceTarget
from repro.lang import parse, parse_core

BUGGY = """
bool flag;
void worker() { flag = true; }
void main() { async worker(); assert(!flag); }
"""


def test_accepts_surface_programs():
    # check_* lowers surface programs automatically
    r = Kiss().check_assertions(parse("void main() { if (true) { assert(true); } }"))
    assert r.is_safe


def test_accepts_core_programs():
    r = Kiss().check_assertions(parse_core(BUGGY))
    assert r.is_error


def test_result_flags_consistent():
    r = Kiss().check_assertions(parse_core(BUGGY))
    assert r.is_error and not r.is_safe and not r.exhausted


def test_safe_result_flags():
    r = Kiss().check_assertions(parse_core("void main() { }"))
    assert r.is_safe and not r.is_error


def test_resource_bound_result():
    r = Kiss(max_states=3).check_assertions(parse_core(BUGGY))
    assert r.exhausted
    assert r.verdict == "resource-bound"


def test_map_traces_off_skips_mapping():
    r = Kiss(map_traces=False).check_assertions(parse_core(BUGGY))
    assert r.is_error and r.concurrent_trace is None


def test_validate_traces_implies_mapping():
    kiss = Kiss(map_traces=False, validate_traces=True)
    r = kiss.check_assertions(parse_core(BUGGY))
    assert r.concurrent_trace is not None
    assert r.trace_validated is True


def test_sequentialize_returns_inspectable_program():
    out = Kiss(max_ts=2).sequentialize(parse_core(BUGGY))
    assert out.entry == "__kiss_check"
    assert "__kiss_schedule" in out.functions


def test_sequentialize_for_race_adds_checks():
    out = Kiss().sequentialize_for_race(parse_core(BUGGY), RaceTarget.global_var("flag"))
    assert "__kiss_check_r" in out.functions


def test_check_races_on_struct_covers_every_field():
    src = """
    struct EXT { int a; int b; bool c; }
    void main() { EXT *e; e = malloc(EXT); e->a = 1; }
    """
    results = Kiss().check_races_on_struct(parse_core(src), "EXT")
    assert set(results) == {"a", "b", "c"}
    assert all(isinstance(r, KissResult) for r in results.values())


def test_error_kind_distinguishes_races_from_assertions():
    race = Kiss().check_race(
        parse_core("int g; void w() { g = 1; } void main() { async w(); g = 2; }"),
        RaceTarget.global_var("g"),
    )
    assert race.error_kind == "race" and race.is_race
    assertion = Kiss().check_assertions(parse_core(BUGGY))
    assert assertion.error_kind == "assertion" and not assertion.is_race


def test_memory_error_kind_surfaces():
    r = Kiss().check_assertions(parse_core("void main() { int *p; p = null; *p = 1; }"))
    assert r.is_error
    assert r.error_kind == "null-deref"


def test_summary_mentions_target():
    r = Kiss().check_race(
        parse_core("int g; void w() { g = 1; } void main() { async w(); g = 2; }"),
        RaceTarget.global_var("g"),
    )
    assert "g" in r.summary()


def test_race_target_describe():
    assert RaceTarget.global_var("g").describe() == "g"
    assert RaceTarget.field_of("S", "f").describe() == "S.f"
    assert RaceTarget.field_of("S", "f", instance=2).describe() == "S[2].f"


def test_race_target_second_instance():
    # the race is on the SECOND allocated extension; targeting instance 0
    # must be clean, instance 1 must race
    src = """
    struct S { int a; }
    void w(S *p) { p->a = 1; }
    void main() {
      S *first; S *second;
      first = malloc(S);
      second = malloc(S);
      async w(second);
      second->a = 2;
    }
    """
    r0 = Kiss().check_race(parse_core(src), RaceTarget.field_of("S", "a", instance=0))
    assert r0.is_safe
    r1 = Kiss().check_race(parse_core(src), RaceTarget.field_of("S", "a", instance=1))
    assert r1.is_race


def test_checks_emitted_reported_for_race_runs():
    r = Kiss().check_race(
        parse_core("int g; void w() { g = 1; } void main() { async w(); g = 2; }"),
        RaceTarget.global_var("g"),
    )
    assert r.checks_emitted > 0


# -- the CEGAR backend: KISS-on-SLAM, the paper's actual architecture ------------


def test_cegar_backend_finds_concurrency_bug():
    """The full pipeline: Figure 4 sequentialization checked by predicate
    abstraction + Bebop + refinement, on a scalar concurrent program."""
    r = Kiss(max_ts=0, backend="cegar").check_assertions(parse_core(BUGGY))
    assert r.is_error


def test_cegar_backend_agrees_with_explicit_on_safe_program():
    src = """
    int phase;
    void worker() { assume(phase == 1); phase = 2; }
    void main() { async worker(); phase = 1; assume(phase == 2); assert(phase == 2); }
    """
    explicit = Kiss(max_ts=1).check_assertions(parse_core(src))
    cegar = Kiss(max_ts=1, backend="cegar").check_assertions(parse_core(src))
    assert explicit.is_safe
    assert cegar.is_safe or cegar.exhausted  # divergence allowed, wrong verdict not


def test_cegar_backend_parked_thread_bug():
    src = """
    int phase;
    void worker() { assume(phase == 1); phase = 2; }
    void main() { async worker(); phase = 1; assume(phase == 2); assert(false); }
    """
    r = Kiss(max_ts=1, backend="cegar", cegar_rounds=10).check_assertions(parse_core(src))
    assert r.is_error


def test_cegar_backend_reports_unsupported_fragment_as_bound():
    src = "struct S { int a; } void main() { S *p; p = malloc(S); }"
    r = Kiss(backend="cegar").check_assertions(parse_core(src))
    assert r.exhausted
    assert "unsupported" in r.backend_result.message


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        Kiss(backend="z3")


# -- the §2 usage pattern: iterative deepening over the ts bound ------------------


def test_sweep_ts_stops_at_first_error():
    from repro.core.checker import sweep_ts

    src = """
    int phase;
    void worker() { assume(phase == 1); phase = 2; }
    void main() { async worker(); phase = 1; assume(phase == 2); assert(false); }
    """
    results = sweep_ts(parse_core(src), max_bound=3, map_traces=False)
    assert [r.verdict for r in results] == ["safe", "error"]


def test_sweep_ts_exhausts_bounds_when_safe():
    from repro.core.checker import sweep_ts

    results = sweep_ts(parse_core("void main() { assert(true); }"), max_bound=2)
    assert len(results) == 3
    assert all(r.is_safe for r in results)


def test_sweep_ts_skips_identical_transforms():
    from repro import obs
    from repro.core.checker import sweep_ts

    # no async: every ts bound sequentializes to the identical program,
    # so only bound 0 should actually reach a backend
    src = "int x; void main() { x = 1; assert(x == 1); }"
    with obs.observing(obs.Recorder()) as rec:
        results = sweep_ts(parse_core(src), max_bound=3)
        counters = rec.metrics()["counters"]
    assert counters["bound_sweep_skips"] == 3
    assert len(results) == 4
    assert all(r.is_safe for r in results)
    # skipped results are copies of the computed one, not aliases
    assert results[1] is not results[0]
    assert results[1].verdict == results[0].verdict


def test_sweep_ts_rounds_strategy_reports_budget():
    from repro.core.checker import sweep_ts

    src = """
    int x;
    void w() { assert(x < 2); }
    void main() { async w(); x = 2; }
    """
    results = sweep_ts(parse_core(src), max_bound=1, strategy="rounds", rounds=2)
    assert results[-1].is_error
    assert all(r.strategy == "rounds" and r.rounds == 2 for r in results)


def test_sweep_ts_continues_when_asked():
    from repro.core.checker import sweep_ts

    src = """
    bool f;
    void worker() { f = true; }
    void main() { async worker(); assert(!f); }
    """
    results = sweep_ts(parse_core(src), max_bound=2, stop_on_error=False, map_traces=False)
    assert len(results) == 3
    assert all(r.is_error for r in results)


def test_top_level_lazy_exports():
    import repro

    assert repro.Kiss is Kiss
    from repro.core.race import RaceTarget as RT

    assert repro.RaceTarget is RT
    with pytest.raises(AttributeError):
        repro.not_a_thing


def test_inline_option_preserves_verdicts_and_shrinks_states():
    src = """
    int lock; int g;
    void acquire() { atomic { assume(lock == 0); lock = 1; } }
    void release() { atomic { lock = 0; } }
    void worker() { acquire(); g = 2; release(); }
    void main() { async worker(); acquire(); g = 1; assert(g == 1); release(); }
    """
    plain = Kiss(max_ts=1, map_traces=False).check_assertions(parse_core(src))
    inlined = Kiss(max_ts=1, map_traces=False, inline=True).check_assertions(parse_core(src))
    assert plain.verdict == inlined.verdict == "safe"
    assert inlined.backend_result.stats.states <= plain.backend_result.stats.states


def test_inline_option_keeps_traces_replayable():
    src = """
    int g;
    void set2() { g = 2; }
    void main() { set2(); assert(g == 1); }
    """
    r = Kiss(validate_traces=True, inline=True).check_assertions(parse_core(src))
    assert r.is_error
    # the replay runs against the inlined clone, so validation still holds
    assert r.trace_validated is True
