"""The ``cache`` subcommand and the cache's timestamp/prune layer."""

import json
import time

import pytest

from repro.campaign import CampaignConfig, CampaignScheduler, ResultCache, cache_key
from repro.campaign.cache import SCHEMA
from repro.cli import main
from tests.test_runtime_parity import corpus_batch


@pytest.fixture
def warm_cache(tmp_path):
    d = str(tmp_path / "c")
    jobs = corpus_batch(4)
    CampaignScheduler(CampaignConfig(cache_dir=d)).run(jobs)
    return d, jobs


def test_entries_carry_timestamps(warm_cache):
    d, jobs = warm_cache
    cache = ResultCache(d)
    now = time.time()
    for line in open(cache.path):
        obj = json.loads(line)
        assert obj["schema"] == SCHEMA
        assert now - 3600 < obj["t"] <= now + 1
    assert cache.stats()["oldest_t"] > 0


def test_untimestamped_legacy_entries_still_load_and_prune_first(tmp_path):
    d = str(tmp_path / "c")
    jobs = corpus_batch(2)
    CampaignScheduler(CampaignConfig(cache_dir=d)).run(jobs)
    # strip the timestamps, as a pre-timestamp store would look
    cache = ResultCache(d)
    lines = [json.loads(line) for line in open(cache.path)]
    with open(cache.path, "w") as f:
        for obj in lines:
            del obj["t"]
            f.write(json.dumps(obj) + "\n")
    legacy = ResultCache(d)
    assert len(legacy) == len(jobs)  # still served
    kept, dropped = legacy.prune(older_than_s=10_000_000)
    assert (kept, dropped) == (0, len(jobs))  # age-unknown counts as ancient


def test_prune_drops_old_and_compacts(warm_cache):
    d, jobs = warm_cache
    cache = ResultCache(d)
    # age half the entries far into the past
    old_keys = {cache_key(j) for j in jobs[:2]}
    for k in old_keys:
        cache._times[k] = time.time() - 10 * 86400
    kept, dropped = cache.prune(older_than_s=86400)
    assert (kept, dropped) == (len(jobs) - 2, 2)
    reloaded = ResultCache(d)
    assert len(reloaded) == len(jobs) - 2
    for j in jobs[:2]:
        assert reloaded.get(cache_key(j)) is None
    for j in jobs[2:]:
        assert reloaded.get(cache_key(j)) is not None
    # a fresh prune with a generous window is pure compaction
    assert reloaded.prune(older_than_s=86400) == (len(jobs) - 2, 0)


def test_prune_compacts_superseded_and_corrupt_lines(warm_cache):
    d, jobs = warm_cache
    cache = ResultCache(d)
    with open(cache.path, "a") as f:
        f.write("{torn")  # a torn tail line
    dirty = ResultCache(d)
    assert dirty.corrupt_lines == 1
    dirty.prune(older_than_s=10 * 86400)
    clean = ResultCache(d)
    assert clean.corrupt_lines == 0 and len(clean) == len(jobs)


def test_disabled_cache_prune_is_a_noop():
    assert ResultCache(None).prune(older_than_s=1.0) == (0, 0)
    assert ResultCache(None).stats()["enabled"] is False


# -- the CLI surface ---------------------------------------------------------------


def test_cli_cache_stats_human_and_json(warm_cache, capsys):
    d, jobs = warm_cache
    assert main(["cache", "stats", "--cache-dir", d]) == 0
    out = capsys.readouterr().out
    assert f"entries: {len(jobs)}" in out

    assert main(["cache", "stats", "--cache-dir", d, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["entries"] == len(jobs)
    assert sum(doc["verdicts"].values()) == len(jobs)


@pytest.mark.parametrize("age,seconds", [
    ("45", 45.0), ("90s", 90.0), ("30m", 1800.0), ("12h", 43200.0), ("7d", 604800.0),
])
def test_age_parsing(age, seconds):
    from repro.cli import _parse_age
    assert _parse_age(age) == seconds


def test_cli_cache_prune(warm_cache, capsys):
    d, jobs = warm_cache
    assert main(["cache", "prune", "--older-than", "7d", "--cache-dir", d]) == 0
    assert f"kept {len(jobs)}" in capsys.readouterr().out
    assert main(["cache", "prune", "--older-than", "0s", "--cache-dir", d]) == 0
    assert f"pruned {len(jobs)}" in capsys.readouterr().out
    assert len(ResultCache(d)) == 0
    assert main(["cache", "prune", "--older-than", "nonsense", "--cache-dir", d]) == 3


def test_cli_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert capsys.readouterr().out.startswith("repro ")
