"""Unit and property tests for the DPLL SAT solver."""

from hypothesis import given, strategies as st

from repro.seqcheck.sat import CnfBuilder, solve


def test_empty_formula_sat():
    assert solve([], 0) == {}


def test_single_unit():
    m = solve([(1,)], 1)
    assert m == {1: True}


def test_contradiction_unsat():
    assert solve([(1,), (-1,)], 1) is None


def test_simple_implication_chain():
    # 1, 1->2, 2->3 forces all true
    m = solve([(1,), (-1, 2), (-2, 3)], 3)
    assert m[1] and m[2] and m[3]


def test_requires_search():
    # (1|2) & (!1|2) & (1|!2): 1=T, 2=T
    m = solve([(1, 2), (-1, 2), (1, -2)], 2)
    assert m[1] and m[2]


def test_unsat_4clauses():
    clauses = [(1, 2), (1, -2), (-1, 2), (-1, -2)]
    assert solve(clauses, 2) is None


def test_assumptions_restrict():
    m = solve([(1, 2)], 2, assumptions=[-1])
    assert m[2] and not m[1]


def test_conflicting_assumptions():
    assert solve([(1, 2)], 2, assumptions=[1, -1]) is None


def test_and_gate():
    b = CnfBuilder()
    a, x = b.fresh(), b.fresh()
    o = b.and_(a, x)
    m = solve(b.clauses, b.num_vars, assumptions=[a, x])
    assert m[abs(o)] == (o > 0)
    m = solve(b.clauses, b.num_vars, assumptions=[a, -x, o])
    assert m is None


def test_or_gate():
    b = CnfBuilder()
    a, x = b.fresh(), b.fresh()
    o = b.or_(a, x)
    assert solve(b.clauses, b.num_vars, assumptions=[-a, -x, o]) is None
    assert solve(b.clauses, b.num_vars, assumptions=[a, -x, o]) is not None


def test_xor_gate():
    b = CnfBuilder()
    a, x = b.fresh(), b.fresh()
    o = b.xor_(a, x)
    assert solve(b.clauses, b.num_vars, assumptions=[a, x, o]) is None
    assert solve(b.clauses, b.num_vars, assumptions=[a, -x, o]) is not None


def test_ite_gate():
    b = CnfBuilder()
    c, t, e = b.fresh(), b.fresh(), b.fresh()
    o = b.ite(c, t, e)
    assert solve(b.clauses, b.num_vars, assumptions=[c, t, -o]) is None
    assert solve(b.clauses, b.num_vars, assumptions=[-c, -e, o]) is None


def _brute_force(clauses, n):
    for bits in range(1 << n):
        assign = {v: bool((bits >> (v - 1)) & 1) for v in range(1, n + 1)}
        if all(any(assign[abs(l)] == (l > 0) for l in c) for c in clauses):
            return True
    return False


@given(
    st.lists(
        st.lists(
            st.integers(min_value=1, max_value=5).flatmap(
                lambda v: st.sampled_from([v, -v])
            ),
            min_size=1,
            max_size=4,
        ).map(tuple),
        max_size=12,
    )
)
def test_agrees_with_brute_force(clauses):
    n = 5
    model = solve(clauses, n)
    assert (model is not None) == _brute_force(clauses, n)
    if model is not None:
        # returned model actually satisfies every clause
        for c in clauses:
            assert any(model[abs(l)] == (l > 0) for l in c)
