"""Unit tests for the parser."""

import pytest

from repro.lang import ast
from repro.lang.parser import ParseError, parse_expr, parse_program, parse_stmt


# -- expressions ---------------------------------------------------------


def test_precedence_mul_over_add():
    e = parse_expr("a + b * c")
    assert isinstance(e, ast.Binary) and e.op == "+"
    assert isinstance(e.right, ast.Binary) and e.right.op == "*"


def test_precedence_add_over_compare():
    e = parse_expr("a + b < c")
    assert isinstance(e, ast.Binary) and e.op == "<"


def test_precedence_compare_over_and():
    e = parse_expr("a < b && c < d")
    assert isinstance(e, ast.Binary) and e.op == "&&"


def test_precedence_and_over_or():
    e = parse_expr("a || b && c")
    assert isinstance(e, ast.Binary) and e.op == "||"
    assert isinstance(e.right, ast.Binary) and e.right.op == "&&"


def test_parens_override_precedence():
    e = parse_expr("(a + b) * c")
    assert isinstance(e, ast.Binary) and e.op == "*"
    assert isinstance(e.left, ast.Binary) and e.left.op == "+"


def test_unary_deref_and_not():
    e = parse_expr("!*p")
    assert isinstance(e, ast.Unary) and e.op == "!"
    assert isinstance(e.operand, ast.Unary) and e.operand.op == "*"


def test_address_of_field():
    e = parse_expr("&x->f")
    assert isinstance(e, ast.Unary) and e.op == "&"
    assert isinstance(e.operand, ast.Field) and e.operand.name == "f"


def test_chained_arrow():
    e = parse_expr("a->b->c")
    assert isinstance(e, ast.Field) and e.name == "c"
    assert isinstance(e.base, ast.Field) and e.base.name == "b"


def test_literals():
    assert parse_expr("42") == ast.IntLit(42)
    assert parse_expr("true") == ast.BoolLit(True)
    assert parse_expr("false") == ast.BoolLit(False)
    assert parse_expr("null") == ast.NullLit()
    assert parse_expr("nondet") == ast.Nondet()


def test_left_associativity_of_minus():
    e = parse_expr("a - b - c")
    assert isinstance(e, ast.Binary) and e.op == "-"
    assert isinstance(e.left, ast.Binary) and e.left.op == "-"


# -- statements -------------------------------------------------------------


def test_assignment_statement():
    s = parse_stmt("x = y + 1;")
    assert isinstance(s, ast.Assign)


def test_deref_store():
    s = parse_stmt("*p = 1;")
    assert isinstance(s, ast.Assign)
    assert isinstance(s.lhs, ast.Unary) and s.lhs.op == "*"


def test_field_store():
    s = parse_stmt("e->pendingIo = 1;")
    assert isinstance(s, ast.Assign)
    assert isinstance(s.lhs, ast.Field)


def test_call_statement_with_result():
    s = parse_stmt("status = BCSP_IoIncrement(e);")
    assert isinstance(s, ast.Call)
    assert s.func.name == "BCSP_IoIncrement"
    assert s.lhs == ast.Var("status")


def test_call_statement_void():
    s = parse_stmt("f(a, b);")
    assert isinstance(s, ast.Call)
    assert s.lhs is None
    assert len(s.args) == 2


def test_async_call():
    s = parse_stmt("async BCSP_PnpStop(e);")
    assert isinstance(s, ast.AsyncCall)
    assert s.func.name == "BCSP_PnpStop"


def test_malloc_statement():
    s = parse_stmt("e = malloc(DEVICE_EXTENSION);")
    assert isinstance(s, ast.Malloc)
    assert s.struct_name == "DEVICE_EXTENSION"


def test_local_declaration_with_init_splits():
    s = parse_stmt("int x = 3;")
    assert isinstance(s, ast.Block)
    decl, assign = s.stmts
    assert isinstance(decl, ast.VarDecl) and isinstance(assign, ast.Assign)


def test_pointer_declaration():
    s = parse_stmt("DEVICE_EXTENSION *e;")
    assert isinstance(s, ast.VarDecl)
    assert isinstance(s.type, ast.PtrType)


def test_if_else():
    s = parse_stmt("if (x == 0) { y = 1; } else { y = 2; }")
    assert isinstance(s, ast.If)
    assert s.els is not None


def test_if_without_braces():
    s = parse_stmt("if (b) x = 1;")
    assert isinstance(s, ast.If)
    assert len(s.then.stmts) == 1


def test_while():
    s = parse_stmt("while (x < 10) { x = x + 1; }")
    assert isinstance(s, ast.While)


def test_atomic():
    s = parse_stmt("atomic { x = x + 1; }")
    assert isinstance(s, ast.Atomic)


def test_assume_assert():
    assert isinstance(parse_stmt("assume(e->stoppingEvent);"), ast.Assume)
    assert isinstance(parse_stmt("assert(!stopped);"), ast.Assert)


def test_choice_or():
    s = parse_stmt("choice { x = 1; } or { x = 2; } or { x = 3; }")
    assert isinstance(s, ast.Choice)
    assert len(s.branches) == 3


def test_iter():
    s = parse_stmt("iter { x = x + 1; }")
    assert isinstance(s, ast.Iter)


def test_return_value_and_void():
    assert parse_stmt("return -1;").value is not None
    assert parse_stmt("return;").value is None


def test_skip():
    assert isinstance(parse_stmt("skip;"), ast.Skip)


# -- programs -----------------------------------------------------------------


def test_parse_struct_and_global_and_function():
    prog = parse_program(
        """
        struct S { int a; bool b; }
        bool stopped = false;
        void main() { stopped = true; }
        """
    )
    assert "S" in prog.structs
    assert prog.structs["S"].fields["a"] == ast.INT
    assert "stopped" in prog.globals
    assert "main" in prog.functions


def test_function_params_and_return_type():
    prog = parse_program("int inc(int x) { return x + 1; }")
    f = prog.functions["inc"]
    assert f.ret == ast.INT
    assert f.params[0].name == "x"


def test_parse_error_reports_position():
    with pytest.raises(ParseError) as exc:
        parse_program("void main() { x = ; }")
    assert "1:" in str(exc.value)


def test_missing_semicolon_raises():
    with pytest.raises(ParseError):
        parse_stmt("x = 1")


def test_bluetooth_figure2_parses():
    """The paper's Figure 2 model must parse (modulo our concrete syntax)."""
    src = """
    struct DEVICE_EXTENSION { int pendingIo; bool stoppingFlag; bool stoppingEvent; }
    bool stopped;

    void main() {
      DEVICE_EXTENSION *e;
      e = malloc(DEVICE_EXTENSION);
      e->pendingIo = 1;
      e->stoppingFlag = false;
      e->stoppingEvent = false;
      stopped = false;
      async BCSP_PnpStop(e);
      BCSP_PnpAdd(e);
    }

    void BCSP_PnpAdd(DEVICE_EXTENSION *e) {
      int status;
      status = BCSP_IoIncrement(e);
      if (status == 0) {
        assert(!stopped);
      }
      BCSP_IoDecrement(e);
    }

    void BCSP_PnpStop(DEVICE_EXTENSION *e) {
      e->stoppingFlag = true;
      BCSP_IoDecrement(e);
      assume(e->stoppingEvent);
      stopped = true;
    }

    int BCSP_IoIncrement(DEVICE_EXTENSION *e) {
      if (e->stoppingFlag) { return -1; }
      atomic { e->pendingIo = e->pendingIo + 1; }
      return 0;
    }

    void BCSP_IoDecrement(DEVICE_EXTENSION *e) {
      int pendingIo;
      atomic {
        e->pendingIo = e->pendingIo - 1;
        pendingIo = e->pendingIo;
      }
      if (pendingIo == 0) { e->stoppingEvent = true; }
    }
    """
    prog = parse_program(src)
    assert set(prog.functions) == {
        "main",
        "BCSP_PnpAdd",
        "BCSP_PnpStop",
        "BCSP_IoIncrement",
        "BCSP_IoDecrement",
    }
