"""Property tests for the fuzz program generator (repro.fuzz.gen):
parse∘pretty round-trip identity, determinism, well-typedness, and the
structural invariants the differential oracle relies on (fork bound,
distinguished race location, termination of generated loops)."""

from repro.fuzz import GenConfig, ProgramGenerator, count_statements
from repro.lang import parse, parse_core
from repro.lang.ast import AsyncCall, While, walk_stmts
from repro.lang.pretty import pretty_program

import pytest


def test_round_trip_identity_on_200_programs(fuzz_seed):
    """parse(pretty(p)) pretty-prints back to the identical source for
    200+ generated programs — the property that makes source text the
    canonical replay/cache artifact."""
    gen = ProgramGenerator()
    for seed in range(fuzz_seed, fuzz_seed + 200):
        gp = gen.generate(seed)
        reparsed = parse(gp.source)
        assert pretty_program(reparsed) == gp.source, f"round-trip broke at seed {seed}"


def test_round_trip_identity_under_bigger_config(fuzz_seed):
    gen = ProgramGenerator(GenConfig(max_workers=3, max_stmts=6, max_depth=3, n_locks=2))
    for seed in range(fuzz_seed, fuzz_seed + 40):
        gp = gen.generate(seed)
        assert pretty_program(parse(gp.source)) == gp.source, f"seed {seed}"


def test_generation_is_deterministic(fuzz_seed):
    a = ProgramGenerator().generate(fuzz_seed + 7)
    b = ProgramGenerator().generate(fuzz_seed + 7)
    assert a.source == b.source
    assert a.n_forks == b.n_forks


def test_distinct_seeds_give_distinct_programs(fuzz_seed):
    gen = ProgramGenerator()
    sources = {gen.generate(s).source for s in range(fuzz_seed, fuzz_seed + 50)}
    assert len(sources) > 40  # near-total diversity


def test_generated_programs_lower_to_core(fuzz_seed):
    """Every generated program passes the full front end, including the
    lowering the KISS transformer requires."""
    gen = ProgramGenerator()
    for seed in range(fuzz_seed, fuzz_seed + 30):
        gp = gen.generate(seed)
        core = parse_core(gp.source)
        assert core.functions  # lowered without error


def test_fork_bound_and_race_location(fuzz_seed):
    cfg = GenConfig(max_workers=2)
    gen = ProgramGenerator(cfg)
    for seed in range(fuzz_seed, fuzz_seed + 30):
        gp = gen.generate(seed)
        asyncs = [
            s
            for f in gp.program.functions.values()
            for s in walk_stmts(f.body)
            if isinstance(s, AsyncCall)
        ]
        assert len(asyncs) == gp.n_forks <= cfg.max_workers, f"seed {seed}"
        # forks only in main (the generator's exact-coverage invariant)
        mains = [s for s in walk_stmts(gp.program.function("main").body)
                 if isinstance(s, AsyncCall)]
        assert len(mains) == gp.n_forks, f"seed {seed}"
        assert cfg.race_global in gp.program.globals, f"seed {seed}"


def test_generated_loops_use_local_counters(fuzz_seed):
    """While loops iterate over function-local counters only, so every
    generated program has a finite state space on both oracle sides."""
    gen = ProgramGenerator()
    for seed in range(fuzz_seed, fuzz_seed + 40):
        gp = gen.generate(seed)
        for func in gp.program.functions.values():
            for s in walk_stmts(func.body):
                if isinstance(s, While):
                    counter = s.cond.left.name
                    assert counter in func.locals, f"seed {seed}: shared loop counter"


def test_count_statements_metric():
    prog = parse(
        "int g = 0;\n"
        "void main() { g = 1; if (g == 1) { g = 2; } assert(g != 3); }"
    )
    # g=1, if, g=2, assert — the if counts, its block container does not
    assert count_statements(prog) == 4


def test_config_validation():
    with pytest.raises(ValueError):
        GenConfig(max_workers=0)
    with pytest.raises(ValueError):
        GenConfig(max_stmts=0)
    with pytest.raises(ValueError):
        GenConfig(n_globals=0)
