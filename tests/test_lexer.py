"""Unit tests for the lexer."""

import pytest

from repro.lang.lexer import LexError, Token, tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src)[:-1]]


def test_empty_input_yields_only_eof():
    toks = tokenize("")
    assert len(toks) == 1
    assert toks[0].kind == "EOF"


def test_integer_literal():
    assert kinds("42") == [("INT", "42")]


def test_identifier_and_keyword():
    assert kinds("foo int") == [("ID", "foo"), ("KW", "int")]


def test_underscored_identifier():
    assert kinds("__t1 _x") == [("ID", "__t1"), ("ID", "_x")]


def test_arrow_not_split_into_minus_gt():
    assert kinds("e->f") == [("ID", "e"), ("OP", "->"), ("ID", "f")]


def test_two_char_operators():
    assert kinds("== != <= >= && ||") == [
        ("OP", "=="),
        ("OP", "!="),
        ("OP", "<="),
        ("OP", ">="),
        ("OP", "&&"),
        ("OP", "||"),
    ]


def test_single_char_operators():
    assert kinds("= < > + - * ! & ( ) { } ; , .") == [
        ("OP", c) for c in ["=", "<", ">", "+", "-", "*", "!", "&", "(", ")", "{", "}", ";", ",", "."]
    ]


def test_line_comment_skipped():
    assert kinds("a // comment here\nb") == [("ID", "a"), ("ID", "b")]


def test_block_comment_skipped():
    assert kinds("a /* multi\nline */ b") == [("ID", "a"), ("ID", "b")]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("a /* never closed")


def test_illegal_character_raises():
    with pytest.raises(LexError):
        tokenize("a $ b")


def test_line_and_column_tracking():
    toks = tokenize("a\n  b")
    assert (toks[0].line, toks[0].col) == (1, 1)
    assert (toks[1].line, toks[1].col) == (2, 3)


def test_column_after_block_comment_on_same_line():
    toks = tokenize("/* c */ x")
    assert toks[0].text == "x"
    assert toks[0].col == 9


def test_all_keywords_lex_as_kw():
    from repro.lang.lexer import KEYWORDS

    for kw in KEYWORDS:
        toks = tokenize(kw)
        assert toks[0].kind == "KW", kw


def test_token_str_is_informative():
    t = Token("ID", "x", 3, 7)
    assert "x" in str(t) and "3" in str(t)
