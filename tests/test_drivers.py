"""Tests for the hand-written driver models and the OS model."""

import pytest

from repro.core.checker import Kiss
from repro.core.race import RaceTarget
from repro.concheck import check_concurrent
from repro.drivers import (
    bluetooth_fixed_program,
    bluetooth_program,
    fakemodem_program,
    fakemodem_refcount_program,
    toastmon_program,
)
from repro.lang import parse_core
from repro.drivers.osmodel import OS_MODEL_SRC


# -- OS model primitives -------------------------------------------------------


def test_os_model_parses_and_typechecks():
    parse_core(OS_MODEL_SRC + "\nvoid main() { }")


def test_spinlock_mutual_exclusion():
    src = OS_MODEL_SRC + """
    int lock; int g;
    void worker() {
      KeAcquireSpinLock(&lock);
      g = 2;
      assert(g == 2);
      KeReleaseSpinLock(&lock);
    }
    void main() {
      async worker();
      KeAcquireSpinLock(&lock);
      g = 1;
      assert(g == 1);
      KeReleaseSpinLock(&lock);
    }
    """
    assert check_concurrent(parse_core(src)).is_safe


def test_interlocked_increment_returns_new_value():
    src = OS_MODEL_SRC + """
    int cell;
    void main() {
      int v;
      v = InterlockedIncrement(&cell);
      assert(v == 1);
      assert(cell == 1);
      v = InterlockedDecrement(&cell);
      assert(v == 0);
    }
    """
    assert check_concurrent(parse_core(src)).is_safe


def test_interlocked_compare_exchange_semantics():
    src = OS_MODEL_SRC + """
    int cell;
    void main() {
      int old;
      old = InterlockedCompareExchange(&cell, 5, 0);
      assert(old == 0);
      assert(cell == 5);
      old = InterlockedCompareExchange(&cell, 9, 0);
      assert(old == 5);
      assert(cell == 5);
    }
    """
    assert check_concurrent(parse_core(src)).is_safe


def test_event_wait_blocks_until_set():
    src = OS_MODEL_SRC + """
    bool event; int g;
    void worker() { g = 1; KeSetEvent(&event); }
    void main() {
      async worker();
      KeWaitForSingleObject(&event);
      assert(g == 1);
    }
    """
    assert check_concurrent(parse_core(src)).is_safe


def test_interlocked_counts_are_exact_across_threads():
    src = OS_MODEL_SRC + """
    int cell;
    void worker() { int v; v = InterlockedIncrement(&cell); }
    void main() {
      int v;
      async worker();
      v = InterlockedIncrement(&cell);
      assume(cell == 2);
      assert(cell == 2);
    }
    """
    assert check_concurrent(parse_core(src)).is_safe


# -- toastmon (Figure 6) ----------------------------------------------------------


def test_toastmon_devicepnpstate_race_found():
    r = Kiss(max_ts=0).check_race(
        toastmon_program(), RaceTarget.field_of("DEVICE_EXTENSION", "DevicePnPState")
    )
    assert r.is_error and r.is_race


def test_toastmon_removelock_field_not_racy():
    # the remove lock itself is only touched through interlocked ops
    r = Kiss(max_ts=0).check_race(
        toastmon_program(), RaceTarget.field_of("DEVICE_EXTENSION", "RemoveLock")
    )
    assert r.is_safe


def test_toastmon_race_is_read_write():
    r = Kiss(max_ts=0).check_race(
        toastmon_program(), RaceTarget.field_of("DEVICE_EXTENSION", "DevicePnPState")
    )
    acc = r.concurrent_trace.access_steps()
    assert len(acc) == 2 and acc[0].tid != acc[1].tid


# -- fakemodem ---------------------------------------------------------------------


def test_fakemodem_benign_opencount_race_reported():
    """KISS reports the OpenCount race (the paper keeps it in Table 2 and
    discusses it as benign)."""
    r = Kiss(max_ts=0).check_race(
        fakemodem_program(), RaceTarget.field_of("DEVICE_EXTENSION", "OpenCount")
    )
    assert r.is_error and r.is_race


def test_fakemodem_refcount_assertion_clean():
    """Section 6: 'KISS did not report any errors in the fakemodem driver'
    for the reference-counting property, at the same ts bound that exposes
    the Bluetooth bug."""
    r = Kiss(max_ts=1).check_assertions(fakemodem_refcount_program())
    assert r.is_safe


def test_fakemodem_refcount_matches_fixed_bluetooth():
    """The paper observed fakemodem 'behaved exactly according to the
    fixed implementation of BCSP_IoIncrement' — the fixed Bluetooth model
    must be clean too (same pattern, same verdict)."""
    assert Kiss(max_ts=1).check_assertions(bluetooth_fixed_program()).is_safe
    assert Kiss(max_ts=1).check_assertions(fakemodem_refcount_program()).is_safe


def test_bluetooth_bug_confirmed_by_concurrent_checker():
    """Ground truth for §2.3: the interleaving checker agrees the buggy
    Bluetooth model violates its assertion and the fixed one does not."""
    assert check_concurrent(bluetooth_program(), max_states=200_000).is_error
    assert check_concurrent(bluetooth_fixed_program(), max_states=200_000).is_safe


def test_interlocked_exchange_swaps():
    src = OS_MODEL_SRC + """
    int cell;
    void main() {
      int old;
      cell = 3;
      old = InterlockedExchange(&cell, 9);
      assert(old == 3);
      assert(cell == 9);
    }
    """
    assert check_concurrent(parse_core(src)).is_safe


def test_clear_event_blocks_waiters_again():
    src = OS_MODEL_SRC + """
    bool event;
    void main() {
      KeSetEvent(&event);
      KeWaitForSingleObject(&event);
      KeClearEvent(&event);
      assert(!event);
    }
    """
    assert check_concurrent(parse_core(src)).is_safe


def test_remove_lock_counts_balance():
    src = OS_MODEL_SRC + """
    int removeLock;
    void main() {
      int v;
      v = IoAcquireRemoveLock(&removeLock);
      assert(v == 1);
      IoReleaseRemoveLock(&removeLock);
      assert(removeLock == 0);
    }
    """
    assert check_concurrent(parse_core(src)).is_safe


# -- moufiltr: the serialized-Ioctl spurious-race story (§6) -----------------------


def test_moufiltr_permissive_harness_reports_ioctl_race():
    from repro.drivers.moufiltr import moufiltr_permissive_program

    r = Kiss(max_ts=0).check_race(
        moufiltr_permissive_program(),
        RaceTarget.field_of("DEVICE_EXTENSION", "ConnectCount"),
    )
    assert r.is_error and r.is_race


def test_moufiltr_refined_harness_race_disappears():
    from repro.drivers.moufiltr import moufiltr_refined_program

    r = Kiss(max_ts=0).check_race(
        moufiltr_refined_program(),
        RaceTarget.field_of("DEVICE_EXTENSION", "ConnectCount"),
    )
    assert r.is_safe


def test_moufiltr_locked_field_clean_under_both_harnesses():
    from repro.drivers.moufiltr import (
        moufiltr_permissive_program,
        moufiltr_refined_program,
    )

    for prog in (moufiltr_permissive_program(), moufiltr_refined_program()):
        r = Kiss(max_ts=0).check_race(
            prog, RaceTarget.field_of("DEVICE_EXTENSION", "InputCount")
        )
        assert r.is_safe


def test_moufiltr_race_trace_is_two_ioctls():
    """The paper: 'The error traces for all race conditions reported by
    KISS on these two drivers involved two concurrent Ioctl IRPs.'"""
    from repro.drivers.moufiltr import moufiltr_permissive_program

    r = Kiss(max_ts=0).check_race(
        moufiltr_permissive_program(),
        RaceTarget.field_of("DEVICE_EXTENSION", "ConnectCount"),
    )
    texts = [s.text for s in r.concurrent_trace if s.kind in ("spawn", "access")]
    assert any("Ioctl" in t for t in texts)
    acc = r.concurrent_trace.access_steps()
    assert len(acc) == 2 and acc[0].tid != acc[1].tid
