"""Frontend parity over the shared CampaignRuntime.

The batch scheduler, the fuzz runner, and the checking service are three
frontends over one engine; these tests pin the contract that makes that
more than an implementation detail: **the same job produces the same
verdict and the same content-addressed cache entry no matter which
frontend ran it.**
"""

import threading

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignRuntime,
    CampaignScheduler,
    CheckJob,
    ResultCache,
    Telemetry,
    cache_key,
)
from repro.fuzz.runner import fuzz_jobs
from repro.serve import CheckService, ServeConfig

SRC = """
struct EXT { int a; int b; }
void worker(EXT *e) { e->a = 1; }
void main() {
  EXT *e;
  e = malloc(EXT);
  async worker(e);
  e->a = VALUE;
}
"""


def corpus_batch(n=6):
    """Race jobs with both verdicts represented (as in the chaos suite)."""
    return [
        CheckJob(job_id=f"t/{i}", driver="t",
                 source=SRC.replace("VALUE", str(i + 2)),
                 target="EXT.a" if i % 2 == 0 else "EXT.b")
        for i in range(n)
    ]


def serve_payload(job):
    return {"program": job.source, "prop": job.prop, "target": job.target,
            "driver": job.driver, "config": dict(job.config)}


def run_batch(jobs, cache_dir):
    sched = CampaignScheduler(CampaignConfig(jobs=1, cache_dir=cache_dir))
    return {j.job_id: r for j, r in zip(jobs, sched.run(jobs))}


def run_serve(jobs, cache_dir):
    svc = CheckService(ServeConfig(jobs=1, cache_dir=cache_dir,
                                   quota_burst=len(jobs) + 10))
    try:
        out = {}
        for job in jobs:
            status, doc = svc.submit("parity", serve_payload(job))
            if status != 200:
                doc = svc.get(doc["job"], wait_s=60)
            assert doc["state"] == "done"
            out[job.job_id] = doc["result"]
        return out
    finally:
        svc.stop()


def load_cache_entries(cache_dir, jobs):
    cache = ResultCache(cache_dir)
    assert cache.corrupt_lines == 0 and cache.stale_lines == 0
    return {j.job_id: cache.get(cache_key(j)) for j in jobs}


@pytest.mark.parametrize("make_jobs", [
    corpus_batch,
    lambda: fuzz_jobs(6, seed=3),
], ids=["race-corpus", "fuzz"])
def test_three_frontends_agree_on_verdicts_and_cache_entries(tmp_path, make_jobs):
    jobs = make_jobs()

    batch_results = run_batch(jobs, str(tmp_path / "batch"))
    serve_results = run_serve(jobs, str(tmp_path / "serve"))

    for job in jobs:
        assert serve_results[job.job_id]["verdict"] == batch_results[job.job_id].verdict, job.job_id

    # identical cache entries: same keys, same persisted verdicts
    batch_entries = load_cache_entries(str(tmp_path / "batch"), jobs)
    serve_entries = load_cache_entries(str(tmp_path / "serve"), jobs)
    for job in jobs:
        b, s = batch_entries[job.job_id], serve_entries[job.job_id]
        assert b is not None and s is not None, job.job_id
        assert b.verdict == s.verdict, job.job_id
        assert b.detail == s.detail and b.error_kind == s.error_kind, job.job_id


def test_fuzz_runner_and_direct_runtime_share_cache(tmp_path):
    """A fuzz batch run through the scheduler warms the cache for the
    same jobs driven straight through a bare CampaignRuntime."""
    d = str(tmp_path / "c")
    jobs = fuzz_jobs(4, seed=9)
    sched_results = run_batch(jobs, d)

    rt = CampaignRuntime(CampaignConfig(jobs=1, cache_dir=d))
    tel = Telemetry()
    for job in jobs:
        key, hit = rt.lookup(job, tel)
        assert hit is not None, f"{job.job_id} missed a warm cache"
        assert hit.verdict == sched_results[job.job_id].verdict
    assert rt.cache.hits == len(jobs) and rt.idle


def test_runtime_pump_matches_scheduler_results(tmp_path):
    """Driving the runtime by hand (the service's engine shape) produces
    the scheduler's exact results."""
    jobs = corpus_batch(4)
    sched_results = run_batch(jobs, str(tmp_path / "a"))

    rt = CampaignRuntime(CampaignConfig(jobs=1, cache_dir=str(tmp_path / "b")))
    tel = Telemetry()
    for job in jobs:
        key, hit = rt.lookup(job, tel)
        assert hit is None
        rt.submit(job, key)
    got = {}
    while not rt.idle:
        for job, key, result in rt.pump(tel):
            rt.record(tel, job, key, result)
            got[job.job_id] = result
    rt.close()
    assert set(got) == {j.job_id for j in jobs}
    for job_id, result in got.items():
        assert result.verdict == sched_results[job_id].verdict
        assert result.detail == sched_results[job_id].detail
    starts = tel.of_kind("job_start")
    assert [e["job"] for e in starts] == [j.job_id for j in jobs]


def test_concurrent_clients_dedupe_to_one_cache_entry(tmp_path):
    """Two clients submitting the identical job concurrently: one check
    runs, both observe the same verdict, the cache gains one entry."""
    d = str(tmp_path / "c")
    job = corpus_batch(1)[0]
    svc = CheckService(ServeConfig(jobs=1, cache_dir=d))
    results, errs = {}, []
    barrier = threading.Barrier(2)

    def client(name):
        try:
            barrier.wait(10)
            status, doc = svc.submit(name, serve_payload(job))
            if status != 200:
                doc = svc.get(doc["job"], wait_s=60)
            results[name] = doc
        except Exception as exc:  # pragma: no cover - surfaced below
            errs.append((name, exc))

    threads = [threading.Thread(target=client, args=(n,)) for n in ("a", "b")]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60)
    svc.stop()
    assert not errs, errs
    verdicts = {doc["result"]["verdict"] for doc in results.values()}
    assert len(verdicts) == 1
    cache = ResultCache(d)
    assert len(cache) == 1 and cache.corrupt_lines == 0
    entry = cache.get(cache_key(job))
    assert entry is not None and entry.verdict in verdicts
    # batch parity on the warmed cache: the scheduler sees a pure hit
    sched = CampaignScheduler(CampaignConfig(cache_dir=d))
    (result,) = sched.run([job])
    assert result.cache_hit and result.verdict in verdicts
