"""Unit tests for lowering to core form."""

import pytest

from repro.lang import ast, parse, parse_core
from repro.lang.lower import is_core_program, is_core_stmt, lower_program


def core(src):
    prog = parse_core(src)
    assert is_core_program(prog), "lowering must produce core form"
    return prog


def stmts_of(prog, fname="main"):
    return prog.functions[fname].body.stmts


def test_atoms_unchanged():
    prog = core("int g; void main() { g = 1; }")
    [s] = stmts_of(prog)
    assert isinstance(s, ast.Assign) and s.rhs == ast.IntLit(1)


def test_nested_arith_flattened():
    prog = core("int g; void main() { g = (g + 1) * 2; }")
    ss = stmts_of(prog)
    assert len(ss) == 2
    assert all(is_core_stmt(s) for s in ss)
    # final statement assigns into g
    assert ss[-1].lhs == ast.Var("g")


def test_if_becomes_choice_with_assumes():
    prog = core("int g; void main() { if (g == 0) { g = 1; } else { g = 2; } }")
    ss = stmts_of(prog)
    choice = ss[-1]
    assert isinstance(choice, ast.Choice)
    assert len(choice.branches) == 2
    first = choice.branches[0].stmts[0]
    assert isinstance(first, ast.Assume)
    # else branch starts by computing the negation then assuming it
    neg_branch = choice.branches[1].stmts
    assert isinstance(neg_branch[0], ast.Assign)
    assert isinstance(neg_branch[1], ast.Assume)


def test_while_becomes_iter_plus_assume():
    prog = core("int g; void main() { while (g < 3) { g = g + 1; } }")
    ss = stmts_of(prog)
    kinds = [type(s).__name__ for s in ss]
    assert "Iter" in kinds
    it = next(s for s in ss if isinstance(s, ast.Iter))
    # loop body re-evaluates the condition then assumes it
    assert any(isinstance(s, ast.Assume) for s in it.body.stmts)
    # trailing negative assume after the iter
    after = ss[kinds.index("Iter") + 1 :]
    assert any(isinstance(s, ast.Assume) for s in after)


def test_while_condition_reevaluated_each_iteration():
    """The condition evaluation must be INSIDE the iter body (the paper's
    encoding is for a variable condition; expressions are recomputed)."""
    prog = core("struct S { bool flag; } void main() { S *p; p = malloc(S); while (p->flag) { skip; } }")
    it = next(s for s in stmts_of(prog) if isinstance(s, ast.Iter))
    loads = [s for s in it.body.stmts if isinstance(s, ast.Assign) and isinstance(s.rhs, ast.Field)]
    assert loads, "field read must happen inside the loop body"


def test_field_load_flattened():
    prog = core(
        "struct S { int a; } int g; void main() { S *p; p = malloc(S); g = p->a + 1; }"
    )
    ss = stmts_of(prog)
    field_loads = [s for s in ss if isinstance(s, ast.Assign) and isinstance(s.rhs, ast.Field)]
    assert len(field_loads) == 1


def test_chained_arrow_splits_into_two_loads():
    prog = core(
        "struct T { int x; } struct S { T *t; } int g;"
        "void main() { S *p; p = malloc(S); p->t = malloc(T); g = p->t->x; }"
    )
    ss = stmts_of(prog)
    field_loads = [s for s in ss if isinstance(s, ast.Assign) and isinstance(s.rhs, ast.Field)]
    assert len(field_loads) == 2


def test_dot_on_deref_normalized_to_arrow():
    prog = core("struct S { int a; } int g; void main() { S *p; p = malloc(S); g = (*p).a; }")
    ss = stmts_of(prog)
    assert any(isinstance(s, ast.Assign) and isinstance(s.rhs, ast.Field) and s.rhs.arrow for s in ss)


def test_nondet_becomes_choice():
    prog = core("bool b; void main() { b = nondet; }")
    ss = stmts_of(prog)
    assert any(isinstance(s, ast.Choice) for s in ss)


def test_short_circuit_and_skips_rhs():
    prog = core(
        "struct S { bool f; } bool b; void main() { S *p; p = null; b = p != null && p->f; }"
    )
    # the field read must be guarded inside a choice branch, not unconditional
    ss = stmts_of(prog)
    top_level_loads = [s for s in ss if isinstance(s, ast.Assign) and isinstance(s.rhs, ast.Field)]
    assert not top_level_loads
    choice = next(s for s in ss if isinstance(s, ast.Choice))
    guarded = [s for s in choice.branches[0].stmts if isinstance(s, ast.Assign) and isinstance(s.rhs, ast.Field)]
    assert guarded


def test_locals_hoisted_and_decls_removed():
    prog = core("void main() { int x; x = 1; { bool y; y = true; } }")
    f = prog.functions["main"]
    assert "x" in f.locals and "y" in f.locals
    assert not any(isinstance(s, ast.VarDecl) for s in ast.walk_stmts(f.body))


def test_decl_initializer_becomes_assignment():
    prog = core("void main() { int x = 5; assert(x == 5); }")
    ss = stmts_of(prog)
    assert isinstance(ss[0], ast.Assign)


def test_atomic_body_lowered_in_place():
    prog = core("struct S { int a; } void main() { S *e; e = malloc(S); atomic { e->a = e->a + 1; } }")
    at = next(s for s in stmts_of(prog) if isinstance(s, ast.Atomic))
    assert all(is_core_stmt(s) for s in at.body.stmts)


def test_call_args_flattened():
    prog = core("void f(int x) { } int g; void main() { f(g + 1); }")
    ss = stmts_of(prog)
    call = next(s for s in ss if isinstance(s, ast.Call))
    assert all(ast.is_atom(a) for a in call.args)


def test_call_result_into_complex_lvalue():
    prog = core(
        "struct S { int a; } int f() { return 3; } void main() { S *p; p = malloc(S); p->a = f(); }"
    )
    ss = stmts_of(prog)
    call = next(s for s in ss if isinstance(s, ast.Call))
    assert isinstance(call.lhs, ast.Var)
    stores = [s for s in ss if isinstance(s, ast.Assign) and isinstance(s.lhs, ast.Field)]
    assert stores


def test_return_expression_flattened():
    prog = core("int f() { int x; x = 1; return x + 1; } void main() { int y; y = f(); }")
    f = prog.functions["f"]
    ret = f.body.stmts[-1]
    assert isinstance(ret, ast.Return) and ast.is_atom(ret.value)


def test_address_of_field_is_core():
    prog = core(
        "struct S { int a; } void main() { S *p; int *q; p = malloc(S); q = &p->a; }"
    )
    ss = stmts_of(prog)
    addr = [s for s in ss if isinstance(s, ast.Assign) and isinstance(s.rhs, ast.Unary) and s.rhs.op == "&"]
    assert addr


def test_deref_store_is_core():
    prog = core("void main() { int x; int *p; p = &x; *p = 7; }")
    ss = stmts_of(prog)
    store = ss[-1]
    assert isinstance(store.lhs, ast.Unary) and store.lhs.op == "*"
    assert ast.is_atom(store.rhs)


def test_sid_preserved_for_simple_statement():
    prog = parse("int g; void main() { g = 1 + 2; }")
    orig_sid = prog.functions["main"].body.stmts[0].sid
    lowered = lower_program(prog)
    last = lowered.functions["main"].body.stmts[-1]
    assert last.sid == orig_sid


def test_temps_have_unique_names():
    prog = core("int g; void main() { g = (g + 1) * (g + 2) * (g + 3); }")
    names = set(prog.functions["main"].locals)
    assert len(names) == len(prog.functions["main"].locals)


def test_core_form_is_idempotent():
    prog = core("int g; void main() { if (g == 0) { g = g + 1; } }")
    again = lower_program(prog)
    assert is_core_program(again)


def test_bluetooth_lowers_to_core():
    src = """
    struct DEVICE_EXTENSION { int pendingIo; bool stoppingFlag; bool stoppingEvent; }
    bool stopped;
    void main() {
      DEVICE_EXTENSION *e;
      e = malloc(DEVICE_EXTENSION);
      e->pendingIo = 1;
      e->stoppingFlag = false;
      e->stoppingEvent = false;
      stopped = false;
      async BCSP_PnpStop(e);
      BCSP_PnpAdd(e);
    }
    void BCSP_PnpAdd(DEVICE_EXTENSION *e) {
      int status;
      status = BCSP_IoIncrement(e);
      if (status == 0) { assert(!stopped); }
      BCSP_IoDecrement(e);
    }
    void BCSP_PnpStop(DEVICE_EXTENSION *e) {
      e->stoppingFlag = true;
      BCSP_IoDecrement(e);
      assume(e->stoppingEvent);
      stopped = true;
    }
    int BCSP_IoIncrement(DEVICE_EXTENSION *e) {
      if (e->stoppingFlag) { return -1; }
      atomic { e->pendingIo = e->pendingIo + 1; }
      return 0;
    }
    void BCSP_IoDecrement(DEVICE_EXTENSION *e) {
      int pendingIo;
      atomic { e->pendingIo = e->pendingIo - 1; pendingIo = e->pendingIo; }
      if (pendingIo == 0) { e->stoppingEvent = true; }
    }
    """
    prog = core(src)
    assert len(prog.functions) == 5
