"""Differential property tests: the Bebop tabulation engine against the
explicit boolean-program executor on random programs.

The two implementations share nothing but the IR, so agreement on random
inputs is strong evidence for both — in particular for the summary
tabulation, whose reuse logic is the subtle part.
"""

from hypothesis import given, settings, strategies as st

from repro.seqcheck.bebop import check_boolean_program, find_error_trace
from repro.seqcheck.boolprog import (
    BAnd,
    BAssert,
    BAssign,
    BAssume,
    BCall,
    BConst,
    BGoto,
    BNondet,
    BNot,
    BOr,
    BProc,
    BProgram,
    BReturn,
    BSkip,
    BVar,
)

GLOBALS = ["g0", "g1"]


@st.composite
def bexpr(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        choice = draw(st.integers(0, 3))
        if choice == 0:
            return BConst(draw(st.booleans()))
        if choice == 1:
            return BVar(draw(st.sampled_from(GLOBALS)))
        if choice == 2:
            return BNondet()
        return BNot(BVar(draw(st.sampled_from(GLOBALS))))
    op = draw(st.sampled_from(["and", "or", "not"]))
    if op == "not":
        return BNot(draw(bexpr(depth + 1)))
    a = draw(bexpr(depth + 1))
    b = draw(bexpr(depth + 1))
    return BAnd(a, b) if op == "and" else BOr(a, b)


@st.composite
def bstmt(draw, labels, procs):
    choice = draw(st.integers(0, 4))
    if choice == 0:
        return BSkip()
    if choice == 1:
        target = draw(st.sampled_from(GLOBALS))
        return BAssign(targets=[target], exprs=[draw(bexpr())])
    if choice == 2:
        return BAssume(cond=draw(bexpr()))
    if choice == 3:
        return BAssert(cond=draw(bexpr()))
    if not procs:
        return BSkip()
    return BCall(proc=draw(st.sampled_from(procs)), args=[], rets=[])


@st.composite
def bprogram(draw):
    helper_body = draw(st.lists(bstmt([], ["leaf"]), min_size=1, max_size=3))
    helper_body.append(BReturn([]))
    leaf_body = draw(st.lists(bstmt([], []), min_size=1, max_size=2))
    # leaves must not call anyone
    leaf_body = [s for s in leaf_body if not isinstance(s, BCall)] or [BSkip()]
    leaf_body.append(BReturn([]))
    main_body = draw(st.lists(bstmt([], ["helper", "leaf"]), min_size=1, max_size=4))
    # optional nondeterministic goto for branch shape
    if draw(st.booleans()):
        main_body = (
            [BGoto(labels=["a", "b"]), BSkip(label="a")]
            + main_body
            + [BGoto(labels=["end"]), BSkip(label="b"), BSkip(label="end")]
        )
    prog = BProgram(globals=list(GLOBALS))
    prog.procs["main"] = BProc("main", body=main_body)
    prog.procs["helper"] = BProc("helper", body=helper_body)
    prog.procs["leaf"] = BProc("leaf", body=leaf_body)
    return prog


@settings(max_examples=60, deadline=None)
@given(bprogram())
def test_bebop_agrees_with_explicit_executor(prog):
    prog.validate()
    tabulated = check_boolean_program(prog)
    explicit_trace = find_error_trace(prog, max_states=200_000)
    assert tabulated.safe == (explicit_trace is None), str(prog)


@settings(max_examples=40, deadline=None)
@given(bprogram())
def test_bebop_is_deterministic(prog):
    r1 = check_boolean_program(prog)
    r2 = check_boolean_program(prog)
    assert r1.safe == r2.safe
    assert r1.path_edges == r2.path_edges


@settings(max_examples=40, deadline=None)
@given(bprogram())
def test_explicit_trace_ends_at_failing_assert(prog):
    trace = find_error_trace(prog)
    if trace is None:
        return
    proc, pc, stmt = trace[-1]
    assert isinstance(stmt, BAssert)
