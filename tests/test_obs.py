"""Unit tests for the observability layer (:mod:`repro.obs`).

Golden-file style: recorder runs use an injected deterministic clock
(one tick per read), so JSONL streams and rendered tables are exact
string matches, not pattern matches.
"""

import json

import pytest

from repro import obs


class ManualClock:
    """Monotonic fake clock: each read advances by ``step``."""

    def __init__(self, step=1.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        t = self.t
        self.t += self.step
        return t


def recorded(clock=None):
    """A fresh recorder plus the nested-span + counter workload used by
    the golden tests: outer(k=1){ inner{} }, then c += 2."""
    rec = obs.Recorder(clock=clock or ManualClock())
    with obs.observing(rec):
        with obs.span("outer", k=1):
            with obs.span("inner"):
                pass
        obs.inc("c", 2)
    return rec


# ---------------------------------------------------------------------------
# Off by default
# ---------------------------------------------------------------------------


def test_null_recorder_is_the_default():
    assert isinstance(obs.current(), obs.NullRecorder)
    assert not obs.current().enabled


def test_null_hooks_do_nothing():
    # spans and counters on the null recorder must be inert no-ops
    with obs.span("anything", field=1) as s:
        obs.inc("counter", 41)
    with obs.span("anything") as s2:
        pass
    assert s is s2  # one shared null span, no allocation per call


def test_observing_installs_and_restores():
    rec = obs.Recorder()
    before = obs.current()
    with obs.observing(rec):
        assert obs.current() is rec
        assert obs.current().enabled
    assert obs.current() is before


def test_observing_nests():
    outer, inner = obs.Recorder(), obs.Recorder()
    with obs.observing(outer):
        with obs.observing(inner):
            obs.inc("x")
        assert obs.current() is outer
    assert inner.counters.get("x") == 1
    assert outer.counters.get("x") == 0


def test_maybe_observing_joins_ambient_recorder():
    ambient = obs.Recorder()
    with obs.observing(ambient):
        rec, ctx = obs.maybe_observing(True)
        assert rec is ambient
        with ctx:  # a no-op: must not reinstall or reset anything
            obs.inc("x")
    assert ambient.counters.get("x") == 1


def test_maybe_observing_fresh_when_enabled():
    rec, ctx = obs.maybe_observing(True)
    assert isinstance(rec, obs.Recorder)
    with ctx:
        assert obs.current() is rec
    assert not obs.current().enabled


def test_maybe_observing_null_when_disabled():
    rec, ctx = obs.maybe_observing(False)
    assert rec is None
    with ctx:
        assert not obs.current().enabled


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


def test_span_nesting_parents_and_ids():
    rec = recorded()
    start = [e for e in rec.events if e["event"] == "span_start"]
    assert [(e["span"], e["id"], e["parent"]) for e in start] == [
        ("outer", 1, None),
        ("inner", 2, 1),
    ]
    assert start[0]["k"] == 1  # span fields land on span_start


def test_span_events_balanced():
    rec = recorded()
    kinds = [e["event"] for e in rec.events]
    assert kinds == ["span_start", "span_start", "span_end", "span_end"]
    ends = {e["id"] for e in rec.events if e["event"] == "span_end"}
    starts = {e["id"] for e in rec.events if e["event"] == "span_start"}
    assert ends == starts


def test_timestamps_monotonic():
    rec = recorded()
    ts = [e["t"] for e in rec.events]
    assert ts == sorted(ts)
    assert all(t >= 0 for t in ts)


def test_out_of_order_exit_raises():
    rec = obs.Recorder(clock=ManualClock())
    with obs.observing(rec):
        a = obs.span("a")
        b = obs.span("b")
        a.__enter__()
        b.__enter__()
        with pytest.raises(RuntimeError, match="out of order"):
            a.__exit__(None, None, None)


def test_exit_without_enter_raises():
    rec = obs.Recorder(clock=ManualClock())
    with pytest.raises(RuntimeError, match="out of order"):
        rec.span("ghost").__exit__(None, None, None)


def test_jsonl_golden():
    rec = recorded()
    assert rec.jsonl() == (
        '{"event": "span_start", "t": 1.0, "span": "outer", "id": 1, "parent": null, "k": 1}\n'
        '{"event": "span_start", "t": 2.0, "span": "inner", "id": 2, "parent": 1}\n'
        '{"event": "span_end", "t": 3.0, "span": "inner", "id": 2, "parent": 1, "wall_s": 1.0}\n'
        '{"event": "span_end", "t": 4.0, "span": "outer", "id": 1, "parent": null, "wall_s": 3.0}\n'
    )


def test_write_jsonl_roundtrip(tmp_path):
    rec = recorded()
    path = tmp_path / "spans.jsonl"
    rec.write_jsonl(str(path))
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines == rec.events


# ---------------------------------------------------------------------------
# Counters
# ---------------------------------------------------------------------------


def test_counters_accumulate():
    c = obs.Counters()
    assert c.inc("a") == 1
    assert c.inc("a", 4) == 5
    assert c.get("a") == 5
    assert c.get("missing") == 0
    assert c.as_dict() == {"a": 5}


def test_counters_reject_negative_increments():
    c = obs.Counters()
    with pytest.raises(ValueError, match="negative"):
        c.inc("a", -1)
    assert c.get("a") == 0  # the failed increment must not land


def test_counters_sorted_export():
    c = obs.Counters()
    c.inc("zeta")
    c.inc("alpha")
    assert list(c.as_dict()) == ["alpha", "zeta"]


# ---------------------------------------------------------------------------
# Metrics snapshots
# ---------------------------------------------------------------------------


def test_metrics_golden():
    m = recorded().metrics()
    assert m == {
        "schema": "kiss-metrics/1",
        "wall_s": 5.0,
        "phases": [
            {"name": "inner", "calls": 1, "wall_s": 1.0, "self_s": 1.0},
            {"name": "outer", "calls": 1, "wall_s": 3.0, "self_s": 2.0},
        ],
        "counters": {"c": 2},
    }
    obs.validate_metrics(m)


def test_metrics_self_time_excludes_children():
    m = recorded().metrics()
    by_name = {row["name"]: row for row in m["phases"]}
    # outer spans ticks 1..4 (wall 3), inner spans ticks 2..3 (wall 1)
    assert by_name["outer"]["self_s"] == by_name["outer"]["wall_s"] - 1.0


def test_metrics_aggregates_repeated_phases():
    rec = obs.Recorder(clock=ManualClock())
    with obs.observing(rec):
        for _ in range(3):
            with obs.span("phase"):
                pass
    row = rec.metrics()["phases"][0]
    assert row["calls"] == 3
    assert row["wall_s"] == 3.0  # three spans, one tick each


def test_metrics_inside_open_span_raises():
    rec = obs.Recorder(clock=ManualClock())
    with obs.observing(rec):
        with obs.span("open"):
            with pytest.raises(RuntimeError, match="open span"):
                rec.metrics()


def test_metrics_is_json_clean():
    m = recorded().metrics()
    assert json.loads(json.dumps(m)) == m


# ---------------------------------------------------------------------------
# Event envelope (shared with campaign telemetry)
# ---------------------------------------------------------------------------


def test_make_event_envelope():
    e = obs.make_event("job_end", 1.23456789, job="j1")
    assert e == {"event": "job_end", "t": 1.234568, "job": "j1"}
    assert list(e)[:2] == ["event", "t"]


# ---------------------------------------------------------------------------
# Schema validation
# ---------------------------------------------------------------------------


def test_validate_metrics_rejects_bad_documents():
    good = recorded().metrics()
    for mutate in (
        lambda d: d.pop("schema"),
        lambda d: d.__setitem__("schema", "kiss-metrics/999"),
        lambda d: d.pop("phases"),
        lambda d: d.__setitem__("wall_s", -1.0),
        lambda d: d["phases"][0].__setitem__("calls", 0),
        lambda d: d["phases"][0].pop("self_s"),
        lambda d: d["counters"].__setitem__("c", -2),
        lambda d: d["counters"].__setitem__("c", "two"),
    ):
        doc = json.loads(json.dumps(good))
        mutate(doc)
        with pytest.raises(obs.SchemaError):
            obs.validate_metrics(doc)


def test_validate_profile_good_and_bad():
    good = obs.profile_document(
        file="x.kp",
        prop="assertion",
        target=None,
        verdict="safe",
        config={"max_ts": 0},
        metrics=recorded().metrics(),
    )
    assert obs.validate_profile(good) is good
    for mutate in (
        lambda d: d.__setitem__("schema", "nope"),
        lambda d: d.__setitem__("prop", "liveness"),
        lambda d: d.__setitem__("verdict", "crashed"),
        lambda d: d.pop("metrics"),
        lambda d: d["metrics"].pop("counters"),
    ):
        doc = json.loads(json.dumps(good))
        mutate(doc)
        with pytest.raises(obs.SchemaError):
            obs.validate_profile(doc)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def test_render_metrics_golden():
    out = obs.render_metrics(recorded().metrics())
    assert out == "\n".join(
        [
            "Per-phase breakdown",
            "Phase  Calls  Wall(s)  Self(s)  % of run",
            "-----  -----  -------  -------  --------",
            "inner  1      1.0000   1.0000   20.0%   ",
            "outer  1      3.0000   2.0000   60.0%   ",
            "",
            "Counters",
            "Counter  Value",
            "-------  -----",
            "c        2    ",
        ]
    )


def test_render_metrics_empty_run():
    rec = obs.Recorder(clock=ManualClock())
    out = obs.render_metrics(rec.metrics())
    assert "(no spans recorded)" in out
    assert "Counters" not in out  # no counter table without counters
