"""Unit tests for the concurrent interleaving checker."""

import pytest

from repro.lang import parse_core
from repro.concheck import check_concurrent
from repro.seqcheck.trace import CheckStatus


def run(src, **kw):
    return check_concurrent(parse_core(src), **kw)


def test_sequential_subset_still_works():
    r = run("int g; void main() { g = 1; assert(g == 1); }")
    assert r.is_safe


def test_async_spawns_thread():
    r = run(
        """
        int done;
        void worker() { done = 1; }
        void main() { async worker(); }
        """
    )
    assert r.is_safe


def test_race_on_global_found_by_interleaving():
    # worker may run between main's write and assert
    r = run(
        """
        int g;
        void worker() { g = 2; }
        void main() { async worker(); g = 1; assert(g == 1); }
        """
    )
    assert r.is_error
    assert r.violation_kind == "assert"


def test_error_requires_specific_interleaving():
    # only the schedule worker-after-set finds the bug
    r = run(
        """
        bool flag;
        void worker() { assert(!flag); }
        void main() { async worker(); flag = true; }
        """
    )
    assert r.is_error


def test_no_error_when_threads_disjoint():
    r = run(
        """
        int a; int b;
        void worker() { b = 1; assert(b == 1); }
        void main() { async worker(); a = 1; assert(a == 1); }
        """
    )
    assert r.is_safe


def test_assume_blocks_until_other_thread_sets():
    r = run(
        """
        bool e; int g;
        void worker() { e = true; }
        void main() { async worker(); assume(e); g = 1; assert(g == 1); }
        """
    )
    assert r.is_safe


def test_assume_never_satisfied_is_quiescent_not_error():
    r = run(
        """
        bool e;
        void main() { assume(e); assert(false); }
        """
    )
    assert r.is_safe


def test_atomic_region_is_indivisible():
    # without atomicity, the interleaved increments could be lost and the
    # assert could fail; with atomic blocks the result is exact
    r = run(
        """
        int g;
        void worker() { atomic { g = g + 1; } }
        void main() {
          async worker();
          atomic { g = g + 1; }
          assume(g == 2);
          assert(g == 2);
        }
        """
    )
    assert r.is_safe


def test_nonatomic_increment_loses_updates():
    # the classic lost-update: t reads g, worker writes, t writes back
    r = run(
        """
        int g;
        void worker() { int t; t = g; t = t + 1; g = t; }
        void main() {
          int t;
          async worker();
          t = g; t = t + 1; g = t;
          assert(g == 2);
        }
        """
    )
    # main can assert before worker even ran (g == 1), or updates are lost
    assert r.is_error


def test_lock_mutual_exclusion():
    r = run(
        """
        int lock; int g;
        void acquire() { atomic { assume(lock == 0); lock = 1; } }
        void release() { atomic { lock = 0; } }
        void worker() { acquire(); g = g + 1; release(); }
        void main() {
          async worker();
          acquire();
          g = g + 1;
          release();
          assume(g == 2);
          assert(g == 2);
        }
        """
    )
    assert r.is_safe


def test_lock_protects_invariant():
    # under the lock, nobody else can interleave between write and assert
    r = run(
        """
        int lock; int g;
        void acquire() { atomic { assume(lock == 0); lock = 1; } }
        void release() { atomic { lock = 0; } }
        void worker() { acquire(); g = 2; release(); }
        void main() {
          async worker();
          acquire();
          g = 1;
          assert(g == 1);
          release();
        }
        """
    )
    assert r.is_safe


def test_unlocked_version_of_same_program_fails():
    r = run(
        """
        int g;
        void worker() { g = 2; }
        void main() {
          async worker();
          g = 1;
          assert(g == 1);
        }
        """
    )
    assert r.is_error


def test_trace_has_thread_ids():
    r = run(
        """
        bool flag;
        void worker() { assert(!flag); }
        void main() { async worker(); flag = true; }
        """
    )
    assert r.is_error
    tids = {s.tid for s in r.trace}
    assert 0 in tids and 1 in tids


def test_three_threads():
    r = run(
        """
        int g;
        void w1() { atomic { g = g + 1; } }
        void w2() { atomic { g = g + 1; } }
        void main() {
          async w1(); async w2();
          assume(g == 2);
          assert(g == 2);
        }
        """
    )
    assert r.is_safe


def test_context_bound_prunes_deep_interleavings():
    # The error needs: main sets flag, worker observes it (switch 1),
    # main resumes and reaches the assert (switch 2).  With a one-switch
    # budget main can never resume after worker runs, so the program is
    # (unsoundly) reported safe — exactly the paper's coverage trade-off.
    src = """
        bool flag; int g;
        void worker() { if (flag) { g = 1; } }
        void main() {
          async worker();
          flag = true;
          flag = false;
          assume(g == 1);
          assert(false);
        }
        """
    r1 = run(src, context_bound=1)
    assert r1.is_safe
    r2 = run(src, context_bound=2)
    assert r2.is_error
    r3 = run(src)
    assert r3.is_error


def test_state_budget_exhaustion():
    r = run(
        """
        int g;
        void worker() { iter { g = g + 1; } }
        void main() { async worker(); iter { g = g - 1; } }
        """,
        max_states=100,
    )
    assert r.exhausted


def test_spawned_thread_gets_arguments():
    r = run(
        """
        struct S { int a; }
        void worker(S *p) { assert(p->a == 5); }
        void main() { S *e; e = malloc(S); e->a = 5; async worker(e); }
        """
    )
    assert r.is_safe


# -- invisible-transition compression (partial-order-style reduction) -----------


def test_compression_preserves_verdicts():
    sources = [
        """
        int g;
        void worker() { int t; t = g; t = t + 1; g = t; }
        void main() { int t; async worker(); t = g; t = t + 1; g = t; assert(g == 2); }
        """,
        """
        int lock; int g;
        void acquire() { atomic { assume(lock == 0); lock = 1; } }
        void release() { atomic { lock = 0; } }
        void worker() { acquire(); g = 2; release(); }
        void main() { async worker(); acquire(); g = 1; assert(g == 1); release(); }
        """,
        "int g; void w() { g = 2; } void main() { async w(); g = 1; assert(g == 1); }",
        "void main() { assert(true); }",
    ]
    for src in sources:
        full = run(src)
        compressed = run(src, compress_invisible=True)
        assert full.status == compressed.status, src


def test_compression_reduces_states():
    # heavy local-temp traffic: compression must shrink the state space
    src = """
    int g;
    void worker() { int a; int b; a = 1; b = a + 1; a = b * 2; b = a - 1; g = b; }
    void main() { int a; int b; async worker(); a = 2; b = a + 3; a = b; g = a; }
    """
    full = run(src)
    compressed = run(src, compress_invisible=True)
    assert compressed.stats.states < full.stats.states


def test_compression_does_not_hide_thread_local_violations():
    src = """
    void main() { int a; a = 1; a = a - 1; assert(a == 1); }
    """
    assert run(src, compress_invisible=True).is_error


def test_compression_equivalence_random_programs():
    from hypothesis import given, settings, strategies as st

    stmt = st.tuples(
        st.integers(0, 3), st.sampled_from(["g0", "g1"]), st.integers(0, 2)
    ).map(
        lambda t: {
            0: f"{t[1]} = {t[2]};",
            1: f"{t[1]} = {t[1]} + 1;",
            2: f"assume({t[1]} == {t[2]});",
            3: f"assert({t[1]} != {t[2]});",
        }[t[0]]
    )

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(stmt, min_size=1, max_size=3),
        st.lists(stmt, min_size=1, max_size=3),
    )
    def prop(worker, main):
        src = (
            "int g0; int g1;\n"
            "void worker() { int t; t = 1; t = t + 1; " + " ".join(worker) + " }\n"
            "void main() { int t; async worker(); t = 2; t = t * 3; "
            + " ".join(main)
            + " }"
        )
        full = run(src, max_states=50_000)
        reduced = run(src, compress_invisible=True, max_states=50_000)
        assert full.status == reduced.status, src

    prop()


# -- deadlock detection (SPIN-style invalid end states) ----------------------------


def test_ab_ba_lock_deadlock_detected():
    src = """
    int lockA; int lockB; int g;
    void acquire(int *l) { atomic { assume(*l == 0); *l = 1; } }
    void release(int *l) { atomic { *l = 0; } }
    void worker() { acquire(&lockB); acquire(&lockA); g = 1; release(&lockA); release(&lockB); }
    void main() {
      async worker();
      acquire(&lockA);
      acquire(&lockB);
      g = 2;
      release(&lockB);
      release(&lockA);
    }
    """
    r = run(src, detect_deadlocks=True)
    assert r.is_error
    assert r.violation_kind == "deadlock"
    assert "blocked" in r.message


def test_consistent_lock_order_no_deadlock():
    src = """
    int lockA; int lockB; int g;
    void acquire(int *l) { atomic { assume(*l == 0); *l = 1; } }
    void release(int *l) { atomic { *l = 0; } }
    void worker() { acquire(&lockA); acquire(&lockB); g = 1; release(&lockB); release(&lockA); }
    void main() {
      async worker();
      acquire(&lockA);
      acquire(&lockB);
      g = 2;
      release(&lockB);
      release(&lockA);
    }
    """
    assert run(src, detect_deadlocks=True).is_safe


def test_deadlock_detection_off_by_default():
    src = "bool never; void main() { assume(never); }"
    assert run(src).is_safe
    r = run(src, detect_deadlocks=True)
    assert r.is_error and r.violation_kind == "deadlock"


def test_terminated_program_is_not_a_deadlock():
    assert run("void main() { skip; }", detect_deadlocks=True).is_safe
