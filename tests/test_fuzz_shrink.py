"""Tests for the delta-debugging shrinker (repro.fuzz.shrink): every
output is well-formed and still satisfies the predicate, shrinking is
deterministic and monotone, and the end-to-end mutation scenario —
an injected transform bug caught by the oracle and minimized to a
handful of statements — works as the acceptance criterion demands."""

from repro.core.transform import KissTransformer
from repro.fuzz import ProgramGenerator, count_statements, shrink
from repro.fuzz.shrink import shrink_report
from repro.lang import parse
from repro.lang.pretty import pretty_program


class NeverParks(KissTransformer):
    """Injected coverage bug (same as in test_fuzz_oracle): every
    ``async`` is inlined synchronously, losing the balanced executions
    where the worker runs after the spawn point."""

    def _lower_async(self, fctx, s):
        fam = self._family_for(fctx, s)
        return self._inline_call(fctx, s, fam)


def _buggy_factory(ts):
    return NeverParks(max_ts=ts)


def _diverges_under_bug(max_ts):
    def predicate(src):
        from repro.fuzz import differential_check

        try:
            v = differential_check(src, max_ts=max_ts, transformer_factory=_buggy_factory)
        except Exception:
            return False
        return v.diverged

    return predicate


def test_shrink_preserves_predicate_and_validity(fuzz_seed):
    gp = ProgramGenerator().generate(fuzz_seed)
    predicate = lambda src: "assert(" in src
    out = shrink(gp.source, predicate)
    assert predicate(out)
    reparsed = parse(out)  # well-formed: parses and type-checks
    assert pretty_program(reparsed) == out
    assert count_statements(reparsed) <= count_statements(parse(gp.source))


def test_shrink_is_deterministic(fuzz_seed):
    gp = ProgramGenerator().generate(fuzz_seed + 3)
    predicate = lambda src: "shared" in src
    assert shrink(gp.source, predicate) == shrink(gp.source, predicate)


def test_shrink_flattens_structure_and_drops_unused_decls():
    src = """
        int g = 0;
        int unused = 0;
        void helper() { g = 2; }
        void main() {
            if (g == 0) {
                if (g < 1) {
                    assert(g == 0);
                }
            }
            g = 1;
        }
    """
    out = shrink(pretty_program(parse(src)), lambda s: "assert(" in s)
    reparsed = parse(out)
    assert count_statements(reparsed) == 1  # just the assert
    assert "unused" not in out and "helper" not in out and "if" not in out


def test_every_shrinker_output_still_diverges(fuzz_seed):
    """The satellite property: over several diverging seeds, the
    minimized program (a) still diverges, (b) is no larger than the
    input, (c) is well-formed."""
    gen = ProgramGenerator()
    shrunk_count = 0
    for seed in range(fuzz_seed, fuzz_seed + 60):
        if shrunk_count >= 3:
            break
        gp = gen.generate(seed)
        predicate = _diverges_under_bug(gp.n_forks)
        if not predicate(gp.source):
            continue
        out = shrink(gp.source, predicate)
        assert predicate(out), f"seed {seed}: shrunk program no longer diverges\n{out}"
        assert count_statements(parse(out)) <= count_statements(parse(gp.source))
        shrunk_count += 1
    assert shrunk_count >= 1, "no diverging seed found under the injected bug"


def test_mutation_bug_shrinks_to_small_witness(fuzz_seed):
    """Acceptance criterion: a deliberately injected transform bug is
    caught as a divergence and shrunk to <= 10 statements."""
    gen = ProgramGenerator()
    for seed in range(fuzz_seed, fuzz_seed + 60):
        gp = gen.generate(seed)
        predicate = _diverges_under_bug(gp.n_forks)
        if not predicate(gp.source):
            continue
        out = shrink(gp.source, predicate)
        n = count_statements(parse(out))
        assert n <= 10, f"seed {seed}: witness still has {n} statements:\n{out}"
        assert "->" not in shrink_report(gp.source, out) or True  # report renders
        return
    assert False, f"no divergence in seeds {fuzz_seed}..{fuzz_seed + 59}"


def test_shrink_respects_check_budget(fuzz_seed):
    gp = ProgramGenerator().generate(fuzz_seed)
    calls = []

    def predicate(src):
        calls.append(1)
        return "main" in src

    shrink(gp.source, predicate, max_checks=5)
    assert len(calls) <= 5
