"""Backend parity under observation: both sequential backends agree on
verdicts for three pinned concurrent programs, and each produces its
complete metric set.

The pinned set mixes corpus and hand-written programs because the CEGAR
stack covers the scalar fragment only (driver programs use pointers)
and its refinement diverges — by design, cost is property-dependent —
on several ``tests/fuzz_corpus`` entries.  These three resolve quickly
under both backends and cover both verdicts.
"""

import json
from pathlib import Path

import pytest

from repro import obs
from repro.core.checker import Kiss
from repro.lang import parse

CORPUS = Path(__file__).parent / "fuzz_corpus"

#: name -> (source, max_ts, expected verdict)
PROGRAMS = {
    "delayed-worker.kp": (None, None, "error"),  # loaded from the fuzz corpus
    "bound-error": (
        """
        int x;
        void w() { assert(x < 2); }
        void main() { async w(); x = 2; }
        """,
        1,
        "error",
    ),
    "handoff-safe": (
        """
        int data; bool ready;
        void w() { assume(ready); assert(data == 5); }
        void main() { data = 5; ready = true; async w(); }
        """,
        1,
        "safe",
    ),
}

#: Every observed run of a backend must produce at least these phases
#: and counters — a partial metric set means an instrumentation point
#: was dropped.
REQUIRED = {
    "explicit": (
        {"check", "transform", "cfg", "explicit"},
        {"states_explored", "transitions"},
    ),
    "cegar": (
        {"check", "transform", "cfg", "cegar", "abstract", "bebop"},
        {"cegar_iterations", "sat_calls", "bebop_summaries", "bebop_path_edges"},
    ),
}


def _program(name):
    source, max_ts, expected = PROGRAMS[name]
    if source is None:
        manifest = {
            e["file"]: e
            for e in json.loads((CORPUS / "manifest.json").read_text())["programs"]
        }
        source = (CORPUS / name).read_text()
        max_ts = manifest[name]["max_ts"]
        assert manifest[name]["sequential"] == expected
    return source, max_ts, expected


def _observed_check(name, backend):
    source, max_ts, _ = _program(name)
    kiss = Kiss(max_ts=max_ts, backend=backend, observe=True)
    return kiss.check_assertions(parse(source))


def test_pinned_set_covers_both_verdicts():
    assert {expected for _, _, expected in PROGRAMS.values()} == {"safe", "error"}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_backends_agree_with_complete_metrics(name):
    _, _, expected = _program(name)
    results = {}
    for backend, (phases, counters) in REQUIRED.items():
        r = _observed_check(name, backend)
        obs.validate_metrics(r.metrics)
        got_phases = {row["name"] for row in r.metrics["phases"]}
        missing = phases - got_phases
        assert not missing, f"{name}/{backend}: missing phases {sorted(missing)}"
        missing = {c for c in counters if r.metrics["counters"].get(c, 0) < 1}
        assert not missing, f"{name}/{backend}: missing counters {sorted(missing)}"
        results[backend] = r

    verdicts = {b: r.verdict for b, r in results.items()}
    assert verdicts["explicit"] == verdicts["cegar"] == expected, f"{name}: {verdicts}"


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_backend_wall_clock_accounted(name):
    """Every phase's wall clock fits inside the enclosing check span."""
    r = _observed_check(name, "explicit")
    by_name = {row["name"]: row for row in r.metrics["phases"]}
    check = by_name["check"]
    for row in r.metrics["phases"]:
        if row["name"] != "check":
            assert row["wall_s"] <= check["wall_s"] + 1e-6, row


SAFE_PROGRAMS = sorted(n for n, (_, _, v) in PROGRAMS.items() if v == "safe")


@pytest.mark.parametrize("name", SAFE_PROGRAMS)
def test_backends_emit_cross_validated_witnesses(name):
    """The witness column of the parity table: both backends certify the
    same safe programs, each in its own certificate kind, and both
    certificates pass the independent validator."""
    from repro.witness.validate import validate_witness_doc

    source, max_ts, _ = _program(name)
    kinds = {}
    for backend in sorted(REQUIRED):
        r = Kiss(max_ts=max_ts, backend=backend, witness=True).check_assertions(
            parse(source))
        assert r.verdict == "safe", f"{name}/{backend}: {r.verdict}"
        assert r.witness is not None, f"{name}/{backend}: safe without witness"
        report = validate_witness_doc(r.witness)
        assert report.status == "certified", f"{name}/{backend}: {report}"
        kinds[backend] = r.witness["kind"]
    assert kinds == {"cegar": "predicate-invariant", "explicit": "reached-set"}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_witness_emission_leaves_verdict_and_metrics_intact(name):
    """witness=True is an execution option: the verdict (and for error
    programs, the trace) must match the plain run exactly."""
    source, max_ts, expected = _program(name)
    plain = Kiss(max_ts=max_ts).check_assertions(parse(source))
    with_w = Kiss(max_ts=max_ts, witness=True).check_assertions(parse(source))
    assert plain.verdict == with_w.verdict == expected
    assert plain.error_kind == with_w.error_kind
    if expected != "safe":
        assert with_w.witness is None
