"""Property tests for the sequential checker's reductions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfg.build import build_program_cfg
from repro.lang import parse_core
from repro.seqcheck.explicit import SequentialChecker, check_sequential

pytestmark = pytest.mark.slow  # heavy property-based suite; deselect with -m "not slow"


stmt = st.tuples(
    st.integers(0, 4), st.sampled_from(["g0", "g1"]), st.integers(0, 2)
).map(
    lambda t: {
        0: f"{t[1]} = {t[2]};",
        1: f"{t[1]} = {t[1]} + 1;",
        2: f"assume({t[1]} == {t[2]});",
        3: f"assert({t[1]} != {t[2]});",
        4: f"if ({t[1]} == {t[2]}) {{ {t[1]} = {t[2]} + 1; }}",
    }[t[0]]
)


@st.composite
def seq_program(draw):
    body = draw(st.lists(stmt, min_size=1, max_size=5))
    helper = draw(st.lists(stmt, min_size=0, max_size=3))
    pieces = ["int g0; int g1;"]
    if helper:
        pieces.append("void helper() { " + " ".join(helper) + " }")
        body.insert(draw(st.integers(0, len(body))), "helper();")
    pieces.append("void main() { " + " ".join(body) + " }")
    return "\n".join(pieces)


def _check(src, compress):
    pcfg = build_program_cfg(parse_core(src))
    return SequentialChecker(pcfg, max_states=20_000, compress_chains=compress).check()


@settings(max_examples=40, deadline=None)
@given(seq_program())
def test_chain_compression_preserves_verdicts(src):
    full = _check(src, compress=False)
    reduced = _check(src, compress=True)
    assert full.status == reduced.status, src


@settings(max_examples=25, deadline=None)
@given(seq_program())
def test_chain_compression_never_increases_states(src):
    full = _check(src, compress=False)
    reduced = _check(src, compress=True)
    assert reduced.stats.states <= full.stats.states, src


@settings(max_examples=25, deadline=None)
@given(seq_program())
def test_chain_compression_preserves_error_traces(src):
    """Compressed runs must report the same failing statement (over the
    same parsed program — statement ids are per-parse)."""
    pcfg = build_program_cfg(parse_core(src))
    full = SequentialChecker(pcfg, max_states=20_000, compress_chains=False).check()
    reduced = SequentialChecker(pcfg, max_states=20_000, compress_chains=True).check()
    if not (full.is_error and reduced.is_error):
        return
    assert full.trace[-1].origin.sid == reduced.trace[-1].origin.sid


@settings(max_examples=20, deadline=None)
@given(seq_program())
def test_checker_idempotent(src):
    r1 = check_sequential(parse_core(src), max_states=20_000)
    r2 = check_sequential(parse_core(src), max_states=20_000)
    assert r1.status == r2.status
    assert r1.stats.states == r2.stats.states
