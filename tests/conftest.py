"""Test-suite configuration: a hypothesis profile without deadlines,
plus the ``--fuzz-seed`` option for the differential-fuzzing tests.

Model-checking calls inside property tests have heavy-tailed latency
(state-space size depends on the drawn program), so wall-clock deadlines
would be flaky; example counts are kept low in the tests themselves.

``--fuzz-seed N`` offsets the base seed of every seeded fuzz test
(generator round-trips, oracle batches, the mutation test).  Each test
derives its per-program seeds from this base and includes the failing
seed in its assertion message, so a failure report always names the
exact ``python -m repro fuzz --seed`` reproduction.
"""

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "kiss-repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.load_profile("kiss-repro")


def pytest_addoption(parser):
    parser.addoption(
        "--fuzz-seed",
        type=int,
        default=0,
        help="base seed for the seeded fuzz tests (failures report the "
        "exact per-program seed for replay)",
    )


@pytest.fixture
def fuzz_seed(request):
    """The base seed the fuzz tests start from (CLI: ``--fuzz-seed``)."""
    return request.config.getoption("--fuzz-seed")
