"""Test-suite configuration: a hypothesis profile without deadlines.

Model-checking calls inside property tests have heavy-tailed latency
(state-space size depends on the drawn program), so wall-clock deadlines
would be flaky; example counts are kept low in the tests themselves.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "kiss-repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.load_profile("kiss-repro")
