"""Fine-grained unit tests for the predicate-abstraction machinery."""

import pytest

from repro.lang import parse_core
from repro.lang.parser import parse_expr
from repro.seqcheck.abstraction import Abstractor, PredicateSet
from repro.seqcheck.boolprog import BAnd, BConst, BNot, BOr, BVar, eval_bexpr


def make_abstractor(src, global_preds):
    prog = parse_core(src)
    preds = PredicateSet(global_preds=[parse_expr(p) for p in global_preds])
    return prog, preds, Abstractor(prog, preds)


def cover(a, prog, goal, scope_texts, bvars=None):
    scope = [parse_expr(t) for t in scope_texts]
    bvars = bvars or [f"G{i}" for i in range(len(scope))]
    types = {g.name: g.type for g in prog.globals.values()}
    return a.weakest_cover(parse_expr(goal), scope, bvars, types)


def models_of(bexpr, names):
    """All assignments over `names` making `bexpr` true."""
    out = []
    for bits in range(1 << len(names)):
        env = {n: bool((bits >> i) & 1) for i, n in enumerate(names)}
        if True in eval_bexpr(bexpr, env):
            out.append(tuple(sorted(env.items())))
    return out


SRC = "int x; int y; bool b; void main() { }"


def test_tautology_covered_by_true():
    prog, preds, a = make_abstractor(SRC, [])
    c = cover(a, prog, "x == x", ["x == 0"])
    assert models_of(c, ["G0"]) == models_of(BConst(True), ["G0"])


def test_direct_predicate_covered_by_itself():
    prog, preds, a = make_abstractor(SRC, [])
    c = cover(a, prog, "x == 1", ["x == 1", "y == 2"])
    # exactly the G0-true assignments
    assert set(models_of(c, ["G0", "G1"])) == {
        (("G0", True), ("G1", False)),
        (("G0", True), ("G1", True)),
    }


def test_implied_predicate_covered():
    prog, preds, a = make_abstractor(SRC, [])
    # x == 1 implies x > 0
    c = cover(a, prog, "x > 0", ["x == 1"])
    assert (("G0", True),) in models_of(c, ["G0"])


def test_negation_covers():
    prog, preds, a = make_abstractor(SRC, [])
    # !(x == 1) does NOT imply x != 1... it does. check cube with negative literal
    c = cover(a, prog, "x != 1", ["x == 1"])
    assert (("G0", False),) in models_of(c, ["G0"])
    assert (("G0", True),) not in models_of(c, ["G0"])


def test_conjunction_needs_two_predicates():
    prog, preds, a = make_abstractor(SRC, [])
    # x > 0 && x < 2 implies x == 1 (8-bit ints)
    c = cover(a, prog, "x == 1", ["x > 0", "x < 2"])
    ms = models_of(c, ["G0", "G1"])
    assert (("G0", True), ("G1", True)) in ms
    assert (("G0", True), ("G1", False)) not in ms


def test_uncoverable_goal_yields_false():
    prog, preds, a = make_abstractor(SRC, [])
    c = cover(a, prog, "x == 5", ["b"])  # unrelated predicate
    assert models_of(c, ["G0"]) == []


def test_subsumed_cubes_skipped():
    prog, preds, a = make_abstractor(SRC, [])
    # G0 alone implies the goal; cubes containing G0 must not be re-added
    c = cover(a, prog, "x >= 1", ["x == 1", "y == 0"])
    # semantics: true exactly when G0 true (G1 irrelevant)
    ms = set(models_of(c, ["G0", "G1"]))
    assert (("G0", True), ("G1", False)) in ms
    assert (("G0", True), ("G1", True)) in ms
    assert (("G0", False), ("G1", True)) not in ms


def test_provenance_links_bool_stmts_to_core_stmts():
    prog, preds, a = make_abstractor("int g; void main() { g = 1; assert(g == 1); }", ["g == 1"])
    a.abstract()
    stmts = [s for s in a.provenance.values() if s is not None]
    texts = {str(s) for s in stmts}
    assert any("g = 1" in t for t in texts)
    assert any("assert" in t for t in texts)


def test_entailment_cache_reused():
    prog, preds, a = make_abstractor(SRC, [])
    cover(a, prog, "x == 1", ["x == 1"])
    hits_before = len(a._entail_cache)
    cover(a, prog, "x == 1", ["x == 1"])
    assert len(a._entail_cache) == hits_before  # all queries cached
