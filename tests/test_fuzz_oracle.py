"""Tests for the differential oracle (repro.fuzz.oracle): agreement on
generated batches, correct classification of both divergence
directions under deliberately injected transformation bugs, and the
inconclusive path."""

import pytest

from repro.core.transform import KissTransformer
from repro.fuzz import (
    INCOMPLETE,
    UNSOUND,
    ProgramGenerator,
    differential_check,
    differential_check_source,
)
from repro.lang.ast import Assert, Assume, Block, BoolLit
from repro.rounds import RoundRobinTransformer


class NeverParks(KissTransformer):
    """Injected coverage bug: every ``async`` is inlined synchronously,
    so the sequential program can never delay a forked thread past the
    spawn point — balanced executions where the worker runs later are
    lost (an :data:`INCOMPLETE` divergence)."""

    def _lower_async(self, fctx, s):
        fam = self._family_for(fctx, s)
        return self._inline_call(fctx, s, fam)


class NoConsistency(RoundRobinTransformer):
    """Injected unsoundness in the rounds pipeline: the consistency
    epilogue's ``assume`` statements are dropped, so inconsistent
    snapshot guesses survive to the error check and report executions
    no round-robin schedule can produce."""

    def _make_check_entry(self, out):
        decl = super()._make_check_entry(out)
        decl.body = Block([s for s in decl.body.stmts if not isinstance(s, Assume)])
        return decl


class PhantomError(KissTransformer):
    """Injected unsoundness: an ``assert(false)`` branch is offered
    before every statement, so the sequential program goes wrong even
    when no concurrent execution does (an :data:`UNSOUND` divergence)."""

    def access_check_branches(self, fctx, stmt, out_pre):
        return [Block([Assert(BoolLit(False))])]


def test_oracle_agrees_on_generated_batch(fuzz_seed):
    gen = ProgramGenerator()
    for seed in range(fuzz_seed, fuzz_seed + 25):
        gp = gen.generate(seed)
        v = differential_check(gp.program, max_ts=gp.n_forks)
        assert v.conclusive, f"seed {seed} inconclusive: {v.describe()}"
        assert not v.diverged, f"seed {seed} diverged: {v.describe()}\n{gp.source}"


@pytest.mark.slow
def test_oracle_agrees_on_large_batch(fuzz_seed):
    gen = ProgramGenerator()
    for seed in range(fuzz_seed, fuzz_seed + 150):
        gp = gen.generate(seed)
        v = differential_check(gp.program, max_ts=gp.n_forks)
        assert not v.diverged, f"seed {seed} diverged: {v.describe()}\n{gp.source}"


def test_oracle_agreement_includes_error_programs(fuzz_seed):
    """The batch must exercise both agreement kinds — safe/safe and
    error/error — or the oracle is vacuous."""
    gen = ProgramGenerator()
    verdicts = set()
    for seed in range(fuzz_seed, fuzz_seed + 40):
        gp = gen.generate(seed)
        v = differential_check(gp.program, max_ts=gp.n_forks)
        verdicts.add((v.concurrent, v.sequential))
    assert ("safe", "safe") in verdicts
    assert ("error", "error") in verdicts


def test_known_delayed_worker_error():
    """The canonical Theorem 1 witness: the worker's assertion only
    fails when the worker runs *after* main's write — a balanced
    execution that parking (max_ts >= 1) must simulate."""
    src = """
        int shared = 0;
        void w0() { assert(shared != 1); }
        void main() { async w0(); shared = 1; }
    """
    v = differential_check_source(src, max_ts=1)
    assert v.concurrent == "error" and v.sequential == "error"
    assert not v.diverged


def test_injected_coverage_bug_is_caught(fuzz_seed):
    gen = ProgramGenerator()
    factory = lambda ts: NeverParks(max_ts=ts)
    found = None
    for seed in range(fuzz_seed, fuzz_seed + 60):
        gp = gen.generate(seed)
        v = differential_check(gp.program, max_ts=gp.n_forks, transformer_factory=factory)
        if v.diverged:
            found = (seed, v)
            break
    assert found is not None, (
        f"no divergence in seeds {fuzz_seed}..{fuzz_seed + 59} under NeverParks"
    )
    assert found[1].divergence == INCOMPLETE, found[1].describe()


def test_injected_unsoundness_is_caught(fuzz_seed):
    gen = ProgramGenerator()
    factory = lambda ts: PhantomError(max_ts=ts)
    for seed in range(fuzz_seed, fuzz_seed + 20):
        gp = gen.generate(seed)
        v = differential_check(gp.program, max_ts=gp.n_forks, transformer_factory=factory)
        if v.concurrent == "safe":
            assert v.diverged and v.divergence == UNSOUND, (
                f"seed {seed}: {v.describe()}"
            )
            return
    pytest.fail("no concurrently-safe program drawn in 20 seeds")


def test_race_mode_replays_reported_races(fuzz_seed):
    gen = ProgramGenerator()
    race_seen = False
    for seed in range(fuzz_seed, fuzz_seed + 12):
        gp = gen.generate(seed)
        v = differential_check(
            gp.program, max_ts=gp.n_forks, race_global=gp.config.race_global
        )
        assert not v.diverged, f"seed {seed}: {v.describe()}"
        if v.race_verdict is not None:
            race_seen = race_seen or v.race_verdict == "error"
    assert race_seen, "no race ever reported on the distinguished location"


# -- rounds mode -------------------------------------------------------------------

THREE_SWITCH = """
    int x; int y;
    void w() { assume(x == 1); y = 1; assume(x == 2); y = 2; }
    void main() {
      async w();
      x = 1; assume(y == 1);
      x = 2; assume(y == 2);
      assert(false);
    }
"""

#: w can only observe x == 1 (the store of 3 is dead before the spawn),
#: but 3 is in the guess domain — only the consistency epilogue keeps
#: the rounds pipeline from reporting it.
DEAD_STORE = """
    int x;
    void w() { assert(x != 3); }
    void main() { x = 3; x = 1; async w(); }
"""


def test_rounds_mode_records_coverage_gap_not_divergence():
    """A concurrent error outside the K=2 budget is the rounds
    transform's *expected* incompleteness, not an oracle finding."""
    v = differential_check_source(THREE_SWITCH, max_ts=1, strategy="rounds", rounds=2)
    assert v.concurrent == "error" and v.sequential == "safe"
    assert not v.diverged
    assert v.coverage_gap
    assert v.describe().startswith("coverage-gap:")


def test_rounds_mode_gap_closes_at_k3():
    # the K=3 transform needs ~53k explicit states, just over the default budget
    v = differential_check_source(
        THREE_SWITCH, max_ts=1, strategy="rounds", rounds=3, max_states=200_000
    )
    assert v.concurrent == "error" and v.sequential == "error"
    assert not v.diverged and not v.coverage_gap


def test_rounds_mode_catches_injected_unsoundness():
    factory = lambda ts: NoConsistency(rounds=2, max_ts=ts)
    from repro.lang import parse

    v = differential_check(
        parse(DEAD_STORE), max_ts=1, strategy="rounds", rounds=2,
        transformer_factory=factory,
    )
    assert v.concurrent == "safe"
    assert v.diverged and v.divergence == UNSOUND, v.describe()


def test_rounds_mode_agrees_on_generated_batch(fuzz_seed):
    gen = ProgramGenerator()
    for seed in range(fuzz_seed, fuzz_seed + 10):
        gp = gen.generate(seed)
        v = differential_check(gp.program, max_ts=gp.n_forks, strategy="rounds", rounds=2)
        if not v.conclusive:
            continue  # full interleavings are pricier than balanced ones
        assert not v.diverged, f"seed {seed} diverged: {v.describe()}\n{gp.source}"


def test_incomplete_divergence_probed_with_rounds(fuzz_seed):
    """KISS-mode INCOMPLETE findings carry the K=3 triage verdict: the
    NeverParks mutant loses exactly the park-the-worker executions,
    which three rounds recover."""
    gen = ProgramGenerator()
    factory = lambda ts: NeverParks(max_ts=ts)
    for seed in range(fuzz_seed, fuzz_seed + 60):
        gp = gen.generate(seed)
        v = differential_check(gp.program, max_ts=gp.n_forks, transformer_factory=factory)
        if v.diverged:
            assert v.divergence == INCOMPLETE
            assert v.closed_by_rounds is True, v.describe()
            assert "closed by rounds K=3: yes" in v.describe()
            return
    pytest.fail(f"no divergence in seeds {fuzz_seed}..{fuzz_seed + 59} under NeverParks")


def test_rounds_mode_rejects_race_global():
    with pytest.raises(ValueError):
        differential_check_source(
            DEAD_STORE, max_ts=1, strategy="rounds", race_global="x"
        )


def test_tiny_budget_is_inconclusive_not_divergent():
    src = """
        int shared = 0;
        void w0() { shared = shared + 1; assert(shared != 2); }
        void main() { async w0(); shared = shared + 1; }
    """
    v = differential_check_source(src, max_ts=1, max_states=5)
    assert not v.conclusive
    assert not v.diverged
    assert "resource-bound" in (v.concurrent, v.sequential)
