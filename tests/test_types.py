"""Unit tests for the type and well-formedness checker."""

import pytest

from repro.lang import parse
from repro.lang.types import KissTypeError


def ok(src):
    return parse(src)


def bad(src):
    with pytest.raises(KissTypeError):
        parse(src)


def test_simple_ok():
    prog = ok("int g; void main() { g = 1; }")
    assert prog.globals["g"].type.__class__.__name__ == "IntType"


def test_undefined_variable():
    bad("void main() { x = 1; }")


def test_assign_bool_to_int():
    bad("int g; void main() { g = true; }")


def test_assign_int_to_bool():
    bad("bool g; void main() { g = 0; }")


def test_arith_requires_ints():
    bad("bool b; int g; void main() { g = b + 1; }")


def test_logical_requires_bools():
    bad("int g; bool b; void main() { b = g && true; }")


def test_comparison_yields_bool():
    ok("int g; bool b; void main() { b = g < 3; }")


def test_eq_incompatible_types():
    bad("int g; bool b; bool c; void main() { c = g == b; }")


def test_null_compares_with_pointer():
    ok("struct S { int a; } void main() { S *p; p = null; assert(p == null); }")


def test_null_not_comparable_with_int():
    bad("int g; bool b; void main() { b = g == null; }")


def test_deref_non_pointer():
    bad("int g; int h; void main() { g = *h; }")


def test_deref_pointer_ok():
    ok("void main() { int x; int *p; p = &x; x = *p; }")


def test_address_of_rvalue():
    bad("void main() { int *p; p = &(1 + 2); }")


def test_arrow_on_non_pointer():
    bad("struct S { int a; } int g; void main() { g = g->a; }")


def test_unknown_field():
    bad("struct S { int a; } void main() { S *p; p = malloc(S); p->b = 1; }")


def test_unknown_struct_in_malloc():
    bad("void main() { int *p; p = malloc(T); }")


def test_malloc_type_must_match():
    bad("struct S { int a; } struct T { int a; } void main() { S *p; p = malloc(T); }")


def test_struct_valued_local_rejected():
    bad("struct S { int a; } void main() { S s; }")


def test_struct_valued_global_rejected():
    bad("struct S { int a; } S g; void main() { }")


def test_struct_valued_field_rejected():
    bad("struct S { int a; } struct T { S inner; } void main() { }")


def test_pointer_field_ok():
    ok("struct S { int a; } struct T { S *inner; } void main() { }")


def test_assert_requires_bool():
    bad("int g; void main() { assert(g); }")


def test_if_condition_must_be_bool():
    bad("int g; void main() { if (g) { g = 1; } }")


def test_while_condition_must_be_bool():
    bad("int g; void main() { while (g) { g = 1; } }")


def test_call_arity_mismatch():
    bad("void f(int x) { } void main() { f(); }")


def test_call_arg_type_mismatch():
    bad("void f(int x) { } void main() { f(true); }")


def test_call_result_type_mismatch():
    bad("int f() { return 1; } bool g; void main() { g = f(); }")


def test_void_call_used_as_value():
    bad("void f() { } int g; void main() { g = f(); }")


def test_missing_return_value():
    bad("int f() { return; } void main() { f(); }")


def test_void_returns_value():
    bad("void f() { return 1; } void main() { f(); }")


def test_missing_main():
    bad("void notmain() { }")


def test_atomic_no_calls():
    bad("void f() { } void main() { atomic { f(); } }")


def test_atomic_no_async():
    bad("void f() { } void main() { atomic { async f(); } }")


def test_atomic_no_return():
    bad("void main() { atomic { return; } }")


def test_atomic_no_nested_atomic():
    bad("void main() { atomic { atomic { skip; } } }")


def test_atomic_plain_ok():
    ok("int g; void main() { atomic { g = g + 1; } }")


def test_function_name_is_func_value():
    ok("void f() { } void main() { func v; v = f; v(); }")


def test_indirect_call_with_args_rejected():
    bad("void f(int x) { } void main() { func v; v = f; v(1); }")


def test_async_direct_with_args_ok():
    ok("struct S { int a; } void f(S *p) { } void main() { S *e; e = malloc(S); async f(e); }")


def test_async_undefined_function():
    bad("void main() { async nothere(); }")


def test_duplicate_local_different_type():
    bad("void main() { int x; bool x; }")


def test_local_shadows_function_rejected():
    bad("void f() { } void main() { int f; }")


def test_locals_table_populated():
    prog = ok("void main() { int x; bool y; }")
    assert prog.functions["main"].locals == {
        "x": prog.functions["main"].locals["x"],
        "y": prog.functions["main"].locals["y"],
    }
    assert str(prog.functions["main"].locals["x"]) == "int"


def test_global_initializer_type_checked():
    bad("int g = true; void main() { }")


def test_nondet_is_bool():
    ok("bool b; void main() { b = nondet; }")
    bad("int g; void main() { g = nondet; }")
