"""Edge cases across the stack: odd-but-legal programs, boundary
conditions, and determinism guarantees."""

import pytest

from repro.concheck import check_concurrent
from repro.core.checker import Kiss
from repro.lang import parse_core
from repro.seqcheck.explicit import check_sequential


def seq(src, **kw):
    return check_sequential(parse_core(src), **kw)


# -- determinism ---------------------------------------------------------------


def test_checking_is_deterministic():
    src = """
    int g;
    void w() { g = g + 1; }
    void main() { async w(); choice { g = 1; } or { g = 2; } assert(g < 5); }
    """
    rs = [Kiss(max_ts=1, map_traces=False).check_assertions(parse_core(src)) for _ in range(3)]
    assert len({r.verdict for r in rs}) == 1
    assert len({r.backend_result.stats.states for r in rs}) == 1


def test_bfs_traces_are_minimal():
    # the shortest path to the violation skips the loop entirely
    src = """
    int g;
    void main() {
      iter { g = g + 1; assume(g < 2); }
      assert(g != 0);
    }
    """
    r = seq(src)
    assert r.is_error
    # shortest trace: iter exits immediately, condition eval, assert
    assert len(r.trace) <= 4


# -- odd but legal programs ---------------------------------------------------------


def test_empty_main():
    assert seq("void main() { }").is_safe


def test_deeply_nested_blocks():
    src = "int g; void main() { { { { g = 1; } } } assert(g == 1); }"
    assert seq(src).is_safe


def test_choice_with_single_branch():
    assert seq("int g; void main() { choice { g = 1; } assert(g == 1); }").is_safe


def test_nested_choice_and_iter():
    src = """
    int g;
    void main() {
      iter {
        choice { g = g + 1; assume(g < 3); } or { skip; }
      }
      assert(g <= 2);
    }
    """
    assert seq(src).is_safe


def test_self_recursive_function_with_base_case():
    src = """
    int depth(int n) {
      if (n == 0) { return 0; }
      int d;
      d = depth(n - 1);
      return d + 1;
    }
    void main() { int x; x = depth(7); assert(x == 7); }
    """
    assert seq(src).is_safe


def test_mutual_recursion():
    src = """
    bool is_even(int n) { if (n == 0) { return true; } bool r; r = is_odd(n - 1); return r; }
    bool is_odd(int n) { if (n == 0) { return false; } bool r; r = is_even(n - 1); return r; }
    void main() { bool e; e = is_even(6); assert(e); }
    """
    assert seq(src).is_safe


def test_pointer_to_pointer():
    src = """
    void main() {
      int x; int *p; int **pp;
      p = &x;
      pp = &p;
      **pp = 5;
      assert(x == 5);
    }
    """
    # note: **pp = 5 needs lowering of a double deref store
    assert seq(src).is_safe


def test_pointer_comparison():
    src = """
    struct S { int a; }
    void main() {
      S *p; S *q;
      p = malloc(S);
      q = p;
      assert(p == q);
      q = malloc(S);
      assert(p != q);
    }
    """
    assert seq(src).is_safe


def test_dangling_pointer_to_dead_frame_detected():
    src = """
    int* leak() { int local; return &local; }
    void main() { int *p; int v; p = leak(); v = *p; }
    """
    r = seq(src)
    assert r.is_error
    assert r.violation_kind == "dangling"


def test_function_value_stored_in_struct_field():
    src = """
    struct S { func handler; }
    int hit;
    void on_event() { hit = 1; }
    void main() {
      S *s; func h;
      s = malloc(S);
      s->handler = on_event;
      h = s->handler;
      h();
      assert(hit == 1);
    }
    """
    assert seq(src).is_safe


def test_spawn_same_function_many_times():
    src = """
    int n;
    void w() { atomic { n = n + 1; } }
    void main() {
      async w(); async w(); async w(); async w();
      assume(n == 4);
      assert(n == 4);
    }
    """
    assert check_concurrent(parse_core(src)).is_safe
    assert Kiss(max_ts=2).check_assertions(parse_core(src)).is_safe


def test_async_inside_loop():
    src = """
    int n; int i;
    void w() { atomic { n = n + 1; } }
    void main() {
      while (i < 3) { async w(); i = i + 1; }
      assume(n == 3);
      assert(n == 3);
    }
    """
    assert Kiss(max_ts=1).check_assertions(parse_core(src)).is_safe


def test_thread_spawning_from_spawned_thread_chain():
    src = """
    int depth;
    void w3() { atomic { depth = depth + 1; } }
    void w2() { async w3(); atomic { depth = depth + 1; } }
    void w1() { async w2(); atomic { depth = depth + 1; } }
    void main() {
      async w1();
      assume(depth == 3);
      assert(depth == 3);
    }
    """
    assert check_concurrent(parse_core(src)).is_safe
    assert Kiss(max_ts=3).check_assertions(parse_core(src)).is_safe


def test_zero_iteration_while():
    assert seq("int g; void main() { while (false) { g = 1; } assert(g == 0); }").is_safe


def test_constant_folding_not_assumed():
    # `1 == 1` must still be evaluated correctly through temps
    assert seq("void main() { assert(1 == 1); }").is_safe
    assert seq("void main() { assert(1 == 2); }").is_error


def test_large_constants():
    assert seq("int g; void main() { g = 1000000 * 1000000; assert(g > 0); }").is_safe


def test_negative_division_chain():
    assert seq("int g; void main() { g = -100 / 7 / -2; assert(g == 7); }").is_safe
