"""Tests for the programmatic ProgramBuilder DSL."""

import pytest

from repro.lang.ast import BOOL, INT, Binary, BoolLit, IntLit, Param, Unary, Var
from repro.lang.builder import ProgramBuilder
from repro.lang.lower import is_core_program
from repro.lang.types import KissTypeError
from repro.seqcheck.explicit import check_sequential
from repro.concheck import check_concurrent


def test_minimal_program():
    b = ProgramBuilder()
    b.function("main").assert_(BoolLit(True))
    prog = b.build()
    assert "main" in prog.functions


def test_build_core_produces_core():
    b = ProgramBuilder()
    b.global_var("g", INT)
    f = b.function("main")
    f.if_(Binary("==", Var("g"), IntLit(0)), [])
    prog = b.build_core()
    assert is_core_program(prog)


def test_builder_typechecks():
    b = ProgramBuilder()
    b.global_var("g", INT)
    b.function("main").assign(Var("g"), BoolLit(True))
    with pytest.raises(KissTypeError):
        b.build()


def test_struct_and_malloc():
    b = ProgramBuilder()
    b.struct("S", {"a": INT})
    from repro.lang.ast import PtrType, StructType

    f = b.function("main")
    f.local("p", PtrType(StructType("S")))
    f.malloc(Var("p"), "S")
    prog = b.build_core()
    r = check_sequential(prog)
    assert r.is_safe


def test_function_with_params_and_return():
    b = ProgramBuilder()
    f = b.function("inc", [Param("x", INT)], INT)
    f.ret(Binary("+", Var("x"), IntLit(1)))
    m = b.function("main")
    m.local("y", INT)
    m.call("inc", [IntLit(41)], lhs=Var("y"))
    m.assert_(Binary("==", Var("y"), IntLit(42)))
    assert check_sequential(b.build_core()).is_safe


def test_async_and_atomic_sugar():
    b = ProgramBuilder()
    b.global_var("g", INT)
    from repro.lang.ast import Assign

    w = b.function("worker")
    w.atomic([Assign(Var("g"), Binary("+", Var("g"), IntLit(1)))])
    m = b.function("main")
    m.async_call("worker")
    m.atomic([Assign(Var("g"), Binary("+", Var("g"), IntLit(1)))])
    m.assume(Binary("==", Var("g"), IntLit(2)))
    m.assert_(Binary("==", Var("g"), IntLit(2)))
    assert check_concurrent(b.build_core()).is_safe


def test_choice_and_iter_sugar():
    b = ProgramBuilder()
    b.global_var("g", INT)
    from repro.lang.ast import Assign

    m = b.function("main")
    m.choice(
        [Assign(Var("g"), IntLit(1))],
        [Assign(Var("g"), IntLit(2))],
    )
    m.assert_(Binary("<=", Var("g"), IntLit(2)))
    assert check_sequential(b.build_core()).is_safe


def test_while_sugar():
    b = ProgramBuilder()
    b.global_var("g", INT)
    from repro.lang.ast import Assign

    m = b.function("main")
    m.while_(Binary("<", Var("g"), IntLit(3)), [Assign(Var("g"), Binary("+", Var("g"), IntLit(1)))])
    m.assert_(Binary("==", Var("g"), IntLit(3)))
    assert check_sequential(b.build_core()).is_safe


def test_custom_entry_point():
    b = ProgramBuilder(entry="start")
    b.function("start").assert_(BoolLit(True))
    prog = b.build()
    assert prog.entry == "start"
    assert check_sequential(b.build_core() if not is_core_program(prog) else prog).is_safe
