"""Pretty-printer tests: output must re-parse to an equivalent program."""

import pytest

from repro.lang import parse, parse_core
from repro.lang.parser import parse_expr
from repro.lang.pretty import pretty_expr, pretty_program


# -- expressions --------------------------------------------------------------


@pytest.mark.parametrize(
    "src",
    [
        "1 + 2 * 3",
        "(1 + 2) * 3",
        "a && b || c",
        "a || b && c",
        "!(a && b)",
        "-x + 1",
        "*p + 1",
        "&x",
        "a->b->c",
        "x == y + 1",
        "a < b && b <= c",
        "x != null",
        "nondet",
        "a - b - c",
        "a - (b - c)",
    ],
)
def test_expr_roundtrip(src):
    e1 = parse_expr(src)
    printed = pretty_expr(e1)
    e2 = parse_expr(printed)
    assert e1 == e2, f"{src!r} -> {printed!r}"


def test_pretty_expr_minimal_parens():
    assert pretty_expr(parse_expr("1 + 2 * 3")) == "1 + 2 * 3"
    assert pretty_expr(parse_expr("(1 + 2) * 3")) == "(1 + 2) * 3"


# -- programs ------------------------------------------------------------------


PROGRAMS = [
    "int g; void main() { g = 1; }",
    "struct S { int a; bool b; } void main() { S *p; p = malloc(S); p->a = 1; }",
    "void main() { if (true) { skip; } else { skip; } }",
    "int g; void main() { while (g < 3) { g = g + 1; } }",
    "int g; void main() { choice { g = 1; } or { g = 2; } }",
    "int g; void main() { iter { g = g + 1; } }",
    "int g; void main() { atomic { g = g + 1; } assert(g == 1); assume(g == 1); }",
    "void w(int x) { } void main() { async w(3); w(4); }",
    "int f(int x) { return x + 1; } void main() { int y; y = f(1); }",
    "int g = 5; bool b = true; void main() { }",
    "void main() { int *p; int x; p = &x; *p = 1; x = *p; }",
]


def _structure(prog):
    return {
        "structs": {n: dict(s.fields) for n, s in prog.structs.items()},
        "globals": {n: str(g.type) for n, g in prog.globals.items()},
        "functions": sorted(prog.functions),
    }


@pytest.mark.parametrize("src", PROGRAMS)
def test_program_roundtrip_structure(src):
    p1 = parse(src)
    printed = pretty_program(p1)
    p2 = parse(printed)
    assert _structure(p1) == _structure(p2), printed


@pytest.mark.parametrize("src", PROGRAMS)
def test_core_program_roundtrip(src):
    """Core programs (with hoisted locals) must also re-parse."""
    p1 = parse_core(src)
    printed = pretty_program(p1)
    p2 = parse(printed)
    assert _structure(p1) == _structure(p2), printed
    # the reparsed program's locals must cover the originals
    for fname, f in p1.functions.items():
        assert set(p2.functions[fname].locals) >= set(f.locals)


def test_roundtrip_preserves_semantics():
    """Print → reparse → check must agree with checking the original."""
    from repro.seqcheck.explicit import check_sequential
    from repro.lang.lower import lower_program

    src = """
    int g;
    void main() {
      g = 3;
      while (g > 0) { g = g - 1; }
      assert(g == 0);
    }
    """
    p1 = parse_core(src)
    r1 = check_sequential(p1)
    p2 = lower_program(parse(pretty_program(p1)))
    r2 = check_sequential(p2)
    assert r1.status == r2.status


def test_transformed_program_prints():
    """Figure 4 output must be printable (used by the CLI and examples)."""
    from repro.core.transform import kiss_transform

    prog = parse_core(
        "bool f; void w() { f = true; } void main() { async w(); assert(!f); }"
    )
    out = kiss_transform(prog, max_ts=1)
    text = pretty_program(out)
    assert "__kiss_schedule" in text
    reparsed = parse(text)
    assert "__kiss_check" in reparsed.functions


def test_roundtrip_random_programs_preserve_verdicts():
    """Print → reparse → re-check random concurrent programs: verdicts
    must survive the round trip."""
    from hypothesis import given, settings, strategies as st
    from repro.core.checker import Kiss
    from repro.lang.lower import lower_program

    stmt = st.tuples(
        st.integers(0, 3), st.sampled_from(["g0", "g1"]), st.integers(0, 2)
    ).map(
        lambda t: {
            0: f"{t[1]} = {t[2]};",
            1: f"{t[1]} = {t[1]} + 1;",
            2: f"assume({t[1]} == {t[2]});",
            3: f"assert({t[1]} != {t[2]});",
        }[t[0]]
    )

    @settings(max_examples=20, deadline=None)
    @given(st.lists(stmt, min_size=1, max_size=3), st.lists(stmt, min_size=1, max_size=3))
    def prop(worker, main):
        src = (
            "int g0; int g1;\n"
            "void worker() { " + " ".join(worker) + " }\n"
            "void main() { async worker(); " + " ".join(main) + " }"
        )
        p1 = parse_core(src)
        r1 = Kiss(max_ts=1, map_traces=False).check_assertions(p1)
        p2 = lower_program(parse(pretty_program(p1)))
        r2 = Kiss(max_ts=1, map_traces=False).check_assertions(p2)
        assert r1.verdict == r2.verdict, src

    prop()
