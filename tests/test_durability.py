"""Durability suite: the write-ahead job journal, crash-recoverable
resume, cooperative cancellation, and hedged retries.

Three layers of tests:

* units — journal lifecycle/replay semantics (terminal precedence, torn
  lines, re-admission), the sentinel-file cancel token, and the worker's
  cancelled outcome;
* in-process integration — first-error cancellation through the
  scheduler and the swarm aggregator, abandoned records on runtime
  close, hedged duplicates of a straggler, and serve-side cancellation
  plus journal-backed restart recovery;
* subprocess chaos — ``kill -9`` (the injected ``engine_crash:kill``
  fault) mid-campaign, then ``--resume``: every admitted job reaches a
  terminal state, verdicts equal the crash-free run, the cache holds
  exactly one entry per key, and a second resume finds nothing to do.

The invariants under test are the docs/ROBUSTNESS.md recovery matrix:
at-least-once execution, exactly-once cache/verdict semantics, and
cancelled work never cached and never counted as a verdict.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import cancel, faults
from repro.campaign import (
    CampaignConfig,
    CampaignScheduler,
    CheckJob,
    JobJournal,
    ResultCache,
    Telemetry,
    cache_key,
    replay_journal,
    run_swarm_campaign,
)
from repro.campaign.runtime import CampaignRuntime
from repro.campaign.worker import execute_job
from repro.faults import FaultPlan, FaultRule
from repro.schemas import validate_journal_record
from repro.serve import CheckService, ServeConfig

pytestmark = pytest.mark.chaos

SRC = """
struct EXT { int a; int b; }
void worker(EXT *e) { e->a = 1; }
void main() {
  EXT *e;
  e = malloc(EXT);
  async worker(e);
  e->a = VALUE;
}
"""

#: ~0.5s of safe explicit-state exploration: the hedge straggler.
SLOW_SRC = """
struct EXT { int a; int b; }
int g;
void w(EXT *e) {
  int i;
  i = 0;
  while (i < 8) { e->a = i; g = g + 1; i = i + 1; }
}
void main() {
  EXT *e;
  e = malloc(EXT);
  async w(e);
  async w(e);
  async w(e);
  async w(e);
  g = 0;
  e->a = 9;
}
"""

CORPUS = Path(__file__).parent / "fuzz_corpus"
TWO_FORKS = (CORPUS / "two-forks-error.kp").read_text()


def batch(n=8):
    """``n`` fast jobs with distinct cache keys: even indices race on
    EXT.a, odd ones are safe on EXT.b (same shape as the chaos suite)."""
    return [
        CheckJob(
            job_id=f"t/{i}",
            driver="t",
            source=SRC.replace("VALUE", str(i + 2)),
            target="EXT.a" if i % 2 == 0 else "EXT.b",
        )
        for i in range(n)
    ]


# -- the journal -------------------------------------------------------------------


def test_journal_lifecycle_and_replay(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = JobJournal(path)
    done, open_, cancelled = batch(3)
    journal.admit(done, cache_key(done), tenant="t0", origin="campaign")
    journal.started(done.job_id, 1)
    journal.done(done.job_id, "error")
    journal.admit(open_, cache_key(open_))
    journal.started(open_.job_id, 1)
    journal.admit(cancelled, cache_key(cancelled), tenant="t2", origin="serve")
    journal.cancelled(cancelled.job_id, "client-cancel")

    plan = replay_journal(path)
    assert (plan.admitted, plan.done, plan.cancelled) == (3, 1, 1)
    assert plan.started_only == 1 and plan.incomplete == 1
    # the replayed job is self-contained: full spec, key, and tenant
    [owed] = plan.jobs
    assert owed.job_id == open_.job_id
    assert owed.source == open_.source and owed.target == open_.target
    assert plan.keys[owed.job_id] == cache_key(open_)
    assert plan.tenants[owed.job_id] is None
    # every line on disk is a valid kiss-journal/1 record
    with open(path) as f:
        for line in f:
            validate_journal_record(json.loads(line))


def test_journal_terminal_precedence_done_beats_cancelled(tmp_path):
    """A late weaker terminal (a hedge loser, a double shutdown) never
    demotes a completed job."""
    path = str(tmp_path / "j.jsonl")
    journal = JobJournal(path)
    job = batch(1)[0]
    journal.admit(job, cache_key(job))
    journal.done(job.job_id, "safe")
    # the in-memory suppressor already drops this; simulate another
    # process racing the append by writing the record by hand
    with open(path, "a") as f:
        f.write(json.dumps({"schema": "kiss-journal/1", "event": "cancelled",
                            "job": job.job_id, "reason": "late", "t": 0.0}) + "\n")
    plan = replay_journal(path)
    assert plan.done == 1 and plan.cancelled == 0 and plan.incomplete == 0


def test_journal_abandoned_jobs_are_re_enqueued(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = JobJournal(path)
    job = batch(1)[0]
    journal.admit(job, cache_key(job))
    journal.abandoned(job.job_id, "fatal: pool broke")
    plan = replay_journal(path)
    assert plan.abandoned == 1
    assert [j.job_id for j in plan.jobs] == [job.job_id]


def test_journal_replay_is_torn_line_and_foreign_schema_tolerant(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = JobJournal(path)
    a, b = batch(2)
    journal.admit(a, cache_key(a))
    journal.done(a.job_id, "safe")
    journal.admit(b, cache_key(b))
    with open(path, "a") as f:
        f.write('{"torn": ')  # SIGKILL mid-append
        f.write('\n{"schema": "other/1", "event": "x"}\n')
    plan = replay_journal(path)
    assert plan.corrupt_lines == 1 and plan.stale_lines == 1
    assert plan.done == 1 and [j.job_id for j in plan.jobs] == [b.job_id]
    # a fresh journal on the same file knows b is still open
    assert JobJournal(path).is_open(b.job_id)


def test_journal_record_validation_rejects_malformed_documents():
    for bad in (
        {"schema": "kiss-journal/1", "event": "exploded", "job": "t/0", "t": 0.0},
        {"schema": "kiss-journal/1", "event": "done", "t": 0.0},  # no job
        {"schema": "kiss-journal/1", "event": "admitted", "job": "t/0", "t": 0.0},
    ):
        with pytest.raises(ValueError):
            validate_journal_record(bad)


def test_journal_append_fault_degrades_to_in_memory_tracking(tmp_path):
    """A failed append (disk full, injected fault) loses durability for
    that record, never correctness: lifecycle tracking survives."""
    path = str(tmp_path / "j.jsonl")
    plan = FaultPlan(rules=[FaultRule(point="journal_append", kind="crash",
                                      hits=(1,))])
    journal = JobJournal(path)
    job = batch(1)[0]
    with faults.plan_context(plan):
        journal.admit(job, cache_key(job))  # the admit append is injected away
        journal.done(job.job_id, "safe")  # still tracked, still lands
    assert journal.write_errors == 1
    assert not journal.is_open(job.job_id)


def test_disabled_journal_never_writes(tmp_path):
    journal = JobJournal(None)
    job = batch(1)[0]
    journal.admit(job, cache_key(job))
    journal.done(job.job_id, "safe")
    assert not journal.enabled and journal.stats() == {"enabled": False, "path": None}


# -- cooperative cancellation ------------------------------------------------------


def test_cancel_token_scope_and_poll(tmp_path):
    token = cancel.CancelToken(str(tmp_path / "tok"))
    with cancel.scope(token):
        for _ in range(cancel.POLL_EVERY):
            cancel.poll()  # not cancelled: the hot loop runs free
        # delivered from "another process": a distinct token object
        cancel.CancelToken(token.path).cancel("first-error")
        with pytest.raises(cancel.Cancelled) as err:
            for _ in range(cancel.POLL_EVERY + 1):
                cancel.poll()
        assert "first-error" in str(err.value)
    cancel.poll()  # no ambient token: a no-op


def test_execute_job_reports_a_cancelled_outcome(tmp_path):
    sentinel = str(tmp_path / "tok")
    cancel.CancelToken(sentinel).cancel("deadline")
    outcome, _ = execute_job(batch(1)[0], cancel_path=sentinel)
    assert outcome["verdict"] == "cancelled"
    assert outcome["detail"].startswith("cancelled")


def test_first_error_cancellation_settles_skips_cache_and_journals(tmp_path):
    """The scheduler's first-error hook: job t/0 errs, every later job
    settles as cancelled, none of them is cached, and the journal holds
    exactly one terminal record per admitted job."""
    jpath = str(tmp_path / "j.jsonl")
    cdir = str(tmp_path / "cache")
    sched = CampaignScheduler(CampaignConfig(jobs=1, cache_dir=cdir,
                                             journal_path=jpath))
    jobs = batch(8)

    def on_result(result):
        if result.verdict == "error":
            sched.request_cancel("first-error")

    results = sched.run(jobs, on_result=on_result)
    assert [r.job_id for r in results] == [j.job_id for j in jobs]
    assert results[0].verdict == "error"
    cancelled = [r for r in results if r.verdict == "cancelled"]
    assert len(cancelled) == 7
    assert all(r.detail.startswith("cancelled") for r in cancelled)
    cache = ResultCache(cdir)
    by_id = {j.job_id: j for j in jobs}
    for r in cancelled:
        assert cache.get(cache_key(by_id[r.job_id])) is None
    plan = replay_journal(jpath)
    assert plan.admitted == 8 and plan.done == 1 and plan.cancelled == 7
    assert plan.incomplete == 0  # a user cancellation is settled, not owed


def test_runtime_close_abandons_open_jobs(tmp_path):
    """A fatal teardown stamps ``abandoned`` on exactly the jobs still
    owed, so a resume re-runs them."""
    jpath = str(tmp_path / "j.jsonl")
    rt = CampaignRuntime(CampaignConfig(jobs=1, journal_path=jpath))
    tel = Telemetry()
    a, b = batch(2)
    key_a, _ = rt.lookup(a, tel)
    key_b, _ = rt.lookup(b, tel)
    rt.submit(a, key_a)
    rt.submit(b, key_b)
    finished = rt.pump(tel)  # serial: settles exactly one job
    assert len(finished) == 1
    for job, key, result in finished:
        rt.record(tel, job, key, result)  # the done record lands here
    rt.close()
    plan = replay_journal(jpath)
    assert plan.admitted == 2 and plan.done == 1 and plan.abandoned == 1
    assert [j.job_id for j in plan.jobs] == [b.job_id]


def test_swarm_first_error_cancels_siblings_but_keeps_the_verdict(tmp_path):
    """First-error swarm: the erring tile wins, every tile after it is
    cancelled (serial order makes that exact), the aggregate error
    still replay-validates, and a later run on the same cache re-checks
    the cancelled tiles fresh — cancellation never poisoned it."""
    cdir = str(tmp_path / "cache")
    jpath = str(tmp_path / "j.jsonl")
    config = CampaignConfig(jobs=1, cache_dir=cdir, journal_path=jpath)
    report = run_swarm_campaign(TWO_FORKS, tiles=6, rounds=3,
                                campaign_config=config, first_error=True)
    assert report.verdict == "error" and report.trace_validated
    cancelled = [r for r in report.results if r.verdict == "cancelled"]
    assert len(cancelled) == len(report.results) - report.witness_tile - 1
    plan = replay_journal(jpath)
    assert plan.cancelled == len(cancelled) and plan.incomplete == 0
    # resume-after-cancel: same tiling, same cache, no first-error
    report2 = run_swarm_campaign(TWO_FORKS, tiles=6, rounds=3,
                                 campaign_config=CampaignConfig(jobs=1, cache_dir=cdir))
    assert report2.verdict == "error"
    assert all(r.verdict != "cancelled" for r in report2.results)
    settled = len(report.results) - len(cancelled)
    assert sum(1 for r in report2.results if r.cache_hit) == settled


# -- hedged retries ----------------------------------------------------------------


@pytest.mark.slow
def test_hedged_retry_duplicates_the_straggler_once(tmp_path):
    """Six fast jobs build the per-driver latency sample; the slow
    seventh trips the p50 cutoff, gets exactly one duplicate, the first
    finisher wins with the true verdict, and the cache holds one entry."""
    cdir = str(tmp_path / "cache")
    sched = CampaignScheduler(CampaignConfig(jobs=2, cache_dir=cdir, hedge=0.5))
    jobs = batch(6) + [CheckJob(job_id="t/slow", driver="t", source=SLOW_SRC,
                                target="EXT.b")]
    tel = Telemetry()
    results = sched.run(jobs, telemetry=tel)
    by_id = {r.job_id: r for r in results}
    assert by_id["t/slow"].verdict == "safe"
    hedges = tel.of_kind("job_hedge")
    assert [e["job"] for e in hedges] == ["t/slow"]
    assert any(e["job"] == "t/slow" and e["reason"] == "hedge-loser"
               for e in tel.of_kind("job_cancelled"))
    # exactly one cache entry for the hedged key, with the winning verdict
    hit = ResultCache(cdir).get(cache_key(jobs[-1]))
    assert hit is not None and hit.verdict == "safe"
    with open(os.path.join(cdir, "results.jsonl")) as f:
        lines = [json.loads(l) for l in f if l.strip()]
    keys = [doc["key"] for doc in lines]
    assert len(keys) == len(set(keys)) == len(jobs)


# -- the service -------------------------------------------------------------------


def test_serve_cancel_before_start_and_conflict_after_done():
    svc = CheckService(ServeConfig(jobs=1, cache_dir=None), start_engine=False)
    try:
        _, doc = svc.submit("t", {"program": SRC.replace("VALUE", "2"),
                                  "prop": "race", "target": "EXT.a"})
        job_id = doc["job"]
        status, cancelled_doc = svc.cancel(job_id)
        assert status == 200 and cancelled_doc["state"] == "cancelled"
        assert svc.cancel("nope/0") is None  # unknown -> a 404 upstream
        svc.pump_once()
        events, finished = svc.events_since(job_id, 0)
        assert finished
        assert [e["event"] for e in events] == ["queued", "cancelled"]
        # a finished job refuses cancellation
        _, doc2 = svc.submit("t", {"program": SRC.replace("VALUE", "3"),
                                   "prop": "race", "target": "EXT.b"})
        svc.pump_once()
        status, _ = svc.cancel(doc2["job"])
        assert status == 409
        assert svc.counts["cancelled"] == 1 and svc.counts["cancel_requests"] == 2
    finally:
        svc.stop()


def test_serve_restart_resumes_owed_jobs_from_the_journal(tmp_path):
    """Crash recovery for the service: three admitted jobs, one done,
    engine killed (simulated by dropping the service unstopped); a
    restarted service with ``resume=True`` answers the done job from
    the cache and re-runs the owed ones under their original ids."""
    cdir, jpath = str(tmp_path / "cache"), str(tmp_path / "j.jsonl")
    svc1 = CheckService(ServeConfig(jobs=1, cache_dir=cdir, journal_path=jpath),
                        start_engine=False)
    ids = []
    for i in range(3):
        _, doc = svc1.submit("t", {"program": SRC.replace("VALUE", str(i + 2)),
                                   "prop": "race", "target": "EXT.b"})
        ids.append(doc["job"])
    svc1.pump_once()  # admits all three to the journal, settles one
    plan = replay_journal(jpath)
    assert plan.admitted == 3 and plan.done == 1 and plan.incomplete == 2
    del svc1  # the crash: no drain, no stop, no abandoned records

    svc2 = CheckService(ServeConfig(jobs=1, cache_dir=cdir, journal_path=jpath,
                                    resume=True), start_engine=False)
    try:
        assert svc2.recovery["incomplete"] == 2
        assert svc2.counts["recovered"] == 2
        for _ in range(8):
            svc2.pump_once()
        # the job settled before the crash is not resurrected: its
        # verdict lives in the cache (a resubmission is a hit)
        assert svc2.get(ids[0]) is None
        status, doc = svc2.submit("t", {"program": SRC.replace("VALUE", "2"),
                                        "prop": "race", "target": "EXT.b"})
        assert status == 200 and doc["result"]["cache"] == "hit"
        # the owed jobs finished under their original ids
        for job_id in ids[1:]:
            doc = svc2.get(job_id)
            assert doc is not None and doc["state"] == "done", job_id
            assert doc["result"]["verdict"] == "safe"
        # exactly-once verdict semantics: the journal is fully settled
        after = replay_journal(jpath)
        assert after.incomplete == 0 and after.done == 3
        # idempotent: a third resume finds nothing owed
        svc3 = CheckService(ServeConfig(jobs=1, cache_dir=cdir, journal_path=jpath,
                                        resume=True), start_engine=False)
        assert svc3.counts["recovered"] == 0 and svc3.recovery["incomplete"] == 0
        svc3.stop()
    finally:
        svc2.stop()


# -- kill -9 and resume (the subprocess acceptance path) ---------------------------


def _campaign(tmp_path, name, *extra):
    """Run one CLI campaign; stdout+stderr go to a file, not a pipe —
    a SIGKILLed parent orphans its pool workers, and inherited pipe
    ends would keep a capture alive long after the kill."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    log = tmp_path / f"{name}.log"
    with open(log, "w") as out:
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "campaign",
             "--drivers", "tracedrv,imca", "--jobs", "2",
             "--cache-dir", str(tmp_path / f"{name}-cache"),
             "--journal", str(tmp_path / f"{name}.jsonl"),
             "--summary-json", str(tmp_path / f"{name}.json"),
             *extra],
            stdout=out, stderr=subprocess.STDOUT, env=env, timeout=300)
    return proc.returncode, log.read_text()


def _verdicts(tmp_path, name):
    """Per-key verdict map from the run's cache (the source of verdict
    truth), plus the summary's verdict tallies."""
    entries = {}
    with open(tmp_path / f"{name}-cache" / "results.jsonl") as f:
        for line in f:
            if line.strip().endswith("}"):
                doc = json.loads(line)
                entries[doc["key"]] = doc["result"]["verdict"]
    with open(tmp_path / f"{name}.json") as f:
        tallies = json.load(f)["verdicts"]
    return entries, tallies


@pytest.mark.slow
def test_kill9_mid_campaign_then_resume_matches_the_crash_free_run(tmp_path):
    """The recovery-matrix acceptance row: SIGKILL the engine mid-run at
    the injected ``engine_crash`` point, resume from the journal, and
    the resumed world is indistinguishable from a crash-free one —
    same verdicts, every admitted job terminal, one cache entry per
    key, and a second resume re-runs nothing."""
    clean_rc, clean_log = _campaign(tmp_path, "clean")
    assert clean_rc in (0, 1, 2), clean_log

    crash_rc, crash_log = _campaign(tmp_path, "crash",
                                    "--inject", "engine_crash:kill:hits=4")
    assert crash_rc == -9, crash_log  # a genuine kill -9
    plan = replay_journal(str(tmp_path / "crash.jsonl"))
    assert plan.admitted > 0 and plan.incomplete > 0

    resumed_rc, resumed_log = _campaign(tmp_path, "crash", "--resume")
    assert resumed_rc == clean_rc, resumed_log
    assert "recovery:" in resumed_log
    assert _verdicts(tmp_path, "crash") == _verdicts(tmp_path, "clean")

    after = replay_journal(str(tmp_path / "crash.jsonl"))
    assert after.incomplete == 0  # every admitted job reached a terminal state
    # exactly one cache entry per key, crash or no crash
    for name in ("clean", "crash"):
        with open(tmp_path / f"{name}-cache" / "results.jsonl") as f:
            keys = [json.loads(l)["key"] for l in f if l.strip().endswith("}")]
        assert len(keys) == len(set(keys)), f"{name}: duplicate cache entries"

    again_rc, again_log = _campaign(tmp_path, "crash", "--resume")
    assert again_rc == clean_rc
    assert "skipped 8/8" in again_log  # pure cache replay: nothing re-checked
    assert replay_journal(str(tmp_path / "crash.jsonl")).incomplete == 0
