"""Unit and property tests for balanced-execution analysis (Section 4.1)."""

from hypothesis import given, strategies as st

from repro.concheck.executions import (
    balanced_prefix_feasible,
    context_switches,
    is_balanced,
    thread_string,
)
from repro.seqcheck.trace import TraceStep
from repro.cfg.graph import Origin


# -- context switches ------------------------------------------------------


def test_context_switches_empty():
    assert context_switches([]) == 0


def test_context_switches_single_thread():
    assert context_switches([0, 0, 0]) == 0


def test_context_switches_alternating():
    assert context_switches([0, 1, 0, 1]) == 3


def test_thread_string_from_trace():
    trace = [TraceStep("f", 0, Origin(), tid=t) for t in (0, 1, 1, 0)]
    assert thread_string(trace) == (0, 1, 1, 0)


# -- balanced strings --------------------------------------------------------


def test_empty_is_balanced():
    assert is_balanced([])


def test_single_thread_balanced():
    assert is_balanced([0, 0, 0])


def test_simple_nested_block():
    # 0 runs, dispatches 1 to completion, resumes
    assert is_balanced([0, 1, 1, 0])


def test_block_without_resume():
    assert is_balanced([0, 0, 1, 1])


def test_two_sibling_blocks():
    assert is_balanced([0, 1, 1, 0, 2, 2, 0])


def test_adjacent_sibling_blocks_without_root_between():
    assert is_balanced([0, 1, 1, 2, 2, 0])


def test_deep_nesting():
    assert is_balanced([0, 1, 2, 2, 1, 0])


def test_interleaving_violating_stack_discipline():
    # 1 and 0 alternate — 0 resumes before 1's block completes and then 1
    # runs again: not schedulable by a stack
    assert not is_balanced([0, 1, 0, 1])


def test_thread_split_across_segments():
    assert not is_balanced([0, 1, 0, 2, 1, 0])


def test_nested_violation():
    # inside 1's block, 2 and 1 alternate improperly
    assert not is_balanced([0, 1, 2, 1, 2, 0])


def test_sibling_blocks_interleaved():
    assert not is_balanced([0, 1, 2, 1, 2, 0])


def test_paper_two_thread_claim():
    """For 2 threads, every execution with at most two context switches is
    balanced (the paper's §2 characterization)."""
    for a in range(1, 4):
        for b in range(1, 4):
            for c in range(0, 4):
                s = [0] * a + [1] * b + [0] * c
                assert context_switches(s) <= 2
                assert is_balanced(s), s


def test_two_threads_three_switches_unbalanced():
    assert not is_balanced([0, 1, 0, 1])
    assert context_switches([0, 1, 0, 1]) == 3


# -- the stack-automaton and the recursive definition agree -------------------


def _stack_accepts(s):
    stack, closed = [], set()
    for sym in s:
        if sym in closed:
            return False
        if stack and stack[-1] == sym:
            continue
        if sym in stack:
            while stack[-1] != sym:
                closed.add(stack.pop())
        else:
            stack.append(sym)
    return True


@given(st.lists(st.integers(min_value=0, max_value=3), max_size=12))
def test_recursive_definition_matches_stack_automaton(s):
    assert is_balanced(s) == _stack_accepts(s)


@given(st.lists(st.integers(min_value=0, max_value=3), max_size=12))
def test_balanced_strings_are_feasible_prefixes(s):
    if is_balanced(s):
        assert balanced_prefix_feasible(s)


@given(st.lists(st.integers(min_value=0, max_value=3), max_size=12))
def test_prefix_feasibility_is_prefix_closed(s):
    if balanced_prefix_feasible(s):
        for i in range(len(s)):
            assert balanced_prefix_feasible(s[:i])


@given(st.lists(st.integers(min_value=0, max_value=2), max_size=10))
def test_unbalanced_extensions_stay_unbalanced(s):
    # is_balanced equals prefix feasibility for complete strings, and an
    # infeasible prefix can never become feasible again
    if not balanced_prefix_feasible(s):
        assert not is_balanced(s + [0])
        assert not is_balanced(s + [99])


def test_single_symbol():
    assert is_balanced([5])
    assert balanced_prefix_feasible([5])


# -- the balanced-only exploration mode ------------------------------------------


def test_balance_state_automaton_steps():
    from repro.concheck.interleave import BalanceState

    s = BalanceState()
    s = s.step(0)
    assert s.stack == (0,)
    s = s.step(1)
    assert s.stack == (0, 1)
    s = s.step(0)  # closes 1's block
    assert s.stack == (0,)
    assert 1 in s.closed
    assert s.step(1) is None  # 1 may never run again


def test_balanced_only_checker_subset_of_full():
    from repro.concheck import check_concurrent
    from repro.lang import parse_core

    # the bug needs an unbalanced schedule (0 1 0 1): full exploration
    # finds it, balanced-only does not
    src = """
    int phase;
    void w() { assume(phase == 1); phase = 2; assume(phase == 3); phase = 4; }
    void main() {
      async w();
      phase = 1;
      assume(phase == 2);
      phase = 3;
      assume(phase == 4);
      assert(false);
    }
    """
    assert check_concurrent(parse_core(src)).is_error
    assert check_concurrent(parse_core(src), balanced_only=True).is_safe


def test_balanced_only_finds_balanced_bugs():
    from repro.concheck import check_concurrent
    from repro.lang import parse_core

    src = """
    int phase;
    void w() { assume(phase == 1); phase = 2; }
    void main() { async w(); phase = 1; assume(phase == 2); assert(false); }
    """
    assert check_concurrent(parse_core(src), balanced_only=True).is_error
