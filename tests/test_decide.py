"""Tests for the bit-blasting decision procedure."""

import pytest
from hypothesis import given, strategies as st

from repro.lang.ast import BOOL, INT, Binary, BoolLit, IntLit, Unary, Var
from repro.seqcheck.decide import DecideError, check_sat, entails

T = {"x": INT, "y": INT, "z": INT, "p": BOOL, "q": BOOL}


def sat(*exprs):
    return check_sat(list(exprs), T)


def test_true_is_sat():
    assert sat(BoolLit(True)) is not None


def test_false_is_unsat():
    assert sat(BoolLit(False)) is None


def test_model_satisfies_equality():
    m = sat(Binary("==", Var("x"), IntLit(5)))
    assert m["x"] == 5


def test_negative_constant():
    m = sat(Binary("==", Var("x"), IntLit(-3)))
    assert m["x"] == -3


def test_contradictory_equalities():
    assert sat(Binary("==", Var("x"), IntLit(1)), Binary("==", Var("x"), IntLit(2))) is None


def test_addition():
    m = sat(
        Binary("==", Var("x"), IntLit(3)),
        Binary("==", Var("y"), Binary("+", Var("x"), IntLit(4))),
    )
    assert m["y"] == 7


def test_subtraction():
    m = sat(Binary("==", Var("y"), Binary("-", IntLit(2), IntLit(5))))
    assert m["y"] == -3


def test_multiplication():
    m = sat(Binary("==", Var("y"), Binary("*", IntLit(3), IntLit(4))))
    assert m["y"] == 12


def test_signed_less_than():
    assert sat(Binary("<", IntLit(-1), IntLit(1))) is not None
    assert sat(Binary("<", IntLit(1), IntLit(-1))) is None


def test_lt_le_gt_ge():
    assert sat(Binary("<=", IntLit(2), IntLit(2))) is not None
    assert sat(Binary("<", IntLit(2), IntLit(2))) is None
    assert sat(Binary(">", IntLit(3), IntLit(2))) is not None
    assert sat(Binary(">=", IntLit(1), IntLit(2))) is None


def test_bool_ops():
    m = sat(Binary("&&", Var("p"), Unary("!", Var("q"))))
    assert m["p"] is True and m["q"] is False


def test_bool_equality():
    assert sat(Binary("==", Var("p"), Unary("!", Var("p")))) is None


def test_int_disequality():
    m = sat(Binary("!=", Var("x"), IntLit(0)))
    assert m["x"] != 0


def test_entails_reflexive():
    e = Binary("==", Var("x"), IntLit(1))
    assert entails([e], e, T)


def test_entails_arithmetic():
    # x == 1 |= x + 1 == 2
    a = Binary("==", Var("x"), IntLit(1))
    c = Binary("==", Binary("+", Var("x"), IntLit(1)), IntLit(2))
    assert entails([a], c, T)


def test_entails_ordering():
    # x < 2 && x > 0 |= x == 1
    a1 = Binary("<", Var("x"), IntLit(2))
    a2 = Binary(">", Var("x"), IntLit(0))
    c = Binary("==", Var("x"), IntLit(1))
    assert entails([a1, a2], c, T)
    assert not entails([a1], c, T)


def test_overflow_wraps_at_width():
    # 8-bit two's complement: 127 + 1 == -128
    m = check_sat(
        [Binary("==", Var("x"), Binary("+", IntLit(127), IntLit(1)))], T, width=8
    )
    assert m["x"] == -128


def test_unsupported_division_rejected():
    with pytest.raises(DecideError):
        check_sat([Binary("==", Var("x"), Binary("/", Var("y"), IntLit(2)))], T)


@given(st.integers(-20, 20), st.integers(-20, 20))
def test_addition_matches_python(a, b):
    m = check_sat(
        [Binary("==", Var("x"), Binary("+", IntLit(a), IntLit(b)))], T, width=8
    )
    expected = a + b
    # wrap to 8-bit two's complement
    wrapped = ((expected + 128) % 256) - 128
    assert m["x"] == wrapped


@given(st.integers(-11, 11), st.integers(-11, 11))
def test_comparison_matches_python(a, b):
    is_sat = check_sat([Binary("<", IntLit(a), IntLit(b))], T) is not None
    assert is_sat == (a < b)
