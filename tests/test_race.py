"""Unit tests for the Figure 5 race instrumentation and the Kiss API."""

import pytest

from repro.core.checker import Kiss
from repro.core.race import RaceTarget, RaceTransformer, statement_accesses
from repro.core import names
from repro.lang import ast, parse_core
from repro.lang.lower import is_core_program
from repro.lang.types import check_program
from repro.drivers.bluetooth import (
    DEVICE_EXTENSION,
    bluetooth_fixed_program,
    bluetooth_program,
)


RACY_GLOBAL = """
int g;
void worker() { g = 2; }
void main() { async worker(); g = 1; }
"""

LOCKED_GLOBAL = """
int lock; int g;
void acquire() { atomic { assume(lock == 0); lock = 1; } }
void release() { atomic { lock = 0; } }
void worker() { acquire(); g = 2; release(); }
void main() { async worker(); acquire(); g = 1; release(); }
"""


# -- access extraction ---------------------------------------------------------


def stmts(src, fn="main"):
    return parse_core(src).functions[fn].body.stmts


def test_accesses_of_global_write():
    [s] = stmts("int g; void main() { g = 1; }")
    assert ("w", "var", "g") in statement_accesses(s)


def test_accesses_of_binop_reads_and_write():
    ss = stmts("int a; int b; int c; void main() { c = a + b; }")
    acc = statement_accesses(ss[-1])
    assert ("r", "var", "a") in acc and ("r", "var", "b") in acc
    assert ("w", "var", "c") in acc


def test_accesses_of_field_load():
    ss = stmts("struct S { int a; } int g; void main() { S *p; p = malloc(S); g = p->a; }")
    load = next(s for s in ss if isinstance(s, ast.Assign) and isinstance(s.rhs, ast.Field))
    acc = statement_accesses(load)
    assert ("r", "field", ("p", "a")) in acc
    assert ("r", "var", "p") in acc


def test_accesses_of_deref_store():
    ss = stmts("void main() { int x; int *p; p = &x; *p = 1; }")
    store = ss[-1]
    acc = statement_accesses(store)
    assert ("w", "deref", "p") in acc


def test_address_of_does_not_read():
    ss = stmts("int g; void main() { int *p; p = &g; }")
    acc = statement_accesses(ss[-1])
    assert ("r", "var", "g") not in acc


# -- transformation shape ---------------------------------------------------------


def test_race_transform_typechecks():
    prog = parse_core(RACY_GLOBAL)
    out = RaceTransformer(RaceTarget.global_var("g")).transform(prog)
    assert is_core_program(out)
    check_program(out)
    assert names.ACCESS_VAR in out.globals
    assert names.TARGET_VAR in out.globals
    assert names.CHECK_R_FN in out.functions
    assert names.CHECK_W_FN in out.functions


def test_field_target_transform_typechecks():
    out = RaceTransformer(
        RaceTarget.field_of(DEVICE_EXTENSION, "stoppingFlag")
    ).transform(bluetooth_program())
    assert is_core_program(out)
    check_program(out)
    assert names.ALLOC_SEEN in out.globals


def test_unknown_target_rejected():
    from repro.core.transform import TransformError

    with pytest.raises(TransformError):
        RaceTransformer(RaceTarget.global_var("nope")).transform(parse_core(RACY_GLOBAL))
    with pytest.raises(TransformError):
        RaceTransformer(RaceTarget.field_of("S", "x")).transform(parse_core(RACY_GLOBAL))


def test_alias_pruning_reduces_checks():
    src = """
    struct S { int a; int b; }
    int unrelated;
    void worker(S *p) { p->a = 1; unrelated = 3; }
    void main() { S *e; e = malloc(S); async worker(e); e->a = 2; unrelated = 4; }
    """
    prog = parse_core(src)
    t_all = RaceTransformer(RaceTarget.field_of("S", "a"), use_alias_analysis=False)
    t_all.transform(prog)
    t_pruned = RaceTransformer(RaceTarget.field_of("S", "a"), use_alias_analysis=True)
    t_pruned.transform(prog)
    assert t_pruned.checks_emitted <= t_all.checks_emitted
    assert t_pruned.checks_pruned > 0


# -- behaviour -----------------------------------------------------------------------


def test_write_write_race_on_global_detected():
    r = Kiss().check_race(parse_core(RACY_GLOBAL), RaceTarget.global_var("g"))
    assert r.is_error and r.is_race


def test_lock_protected_global_is_race_free():
    r = Kiss().check_race(parse_core(LOCKED_GLOBAL), RaceTarget.global_var("g"))
    assert r.is_safe


def test_read_write_race_detected():
    src = """
    int g; int h;
    void worker() { h = g; }
    void main() { async worker(); g = 1; }
    """
    r = Kiss().check_race(parse_core(src), RaceTarget.global_var("g"))
    assert r.is_error and r.is_race


def test_read_read_is_not_a_race():
    src = """
    int g; int a; int b;
    void worker() { a = g; }
    void main() { async worker(); b = g; }
    """
    r = Kiss().check_race(parse_core(src), RaceTarget.global_var("g"))
    assert r.is_safe


def test_race_through_pointer_alias():
    src = """
    int g;
    void worker(int *p) { *p = 2; }
    void main() { int *q; q = &g; async worker(q); g = 1; }
    """
    r = Kiss().check_race(parse_core(src), RaceTarget.global_var("g"))
    assert r.is_error and r.is_race


def test_no_race_when_pointer_points_elsewhere():
    src = """
    int g; int other;
    void worker(int *p) { *p = 2; }
    void main() { int *q; q = &other; async worker(q); g = 1; }
    """
    r = Kiss().check_race(parse_core(src), RaceTarget.global_var("g"))
    assert r.is_safe


def test_single_thread_no_race():
    src = "int g; void main() { g = 1; g = 2; }"
    r = Kiss().check_race(parse_core(src), RaceTarget.global_var("g"))
    assert r.is_safe


def test_accesses_inside_atomic_not_checked():
    # both accesses atomic: Figure 5 does not instrument atomic bodies
    src = """
    int g;
    void worker() { atomic { g = 2; } }
    void main() { async worker(); atomic { g = 1; } }
    """
    r = Kiss().check_race(parse_core(src), RaceTarget.global_var("g"))
    assert r.is_safe


# -- the paper's §2.2 result -------------------------------------------------------------


def test_bluetooth_stoppingFlag_race_found_at_ts0():
    """Section 2.2: ts size 0 is enough to expose the stoppingFlag race."""
    r = Kiss(max_ts=0).check_race(
        bluetooth_program(), RaceTarget.field_of(DEVICE_EXTENSION, "stoppingFlag")
    )
    assert r.is_error and r.is_race


def test_bluetooth_race_trace_has_two_threads():
    r = Kiss(max_ts=0).check_race(
        bluetooth_program(), RaceTarget.field_of(DEVICE_EXTENSION, "stoppingFlag")
    )
    accesses = r.concurrent_trace.access_steps()
    assert len(accesses) == 2
    assert accesses[0].tid != accesses[1].tid


def test_bluetooth_per_field_results():
    """Race on stoppingFlag; pendingIo and stoppingEvent have conflicting
    accesses too (the paper reports races on this driver's fields)."""
    results = Kiss(max_ts=0).check_races_on_struct(bluetooth_program(), DEVICE_EXTENSION)
    assert results["stoppingFlag"].is_race
    # pendingIo accesses are all inside atomic blocks: no race reported
    assert results["pendingIo"].is_safe


# -- §2.3 / §6: assertion checking needs ts = 1 ---------------------------------------------


def test_bluetooth_assertion_missed_at_ts0():
    r = Kiss(max_ts=0).check_assertions(bluetooth_program())
    assert r.is_safe


def test_bluetooth_assertion_found_at_ts1():
    r = Kiss(max_ts=1).check_assertions(bluetooth_program())
    assert r.is_error
    assert r.error_kind == "assertion"


def test_bluetooth_fixed_driver_is_clean_at_ts1():
    r = Kiss(max_ts=1).check_assertions(bluetooth_fixed_program())
    assert r.is_safe


def test_kiss_result_summary_strings():
    r = Kiss(max_ts=0).check_race(parse_core(RACY_GLOBAL), RaceTarget.global_var("g"))
    assert "race" in r.summary()
    safe = Kiss().check_race(parse_core(LOCKED_GLOBAL), RaceTarget.global_var("g"))
    assert "safe" in safe.summary()


# -- §6.1: benign-race annotations (the paper's future-work feature) -----------


def test_benign_block_parses_and_marks():
    prog = parse_core("int g; void main() { benign { g = 1; } g = 2; }")
    stmts = prog.functions["main"].body.stmts
    assert stmts[0].kiss_benign
    assert not stmts[1].kiss_benign


def test_benign_annotation_suppresses_race():
    src = """
    int g;
    void worker() { g = 2; }
    void main() { async worker(); benign { g = 1; } }
    """
    # unannotated conflict in worker vs annotated write in main: the
    # annotated side is not recorded, so no race is reported
    r = Kiss().check_race(parse_core(src), RaceTarget.global_var("g"))
    assert r.is_safe


def test_benign_annotation_must_cover_one_side_only_if_truly_benign():
    src = """
    int g; int h;
    void worker() { benign { g = 2; } h = g; }
    void main() { async worker(); g = 1; }
    """
    # the unannotated read (h = g) still races with main's write
    r = Kiss().check_race(parse_core(src), RaceTarget.global_var("g"))
    assert r.is_error


def test_fakemodem_annotated_variant_clean():
    from repro.drivers.fakemodem import fakemodem_annotated_program, fakemodem_program

    unannotated = Kiss().check_race(
        fakemodem_program(), RaceTarget.field_of("DEVICE_EXTENSION", "OpenCount")
    )
    assert unannotated.is_race
    annotated = Kiss().check_race(
        fakemodem_annotated_program(), RaceTarget.field_of("DEVICE_EXTENSION", "OpenCount")
    )
    assert annotated.is_safe


def test_benign_survives_lowering_of_compound_statements():
    prog = parse_core(
        "int g; void main() { benign { if (g == 0) { g = g + 1; } } }"
    )
    from repro.lang.ast import walk_stmts, Block

    marked = [s for s in walk_stmts(prog.functions["main"].body)
              if not isinstance(s, Block) and s.kiss_benign]
    assert marked, "lowered statements must inherit the benign mark"
