"""Unit tests for the fault-injection subsystem (repro.faults), the
crash-safe io primitives (repro.ioutil), the bounded canonical-form
memo, and the kiss-campaign/1 summary document."""

import json
import os
import time

import pytest

from repro import faults
from repro.campaign import JobResult, summary_document, validate_summary
from repro.campaign.cache import _LRU, CANONICAL_MEMO_CAP, _canonical_memo, canonical_program_text
from repro.faults import FaultPlan, FaultRule, InjectedFault
from repro.ioutil import atomic_write_json, atomic_write_text, locked_append

pytestmark = pytest.mark.chaos


@pytest.fixture(autouse=True)
def no_leftover_plan():
    """Every test starts and ends with injection disabled."""
    assert faults.installed() is None
    yield
    faults.install(None)


# -- rules and matching ------------------------------------------------------------


def test_rule_validation():
    with pytest.raises(ValueError):
        FaultRule("no_such_point", "crash")
    with pytest.raises(ValueError):
        FaultRule("mid_check", "no_such_kind")
    FaultRule("*", "crash")  # wildcard point is fine


def test_spec_parsing():
    plan = FaultPlan.parse(
        ["mid_check:crash:hits=1+3,job=imca/*", "worker_start:hang:seconds=0.5",
         "cache_append:torn-write", "mid_check:oom:mb=32,attempt=2", "pool_submit:crash:p=0.25"],
        seed=7,
    )
    assert plan.seed == 7
    assert plan.rules[0] == FaultRule("mid_check", "crash", hits=(1, 3), job="imca/*")
    assert plan.rules[1].seconds == 0.5
    assert plan.rules[3].mb == 32 and plan.rules[3].attempt == 2
    assert plan.rules[4].p == 0.25


@pytest.mark.parametrize("spec", ["justapoint", "mid_check:crash:bogus",
                                  "mid_check:crash:frobs=1", "nope:crash", "mid_check:nope"])
def test_spec_parsing_rejects_garbage(spec):
    with pytest.raises(ValueError):
        FaultPlan.parse([spec])


def test_hits_matching_counts_per_point():
    plan = FaultPlan([FaultRule("mid_check", "crash", hits=(2,))])
    with faults.plan_context(plan):
        faults.fire("mid_check")  # hit 1: no fire
        faults.fire("worker_start")  # different point, own counter
        with pytest.raises(InjectedFault):
            faults.fire("mid_check")  # hit 2: fires
        faults.fire("mid_check")  # hit 3: no fire
    assert plan.fired == [("mid_check", "crash", 2)]
    assert plan.hits == {"mid_check": 3, "worker_start": 1}


def test_job_and_attempt_filters():
    plan = FaultPlan([FaultRule("mid_check", "crash", job="t/slow*", attempt=1)])
    with faults.plan_context(plan):
        with faults.job_context(job_id="t/fast", attempt=1):
            faults.fire("mid_check")  # wrong job
        with faults.job_context(job_id="t/slow-1", attempt=2):
            faults.fire("mid_check")  # wrong attempt
        with faults.job_context(job_id="t/slow-1", attempt=1):
            with pytest.raises(InjectedFault):
                faults.fire("mid_check")


def test_seeded_probability_is_deterministic():
    rule = FaultRule("mid_check", "crash", p=0.5)

    def firing_pattern(seed):
        plan = FaultPlan([rule], seed=seed)
        pattern = []
        with faults.plan_context(plan):
            for _ in range(64):
                try:
                    faults.fire("mid_check")
                    pattern.append(False)
                except InjectedFault:
                    pattern.append(True)
        return pattern

    a, b = firing_pattern(7), firing_pattern(7)
    assert a == b, "same seed must reproduce the same injections"
    assert any(a) and not all(a), "p=0.5 over 64 hits should fire sometimes"
    assert firing_pattern(8) != a, "different seed should shift the pattern"


# -- fault actions -----------------------------------------------------------------


def test_crash_is_an_oserror():
    plan = FaultPlan([FaultRule("worker_start", "crash")])
    with faults.plan_context(plan):
        with pytest.raises(OSError):
            faults.fire("worker_start")


def test_hang_sleeps_for_rule_seconds():
    plan = FaultPlan([FaultRule("mid_check", "hang", seconds=0.05)])
    with faults.plan_context(plan):
        t0 = time.monotonic()
        faults.fire("mid_check")
        assert time.monotonic() - t0 >= 0.05
    assert plan.fired == [("mid_check", "hang", 1)]


def test_oom_raises_memoryerror_at_ceiling():
    plan = FaultPlan([FaultRule("mid_check", "oom", mb=16)])
    with faults.plan_context(plan):
        with pytest.raises(MemoryError):
            faults.fire("mid_check")


def test_pool_break_outside_a_pool_degrades_to_crash():
    plan = FaultPlan([FaultRule("worker_start", "pool-break")])
    with faults.plan_context(plan):
        with faults.job_context(job_id="t/x", pooled=False):
            with pytest.raises(InjectedFault):
                faults.fire("worker_start")


def test_torn_write_truncates_and_keeps_its_own_counter():
    plan = FaultPlan([FaultRule("cache_append", "torn-write", hits=(2,))])
    line = json.dumps({"key": "k", "result": {"verdict": "safe"}}) + "\n"
    with faults.plan_context(plan):
        assert faults.corrupt("cache_append", line) == line  # write-hit 1
        faults.fire("cache_append")  # raising-kind counter: independent
        torn = faults.corrupt("cache_append", line)  # write-hit 2
        assert torn == line[: len(line) // 2]
        assert not torn.endswith("\n")
        assert faults.corrupt("cache_append", line) == line  # write-hit 3
    assert plan.write_hits == {"cache_append": 3}
    assert plan.fired == [("cache_append", "torn-write", 2)]


def test_disabled_hooks_are_identity():
    faults.fire("mid_check")  # no plan: no-op
    assert faults.corrupt("cache_append", "abc") == "abc"


def test_plan_context_restores_and_none_passes_through():
    plan = FaultPlan([FaultRule("mid_check", "crash")])
    with faults.plan_context(plan):
        assert faults.installed() is plan
        with faults.plan_context(None):  # None never uninstalls an active plan
            assert faults.installed() is plan
    assert faults.installed() is None


def test_fresh_resets_counters():
    plan = FaultPlan([FaultRule("mid_check", "crash", hits=(1,))])
    with faults.plan_context(plan):
        with pytest.raises(InjectedFault):
            faults.fire("mid_check")
    clone = plan.fresh()
    assert clone.rules == plan.rules
    assert clone.hits == {} and clone.fired == []


def test_plans_pickle_for_pool_shipping():
    import pickle

    plan = FaultPlan.parse(["mid_check:crash:hits=1", "cache_append:torn-write"], seed=3)
    clone = pickle.loads(pickle.dumps(plan))
    assert clone.rules == plan.rules and clone.seed == 3


# -- the bounded canonical-form memo (satellite: LRU) ------------------------------


def test_lru_evicts_least_recently_used():
    lru = _LRU(2)
    lru.put("a", "1")
    lru.put("b", "2")
    assert lru.get("a") == "1"  # refresh a: b is now oldest
    lru.put("c", "3")
    assert len(lru) == 2
    assert "b" not in lru and "a" in lru and "c" in lru
    assert lru.get("b") is None


def test_canonical_memo_is_bounded():
    template = "void main() {{ int x; x = {0}; assert(x == {0}); }}"
    for i in range(CANONICAL_MEMO_CAP + 16):
        canonical_program_text(template.format(i))
    assert len(_canonical_memo) <= CANONICAL_MEMO_CAP
    # the most recent programs are still memoized, the oldest evicted
    assert template.format(CANONICAL_MEMO_CAP + 15) in _canonical_memo
    assert template.format(0) not in _canonical_memo


# -- crash-safe io primitives ------------------------------------------------------


def test_locked_append_appends_whole_lines(tmp_path):
    path = str(tmp_path / "log.jsonl")
    locked_append(path, "one\n")
    locked_append(path, "two\n")
    assert open(path).read() == "one\ntwo\n"


def test_atomic_write_replaces_and_leaves_no_temp(tmp_path):
    path = str(tmp_path / "doc.json")
    atomic_write_json(path, {"v": 1})
    atomic_write_json(path, {"v": 2})
    assert json.load(open(path)) == {"v": 2}
    assert os.listdir(str(tmp_path)) == ["doc.json"]


def test_atomic_write_failure_keeps_old_content(tmp_path):
    path = str(tmp_path / "doc.txt")
    atomic_write_text(path, "old")

    with pytest.raises(TypeError):
        atomic_write_text(path, object())  # unwritable payload fails mid-write
    assert open(path).read() == "old"
    assert os.listdir(str(tmp_path)) == ["doc.txt"]


# -- the kiss-campaign/1 summary document ------------------------------------------


def _result(job_id="t/a", verdict="safe", detail="", cache_hit=False, driver="t",
            prop="race"):
    return JobResult(job_id=job_id, driver=driver, prop=prop, target="EXT.a",
                     verdict=verdict, detail=detail, cache_hit=cache_hit)


def test_summary_document_validates():
    results = [
        _result("t/a", "error"),
        _result("t/b", "safe", cache_hit=True),
        _result("t/c", "resource-bound", detail="interrupted: SIGINT"),
        _result("u/d", "safe", driver="u", prop="assertion"),
    ]
    doc = summary_document(results, interrupted="SIGINT", wall_s=1.25,
                           cache_hits=1, cache_misses=3)
    validate_summary(doc)
    assert doc["jobs"] == 4 and doc["completed"] == 3 and doc["interrupted_jobs"] == 1
    assert doc["interrupted"] == "SIGINT"
    assert doc["table"] == {"race": 1, "no-race": 1, "unresolved": 1, "safe": 1}
    by_driver = {row["driver"]: row for row in doc["drivers"]}
    assert by_driver["t"]["race"] == 1 and by_driver["t"]["unresolved"] == 1
    assert by_driver["u"]["other"] == 1  # assertion verdicts are not Table 1 columns
    assert by_driver["t"]["cached"] == 1


def test_summary_document_empty_campaign_is_valid():
    validate_summary(summary_document([]))


@pytest.mark.parametrize("mutate", [
    lambda d: d.update(schema="kiss-campaign/0"),
    lambda d: d.update(jobs=99),
    lambda d: d.update(interrupted_jobs=d["interrupted_jobs"] + 1),
    lambda d: d["verdicts"].update(safe=-1),
    lambda d: d["drivers"][0].pop("unresolved"),
    lambda d: d["drivers"][0].update(fields=7),
    lambda d: d.pop("cache"),
])
def test_validate_summary_rejects_malformed(mutate):
    doc = summary_document([_result()])
    mutate(doc)
    with pytest.raises(ValueError):
        validate_summary(doc)
