"""Tests for the static lockset baseline, and the §6.1 flexibility claims
it is built to demonstrate."""

import pytest

from repro.analysis.lockset import lockset_check, _classify_lock_function
from repro.core.checker import Kiss
from repro.core.race import RaceTarget
from repro.drivers import DEVICE_EXTENSION, bluetooth_program
from repro.drivers.osmodel import OS_MODEL_SRC
from repro.lang import parse_core


LOCKED = OS_MODEL_SRC + """
int SpinLock; int g;
void worker() {
  KeAcquireSpinLock(&SpinLock);
  g = g + 1;
  KeReleaseSpinLock(&SpinLock);
}
void main() {
  async worker();
  KeAcquireSpinLock(&SpinLock);
  g = g + 1;
  KeReleaseSpinLock(&SpinLock);
}
"""

UNLOCKED = OS_MODEL_SRC + """
int SpinLock; int g;
void worker() { g = g + 1; }
void main() {
  async worker();
  KeAcquireSpinLock(&SpinLock);
  g = g + 1;
  KeReleaseSpinLock(&SpinLock);
}
"""


def test_lock_function_discovery():
    prog = parse_core(OS_MODEL_SRC + "\nvoid main() { }")
    assert _classify_lock_function(prog.functions["KeAcquireSpinLock"]) == "acquire"
    assert _classify_lock_function(prog.functions["KeReleaseSpinLock"]) == "release"
    assert _classify_lock_function(prog.functions["KeSetEvent"]) is None
    assert _classify_lock_function(prog.functions["InterlockedIncrement"]) is None


def test_consistently_locked_location_clean():
    report = lockset_check(parse_core(LOCKED))
    assert not report.warned("g")
    assert "KeAcquireSpinLock" in report.acquire_functions


def test_inconsistent_locking_warned():
    report = lockset_check(parse_core(UNLOCKED))
    assert report.warned("g")


def test_single_threaded_access_never_warned():
    src = OS_MODEL_SRC + """
    int g;
    void main() { g = 1; g = 2; }
    """
    assert not lockset_check(parse_core(src)).warned("g")


def test_read_only_sharing_not_warned():
    src = OS_MODEL_SRC + """
    int g; int a; int b;
    void worker() { a = g; }
    void main() { async worker(); b = g; }
    """
    assert not lockset_check(parse_core(src)).warned("g")


def test_two_locks_consistent_on_distinct_data():
    src = OS_MODEL_SRC + """
    int lock1; int lock2; int x; int y;
    void worker() {
      KeAcquireSpinLock(&lock1); x = x + 1; KeReleaseSpinLock(&lock1);
      KeAcquireSpinLock(&lock2); y = y + 1; KeReleaseSpinLock(&lock2);
    }
    void main() {
      async worker();
      KeAcquireSpinLock(&lock1); x = x + 1; KeReleaseSpinLock(&lock1);
      KeAcquireSpinLock(&lock2); y = y + 1; KeReleaseSpinLock(&lock2);
    }
    """
    report = lockset_check(parse_core(src))
    assert not report.warned("x") and not report.warned("y")


def test_wrong_lock_warned():
    src = OS_MODEL_SRC + """
    int lock1; int lock2; int x;
    void worker() { KeAcquireSpinLock(&lock2); x = x + 1; KeReleaseSpinLock(&lock2); }
    void main() {
      async worker();
      KeAcquireSpinLock(&lock1); x = x + 1; KeReleaseSpinLock(&lock1);
    }
    """
    assert lockset_check(parse_core(src)).warned("x")


def test_lock_held_across_calls():
    src = OS_MODEL_SRC + """
    int SpinLock; int g;
    void touch() { g = g + 1; }
    void worker() { KeAcquireSpinLock(&SpinLock); touch(); KeReleaseSpinLock(&SpinLock); }
    void main() {
      async worker();
      KeAcquireSpinLock(&SpinLock); touch(); KeReleaseSpinLock(&SpinLock);
    }
    """
    assert not lockset_check(parse_core(src)).warned("g")


def test_device_extension_fields_tracked():
    report = lockset_check(bluetooth_program())
    # the bluetooth model uses no spin locks at all: stoppingFlag's
    # conflicting accesses have the empty lockset
    assert report.warned("DEVICE_EXTENSION.stoppingFlag")


# -- §6.1 "flexibility" claims, measured -------------------------------------------


EVENT_SYNC = OS_MODEL_SRC + """
bool ready; int data; int out;
void producer() {
  data = 7;
  KeSetEvent(&ready);
}
void main() {
  async producer();
  KeWaitForSingleObject(&ready);
  out = data;
}
"""


def test_flexibility_event_synchronization():
    """The paper: lockset tools handle 'only the simplest synchronization
    mechanism of locks'.  Event-ordered access is race-free — KISS proves
    it, lockset cries wolf."""
    report = lockset_check(parse_core(EVENT_SYNC))
    assert report.warned("data")  # FALSE positive from the baseline
    r = Kiss(max_ts=1).check_race(parse_core(EVENT_SYNC), RaceTarget.global_var("data"))
    assert r.is_safe  # KISS handles the event ordering precisely


INTERLOCKED_SYNC = OS_MODEL_SRC + """
int count; int winner_work;
void worker() {
  int n;
  n = InterlockedIncrement(&count);
  if (n == 1) { winner_work = 1; }
}
void main() {
  async worker();
  int n;
  n = InterlockedIncrement(&count);
  if (n == 1) { winner_work = 2; }
}
"""


def test_flexibility_interlocked_synchronization():
    """Only one thread can see the counter hit 1, so winner_work is
    exclusive.  The lockset baseline can't see that; KISS can."""
    report = lockset_check(parse_core(INTERLOCKED_SYNC))
    assert report.warned("winner_work")  # FALSE positive
    r = Kiss(max_ts=1).check_race(
        parse_core(INTERLOCKED_SYNC), RaceTarget.global_var("winner_work")
    )
    assert r.is_safe


def test_agreement_on_plain_lock_discipline():
    """Where only locks are involved, the two approaches agree."""
    assert not lockset_check(parse_core(LOCKED)).warned("g")
    assert Kiss().check_race(parse_core(LOCKED), RaceTarget.global_var("g")).is_safe
    assert lockset_check(parse_core(UNLOCKED)).warned("g")
    assert Kiss().check_race(parse_core(UNLOCKED), RaceTarget.global_var("g")).is_error
