"""Trust properties of kiss-witness/1 certificates.

Three layers, mirroring the threat model in docs/WITNESSES.md:

* **corpus certification** — every witness emitted over the pinned fuzz
  corpus validates ``certified`` (the independent validator agrees with
  the checker on every safe verdict it certifies);
* **mutation killing** — tampering with a certificate (dropping an
  invariant conjunct, perturbing a reached state, editing the embedded
  program) is *never* ``certified``, and inductiveness failures localize
  to the broken transition;
* **independence** — the validator imports nothing from
  ``repro.seqcheck`` (checked against ``sys.modules`` in a fresh
  subprocess), and the ``python -m repro.witness.validate`` entry point
  works standalone.

Also the golden-artifact tests: emission is byte-stable for one
explicit and one cegar certificate (the PR 4 golden pattern).
"""

import copy
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.checker import Kiss
from repro.fuzz.oracle import UNCERTIFIED, differential_check
from repro.lang import parse
from repro.schemas import SchemaError, validate_witness
from repro.witness.validate import validate_witness_doc

CORPUS = Path(__file__).parent / "fuzz_corpus"
GOLDEN = Path(__file__).parent / "golden"

#: The cegar golden program (also in tests/test_backend_parity.py's
#: pinned set) — scalar, safe, two CEGAR rounds.
HANDOFF = """int data;
bool ready;

void w() {
    assume(ready);
    assert(data == 5);
}

void main() {
    data = 5;
    ready = true;
    async w();
}
"""


def _manifest():
    return json.loads((CORPUS / "manifest.json").read_text())["programs"]


def _corpus_witness(name, max_ts, backend="explicit"):
    prog = parse((CORPUS / name).read_text())
    r = Kiss(max_ts=max_ts, backend=backend, witness=True).check_assertions(prog)
    return r


@pytest.fixture(scope="module")
def loop_safe_witness():
    """One explicit reached-set certificate, shared by the mutation tests."""
    r = _corpus_witness("loop-safe.kp", 1)
    assert r.is_safe and r.witness is not None
    return r.witness


@pytest.fixture(scope="module")
def cegar_witness():
    """One cegar predicate-invariant certificate."""
    r = Kiss(max_ts=1, backend="cegar", witness=True).check_assertions(parse(HANDOFF))
    assert r.is_safe and r.witness is not None
    return r.witness


# -- corpus certification ----------------------------------------------------------


@pytest.mark.parametrize("backend", ["explicit", "cegar"])
def test_every_corpus_witness_certifies(backend):
    """Every safe verdict over the pinned fuzz corpus must come with a
    certificate the independent validator certifies; error verdicts must
    not emit one."""
    certified = 0
    for entry in _manifest():
        r = _corpus_witness(entry["file"], entry["max_ts"], backend)
        if r.verdict != "safe":
            assert r.witness is None, entry["file"]
            continue
        assert r.witness is not None, f"{entry['file']}: safe without a witness"
        report = validate_witness_doc(r.witness)
        assert report.status == "certified", f"{entry['file']}[{backend}]: {report}"
        certified += 1
    assert certified >= (3 if backend == "explicit" else 1)


def test_rounds_strategy_witness_certifies():
    """The K-round sequentialization certifies too, and the ghost section
    folds versioned globals back per round."""
    prog = parse((CORPUS / "three-switch.kp").read_text())
    r = Kiss(max_ts=1, strategy="rounds", rounds=2, witness=True).check_assertions(prog)
    assert r.is_safe and r.witness is not None
    assert r.witness["strategy"] == "rounds" and r.witness["rounds"] == 2
    assert validate_witness_doc(r.witness).status == "certified"
    rendered = json.dumps(r.witness["ghost"])
    assert "__kiss_" not in rendered  # instrumentation state never leaks
    assert '"r1"' in rendered  # per-round value buckets present


def test_no_witness_for_error_verdicts():
    r = _corpus_witness("delayed-worker.kp", 1)
    assert r.is_error and r.witness is None


# -- mutation killing --------------------------------------------------------------


def test_dropped_state_localizes_to_missing_transition(loop_safe_witness):
    """Dropping one reached state breaks single-step closure; the report
    must be a refuted inductiveness judgment whose ``missing_state`` is
    exactly the dropped member."""
    doc = copy.deepcopy(loop_safe_witness)
    dropped = doc["invariant"]["states"].pop(len(doc["invariant"]["states"]) // 2)
    report = validate_witness_doc(doc)
    assert report.status == "refuted"
    assert report.judgment == "inductiveness"
    assert report.missing_state == dropped
    assert report.location  # names the transition's source program point


def test_every_dropped_state_is_caught(loop_safe_witness):
    """No single invariant conjunct is dead weight: dropping *any* state
    is refuted (sampled across the set for test-time)."""
    states = loop_safe_witness["invariant"]["states"]
    for idx in {0, 1, len(states) // 2, len(states) - 1}:
        doc = copy.deepcopy(loop_safe_witness)
        doc["invariant"]["states"].pop(idx)
        report = validate_witness_doc(doc)
        assert report.status == "refuted", f"index {idx} survived"
        assert report.judgment in ("initiation", "inductiveness")


def test_perturbed_state_breaks_inductiveness(loop_safe_witness):
    """Editing one value in one reached state is refuted — either the
    original state is now missing from some transition, or the perturbed
    state's own successors are."""
    doc = copy.deepcopy(loop_safe_witness)
    perturbed = False
    for state in doc["invariant"]["states"]:
        for value in state["globals"]:
            if value[0] == "i":
                value[1] += 97
                perturbed = True
                break
        if perturbed:
            break
    assert perturbed
    report = validate_witness_doc(doc)
    assert report.status == "refuted"
    assert report.judgment in ("initiation", "inductiveness")


def test_tampered_program_text_is_refuted(loop_safe_witness):
    doc = copy.deepcopy(loop_safe_witness)
    doc["program"] += "\n// tampered"
    report = validate_witness_doc(doc)
    assert report.status == "refuted" and report.judgment == "integrity"


def test_dropped_predicate_is_refuted(cegar_witness):
    """Dropping a predicate makes every cube the wrong width — the
    certificate no longer describes its own abstraction."""
    doc = copy.deepcopy(cegar_witness)
    assert doc["invariant"]["predicates"]["global"], "golden program has global preds"
    doc["invariant"]["predicates"]["global"].pop()
    report = validate_witness_doc(doc)
    assert report.status != "certified"
    assert report.status == "refuted"


def test_dropped_cube_is_refuted(cegar_witness):
    """Removing one abstract cube from a visited location must surface
    as an inductiveness failure at that location."""
    doc = copy.deepcopy(cegar_witness)
    victim = None
    for loc in doc["invariant"]["locations"]:
        if loc["cubes"]:
            victim = loc
            break
    assert victim is not None
    victim["cubes"].pop(0)
    report = validate_witness_doc(doc)
    if report.status == "certified":
        # The dropped cube may be subsumed only when several cubes map to
        # the same concrete states; the golden program's are all live.
        pytest.fail("dropped cube went unnoticed")
    assert report.status == "refuted"
    assert report.judgment == "inductiveness"


def test_schema_tampering_never_certifies(loop_safe_witness):
    for mutate in (
        lambda d: d.update(schema="kiss-witness/0"),
        lambda d: d.update(kind="predicate-invariant"),  # wrong kind for payload
        lambda d: d.update(program_sha256="0" * 64),
        lambda d: d["invariant"].update(states=[]),
    ):
        doc = copy.deepcopy(loop_safe_witness)
        mutate(doc)
        assert validate_witness_doc(doc).status != "certified"


# -- schema + golden artifacts -----------------------------------------------------


def test_golden_docs_pass_schema_validation():
    for name in ("witness-loop-safe-explicit.json", "witness-handoff-cegar.json"):
        doc = json.loads((GOLDEN / name).read_text())
        validate_witness(doc)  # raises SchemaError on shape drift
    with pytest.raises(SchemaError):
        validate_witness({"schema": "kiss-witness/1"})


def test_golden_explicit_witness_is_byte_stable(loop_safe_witness):
    expected = (GOLDEN / "witness-loop-safe-explicit.json").read_text()
    got = json.dumps(loop_safe_witness, indent=2, sort_keys=True) + "\n"
    assert got == expected


def test_golden_cegar_witness_is_byte_stable(cegar_witness):
    expected = (GOLDEN / "witness-handoff-cegar.json").read_text()
    got = json.dumps(cegar_witness, indent=2, sort_keys=True) + "\n"
    assert got == expected


def test_golden_docs_certify():
    for name in ("witness-loop-safe-explicit.json", "witness-handoff-cegar.json"):
        doc = json.loads((GOLDEN / name).read_text())
        assert validate_witness_doc(doc).status == "certified", name


# -- independence ------------------------------------------------------------------


def test_validator_never_imports_seqcheck(tmp_path):
    """The trust boundary: importing and running the validator must not
    pull in any ``repro.seqcheck`` module (checked in a fresh process —
    this file's own imports would mask it here)."""
    cert = tmp_path / "cert.json"
    cert.write_text((GOLDEN / "witness-handoff-cegar.json").read_text())
    code = (
        "import json, sys\n"
        "from repro.witness.validate import validate_witness_doc\n"
        "import repro.witness  # the package import must stay clean too\n"
        f"report = validate_witness_doc(json.load(open({str(cert)!r})))\n"
        "assert report.status == 'certified', report\n"
        "bad = sorted(m for m in sys.modules if m.startswith('repro.seqcheck'))\n"
        "assert not bad, f'validator pulled in {bad}'\n"
        "print('clean')\n"
    )
    proc = subprocess.run([sys.executable, "-c", code], capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "clean"


def test_standalone_validator_cli(tmp_path):
    """``python -m repro.witness.validate`` is the independent checker's
    front door: exit 0/1 mirror certified/refuted."""
    good = tmp_path / "good.json"
    good.write_text((GOLDEN / "witness-loop-safe-explicit.json").read_text())
    proc = subprocess.run(
        [sys.executable, "-m", "repro.witness.validate", str(good)],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.startswith("certified")

    doc = json.loads(good.read_text())
    doc["program"] += "\n// tampered"
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(doc))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.witness.validate", str(bad), "--json"],
        capture_output=True, text=True,
    )
    assert proc.returncode == 1
    assert json.loads(proc.stdout)["judgment"] == "integrity"


# -- the oracle's third cross-check ------------------------------------------------


def test_oracle_witness_cross_check_certifies():
    prog = parse((CORPUS / "safe-locked.kp").read_text())
    v = differential_check(prog, max_ts=2, witness=True)
    assert not v.diverged
    assert v.witness_status == "certified"
    assert "witness=certified" in v.describe()


def test_oracle_flags_refuted_witness_as_uncertified(monkeypatch):
    """A safe verdict whose certificate fails independent validation is
    the ``uncertified`` divergence class."""
    import repro.witness.emit as emit_mod

    real = emit_mod.emit_witness

    def tampered(transformed, **kw):
        doc = real(transformed, **kw)
        if doc is not None:
            doc["invariant"]["states"].pop()
        return doc

    monkeypatch.setattr(emit_mod, "emit_witness", tampered)
    prog = parse((CORPUS / "loop-safe.kp").read_text())
    v = differential_check(prog, max_ts=1, witness=True)
    assert v.diverged and v.divergence == UNCERTIFIED
    assert v.witness_status == "refuted"
    assert "certificate is refuted" in v.detail


def test_oracle_without_witness_mode_skips_cross_check():
    prog = parse((CORPUS / "loop-safe.kp").read_text())
    v = differential_check(prog, max_ts=1)
    assert v.witness_status is None
