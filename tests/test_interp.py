"""Unit tests for the value model, stores, and canonical freezing."""

import pytest
from hypothesis import given, strategies as st

from repro.cfg.build import build_program_cfg
from repro.lang import parse_core
from repro.lang.ast import BOOL, FUNC, INT, PtrType
from repro.seqcheck.interp import Freezer, Interp, Violation, World, canonical_freeze
from repro.seqcheck.state import (
    NULL,
    Frame,
    FuncVal,
    MemoryError_,
    PtrVal,
    Store,
    default_value,
    field_addr,
)


# -- values -----------------------------------------------------------------


def test_default_values():
    assert default_value(INT) == 0
    assert default_value(BOOL) is False
    assert default_value(PtrType(INT)) == NULL
    assert isinstance(default_value(FUNC), FuncVal)


def test_null_pointer_identity():
    assert NULL.is_null
    assert PtrVal(None) == NULL
    assert PtrVal(("g", "x")) != NULL


def test_funcval_equality():
    assert FuncVal("f") == FuncVal("f")
    assert FuncVal("f") != FuncVal("g")


# -- store ----------------------------------------------------------------------


def prog_with_struct():
    return parse_core("struct S { int a; bool b; } void main() { }")


def test_malloc_creates_default_cell():
    store = Store()
    ptr = store.malloc(prog_with_struct(), "S")
    assert not ptr.is_null
    cid = ptr.addr[1]
    sname, fields = store.heap[cid]
    assert sname == "S"
    assert fields == {"a": 0, "b": False}


def test_global_read_write():
    store = Store()
    store.globals["g"] = 1
    assert store.read(("g", "g"), {}) == 1
    store.write(("g", "g"), 7, {})
    assert store.globals["g"] == 7


def test_unknown_global_read_raises():
    with pytest.raises(MemoryError_):
        Store().read(("g", "nope"), {})


def test_null_read_raises():
    with pytest.raises(MemoryError_) as exc:
        Store().read(None, {})
    assert exc.value.kind == "null-deref"


def test_local_read_through_frames():
    store = Store()
    frame = Frame("f", 0, {"x": 5}, frame_id=3)
    assert store.read(("l", 3, "x"), {3: frame}) == 5
    store.write(("l", 3, "x"), 6, {3: frame})
    assert frame.locals["x"] == 6


def test_dangling_local_read_raises():
    with pytest.raises(MemoryError_) as exc:
        Store().read(("l", 99, "x"), {})
    assert exc.value.kind == "dangling"


def test_field_addr_requires_cell_pointer():
    with pytest.raises(MemoryError_):
        field_addr(NULL, "a")
    with pytest.raises(MemoryError_):
        field_addr(PtrVal(("g", "x")), "a")
    assert field_addr(PtrVal(("c", 0)), "a") == ("f", 0, "a")


def test_field_read_unknown_field_raises():
    store = Store()
    ptr = store.malloc(prog_with_struct(), "S")
    with pytest.raises(MemoryError_):
        store.read(("f", ptr.addr[1], "zz"), {})


# -- canonical freezing -----------------------------------------------------------


def world_with(globals_=None, heap_cells=0, prog=None):
    store = Store()
    store.globals.update(globals_ or {})
    prog = prog or prog_with_struct()
    ptrs = [store.malloc(prog, "S") for _ in range(heap_cells)]
    frame = Frame("main", 0, {}, store.fresh_frame_id())
    return World(store, [[frame]]), ptrs


def test_freeze_is_deterministic():
    w, _ = world_with({"a": 1, "b": True})
    assert w.freeze() == w.freeze()


def test_freeze_differs_on_values():
    w1, _ = world_with({"a": 1})
    w2, _ = world_with({"a": 2})
    assert w1.freeze() != w2.freeze()


def test_unreachable_cells_are_garbage_collected():
    w1, _ = world_with({"a": 1})
    w2, _ = world_with({"a": 1}, heap_cells=3)  # never referenced
    assert w1.freeze() == w2.freeze()


def test_reachable_cells_kept():
    w1, ptrs = world_with({"a": 1}, heap_cells=1)
    w1.store.globals["p"] = ptrs[0]
    w2, _ = world_with({"a": 1})
    w2.store.globals["p"] = NULL
    assert w1.freeze() != w2.freeze()


def test_allocation_history_canonicalized():
    """Two worlds whose live heaps are isomorphic but with different
    allocation counters must freeze identically."""
    prog = prog_with_struct()
    w1, _ = world_with({}, prog=prog)
    p1 = w1.store.malloc(prog, "S")
    w1.store.globals["p"] = p1

    w2, _ = world_with({}, prog=prog)
    dead1 = w2.store.malloc(prog, "S")
    dead2 = w2.store.malloc(prog, "S")
    p2 = w2.store.malloc(prog, "S")  # different cell id than p1
    w2.store.globals["p"] = p2
    assert p1.addr != p2.addr
    assert w1.freeze() == w2.freeze()


def test_frame_ids_canonicalized_by_position():
    store1 = Store()
    f1 = Frame("main", 0, {"x": 1}, store1.fresh_frame_id())
    w1 = World(store1, [[f1]])

    store2 = Store()
    store2.fresh_frame_id()  # burn an id
    store2.fresh_frame_id()
    f2 = Frame("main", 0, {"x": 1}, store2.fresh_frame_id())
    w2 = World(store2, [[f2]])
    assert f1.frame_id != f2.frame_id
    assert w1.freeze() == w2.freeze()


def test_pointer_to_local_freezes_by_position():
    store = Store()
    f = Frame("main", 0, {"x": 1, "p": None}, store.fresh_frame_id())
    f.locals["p"] = PtrVal(("l", f.frame_id, "x"))
    w = World(store, [[f]])
    frozen = w.freeze()
    assert w.freeze() == frozen  # stable


def test_freezer_cache_survives_same_program_shape():
    fr = Freezer()
    store = Store()
    store.globals.update({"b": 2, "a": 1})
    f = Frame("main", 0, {"y": 0, "x": 1}, store.fresh_frame_id())
    k1 = fr.freeze(store, [[f]])
    store.globals["a"] = 5
    k2 = fr.freeze(store, [[f]])
    assert k1 != k2
    store.globals["a"] = 1
    assert fr.freeze(store, [[f]]) == k1


def test_world_clone_is_deep():
    w, ptrs = world_with({"a": 1}, heap_cells=1)
    w.store.globals["p"] = ptrs[0]
    c = w.clone()
    c.store.globals["a"] = 99
    c.store.heap[ptrs[0].addr[1]][1]["a"] = 42
    assert w.store.globals["a"] == 1
    assert w.store.heap[ptrs[0].addr[1]][1]["a"] == 0


# -- interpreter primitive ops -------------------------------------------------------


def interp_for(src):
    pcfg = build_program_cfg(parse_core(src))
    return Interp(pcfg), pcfg


def test_eval_atom_locals_shadow_globals():
    interp, _ = interp_for("int x; void main() { int x; x = 1; }")
    store = Store()
    store.globals["x"] = 10
    frame = Frame("main", 0, {"x": 2}, 0)
    from repro.lang.ast import Var

    assert interp.eval_atom(Var("x"), frame, store) == 2


def test_eval_atom_function_name():
    interp, _ = interp_for("void f() { } void main() { }")
    from repro.lang.ast import Var

    v = interp.eval_atom(Var("f"), Frame("main", 0, {}, 0), Store())
    assert v == FuncVal("f")


def test_eval_atom_undefined_raises():
    interp, _ = interp_for("void main() { }")
    from repro.lang.ast import Var

    with pytest.raises(Violation):
        interp.eval_atom(Var("zzz"), Frame("main", 0, {}, 0), Store())


def test_eval_const_expr_rejects_nonconst():
    interp, _ = interp_for("int g; void main() { }")
    from repro.lang.ast import Binary, Var
    from repro.lang.types import KissTypeError

    with pytest.raises(KissTypeError):
        interp.eval_const_expr(Binary("+", Var("g"), Var("g")))


@given(st.integers(-50, 50), st.integers(-50, 50))
def test_c_division_semantics(a, b):
    """The checker's / and % follow C: truncation toward zero, and
    (a/b)*b + a%b == a."""
    if b == 0:
        return
    src = f"int q; int r; void main() {{ q = {a} / {b}; r = {a} % {b}; assert(q * {b} + r == {a}); }}"
    from repro.seqcheck.explicit import check_sequential

    assert check_sequential(parse_core(src)).is_safe
