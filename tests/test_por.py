"""Shared-access POR parity: pruning schedule points at statements that
touch no shared global never changes a decisive verdict — for any
strategy, on the driver corpus and on generated fuzz programs — and the
``por_schedule_points_pruned`` counter proves the reduction actually
fires on thread-local traffic."""

import pytest

from repro import obs
from repro.core.checker import Kiss
from repro.core.race import RaceTarget
from repro.drivers.corpus import DRIVER_SPECS
from repro.drivers.generator import EXTENSION, generate_source
from repro.drivers.spec import FieldKind
from repro.fuzz.gen import ProgramGenerator
from repro.lang import parse
from repro.schemas import STRATEGIES

#: (strategy, rounds) pairs exercising every sequentialization.
ALL_STRATEGIES = (("kiss", 2), ("rounds", 2), ("lazy", 2))


def assert_por_parity(make_kiss, check, what):
    """POR only *removes* schedule points, so under one state budget it
    can only help: a decisive (safe/error) verdict must be identical,
    and the only tolerated asymmetry is POR-off exhausting the budget
    where POR-on completes."""
    off = check(make_kiss(por=False))
    on = check(make_kiss(por=True))
    if off.verdict == "resource-bound":
        assert on.verdict in ("resource-bound", "safe", "error"), what
    else:
        assert on.verdict == off.verdict, (
            f"{what}: por flipped {off.verdict!r} -> {on.verdict!r}"
        )
    return off, on


# -- thread-local traffic is actually pruned ---------------------------------------

#: locals and a single-threaded global (``h`` is only ever touched by
#: ``main``): both POR flavors have something to prune — kiss/lazy skip
#: schedule points at thread-invisible statements, rounds leaves ``h``
#: unversioned and drops the advance points in front of its accesses.
LOCAL_HEAVY = """
int g;
int h;
void w() {
  int a; int b;
  a = 1;
  b = a + 1;
  a = b * 2;
  g = a;
}
void main() {
  int c;
  h = 3;
  c = h + h;
  h = c * 2;
  async w();
  g = c;
  assert(g > 0);
}
"""


@pytest.mark.parametrize("strategy,rounds", ALL_STRATEGIES)
def test_thread_local_traffic_is_pruned(strategy, rounds):
    prog = parse(LOCAL_HEAVY)
    with obs.observing(obs.Recorder()) as rec:
        r = Kiss(max_ts=1, strategy=strategy, rounds=rounds,
                 por=True).check_assertions(prog)
        pruned = rec.metrics()["counters"].get("por_schedule_points_pruned", 0)
    assert r.verdict == "safe", r.summary()
    assert pruned > 0, f"{strategy}: local-only statements must be pruned"
    with obs.observing(obs.Recorder()) as rec:
        Kiss(max_ts=1, strategy=strategy, rounds=rounds,
             por=False).check_assertions(prog)
        assert "por_schedule_points_pruned" not in rec.metrics()["counters"]


def test_every_strategy_is_covered():
    assert {s for s, _ in ALL_STRATEGIES} == set(STRATEGIES)


# -- parity over the driver corpus -------------------------------------------------


def driver_parity_cases():
    """Every driver, one field per outcome kind it has: clean, real
    race, each spurious-race flavor, and unresolved."""
    cases = []
    for spec in DRIVER_SPECS:
        seen = set()
        for f in spec.fields:
            if f.kind in seen:
                continue
            seen.add(f.kind)
            cases.append(pytest.param(spec, f, id=f"{spec.name}/{f.name}"))
    return cases


@pytest.mark.slow
@pytest.mark.parametrize("spec,fld", driver_parity_cases())
def test_driver_corpus_por_parity(spec, fld):
    budget = 200 if fld.kind is FieldKind.UNRESOLVED else 300_000
    prog = parse(generate_source(spec, loc_scale=0))
    target = RaceTarget.field_of(EXTENSION, fld.name)

    def check(kiss):
        return kiss.check_race(prog, target)

    off, _ = assert_por_parity(
        lambda por: Kiss(max_ts=0, max_states=budget, map_traces=False, por=por),
        check, f"{spec.name}/{fld.name}")
    if fld.kind is FieldKind.CLEAN:
        assert off.verdict == "safe"


# -- parity over 50 seed-0 fuzz programs, all strategies ---------------------------


@pytest.mark.slow
@pytest.mark.parametrize("strategy,rounds", ALL_STRATEGIES)
def test_fuzz_programs_por_parity(strategy, rounds):
    for g in ProgramGenerator().generate_batch(50, seed=0):
        assert_por_parity(
            lambda por: Kiss(max_ts=g.n_forks, max_states=20_000,
                             map_traces=False, strategy=strategy,
                             rounds=rounds, por=por),
            lambda kiss: kiss.check_assertions(g.program),
            f"seed {g.seed} [{strategy}]")


def test_por_prunes_on_some_fuzz_programs():
    """The generator emits enough thread-local statements that POR must
    fire somewhere in the first 50 seeds — a regression guard against
    the analysis silently classifying everything as shared."""
    total = 0
    for g in ProgramGenerator().generate_batch(50, seed=0):
        with obs.observing(obs.Recorder()) as rec:
            Kiss(max_ts=g.n_forks, max_states=20_000, map_traces=False,
                 por=True).check_assertions(g.program)
            total += rec.metrics()["counters"].get("por_schedule_points_pruned", 0)
    assert total > 0
