"""Integration tests for fuzz batches on the campaign engine
(repro.fuzz.runner) and the ``python -m repro fuzz`` CLI: job
construction, caching of fuzz verdicts, the end-to-end mutation
scenario (injected transform bug -> divergence -> shrunk witness), and
the CLI exit codes."""

import json

import pytest

from repro import cli
from repro.campaign import CampaignConfig, CampaignScheduler, cache_key
from repro.campaign.worker import execute_job
from repro.core.transform import KissTransformer
from repro.fuzz import GenConfig, fuzz_jobs, run_fuzz_campaign


class NeverParks(KissTransformer):
    """Injected coverage bug: asyncs are always inlined synchronously
    (see test_fuzz_oracle), producing INCOMPLETE divergences."""

    def _lower_async(self, fctx, s):
        fam = self._family_for(fctx, s)
        return self._inline_call(fctx, s, fam)


# -- job construction --------------------------------------------------------------


def test_fuzz_jobs_shape(fuzz_seed):
    jobs = fuzz_jobs(8, seed=fuzz_seed)
    assert len(jobs) == 8
    assert [j.job_id for j in jobs] == [f"fuzz/{fuzz_seed + i}" for i in range(8)]
    for j in jobs:
        assert j.prop == "fuzz" and j.target is None
        assert j.config["max_ts"] >= 0 and "max_states" in j.config


def test_race_flag_keys_the_cache(fuzz_seed):
    plain = fuzz_jobs(1, seed=fuzz_seed)[0]
    raced = fuzz_jobs(1, seed=fuzz_seed, race=True)[0]
    assert raced.config["fuzz_race"] == GenConfig().race_global
    # the oracle option changes the verdict semantics, so it must change
    # the cache key; but it must never reach Kiss(**kwargs)
    assert cache_key(plain) != cache_key(raced)
    assert "fuzz_race" not in raced.kiss_kwargs()


def test_execute_job_runs_the_oracle(fuzz_seed):
    job = fuzz_jobs(1, seed=fuzz_seed)[0]
    outcome, rich = execute_job(job, timeout=None)
    assert outcome["verdict"] in ("safe", "error", "resource-bound")
    assert rich is None  # fuzz jobs carry no KissResult
    assert outcome["states"] > 0


# -- campaign runs -----------------------------------------------------------------


def test_fuzz_campaign_serial_smoke(fuzz_seed):
    report = run_fuzz_campaign(10, seed=fuzz_seed)
    assert report.ok
    assert report.agreed == 10 and not report.inconclusive
    assert f"seeds {fuzz_seed}..{fuzz_seed + 9}" in report.summary()
    assert "10 agreed, 0 diverged" in report.summary()


def test_fuzz_campaign_results_are_cached(fuzz_seed, tmp_path):
    cfg = CampaignConfig(cache_dir=str(tmp_path / "cache"))
    first = run_fuzz_campaign(6, seed=fuzz_seed, campaign_config=cfg)
    assert not any(r.cache_hit for r in first.results)
    second = run_fuzz_campaign(6, seed=fuzz_seed, campaign_config=cfg)
    assert all(r.cache_hit for r in second.results)
    assert [r.verdict for r in second.results] == [r.verdict for r in first.results]
    assert second.agreed == first.agreed


def test_fuzz_campaign_parallel_matches_serial(fuzz_seed):
    serial = run_fuzz_campaign(8, seed=fuzz_seed)
    parallel = run_fuzz_campaign(
        8, seed=fuzz_seed, campaign_config=CampaignConfig(jobs=2)
    )
    assert [r.verdict for r in serial.results] == [r.verdict for r in parallel.results]


def test_mutation_bug_yields_shrunk_divergences(fuzz_seed, monkeypatch):
    """Acceptance criterion, end to end: with a deliberately injected
    transform bug the campaign reports divergences, and every one is
    shrunk to a witness of <= 10 statements."""
    monkeypatch.setattr("repro.fuzz.oracle.KissTransformer", NeverParks)
    report = run_fuzz_campaign(40, seed=fuzz_seed)
    assert not report.ok, "injected transform bug was not caught"
    for d in report.divergences:
        assert d.detail  # carries the oracle's explanation
        assert d.shrunk_stmts <= 10, (
            f"seed {d.seed} witness has {d.shrunk_stmts} statements:\n{d.shrunk_source}"
        )
    assert "diverged" in report.summary()


def test_mutation_divergences_survive_without_shrinking(fuzz_seed, monkeypatch):
    monkeypatch.setattr("repro.fuzz.oracle.KissTransformer", NeverParks)
    report = run_fuzz_campaign(40, seed=fuzz_seed, do_shrink=False)
    assert not report.ok
    d = report.divergences[0]
    assert d.shrunk_source == d.source  # reported unminimized


# -- CLI ---------------------------------------------------------------------------


def test_cli_fuzz_smoke(capsys):
    rc = cli.main(["fuzz", "--count", "5", "--seed", "0"])
    out = capsys.readouterr().out
    assert rc == cli.EXIT_SAFE
    assert "fuzz: 5 programs" in out and "0 diverged" in out


def test_cli_fuzz_reports_divergence(tmp_path, capsys, monkeypatch):
    monkeypatch.setattr("repro.fuzz.oracle.KissTransformer", NeverParks)
    rc = cli.main(
        ["fuzz", "--count", "40", "--seed", "0", "--save", str(tmp_path)]
    )
    out = capsys.readouterr().out
    assert rc == cli.EXIT_ERROR
    assert "minimized to" in out
    saved = list(tmp_path.glob("divergence_*.kp"))
    assert saved, "diverging program was not saved"
    text = saved[0].read_text()
    assert text.startswith("// seed") and "void main()" in text


def test_cli_fuzz_telemetry(tmp_path, capsys):
    path = tmp_path / "events.jsonl"
    rc = cli.main(
        ["fuzz", "--count", "3", "--seed", "1", "--telemetry", str(path)]
    )
    capsys.readouterr()
    assert rc == cli.EXIT_SAFE
    events = [json.loads(line) for line in open(path)]
    assert events[0]["event"] == "campaign_start"
    assert sum(e["event"] == "job_end" for e in events) == 3
