"""Tests for the conservative function inliner."""

import pytest

from repro.concheck import check_concurrent
from repro.core.checker import Kiss
from repro.lang import parse_core
from repro.lang.ast import Call, walk_stmts
from repro.lang.inline import Inliner, inline_program
from repro.lang.lower import clone_program, is_core_program
from repro.lang.types import check_program
from repro.seqcheck.explicit import check_sequential


def inline(src, **kw):
    prog = parse_core(src)
    return inline_program(prog, **kw)


def calls_in_main(prog, callee=None):
    return [
        s
        for s in walk_stmts(prog.functions["main"].body)
        if isinstance(s, Call) and (callee is None or s.func.name == callee)
    ]


def test_leaf_call_inlined():
    prog = inline(
        """
        int g;
        void bump() { g = g + 1; }
        void main() { bump(); bump(); assert(g == 2); }
        """
    )
    assert not calls_in_main(prog, "bump")
    assert is_core_program(prog)
    check_program(prog)
    assert check_sequential(prog).is_safe


def test_value_returning_call_inlined():
    prog = inline(
        """
        int twice(int x) { int y; y = x * 2; return y; }
        void main() { int r; r = twice(21); assert(r == 42); }
        """
    )
    assert not calls_in_main(prog, "twice")
    assert check_sequential(prog).is_safe


def test_locals_renamed_apart():
    # both callee and caller use `y`; inlined copies must not collide
    prog = inline(
        """
        int twice(int x) { int y; y = x * 2; return y; }
        void main() {
          int y; int r;
          y = 7;
          r = twice(3);
          assert(y == 7);
          assert(r == 6);
        }
        """
    )
    assert check_sequential(prog).is_safe


def test_two_sites_get_independent_copies():
    prog = inline(
        """
        int inc(int x) { return x + 1; }
        void main() {
          int a; int b;
          a = inc(1);
          b = inc(10);
          assert(a == 2);
          assert(b == 11);
        }
        """
    )
    assert check_sequential(prog).is_safe


def test_early_return_blocks_inlining():
    prog = inline(
        """
        int clamp(int x) { if (x > 5) { return 5; } return x; }
        void main() { int r; r = clamp(9); assert(r == 5); }
        """
    )
    assert calls_in_main(prog, "clamp"), "early-return functions must not inline"
    assert check_sequential(prog).is_safe


def test_recursion_not_inlined():
    prog = inline(
        """
        int down(int n) { if (n == 0) { return 0; } int r; r = down(n - 1); return r; }
        void main() { int x; x = down(3); assert(x == 0); }
        """
    )
    assert calls_in_main(prog, "down")


def test_async_target_not_inlined():
    prog = inline(
        """
        int g;
        void w() { g = 1; }
        void main() { async w(); w(); }
        """
    )
    # w is spawned, so the synchronous call must also stay (the function
    # must keep existing with the same behaviour)
    assert calls_in_main(prog, "w")


def test_address_taken_function_not_inlined():
    prog = inline(
        """
        int g;
        void w() { g = 1; }
        void main() { func v; v = w; w(); v(); }
        """
    )
    assert calls_in_main(prog, "w")


def test_size_limit_respected():
    src = """
    int g;
    void big() { g = 1; g = 2; g = 3; g = 4; g = 5; g = 6; }
    void main() { big(); }
    """
    kept = inline(src, max_stmts=3)
    assert calls_in_main(kept, "big")
    gone = inline(src, max_stmts=10)
    assert not calls_in_main(gone, "big")


def test_transitive_inlining():
    prog = inline(
        """
        int g;
        void leaf() { g = g + 1; }
        void mid() { leaf(); leaf(); }
        void main() { mid(); assert(g == 2); }
        """
    )
    assert not calls_in_main(prog)
    assert check_sequential(prog).is_safe


def test_lock_wrappers_inline_and_preserve_concurrency_verdicts():
    src = """
    int lock; int g;
    void acquire() { atomic { assume(lock == 0); lock = 1; } }
    void release() { atomic { lock = 0; } }
    void worker() { acquire(); g = 2; release(); }
    void main() { async worker(); acquire(); g = 1; assert(g == 1); release(); }
    """
    original = parse_core(src)
    inlined = inline_program(clone_program(original))
    # acquire/release disappear from worker and main
    for fn in ("worker", "main"):
        assert not [
            s
            for s in walk_stmts(inlined.functions[fn].body)
            if isinstance(s, Call) and s.func.name in ("acquire", "release")
        ]
    r1 = check_concurrent(original)
    r2 = check_concurrent(inlined)
    assert r1.status == r2.status
    assert r2.stats.states <= r1.stats.states


def test_inlined_program_still_kiss_checkable():
    src = """
    int lock; int g;
    void acquire() { atomic { assume(lock == 0); lock = 1; } }
    void release() { atomic { lock = 0; } }
    void worker() { g = 2; }
    void main() { async worker(); acquire(); g = 1; release(); }
    """
    from repro.core.race import RaceTarget

    inlined = inline_program(parse_core(src))
    r = Kiss(max_ts=0).check_race(inlined, RaceTarget.global_var("g"))
    assert r.is_error and r.is_race


def test_inline_counter_reported():
    prog = parse_core(
        "int g; void bump() { g = g + 1; } void main() { bump(); bump(); }"
    )
    inliner = Inliner(prog)
    inliner.run()
    assert inliner.inlined_calls == 2
