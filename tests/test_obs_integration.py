"""End-to-end observability: the instrumented pipeline, the campaign
engine's metrics plumbing, telemetry lifetime, and the `profile` CLI.

The conservation tests pin the contract that makes the counters
trustworthy: the numbers in a metrics snapshot are the *same* numbers
the checkers report through their own result objects — not an
independent (and independently buggy) account.
"""

import json

import pytest

from repro import obs
from repro.campaign import CampaignConfig, CampaignScheduler
from repro.campaign.jobs import CheckJob, JobResult
from repro.campaign.telemetry import Telemetry
from repro.cli import EXIT_BOUND, EXIT_ERROR, EXIT_SAFE, EXIT_USAGE, main
from repro.core.checker import Kiss
from repro.core.race import RaceTarget
from repro.fuzz import differential_check_source
from repro.lang import parse, parse_core

BUGGY = """
bool flag;
void worker() { flag = true; }
void main() { async worker(); assert(!flag); }
"""

RACY = """
int g;
void w() { g = 1; }
void main() { async w(); g = 2; }
"""

SCALAR_SAFE = """
int a; int b;
void main() { a = 4; b = a + 3; assert(b == 7); }
"""


def phase_names(metrics):
    return {row["name"] for row in metrics["phases"]}


# ---------------------------------------------------------------------------
# Kiss facade
# ---------------------------------------------------------------------------


def test_observe_off_by_default():
    r = Kiss().check_assertions(parse_core(BUGGY))
    assert r.metrics is None
    assert not obs.current().enabled


def test_observed_check_attaches_valid_metrics():
    r = Kiss(max_ts=1, observe=True).check_assertions(parse_core(BUGGY))
    assert r.is_error
    obs.validate_metrics(r.metrics)
    assert {"check", "transform", "cfg", "explicit"} <= phase_names(r.metrics)
    assert not obs.current().enabled  # the recorder must not leak


def test_observed_surface_program_records_lowering():
    r = Kiss(observe=True).check_assertions(parse(BUGGY))
    assert "lower" in phase_names(r.metrics)


def test_states_explored_conserved_with_backend_stats():
    r = Kiss(max_ts=1, observe=True).check_assertions(parse_core(BUGGY))
    c = r.metrics["counters"]
    assert c["states_explored"] == r.backend_result.stats.states
    assert c["transitions"] == r.backend_result.stats.transitions
    assert c["states_explored"] > 0


def test_ambient_recorder_sums_across_runs():
    rec = obs.Recorder()
    with obs.observing(rec):
        r1 = Kiss(max_ts=1, observe=True).check_assertions(parse_core(BUGGY))
        r2 = Kiss(observe=True).check_assertions(parse_core("void main() { }"))
    m = rec.metrics()
    checks = [row for row in m["phases"] if row["name"] == "check"]
    assert checks[0]["calls"] == 2
    assert m["counters"]["states_explored"] == (
        r1.backend_result.stats.states + r2.backend_result.stats.states
    )
    # joined runs snapshot the shared stream: the first sees only its own
    # counts, the second sees the accumulated totals
    assert r1.metrics["counters"]["states_explored"] == r1.backend_result.stats.states
    assert r2.metrics["counters"] == m["counters"]


def test_race_counters_match_result_fields():
    r = Kiss(max_ts=1, observe=True).check_race(
        parse_core(RACY), RaceTarget.global_var("g")
    )
    c = r.metrics["counters"]
    assert c["race_checks_emitted"] == r.checks_emitted > 0
    assert c.get("alias_prunes", 0) == r.checks_pruned


def test_cegar_backend_metrics():
    r = Kiss(backend="cegar", observe=True).check_assertions(parse_core(SCALAR_SAFE))
    assert r.is_safe
    assert {"cegar", "abstract", "bebop"} <= phase_names(r.metrics)
    c = r.metrics["counters"]
    assert c["cegar_iterations"] >= 1
    assert c["sat_calls"] >= 1
    assert c["bebop_summaries"] >= 1
    assert c["bebop_path_edges"] >= 1


# ---------------------------------------------------------------------------
# Fuzz oracle
# ---------------------------------------------------------------------------


def test_oracle_spans_and_counters():
    rec = obs.Recorder()
    with obs.observing(rec):
        v = differential_check_source(BUGGY, max_ts=1)
    m = rec.metrics()
    assert {"oracle-concurrent", "oracle-sequential"} <= phase_names(m)
    assert m["counters"]["oracle_runs"] == 1
    assert m["counters"]["concurrent_states"] == v.con_states > 0


# ---------------------------------------------------------------------------
# Campaign plumbing
# ---------------------------------------------------------------------------


def _race_job(observe, job_id="d/EXT.f"):
    return CheckJob(
        job_id=job_id,
        driver="d",
        source=RACY,
        prop="race",
        target="g",
        config={"max_ts": 1, "observe": observe},
    )


def test_campaign_job_carries_metrics(tmp_path):
    scheduler = CampaignScheduler(CampaignConfig(jobs=1, cache_dir=None))
    (result,) = scheduler.run([_race_job(observe=True)])
    obs.validate_metrics(result.metrics)
    assert result.metrics["counters"]["states_explored"] == result.states
    # ... and the job_end telemetry event carries the same snapshot
    (end,) = scheduler.last_telemetry.of_kind("job_end")
    assert end["metrics"] == result.metrics


def test_campaign_without_observe_has_no_metrics():
    scheduler = CampaignScheduler(CampaignConfig(jobs=1, cache_dir=None))
    (result,) = scheduler.run([_race_job(observe=False)])
    assert result.metrics is None
    (end,) = scheduler.last_telemetry.of_kind("job_end")
    assert "metrics" not in end


def test_metrics_survive_the_result_cache(tmp_path):
    config = CampaignConfig(jobs=1, cache_dir=str(tmp_path / "cache"))
    (first,) = CampaignScheduler(config).run([_race_job(observe=True)])
    assert not first.cache_hit
    (second,) = CampaignScheduler(config).run([_race_job(observe=True)])
    assert second.cache_hit
    assert second.metrics == first.metrics
    obs.validate_metrics(second.metrics)


def test_observe_is_not_part_of_the_cache_key(tmp_path):
    config = CampaignConfig(jobs=1, cache_dir=str(tmp_path / "cache"))
    (first,) = CampaignScheduler(config).run([_race_job(observe=True)])
    (second,) = CampaignScheduler(config).run([_race_job(observe=False)])
    assert second.cache_hit  # execution options never invalidate results
    assert second.verdict == first.verdict


def test_pool_workers_return_metrics():
    scheduler = CampaignScheduler(CampaignConfig(jobs=2, cache_dir=None))
    jobs = [_race_job(observe=True, job_id=f"d/EXT.f{i}") for i in range(2)]
    results = scheduler.run(jobs)
    for r in results:
        obs.validate_metrics(r.metrics)
        assert r.metrics["counters"]["states_explored"] == r.states


def test_fuzz_job_metrics():
    scheduler = CampaignScheduler(CampaignConfig(jobs=1, cache_dir=None))
    job = CheckJob(
        job_id="fuzz/0", driver="fuzz", source=BUGGY, prop="fuzz",
        config={"max_ts": 1, "observe": True},
    )
    (result,) = scheduler.run([job])
    obs.validate_metrics(result.metrics)
    assert result.metrics["counters"]["oracle_runs"] == 1


def test_jobresult_metrics_roundtrip():
    r = JobResult(
        job_id="j", driver="d", prop="race", target="g", verdict="safe",
        metrics={"schema": obs.METRICS_SCHEMA, "wall_s": 1.0, "phases": [],
                 "counters": {"states_explored": 3}},
    )
    back = JobResult.from_dict(json.loads(json.dumps(r.to_dict())))
    assert back.metrics == r.metrics
    plain = JobResult(job_id="j", driver="d", prop="race", target="g", verdict="safe")
    assert "metrics" not in plain.to_dict()  # absent, not null, when unobserved


# ---------------------------------------------------------------------------
# Telemetry lifetime (the file-handle leak regression)
# ---------------------------------------------------------------------------


def test_telemetry_close_is_idempotent(tmp_path):
    tel = Telemetry(str(tmp_path / "t.jsonl"))
    assert not tel.closed
    tel.emit("campaign_start")
    tel.close()
    assert tel.closed
    tel.close()  # second close must not raise


def test_telemetry_context_manager_closes(tmp_path):
    with Telemetry(str(tmp_path / "t.jsonl")) as tel:
        tel.emit("campaign_start")
        assert not tel.closed
    assert tel.closed


def test_scheduler_closes_its_own_telemetry(tmp_path):
    path = tmp_path / "t.jsonl"
    scheduler = CampaignScheduler(
        CampaignConfig(jobs=1, cache_dir=None, telemetry_path=str(path))
    )
    scheduler.run([_race_job(observe=False)])
    assert scheduler.last_telemetry.closed
    assert path.exists()


def test_scheduler_closes_telemetry_on_error(tmp_path, monkeypatch):
    path = tmp_path / "t.jsonl"
    scheduler = CampaignScheduler(
        CampaignConfig(jobs=1, cache_dir=None, telemetry_path=str(path))
    )
    monkeypatch.setattr(scheduler, "_run", lambda *a: (_ for _ in ()).throw(RuntimeError))
    with pytest.raises(RuntimeError):
        scheduler.run([_race_job(observe=False)])
    assert scheduler.last_telemetry.closed


def test_caller_supplied_telemetry_stays_open(tmp_path):
    with Telemetry(str(tmp_path / "t.jsonl")) as tel:
        scheduler = CampaignScheduler(CampaignConfig(jobs=1, cache_dir=None))
        scheduler.run([_race_job(observe=False)], telemetry=tel)
        assert not tel.closed  # the caller owns its stream's lifetime
    assert tel.closed


# ---------------------------------------------------------------------------
# Schema unification: one envelope for both event streams
# ---------------------------------------------------------------------------


def test_telemetry_and_span_streams_share_the_envelope(tmp_path):
    scheduler = CampaignScheduler(CampaignConfig(jobs=1, cache_dir=None))
    scheduler.run([_race_job(observe=True)])
    rec = obs.Recorder()
    with obs.observing(rec):
        with obs.span("x"):
            pass
    for stream in (scheduler.last_telemetry.events, rec.events):
        ts = [e["t"] for e in stream]
        assert ts == sorted(ts)
        for e in stream:
            assert isinstance(e["event"], str)
            assert isinstance(e["t"], float)
            assert list(e)[:2] == ["event", "t"]
            json.dumps(e)  # every event is JSONL-serializable


# ---------------------------------------------------------------------------
# The profile CLI
# ---------------------------------------------------------------------------


@pytest.fixture
def src_file(tmp_path):
    def write(source, name="prog.kp"):
        path = tmp_path / name
        path.write_text(source)
        return str(path)

    return write


def test_profile_safe_program(src_file, capsys):
    assert main(["profile", src_file("void main() { assert(true); }")]) == EXIT_SAFE
    out = capsys.readouterr().out
    assert "verdict: safe" in out
    assert "Per-phase breakdown" in out
    assert "explicit" in out


def test_profile_error_exit_code(src_file, capsys):
    assert main(["profile", src_file(BUGGY), "--max-ts", "1"]) == EXIT_ERROR
    assert "verdict:" in capsys.readouterr().out


def test_profile_resource_bound_exit_code(src_file):
    assert main(
        ["profile", src_file(BUGGY), "--max-ts", "1", "--max-states", "3"]
    ) == EXIT_BOUND


def test_profile_race_target(src_file, capsys):
    assert main(
        ["profile", src_file(RACY), "--target", "g", "--max-ts", "1"]
    ) == EXIT_ERROR
    assert "race_checks_emitted" in capsys.readouterr().out


def test_profile_json_document(src_file, capsys):
    path = src_file(SCALAR_SAFE)
    assert main(["profile", path, "--json"]) == EXIT_SAFE
    doc = json.loads(capsys.readouterr().out)
    obs.validate_profile(doc)
    assert doc["file"] == path
    assert doc["prop"] == "assertion"
    assert doc["verdict"] == "safe"
    assert doc["config"]["backend"] == "explicit"


def test_profile_output_file(src_file, tmp_path, capsys):
    out_path = tmp_path / "profile.json"
    assert main(
        ["profile", src_file(SCALAR_SAFE), "--output", str(out_path)]
    ) == EXIT_SAFE
    obs.validate_profile(json.loads(out_path.read_text()))
    assert f"wrote {out_path}" in capsys.readouterr().out


def test_profile_missing_file_is_usage_error(capsys):
    assert main(["profile", "no/such/file.kp"]) == EXIT_USAGE
    assert "error" in capsys.readouterr().err
