"""Tests for the synthesized scheduler's multiset semantics (§4).

``ts`` is a *multiset*: ``put`` parks a thread, ``get`` removes a
nondeterministically chosen element.  These tests pin down the slot
encoding: capacity accounting, any-order dispatch, argument integrity
under compaction, and the fallback to synchronous calls when full.
"""

import pytest

from repro.core.checker import Kiss
from repro.lang import parse_core


def check(src, max_ts, **kw):
    return Kiss(max_ts=max_ts, map_traces=False, **kw).check_assertions(parse_core(src))


def test_dispatch_order_is_nondeterministic():
    # both orders must be simulated: the assert fails on order w2-after-w1
    # and a symmetric program fails on the other order
    src = """
    int log1; int log2; int clock;
    void w1() { clock = clock + 1; log1 = clock; }
    void w2() { clock = clock + 1; log2 = clock; }
    void main() {
      async w1();
      async w2();
      assume(log1 == 1);
      assume(log2 == 2);
      assert(false);
    }
    """
    assert check(src, 2).is_error
    src_rev = src.replace("assume(log1 == 1)", "assume(log1 == 2)").replace(
        "assume(log2 == 2)", "assume(log2 == 1)"
    )
    assert check(src_rev, 2).is_error


def test_same_function_parked_twice_with_different_args():
    src = """
    int total;
    void add(int x) { atomic { total = total + x; } }
    void main() {
      async add(1);
      async add(10);
      assume(total == 11);
      assert(total == 11);
    }
    """
    assert check(src, 2).is_safe


def test_arguments_survive_slot_compaction():
    # park three, dispatch the middle one first: slots compact and the
    # remaining arguments must not be corrupted
    src = """
    int got1; int got2; int got3;
    void w(int x) {
      choice { assume(x == 1); got1 = x; }
        or   { assume(x == 2); got2 = x; }
        or   { assume(x == 3); got3 = x; }
    }
    void main() {
      async w(1);
      async w(2);
      async w(3);
      assume(got1 == 1);
      assume(got2 == 2);
      assume(got3 == 3);
      assert(got1 + got2 + got3 == 6);
    }
    """
    assert check(src, 3).is_safe


def test_capacity_shared_across_families():
    # ts bound 1 shared by two families: after parking w1, parking w2
    # must fall back to a synchronous call (which runs to completion at
    # the async point) — so "w2 completes before main continues" is the
    # only full-completion behaviour when w1 is parked
    src = """
    int a; int b;
    void w1() { a = 1; }
    void w2() { b = 1; }
    void main() {
      async w1();
      async w2();
      // if both were parked, neither has run yet; with bound 1, at most
      // one park happened, so at this point at least one of the
      // possible executions has b == 1 already (w2 inlined)
      assume(b == 1);
      assume(a == 0);
      assert(true);
    }
    """
    assert check(src, 1).is_safe


def test_ts_zero_preserves_spawn_effects():
    src = """
    int n;
    void w() { atomic { n = n + 1; } }
    void main() {
      async w();
      async w();
      async w();
      assume(n == 3);
      assert(n == 3);
    }
    """
    assert check(src, 0).is_safe


def test_parked_thread_may_never_be_scheduled():
    # schedule() dispatches a nondeterministic subset: a parked thread
    # may also simply never run before the program ends — so the assert
    # inside it must not make the program fail if unreachable... but the
    # final Check(s) schedule() runs remaining threads, so it DOES run
    # eventually in some behaviour and the error is found.
    src = """
    void w() { assert(false); }
    void main() { async w(); }
    """
    assert check(src, 1).is_error


def test_raise_can_kill_parked_thread_before_anything():
    # a dispatched thread may terminate before its first statement, so
    # the assert below it can be skipped: blocked -> quiescent, not error
    src = """
    bool never;
    void w() { assume(never); assert(false); }
    void main() { async w(); }
    """
    assert check(src, 1).is_safe


def test_nested_spawn_from_parked_thread():
    src = """
    int depth;
    void inner() { atomic { depth = depth + 1; } }
    void outer() { async inner(); atomic { depth = depth + 1; } }
    void main() {
      async outer();
      assume(depth == 2);
      assert(depth == 2);
    }
    """
    assert check(src, 2).is_safe


def test_ts_globals_do_not_leak_between_runs():
    src = """
    void w() { }
    void main() { async w(); }
    """
    r1 = check(src, 2)
    r2 = check(src, 2)
    assert r1.is_safe and r2.is_safe
    assert r1.backend_result.stats.states == r2.backend_result.stats.states
