"""The K-round (Lal–Reps style) sequentialization: KISS-parity at K=2,
purely sequential behaviour at K=1, strictly more coverage at K=3, the
snapshot-consistency pruning that makes the eager guesses sound, and
the trace mapper's replay contract."""

import json
from pathlib import Path

import pytest

from repro import obs
from repro.core import names
from repro.core.checker import Kiss
from repro.core.transform import TransformError
from repro.lang import parse, parse_core
from repro.lang.lower import lower_program
from repro.lang.pretty import pretty_program
from repro.rounds import RoundRobinTransformer, rounds_transform

CORPUS = Path(__file__).parent / "fuzz_corpus"
GOLDEN = Path(__file__).parent / "golden"

#: name -> (source, max_ts, expected verdict) — the backend-parity set.
PROGRAMS = {
    "delayed-worker.kp": (None, None, "error"),  # loaded from the fuzz corpus
    "bound-error": (
        """
        int x;
        void w() { assert(x < 2); }
        void main() { async w(); x = 2; }
        """,
        1,
        "error",
    ),
    "handoff-safe": (
        """
        int data; bool ready;
        void w() { assume(ready); assert(data == 5); }
        void main() { data = 5; ready = true; async w(); }
        """,
        1,
        "safe",
    ),
}

THREE_SWITCH = (CORPUS / "three-switch.kp").read_text()


def _program(name):
    source, max_ts, expected = PROGRAMS[name]
    if source is None:
        source = (CORPUS / name).read_text()
        manifest = {
            e["file"]: e
            for e in json.loads((CORPUS / "manifest.json").read_text())["programs"]
        }
        max_ts = manifest[name]["max_ts"]
        expected = manifest[name]["sequential"]
    return source, max_ts, expected


# -- K=2 parity with KISS, both backends ------------------------------------------


@pytest.mark.parametrize("name", PROGRAMS)
@pytest.mark.parametrize("backend", ["explicit", "cegar"])
def test_k2_matches_kiss_verdicts(name, backend):
    source, max_ts, expected = _program(name)
    prog = parse(source)
    kiss = Kiss(max_ts=max_ts, backend=backend, strategy="rounds", rounds=2,
                validate_traces=True)
    r = kiss.check_assertions(prog)
    assert r.verdict == expected, r.summary()
    assert r.strategy == "rounds" and r.rounds == 2
    assert "[rounds K=2]" in r.summary()
    if backend == "explicit" and r.is_error:
        # the mapped trace must replay under the concurrent semantics
        assert r.trace_validated is True, r.summary()


# -- K=1 is purely sequential ------------------------------------------------------


def test_k1_emits_no_round_state():
    source, max_ts, _ = _program("bound-error")
    t = RoundRobinTransformer(rounds=1, max_ts=max_ts)
    out = t.transform(lower_program(parse(source)))
    assert t.versioned == []
    for gname in out.globals:
        assert "in_r" not in gname and "_r0" not in gname and "_r1" not in gname, gname
    assert names.RR_ERR_VAR in out.globals  # declared, never set at K=1


@pytest.mark.parametrize(
    "name,expected",
    [("delayed-worker.kp", "error"), ("bound-error", "error"), ("handoff-safe", "safe")],
)
def test_k1_verdicts(name, expected):
    source, max_ts, _ = _program(name)
    r = Kiss(max_ts=max_ts, strategy="rounds", rounds=1,
             validate_traces=True).check_assertions(parse(source))
    assert r.verdict == expected, r.summary()
    assert r.rounds == 1
    if r.is_error:
        assert r.trace_validated is True


def test_k1_finds_no_preemption_bugs():
    # the three-switch handshake needs preemption; one round = run-to-
    # completion in spawn order, which blocks on the first assume
    r = Kiss(max_ts=1, strategy="rounds", rounds=1).check_assertions(parse(THREE_SWITCH))
    assert r.verdict == "safe", r.summary()


# -- K=3 beats KISS on the three-switch protocol -----------------------------------


def test_three_switch_invisible_to_kiss():
    r = Kiss(max_ts=1).check_assertions(parse(THREE_SWITCH))
    assert r.verdict == "safe", r.summary()


def test_three_switch_safe_at_k2():
    r = Kiss(max_ts=1, strategy="rounds", rounds=2).check_assertions(parse(THREE_SWITCH))
    assert r.verdict == "safe", r.summary()


def test_three_switch_found_at_k3_with_replaying_trace():
    kiss = Kiss(max_ts=1, strategy="rounds", rounds=3, validate_traces=True)
    r = kiss.check_assertions(parse(THREE_SWITCH))
    assert r.verdict == "error", r.summary()
    assert r.trace_validated is True, "mapped counterexample must replay concurrently"
    # the reconstructed interleaving alternates between the two threads
    tids = [step.tid for step in r.concurrent_trace.steps]
    assert len(set(tids)) == 2, r.concurrent_trace.format()


def test_three_switch_has_a_real_concurrent_witness():
    from repro.concheck import check_concurrent

    result = check_concurrent(parse_core(THREE_SWITCH), max_states=200_000)
    assert result.is_error, "the corpus program must truly go wrong unboundedly"


# -- snapshot-consistency pruning --------------------------------------------------

#: w can only ever observe x == 1: the store of 3 is dead before the
#: spawn.  The guess domain still contains 3 (it is stored), so an
#: unpruned guess __kiss_r1_x = 3 would report a spurious error.
PRUNING = """
int x;
void w() { assert(x != 3); }
void main() { x = 3; x = 1; async w(); }
"""


def test_inconsistent_guesses_are_pruned():
    t = RoundRobinTransformer(rounds=2, max_ts=1)
    core = lower_program(parse(PRUNING))
    transformed = t.transform(core)
    assert any(c.value == 3 for c in t.domains["x"]), "3 must be guessable"
    r = Kiss(max_ts=1, strategy="rounds", rounds=2).check_assertions(parse(PRUNING))
    assert r.verdict == "safe", f"unpruned guess leaked: {r.summary()}"
    # and the epilogue really is in the emitted program
    text = pretty_program(transformed)
    assert names.rr_guess("x", 1) in text


def test_transform_counters():
    with obs.observing(obs.Recorder()) as rec:
        rounds_transform(lower_program(parse(PRUNING)), rounds=2, max_ts=1)
        counters = rec.metrics()["counters"]
    assert counters["rounds_snapshot_guesses"] == 1  # one global, K-1 = 1
    assert counters["rounds_consistency_assumes"] == 1
    assert counters["rounds_guess_branches"] == 3  # domain of x = {0, 3, 1}
    assert counters["rounds_advance_points"] > 0


def test_golden_k2_transform():
    """Pin the full K=2 output for a tiny program: guess prologue,
    one-hot advance points, dispatch writes, consistency epilogue."""
    src = "int x;\nvoid main() { x = 1; assert(x == 1); }\n"
    out = rounds_transform(lower_program(parse(src)), rounds=2, max_ts=0)
    expected = (GOLDEN / "rounds-k2-pretty.txt").read_text()
    assert pretty_program(out) + "\n" == expected


# -- the scalar-fragment restrictions ----------------------------------------------


@pytest.mark.parametrize(
    "source,message",
    [
        ("struct S { int a; } void main() { S* p; p = malloc(S); }", "malloc"),
        ("int x; void main() { x = x / 2; }", "division"),
        ("int x; void main() { atomic { assert(x == 0); } }", "atomic"),
    ],
)
def test_k2_rejects_unversionable_programs(source, message):
    core = lower_program(parse(source))
    with pytest.raises(TransformError, match=message):
        RoundRobinTransformer(rounds=2).transform(core)


def test_k1_accepts_the_full_figure4_fragment():
    core = lower_program(parse("struct S { int a; } void main() { S* p; p = malloc(S); }"))
    rounds_transform(core, rounds=1)  # no versioning, no restriction


def test_rounds_validation():
    with pytest.raises(ValueError):
        RoundRobinTransformer(rounds=0)
    with pytest.raises(ValueError):
        Kiss(strategy="rounds", rounds=0)
    with pytest.raises(ValueError):
        Kiss(strategy="nonsense")


def test_race_checking_is_kiss_only():
    from repro.core.race import RaceTarget

    kiss = Kiss(max_ts=1, strategy="rounds", rounds=2)
    with pytest.raises(ValueError, match="KISS-only"):
        kiss.check_race(parse("int g; void main() { g = 1; }"), RaceTarget.global_var("g"))


# -- guess domains -----------------------------------------------------------------


def test_guess_domain_harvests_stored_values():
    src = """
    int a; int b; bool f;
    void w() { a = 7; f = true; }
    void main() { async w(); a = 1; b = b + 1; }
    """
    t = RoundRobinTransformer(rounds=2, max_ts=1)
    t.transform(lower_program(parse(src)))
    a_vals = {c.value for c in t.domains["a"]}
    assert a_vals == {0, 7, 1}  # init + directly stored literals
    b_vals = {c.value for c in t.domains["b"]}
    assert {0, 1, 7} <= b_vals  # complex write: whole literal pool
    assert {c.value for c in t.domains["f"]} == {False, True}


def test_guess_values_override():
    src = "int a;\nvoid w() { a = 9; }\nvoid main() { async w(); }\n"
    t = RoundRobinTransformer(rounds=2, max_ts=1, guess_values=[4, 5])
    t.transform(lower_program(parse(src)))
    assert {c.value for c in t.domains["a"]} == {4, 5}
