"""Chaos suite: campaigns under deterministic fault injection.

Every test pins a seeded :class:`~repro.faults.FaultPlan` against a
fault-free baseline and checks the robustness invariants of
docs/ROBUSTNESS.md:

* the campaign always terminates, with one result per job in input
  order;
* the ``kiss-campaign/1`` summary stays schema-valid (even partial);
* every job the chaos run did NOT degrade has the same verdict as the
  fault-free run;
* the cache never holds a wrong or unparsable current-schema entry.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro import faults, obs
from repro.campaign import (
    CampaignConfig,
    CampaignScheduler,
    CheckJob,
    ResultCache,
    Telemetry,
    cache_key,
    validate_summary,
)
from repro.campaign.cache import UNCACHED_DETAIL_PREFIXES
from repro.faults import FaultPlan, FaultRule

pytestmark = pytest.mark.chaos

SRC = """
struct EXT { int a; int b; }
void worker(EXT *e) { e->a = 1; }
void main() {
  EXT *e;
  e = malloc(EXT);
  async worker(e);
  e->a = VALUE;
}
"""


def batch(n=16):
    """``n`` fast jobs with distinct cache keys: even indices race on
    EXT.a, odd ones are safe on EXT.b."""
    jobs = []
    for i in range(n):
        jobs.append(
            CheckJob(
                job_id=f"t/{i}",
                driver="t",
                source=SRC.replace("VALUE", str(i + 2)),
                target="EXT.a" if i % 2 == 0 else "EXT.b",
            )
        )
    return jobs


@pytest.fixture(scope="module")
def baseline():
    """job_id -> fault-free verdict for the standard batch."""
    results = CampaignScheduler(CampaignConfig()).run(batch(120))
    verdicts = {r.job_id: r.verdict for r in results}
    assert set(verdicts.values()) == {"error", "safe"}
    return verdicts


def degraded(r):
    return r.detail.startswith(UNCACHED_DETAIL_PREFIXES)


def check_invariants(sched, jobs, results, baseline):
    """The three universal chaos invariants (termination is implied by
    being here at all)."""
    assert [r.job_id for r in results] == [j.job_id for j in jobs]
    validate_summary(sched.summary_doc(results))
    for r in results:
        if not degraded(r):
            assert r.verdict == baseline[r.job_id], r.job_id
        else:
            # Degraded jobs settle as resource-bound (drained remainders,
            # timeouts, crashes) or cancelled (cooperative cancellation).
            assert r.verdict in ("resource-bound", "cancelled"), r.job_id


# -- crash faults ------------------------------------------------------------------


def test_crash_fault_is_retried_to_the_baseline_verdict(baseline):
    jobs = batch(8)
    plan = FaultPlan([FaultRule("mid_check", "crash", job="t/3", attempt=1)])
    sched = CampaignScheduler(CampaignConfig(retries=1, fault_plan=plan))
    tel = Telemetry()
    results = sched.run(jobs, telemetry=tel)
    check_invariants(sched, jobs, results, baseline)
    assert not any(degraded(r) for r in results)  # the retry recovered it
    by_id = {r.job_id: r for r in results}
    assert by_id["t/3"].attempts == 2
    assert plan.fired == [("mid_check", "crash", 4)]  # fourth mid_check hit
    assert [e["job"] for e in tel.of_kind("job_retry")] == ["t/3"]


def test_crash_fault_exhausts_retries_and_degrades(baseline, tmp_path):
    jobs = batch(8)
    plan = FaultPlan([FaultRule("mid_check", "crash", job="t/3")])  # every attempt
    cfg = CampaignConfig(retries=1, fault_plan=plan, cache_dir=str(tmp_path / "c"))
    sched = CampaignScheduler(cfg)
    results = sched.run(jobs)
    check_invariants(sched, jobs, results, baseline)
    by_id = {r.job_id: r for r in results}
    assert degraded(by_id["t/3"]) and by_id["t/3"].detail.startswith("crash:")
    assert by_id["t/3"].attempts == 2  # the retry budget was honored
    assert sum(degraded(r) for r in results) == 1
    # the degraded job was never cached; everything else was
    reloaded = ResultCache(cfg.cache_dir)
    assert reloaded.get(cache_key(jobs[3])) is None
    assert len(reloaded) == len(jobs) - 1 and reloaded.corrupt_lines == 0


def test_seeded_random_crashes_keep_all_invariants(baseline):
    jobs = batch(24)
    plan = FaultPlan([FaultRule("mid_check", "crash", p=0.3)], seed=11)
    sched = CampaignScheduler(CampaignConfig(retries=2, fault_plan=plan))
    results = sched.run(jobs)
    check_invariants(sched, jobs, results, baseline)
    assert plan.fired, "p=0.3 over 24+ hits must fire at least once"


# -- hang and oom faults -----------------------------------------------------------


def test_hang_fault_hits_the_job_timeout(baseline):
    jobs = batch(6)
    plan = FaultPlan([FaultRule("mid_check", "hang", job="t/2", seconds=5.0)])
    sched = CampaignScheduler(CampaignConfig(timeout=0.2, retries=0, fault_plan=plan))
    t0 = time.monotonic()
    results = sched.run(jobs)
    assert time.monotonic() - t0 < 4.0, "the timeout must cut the hang short"
    check_invariants(sched, jobs, results, baseline)
    by_id = {r.job_id: r for r in results}
    assert degraded(by_id["t/2"]) and "timeout" in by_id["t/2"].detail


def test_oom_fault_degrades_to_memory_detail(baseline):
    jobs = batch(6)
    plan = FaultPlan([FaultRule("mid_check", "oom", job="t/4", mb=16)])
    sched = CampaignScheduler(CampaignConfig(retries=1, fault_plan=plan))
    with obs.observing(obs.Recorder()) as rec:
        results = sched.run(jobs)
    check_invariants(sched, jobs, results, baseline)
    by_id = {r.job_id: r for r in results}
    assert degraded(by_id["t/4"]) and by_id["t/4"].detail.startswith("memory:")
    assert by_id["t/4"].attempts == 1  # MemoryError is not retryable
    assert rec.counters.get("memory_ceiling_hits") == 1
    assert rec.counters.get("faults_injected") == 1


@pytest.mark.skipif(not hasattr(signal, "SIGALRM"), reason="needs POSIX")
def test_memory_ceiling_contains_oom_in_pool_workers(baseline):
    """A worker allocating past ``memory_limit`` raises a genuine
    RLIMIT_AS-driven MemoryError inside the worker; the pool survives."""
    pytest.importorskip("resource")
    for line in open("/proc/self/status"):
        if line.startswith("VmSize:"):
            base_mb = int(line.split()[1]) // 1024
            break
    jobs = batch(8)
    plan = FaultPlan([FaultRule("mid_check", "oom", job="t/5", mb=8192)])
    sched = CampaignScheduler(
        CampaignConfig(jobs=2, retries=1, memory_limit=base_mb + 192, fault_plan=plan)
    )
    results = sched.run(jobs)
    check_invariants(sched, jobs, results, baseline)
    by_id = {r.job_id: r for r in results}
    assert degraded(by_id["t/5"]) and by_id["t/5"].detail.startswith("memory:")
    assert sum(degraded(r) for r in results) == 1  # the pool kept working


def test_serial_memory_ceiling_is_restored_after_the_job():
    resource = pytest.importorskip("resource")
    soft_before, _ = resource.getrlimit(resource.RLIMIT_AS)
    jobs = batch(2)
    sched = CampaignScheduler(CampaignConfig(memory_limit=4096))
    sched.run(jobs)
    assert resource.getrlimit(resource.RLIMIT_AS)[0] == soft_before


# -- pool-break faults (BrokenProcessPool recovery) --------------------------------


def test_pool_break_rebuilds_pool_and_resubmits(baseline):
    jobs = batch(12)
    plan = FaultPlan([FaultRule("worker_start", "pool-break", job="t/3", attempt=1)])
    sched = CampaignScheduler(CampaignConfig(jobs=2, retries=1, fault_plan=plan))
    tel = Telemetry()
    results = sched.run(jobs, telemetry=tel)
    check_invariants(sched, jobs, results, baseline)
    assert not any(degraded(r) for r in results)  # everything recovered
    by_id = {r.job_id: r for r in results}
    assert by_id["t/3"].attempts == 2
    retried = [e for e in tel.of_kind("job_retry") if e["job"] == "t/3"]
    assert retried and retried[0]["reason"] == "worker process died"


def test_pool_break_every_attempt_exhausts_the_retry_budget(baseline):
    jobs = batch(12)
    plan = FaultPlan([FaultRule("worker_start", "pool-break", job="t/11")])
    sched = CampaignScheduler(CampaignConfig(jobs=2, retries=1, fault_plan=plan))
    tel = Telemetry()
    results = sched.run(jobs, telemetry=tel)
    check_invariants(sched, jobs, results, baseline)
    by_id = {r.job_id: r for r in results}
    assert degraded(by_id["t/11"])
    assert "worker process died" in by_id["t/11"].detail
    assert by_id["t/11"].attempts == 2  # retries=1 -> exactly two attempts
    assert len([e for e in tel.of_kind("job_retry") if e["job"] == "t/11"]) == 1
    # collateral in-flight jobs may burn attempts too, but they either
    # recover to the baseline verdict or degrade the same graceful way
    # (check_invariants above); the campaign itself never wedges.


def test_pool_submission_fault_retries_then_degrades(baseline):
    jobs = batch(6)
    plan = FaultPlan([FaultRule("pool_submit", "crash", job="t/0")])  # every attempt
    sched = CampaignScheduler(CampaignConfig(jobs=2, retries=1, fault_plan=plan))
    tel = Telemetry()
    results = sched.run(jobs, telemetry=tel)
    check_invariants(sched, jobs, results, baseline)
    by_id = {r.job_id: r for r in results}
    assert degraded(by_id["t/0"]) and "pool submission failed" in by_id["t/0"].detail
    assert by_id["t/0"].attempts == 2  # retries=1 -> exactly two refused submissions
    assert sum(degraded(r) for r in results) == 1
    retried = [e for e in tel.of_kind("job_retry") if e["job"] == "t/0"]
    assert len(retried) == 1 and retried[0]["reason"] == "pool submission failed"


# -- cache faults ------------------------------------------------------------------


def test_torn_write_never_yields_a_wrong_cache_entry(baseline, tmp_path):
    d = str(tmp_path / "c")
    jobs = batch(6)
    plan = FaultPlan([FaultRule("cache_append", "torn-write", hits=(2,))])
    sched = CampaignScheduler(CampaignConfig(cache_dir=d, fault_plan=plan))
    results = sched.run(jobs)
    check_invariants(sched, jobs, results, baseline)
    # the torn line merged with its successor: both entries degrade to
    # misses, and the loader flags exactly one corrupt line
    reloaded = ResultCache(d)
    assert reloaded.corrupt_lines == 1
    assert len(reloaded) == len(jobs) - 2
    for job in jobs:  # whatever survived is correct, never wrong
        hit = reloaded.get(cache_key(job))
        if hit is not None:
            assert hit.verdict == baseline[job.job_id]
    # a fault-free re-run recomputes the lost entries and repairs the file
    sched2 = CampaignScheduler(CampaignConfig(cache_dir=d))
    results2 = sched2.run(jobs)
    assert [r.verdict for r in results2] == [baseline[j.job_id] for j in jobs]
    assert sum(1 for r in results2 if r.cache_hit) == len(jobs) - 2
    repaired = ResultCache(d)
    assert len(repaired) == len(jobs) and repaired.corrupt_lines == 1


def test_cache_append_failure_keeps_the_campaign_healthy(baseline, tmp_path):
    d = str(tmp_path / "c")
    jobs = batch(6)
    plan = FaultPlan([FaultRule("cache_append", "crash")])  # every append fails
    sched = CampaignScheduler(CampaignConfig(cache_dir=d, fault_plan=plan))
    results = sched.run(jobs)
    check_invariants(sched, jobs, results, baseline)
    assert not any(degraded(r) for r in results)
    assert sched.cache.write_errors == len(jobs)
    assert len(ResultCache(d)) == 0  # nothing persisted, nothing corrupt


def test_concurrent_writers_never_tear_cache_lines(tmp_path):
    """Satellite: two processes appending to one cache file through the
    flock-guarded path produce only whole, parseable, schema-tagged
    lines."""
    d = str(tmp_path / "c")
    os.makedirs(d)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    writer = """
import sys
sys.path.insert(0, sys.argv[1])
from repro.campaign.cache import CACHE_FILE, SCHEMA
from repro.campaign.jobs import JobResult
from repro.ioutil import locked_append
import json, os
who = sys.argv[3]
path = os.path.join(sys.argv[2], CACHE_FILE)
for i in range(120):
    r = JobResult(job_id=f"{who}/{i}", driver=who, prop="race",
                  target="EXT.a", verdict="safe", detail="x" * 4096)
    locked_append(path, json.dumps(
        {"schema": SCHEMA, "key": f"{who}-{i}", "result": r.to_dict()}) + "\\n")
"""
    procs = [
        subprocess.Popen([sys.executable, "-c", writer, src, d, who])
        for who in ("w1", "w2")
    ]
    assert all(p.wait(timeout=60) == 0 for p in procs)
    cache = ResultCache(d)
    assert cache.corrupt_lines == 0 and cache.stale_lines == 0
    assert len(cache) == 240
    with open(cache.path) as f:
        assert sum(1 for _ in f) == 240


# -- telemetry faults --------------------------------------------------------------


def test_telemetry_write_fault_degrades_to_memory_only(baseline, tmp_path):
    path = str(tmp_path / "events.jsonl")
    jobs = batch(4)
    plan = FaultPlan([FaultRule("telemetry_emit", "crash", hits=(3,))])
    sched = CampaignScheduler(
        CampaignConfig(telemetry_path=path, fault_plan=plan)
    )
    results = sched.run(jobs)
    check_invariants(sched, jobs, results, baseline)
    assert not any(degraded(r) for r in results)
    tel = sched.last_telemetry
    assert tel.write_errors == 1
    # the file stopped at the second event; memory kept the full stream
    file_events = [json.loads(line) for line in open(path)]
    assert len(file_events) == 2
    assert tel.events[-1]["event"] == "campaign_end"
    assert len(tel.events) > len(file_events)


# -- deadline ----------------------------------------------------------------------


def test_zero_deadline_skips_everything_gracefully(baseline):
    jobs = batch(10)
    sched = CampaignScheduler(CampaignConfig(deadline=0.0))
    with obs.observing(obs.Recorder()) as rec:
        results = sched.run(jobs)
    check_invariants(sched, jobs, results, baseline)
    assert sched.deadline_hit
    assert all(r.detail.startswith("deadline:") and r.attempts == 0 for r in results)
    doc = sched.summary_doc(results)
    assert doc["completed"] == 0 and doc["interrupted_jobs"] == len(jobs)
    assert rec.counters.get("jobs_interrupted") == len(jobs)


@pytest.mark.parametrize("workers", [1, 2])
def test_deadline_mid_campaign_drains_and_degrades_remainder(baseline, workers):
    jobs = batch(40)
    # a uniform hang paces every job, so the deadline deterministically
    # lands with work still pending whatever the worker count
    plan = FaultPlan([FaultRule("mid_check", "hang", seconds=0.03)])
    sched = CampaignScheduler(
        CampaignConfig(jobs=workers, deadline=0.2, fault_plan=plan)
    )
    tel = Telemetry()
    results = sched.run(jobs, telemetry=tel)
    check_invariants(sched, jobs, results, baseline)
    assert sched.deadline_hit
    # Past the deadline, in-flight jobs are cooperatively cancelled and
    # the never-submitted remainder drains with the deadline: detail.
    skipped = [r for r in results
               if r.detail.startswith(("deadline:", "cancelled"))]
    completed = [r for r in results if not degraded(r)]
    assert skipped and completed, "the deadline should land mid-campaign"
    assert len(tel.of_kind("campaign_deadline")) == 1
    doc = sched.summary_doc(results)
    assert doc["deadline_hit"] and doc["interrupted_jobs"] == len(skipped)


# -- graceful interrupt ------------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2])
def test_sigint_drains_and_keeps_partial_results(baseline, workers):
    jobs = batch(120)
    sched = CampaignScheduler(CampaignConfig(jobs=workers))
    tel = Telemetry()
    delay = 0.05 if workers == 1 else 0.15
    timer = threading.Timer(delay, os.kill, (os.getpid(), signal.SIGINT))
    timer.start()
    try:
        results = sched.run(jobs, telemetry=tel)
    finally:
        timer.cancel()
    assert sched.interrupted == "SIGINT", "the signal must land mid-campaign"
    check_invariants(sched, jobs, results, baseline)
    skipped = [r for r in results if r.detail.startswith("interrupted: SIGINT")]
    completed = [r for r in results if not degraded(r)]
    assert skipped and completed
    assert len(tel.of_kind("campaign_interrupted")) == 1
    doc = sched.summary_doc(results)
    assert doc["interrupted"] == "SIGINT"
    assert doc["completed"] == len(completed) and doc["interrupted_jobs"] == len(skipped)
    # SIGINT handling is scoped to the run: the default handler is back
    assert signal.getsignal(signal.SIGINT) is signal.default_int_handler


def test_sigterm_is_handled_like_sigint(baseline):
    jobs = batch(120)
    sched = CampaignScheduler(CampaignConfig())
    timer = threading.Timer(0.05, os.kill, (os.getpid(), signal.SIGTERM))
    timer.start()
    try:
        results = sched.run(jobs)
    finally:
        timer.cancel()
    assert sched.interrupted == "SIGTERM"
    check_invariants(sched, jobs, results, baseline)
    assert any(r.detail.startswith("interrupted: SIGTERM") for r in results)


def test_interrupted_campaign_resumes_from_cache(baseline, tmp_path):
    """In-process resume: interrupt a cached campaign, then re-run —
    completed jobs are hits, only the remainder is recomputed."""
    d = str(tmp_path / "c")
    jobs = batch(120)
    first = CampaignScheduler(CampaignConfig(cache_dir=d))
    timer = threading.Timer(0.05, os.kill, (os.getpid(), signal.SIGINT))
    timer.start()
    try:
        results1 = first.run(jobs)
    finally:
        timer.cancel()
    assert first.interrupted == "SIGINT"
    completed = sum(1 for r in results1 if not degraded(r))
    assert 0 < completed < len(jobs)
    second = CampaignScheduler(CampaignConfig(cache_dir=d))
    results2 = second.run(jobs)
    assert second.interrupted is None
    assert [r.verdict for r in results2] == [baseline[j.job_id] for j in jobs]
    assert sum(1 for r in results2 if r.cache_hit) == completed
    assert ResultCache(d).corrupt_lines == 0


# -- the server path: the same invariants for served traffic ----------------------


def serve_payload(job):
    return {"program": job.source, "prop": job.prop, "target": job.target,
            "driver": job.driver}


def serve_batch(service, jobs, tenant="t"):
    """Submit a batch through the service (ids line up with ``batch()``:
    tenant ``t`` and per-tenant sequence numbers reproduce ``t/i``, so
    job-pinned fault rules hit the same jobs) and wait out the results."""
    from repro.campaign import JobResult

    docs = [service.submit(tenant, serve_payload(j))[1] for j in jobs]
    results = []
    for job, doc in zip(jobs, docs):
        final = service.get(doc["job"], wait_s=60)
        assert final is not None and final["state"] == "done", job.job_id
        r = final["result"]
        results.append(JobResult(
            job_id=doc["job"], driver=job.driver, prop=job.prop, target=job.target,
            verdict=r["verdict"], error_kind=r["error_kind"],
            attempts=r["attempts"], detail=r["detail"], wall_s=r["wall_s"],
        ))
    return results


def check_serve_invariants(service, jobs, results, baseline):
    """The chaos invariants, server flavor: one schema-valid event
    stream per submission ending in ``done``, every non-degraded verdict
    equal to the fault-free one, and no wrong or corrupt cache entry."""
    from repro.schemas import validate_serve_event

    assert len(results) == len(jobs)
    for job, r in zip(jobs, results):
        events, finished = service.events_since(r.job_id, 0)
        assert finished and events[-1]["event"] == "done", r.job_id
        for e in events:
            validate_serve_event(e)
        if not degraded(r):
            assert r.verdict == baseline[job.job_id], job.job_id
        else:
            assert r.verdict == "resource-bound", job.job_id


def serve_service(tmp_path=None, plan=None, **kw):
    from repro.serve import CheckService, ServeConfig

    return CheckService(ServeConfig(
        jobs=1, cache_dir=None if tmp_path is None else str(tmp_path / "c"),
        fault_plan=plan, retries=kw.pop("retries", 1),
        quota_rate=500.0, quota_burst=500, **kw))


def test_serve_crash_fault_is_retried_to_the_baseline_verdict(baseline):
    jobs = batch(8)
    plan = FaultPlan([FaultRule("mid_check", "crash", job="t/3", attempt=1)])
    svc = serve_service(plan=plan)
    try:
        results = serve_batch(svc, jobs)
        check_serve_invariants(svc, jobs, results, baseline)
        assert not any(degraded(r) for r in results)
        by_id = {r.job_id: r for r in results}
        assert by_id["t/3"].attempts == 2
        events, _ = svc.events_since("t/3", 0)
        assert [e["event"] for e in events] == ["queued", "started", "retry",
                                                "started", "done"]
    finally:
        svc.stop()


def test_serve_crash_fault_exhausts_retries_and_degrades(baseline, tmp_path):
    jobs = batch(8)
    plan = FaultPlan([FaultRule("mid_check", "crash", job="t/3")])  # every attempt
    svc = serve_service(tmp_path, plan=plan)
    try:
        results = serve_batch(svc, jobs)
        check_serve_invariants(svc, jobs, results, baseline)
        by_id = {r.job_id: r for r in results}
        assert degraded(by_id["t/3"]) and by_id["t/3"].detail.startswith("crash:")
        assert sum(degraded(r) for r in results) == 1
    finally:
        svc.stop()
    # the degraded job was never cached; everything else was, correctly
    reloaded = ResultCache(str(tmp_path / "c"))
    assert reloaded.get(cache_key(jobs[3])) is None
    assert len(reloaded) == len(jobs) - 1 and reloaded.corrupt_lines == 0
    for job in jobs:
        hit = reloaded.get(cache_key(job))
        if hit is not None:
            assert hit.verdict == baseline[job.job_id]


def test_serve_torn_cache_write_never_yields_a_wrong_entry(baseline, tmp_path):
    jobs = batch(6)
    plan = FaultPlan([FaultRule("cache_append", "torn-write", hits=(2,))])
    svc = serve_service(tmp_path, plan=plan)
    try:
        results = serve_batch(svc, jobs)
        check_serve_invariants(svc, jobs, results, baseline)
        assert not any(degraded(r) for r in results)  # verdicts unharmed
    finally:
        svc.stop()
    reloaded = ResultCache(str(tmp_path / "c"))
    assert reloaded.corrupt_lines == 1 and len(reloaded) == len(jobs) - 2
    for job in jobs:  # whatever survived is correct, never wrong
        hit = reloaded.get(cache_key(job))
        if hit is not None:
            assert hit.verdict == baseline[job.job_id]


def test_serve_telemetry_fault_keeps_streams_intact(baseline, tmp_path):
    path = str(tmp_path / "events.jsonl")
    jobs = batch(4)
    plan = FaultPlan([FaultRule("telemetry_emit", "crash", hits=(2,))])
    svc = serve_service(plan=plan, telemetry_path=path)
    try:
        results = serve_batch(svc, jobs)
        check_serve_invariants(svc, jobs, results, baseline)
        assert not any(degraded(r) for r in results)
        assert svc.stats_doc()["telemetry_write_errors"] == 1
    finally:
        svc.stop()


@pytest.mark.slow
def test_cli_serve_with_fault_plan_keeps_chaos_invariants(baseline, tmp_path):
    """Acceptance: a fault plan injected via the serve CLI never yields
    a wrong verdict or a corrupt cache, for real HTTP traffic."""
    from repro.schemas import validate_serve_event
    from repro.serve import ServeClient

    cache_dir = str(tmp_path / "cache")
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--cache-dir", cache_dir, "--retries", "2",
         "--quota-rate", "500", "--quota-burst", "500",
         "--inject", "mid_check:crash:p=0.3", "--inject-seed", "7"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True)
    try:
        ready = json.loads(proc.stdout.readline())
        client = ServeClient("127.0.0.1", ready["port"], tenant="t")
        jobs = batch(12)
        for job in jobs:
            final = client.check(job.source, prop=job.prop, target=job.target,
                                 driver=job.driver, timeout=120)
            r = final["result"]
            events = list(client.events(final["job"]))
            assert events[-1]["event"] == "done"
            for e in events:
                validate_serve_event(e)
            if r["detail"].startswith(UNCACHED_DETAIL_PREFIXES):
                assert r["verdict"] == "resource-bound", job.job_id
            else:
                assert r["verdict"] == baseline[job.job_id], job.job_id
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0, proc.stderr.read()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
    # the cache holds only whole, correct, current-schema entries
    reloaded = ResultCache(cache_dir)
    assert reloaded.corrupt_lines == 0 and reloaded.stale_lines == 0
    for job in jobs:
        hit = reloaded.get(cache_key(job))
        if hit is not None:
            assert hit.verdict == baseline[job.job_id], job.job_id


# -- end-to-end CLI: SIGINT, exit code 130, summary artifact, resume ---------------


@pytest.mark.slow
def test_cli_sigint_exit_code_and_cache_resume(tmp_path):
    """The acceptance smoke: SIGINT a real `repro campaign` mid-run ->
    exit 130 plus a schema-valid partial summary; an immediate re-run
    resumes >= 90% of the completed work from the cache."""
    cache_dir = str(tmp_path / "cache")
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)

    def campaign(summary, extra=()):
        return [
            sys.executable, "-m", "repro", "campaign",
            "--drivers", "moufiltr,imca,tracedrv", "--jobs", "2",
            "--cache-dir", cache_dir, "--summary-json", summary, *extra,
        ]

    s1 = str(tmp_path / "summary1.json")
    proc = subprocess.Popen(campaign(s1), env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)
    cache_file = os.path.join(cache_dir, "results.jsonl")
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:  # wait for >= 2 completed jobs
        if os.path.exists(cache_file) and sum(1 for _ in open(cache_file)) >= 2:
            break
        if proc.poll() is not None:
            pytest.fail(f"campaign finished before the interrupt: {proc.communicate()}")
        time.sleep(0.05)
    proc.send_signal(signal.SIGINT)
    _, stderr = proc.communicate(timeout=120)
    assert proc.returncode == 130, stderr
    assert "re-run to resume" in stderr

    doc1 = validate_summary(json.load(open(s1)))
    assert doc1["interrupted"] == "SIGINT"
    assert doc1["completed"] >= 2 and doc1["interrupted_jobs"] > 0
    cached = sum(1 for _ in open(cache_file))
    assert cached >= 2

    s2 = str(tmp_path / "summary2.json")
    done = subprocess.run(campaign(s2), env=env, capture_output=True, text=True,
                          timeout=300)
    assert done.returncode in (0, 1, 2), done.stderr  # completed, not interrupted
    doc2 = validate_summary(json.load(open(s2)))
    assert doc2["interrupted"] is None and doc2["interrupted_jobs"] == 0
    # every entry the interrupted run persisted is skipped on resume
    assert doc2["cache"]["hits"] >= max(1, int(0.9 * cached))
