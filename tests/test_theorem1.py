"""Property-based tests for Theorem 1 (completeness / coverage).

Two directions, over randomly generated small 2-thread programs:

* **No false errors**: if KISS reports an assertion violation (any
  ``max_ts``), the full-interleaving concurrent checker also finds an
  error.
* **Coverage**: for a 2-thread program, every execution with at most two
  context switches is balanced (§2), so if the concurrent checker finds
  an error within a 2-switch budget, KISS with ``max_ts = 1`` (enough to
  park the single forked thread) must find it too.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.concheck import check_concurrent
from repro.core.checker import Kiss
from repro.lang import parse_core

pytestmark = pytest.mark.slow  # heavy property-based suite; deselect with -m "not slow"


GLOBALS = ["g0", "g1"]


def _stmt(kind, var, const):
    if kind == 0:
        return f"{var} = {const};"
    if kind == 1:
        return f"{var} = {var} + 1;"
    if kind == 2:
        return f"assume({var} == {const});"
    if kind == 3:
        return f"assert({var} != {const});"
    return "skip;"


stmt_strategy = st.tuples(
    st.integers(min_value=0, max_value=4),
    st.sampled_from(GLOBALS),
    st.integers(min_value=0, max_value=2),
).map(lambda t: _stmt(*t))


@st.composite
def program_strategy(draw):
    worker = draw(st.lists(stmt_strategy, min_size=1, max_size=3))
    main_pre = draw(st.lists(stmt_strategy, min_size=0, max_size=2))
    main_post = draw(st.lists(stmt_strategy, min_size=1, max_size=3))
    return (
        "int g0; int g1;\n"
        "void worker() { " + " ".join(worker) + " }\n"
        "void main() { "
        + " ".join(main_pre)
        + " async worker(); "
        + " ".join(main_post)
        + " }"
    )


@settings(max_examples=40, deadline=None)
@given(program_strategy(), st.integers(min_value=0, max_value=2))
def test_kiss_never_reports_false_errors(src, max_ts):
    prog = parse_core(src)
    kiss = Kiss(max_ts=max_ts, max_states=20_000, map_traces=False)
    r = kiss.check_assertions(prog)
    if r.is_error:
        ground = check_concurrent(parse_core(src), max_states=100_000)
        assert ground.is_error, f"KISS found a phantom error in:\n{src}"


@settings(max_examples=40, deadline=None)
@given(program_strategy())
def test_kiss_covers_two_context_switches(src):
    prog = parse_core(src)
    ground = check_concurrent(prog, max_states=100_000, context_bound=2)
    if ground.is_error and ground.violation_kind == "assert":
        r = Kiss(max_ts=1, max_states=200_000, map_traces=False).check_assertions(
            parse_core(src)
        )
        assert r.is_error, f"KISS missed a 2-switch error in:\n{src}"


@settings(max_examples=25, deadline=None)
@given(program_strategy())
def test_safe_under_kiss_when_concurrent_safe(src):
    """Soundness of the *checkers* (not of KISS): if the concurrent program
    has no error at all, KISS must not invent one."""
    prog = parse_core(src)
    ground = check_concurrent(prog, max_states=100_000)
    if ground.is_safe:
        for max_ts in (0, 1):
            r = Kiss(max_ts=max_ts, max_states=200_000, map_traces=False).check_assertions(
                parse_core(src)
            )
            assert not r.is_error, f"KISS found an error in a safe program:\n{src}"


@settings(max_examples=25, deadline=None)
@given(program_strategy(), st.integers(min_value=0, max_value=2))
def test_every_kiss_error_trace_replays(src, max_ts):
    """End-to-end completeness: not just *some* concurrent error exists —
    the specific mapped trace must replay under concurrent semantics."""
    prog = parse_core(src)
    kiss = Kiss(max_ts=max_ts, max_states=20_000, validate_traces=True)
    r = kiss.check_assertions(prog)
    if r.is_error:
        assert r.trace_validated is True, f"mapped trace did not replay for:\n{src}"


@st.composite
def multi_spawn_program(draw):
    """Programs with up to two asyncs (for the both-directions test)."""
    w1 = draw(st.lists(stmt_strategy, min_size=1, max_size=2))
    w2 = draw(st.lists(stmt_strategy, min_size=1, max_size=2))
    body = draw(st.lists(stmt_strategy, min_size=1, max_size=2))
    return (
        "int g0; int g1;\n"
        "void w1() { " + " ".join(w1) + " }\n"
        "void w2() { " + " ".join(w2) + " }\n"
        "void main() { async w1(); async w2(); " + " ".join(body) + " }"
    )


@settings(max_examples=30, deadline=None)
@given(multi_spawn_program())
def test_theorem1_both_directions(src):
    """Theorem 1 as stated: with ts effectively unbounded (>= #asyncs),
    Check(s) goes wrong iff some *balanced* execution of s goes wrong."""
    balanced = check_concurrent(parse_core(src), max_states=200_000, balanced_only=True)
    kiss = Kiss(max_ts=2, max_states=400_000, map_traces=False).check_assertions(
        parse_core(src)
    )
    if balanced.exhausted or kiss.exhausted:
        return
    if balanced.violation_kind not in (None, "assert"):
        return  # theorem is about assertion failures
    assert kiss.is_error == balanced.is_error, src
