"""Swarm-tiled lazy campaigns: the tiling is deterministic and a true
partition complement, the union of an exhaustive tiling reproduces the
monolithic lazy verdict on every corpus program, aggregation follows the
error-wins / safe-at-bound rules, and an interrupted swarm resumes from
the cache exactly where it stopped."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignScheduler,
    JobResult,
    SwarmReport,
    TilePlan,
    aggregate,
    cache_key,
    plan_tiles,
    run_swarm_campaign,
    swarm_jobs,
)
from repro.core.checker import Kiss
from repro.faults import FaultPlan, FaultRule
from repro.lang import parse

CORPUS = Path(__file__).parent / "fuzz_corpus"
MANIFEST = {
    e["file"]: e
    for e in json.loads((CORPUS / "manifest.json").read_text())["programs"]
}

THREE_SWITCH = (CORPUS / "three-switch.kp").read_text()

#: the monolithic lazy K=3 verdicts pinned by tests/test_lazy.py.
LAZY_K3 = {
    "two-forks-error.kp": "error",
    "safe-locked.kp": "safe",
    "loop-safe.kp": "safe",
    "error-locked.kp": "error",
    "delayed-worker.kp": "error",
    "three-switch.kp": "error",
    "increment-chain.kp": "error",
}


def result(i, verdict, detail=""):
    return JobResult(job_id=f"swarm/tile{i:02d}", driver="swarm",
                     prop="assertion", target=None, verdict=verdict,
                     detail=detail)


# -- the tiling --------------------------------------------------------------------


def test_tiling_is_deterministic_per_seed():
    a = plan_tiles(THREE_SWITCH, tiles=8, rounds=3, seed=0)
    b = plan_tiles(THREE_SWITCH, tiles=8, rounds=3, seed=0)
    assert a == b  # byte-identical plan, so tile jobs re-hit the cache
    c = plan_tiles(THREE_SWITCH, tiles=8, rounds=3, seed=1)
    assert c.tiles != a.tiles, "a different seed deals different classes"
    assert c.cs_points == a.cs_points  # ...over the same point space


def test_tiles_complement_a_partition():
    """Tile i is everything except class i: each point is missing from
    exactly one tile, and tile ∪ missing-class == the full point set."""
    plan = plan_tiles(THREE_SWITCH, tiles=8, rounds=3, seed=0)
    points = set(plan.cs_points)
    assert len(plan.tiles) == 8 <= len(points)
    for tile in plan.tiles:
        assert set(tile) < points  # a strict subset: its class is absent
    for p in points:
        assert sum(1 for tile in plan.tiles if p not in tile) == 1


def test_exhaustive_flag_tracks_the_pigeonhole_bound():
    # three-switch: T=2 instances, so (K-1)*T = 4 at K=3
    assert plan_tiles(THREE_SWITCH, tiles=8, rounds=3).exhaustive
    assert not plan_tiles(THREE_SWITCH, tiles=4, rounds=3).exhaustive
    assert plan_tiles(THREE_SWITCH, tiles=4, rounds=3).instances == 2


def test_tiny_point_space_degenerates_to_one_monolithic_tile():
    plan = plan_tiles("int x; void main() { x = 1; }", tiles=8, rounds=3)
    assert len(plan.tiles) == 1 and plan.tiles[0] == plan.cs_points


def test_tiles_le_one_degenerates_to_one_monolithic_tile():
    plan = plan_tiles(THREE_SWITCH, tiles=1, rounds=3)
    assert len(plan.tiles) == 1 and plan.tiles[0] == plan.cs_points


# -- aggregation rules -------------------------------------------------------------


def plan_of(n):
    return TilePlan(rounds=3, seed=0, cs_points=["0:1", "0:2", "1:1"],
                    instances=2, tiles=[["0:1"]] * n, exhaustive=False)


def test_aggregate_error_wins_and_lowest_tile_is_the_witness():
    rs = [result(0, "safe"), result(1, "error"), result(2, "error")]
    rep = aggregate(THREE_SWITCH, plan_of(3), rs, validate=False)
    assert rep.verdict == "error" and rep.witness_tile == 1
    assert rep.is_error and "witness tile 1" in rep.summary()


def test_aggregate_error_beats_resource_bound():
    rs = [result(0, "resource-bound", "timeout: 1s"), result(1, "error")]
    rep = aggregate(THREE_SWITCH, plan_of(2), rs, validate=False)
    assert rep.verdict == "error" and rep.witness_tile == 1


def test_aggregate_all_safe_is_safe_at_the_tiling_bound():
    rep = aggregate(THREE_SWITCH, plan_of(2),
                    [result(0, "safe"), result(1, "safe")], validate=False)
    assert rep.verdict == "safe" and not rep.is_error
    assert "tiling-bounded" in rep.summary()


def test_aggregate_leftover_resource_bound_is_inconclusive():
    rs = [result(0, "safe"), result(1, "resource-bound", "interrupted: SIGINT")]
    rep = aggregate(THREE_SWITCH, plan_of(2), rs, validate=False)
    assert rep.verdict == "resource-bound"
    assert "inconclusive" in rep.summary()


def test_swarm_jobs_key_on_their_tile():
    plan = plan_tiles(THREE_SWITCH, tiles=8, rounds=3)
    jobs = swarm_jobs(THREE_SWITCH, plan)
    assert [j.job_id for j in jobs] == [f"swarm/tile{i:02d}" for i in range(8)]
    assert all(j.prop == "assertion" for j in jobs)
    assert len({cache_key(j) for j in jobs}) == len(jobs)


# -- the union-of-tiles differential: swarm == monolithic lazy ---------------------


@pytest.mark.parametrize("name", sorted(LAZY_K3))
def test_exhaustive_swarm_matches_monolithic_lazy(name):
    """8 tiles > (K-1)*T for every corpus program, so the tile union is
    the whole lazy schedule set and the swarm verdict must equal the
    monolithic ``Kiss(strategy="lazy", rounds=3)`` one — with the same
    replay-validated trace quality on errors."""
    source = (CORPUS / name).read_text()
    plan = plan_tiles(source, tiles=8, rounds=3, seed=0)
    assert plan.exhaustive, name
    report = run_swarm_campaign(source, tiles=8, rounds=3, seed=0)
    assert report.verdict == LAZY_K3[name], f"{name}: {report.summary()}"
    if report.is_error:
        assert report.trace_validated is True, name
        assert report.trace, "the witnessing tile must yield a concrete trace"
    else:
        assert "schedule-exhaustive" in report.summary()


def test_sparse_tiling_only_weakens_safely():
    """Fewer tiles than the bound can only *lose* schedules: a sparse
    swarm may miss the three-switch error, but each erring tile it does
    find is a genuine error of the full program."""
    report = run_swarm_campaign(THREE_SWITCH, tiles=2, rounds=3, seed=0)
    assert report.verdict in ("safe", "error"), report.summary()
    if report.is_error:
        assert report.trace_validated is True
    tile = plan_tiles(THREE_SWITCH, tiles=2, rounds=3, seed=0).tiles[0]
    r = Kiss(strategy="lazy", rounds=3, cs_tile=tile,
             validate_traces=True).check_assertions(parse(THREE_SWITCH))
    if r.is_error:
        assert r.trace_validated is True


# -- SIGINT mid-swarm: graceful drain and cache resume -----------------------------


def test_interrupted_swarm_resumes_from_cache(tmp_path):
    """Interrupt a paced swarm mid-run, then re-run on the same cache:
    every tile the first run completed is a hit, and the resumed swarm
    still reaches the monolithic verdict with a validated trace."""
    d = str(tmp_path / "c")
    pace = FaultPlan([FaultRule("mid_check", "hang", seconds=0.05)])
    cfg = CampaignConfig(jobs=1, cache_dir=d, fault_plan=pace)
    timer = threading.Timer(0.18, os.kill, (os.getpid(), signal.SIGINT))
    timer.start()
    try:
        first = run_swarm_campaign(THREE_SWITCH, tiles=12, rounds=3, seed=0,
                                   campaign_config=cfg)
    finally:
        timer.cancel()
    assert first.interrupted == "SIGINT", "the signal must land mid-swarm"
    done = [r for r in first.results
            if not r.detail.startswith("interrupted")]
    skipped = [r for r in first.results
               if r.detail.startswith("interrupted")]
    assert done and skipped, "the interrupt should split the tile batch"

    second = run_swarm_campaign(THREE_SWITCH, tiles=12, rounds=3, seed=0,
                                campaign_config=CampaignConfig(jobs=1, cache_dir=d))
    assert second.interrupted is None
    hits = sum(1 for r in second.results if r.cache_hit)
    assert hits == len(done), "every completed tile must resume from cache"
    assert second.verdict == "error" and second.trace_validated is True


@pytest.mark.slow
def test_cli_swarm_sigint_resumes_with_cache_hits(tmp_path):
    """The CLI acceptance smoke: SIGINT `repro campaign --swarm` mid-run
    -> exit 130; the re-run resumes >= 90% of the cached tiles and ends
    with the swarm error verdict (exit 1) and a replay-validated trace."""
    cache_dir = str(tmp_path / "cache")
    prog = str(tmp_path / "p.kp")
    Path(prog).write_text(THREE_SWITCH)
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)

    def swarm(extra=()):
        return [sys.executable, "-m", "repro", "campaign", "--swarm", prog,
                "--tiles", "12", "--jobs", "1", "--cache-dir", cache_dir,
                *extra]

    proc = subprocess.Popen(swarm(["--inject", "mid_check:hang:seconds=0.1"]),
                            env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)
    cache_file = os.path.join(cache_dir, "results.jsonl")
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:  # wait for >= 2 completed tiles
        if os.path.exists(cache_file) and sum(1 for _ in open(cache_file)) >= 2:
            break
        if proc.poll() is not None:
            pytest.fail(f"swarm finished before the interrupt: {proc.communicate()}")
        time.sleep(0.02)
    proc.send_signal(signal.SIGINT)
    _, stderr = proc.communicate(timeout=120)
    assert proc.returncode == 130, stderr
    assert "re-run to resume" in stderr
    cached = sum(1 for _ in open(cache_file))
    assert cached >= 2

    done = subprocess.run(swarm(), env=env, capture_output=True, text=True,
                          timeout=300)
    assert done.returncode == 1, done.stderr  # the three-switch error
    assert "replay-validated" in done.stdout

    # the CLI shares cache keys with the library: a third, in-process
    # resume must hit every tile the interrupted CLI run persisted
    third = run_swarm_campaign(
        THREE_SWITCH, tiles=12, rounds=3, seed=0,
        campaign_config=CampaignConfig(jobs=1, cache_dir=cache_dir))
    hits = sum(1 for r in third.results if r.cache_hit)
    assert hits >= max(1, int(0.9 * cached)), (hits, cached)
    assert third.verdict == "error" and third.trace_validated is True


# -- the scheduler path: swarm jobs are ordinary jobs ------------------------------


def test_swarm_jobs_ride_the_ordinary_scheduler(tmp_path):
    plan = plan_tiles(THREE_SWITCH, tiles=4, rounds=2, seed=0)
    jobs = swarm_jobs(THREE_SWITCH, plan)
    sched = CampaignScheduler(CampaignConfig(cache_dir=str(tmp_path / "c")))
    results = sched.run(jobs)
    assert [r.job_id for r in results] == [j.job_id for j in jobs]
    rep = aggregate(THREE_SWITCH, plan, results, validate=False)
    assert isinstance(rep, SwarmReport)
    assert rep.verdict == "safe", "K=2 cannot reach the 3-switch error"
    again = CampaignScheduler(CampaignConfig(cache_dir=str(tmp_path / "c")))
    assert all(r.cache_hit for r in again.run(jobs))
