"""Tests for the command-line interface."""

import pytest

from repro.cli import EXIT_BOUND, EXIT_ERROR, EXIT_SAFE, EXIT_USAGE, main

SAFE_SRC = "void main() { assert(true); }"
BUGGY_SRC = """
bool flag;
void worker() { flag = true; }
void main() { async worker(); assert(!flag); }
"""
RACY_SRC = """
struct EXT { int a; int b; }
int g;
void worker(EXT *e) { e->a = 1; g = 1; }
void main() {
  EXT *e;
  e = malloc(EXT);
  async worker(e);
  e->a = 2;
}
"""


@pytest.fixture
def src_file(tmp_path):
    def write(src):
        p = tmp_path / "prog.kp"
        p.write_text(src)
        return str(p)

    return write


def test_check_safe(src_file, capsys):
    assert main(["check", src_file(SAFE_SRC)]) == EXIT_SAFE
    assert "safe" in capsys.readouterr().out


def test_check_error_prints_trace(src_file, capsys):
    assert main(["check", src_file(BUGGY_SRC)]) == EXIT_ERROR
    out = capsys.readouterr().out
    assert "error" in out
    assert "t0" in out  # trace lines


def test_check_with_validation(src_file, capsys):
    assert main(["check", src_file(BUGGY_SRC), "--validate"]) == EXIT_ERROR
    assert "replayed against concurrent semantics: ok" in capsys.readouterr().out


def test_check_resource_bound(src_file):
    assert main(["check", src_file(BUGGY_SRC), "--max-states", "5"]) == EXIT_BOUND


def test_race_on_field(src_file, capsys):
    assert main(["race", src_file(RACY_SRC), "--target", "EXT.a"]) == EXIT_ERROR
    assert "race" in capsys.readouterr().out


def test_race_on_global(src_file):
    src = """
    int g;
    void worker() { g = 2; }
    void main() { async worker(); g = 1; }
    """
    assert main(["race", src_file(src), "--target", "g"]) == EXIT_ERROR


def test_race_no_race(src_file):
    assert main(["race", src_file(RACY_SRC), "--target", "EXT.b"]) == EXIT_SAFE


def test_race_all_fields(src_file, capsys):
    assert main(["race", src_file(RACY_SRC), "--all-fields", "EXT"]) == EXIT_ERROR
    out = capsys.readouterr().out
    assert "EXT.a" in out and "EXT.b" in out


def test_race_requires_target(src_file):
    assert main(["race", src_file(RACY_SRC)]) == EXIT_USAGE


def test_sequentialize_prints_program(src_file, capsys):
    assert main(["sequentialize", src_file(BUGGY_SRC), "--max-ts", "1"]) == EXIT_SAFE
    out = capsys.readouterr().out
    assert "__kiss_raise" in out
    assert "__kiss_schedule" in out


def test_interleavings_baseline(src_file, capsys):
    assert main(["interleavings", src_file(BUGGY_SRC)]) == EXIT_ERROR


def test_interleavings_context_bound(src_file):
    src = """
    bool flag; int g;
    void worker() { if (flag) { g = 1; } }
    void main() { async worker(); flag = true; flag = false; assume(g == 1); assert(false); }
    """
    assert main(["interleavings", src_file(src), "--context-bound", "1"]) == EXIT_SAFE
    assert main(["interleavings", src_file(src)]) == EXIT_ERROR


def test_missing_file():
    assert main(["check", "/nonexistent/x.kp"]) == EXIT_USAGE


def test_parse_error(src_file):
    assert main(["check", src_file("void main() { x = ; }")]) == EXIT_USAGE


def test_type_error(src_file):
    assert main(["check", src_file("int g; void main() { g = true; }")]) == EXIT_USAGE


def test_check_with_cegar_backend(src_file, capsys):
    src = "int g; void main() { g = 2; assert(g == 1); }"
    assert main(["check", src_file(src), "--backend", "cegar"]) == EXIT_ERROR


def test_cegar_backend_safe_program(src_file):
    src = "int g; void main() { g = 1; assert(g == 1); }"
    assert main(["check", src_file(src), "--backend", "cegar"]) == EXIT_SAFE


def test_benign_annotation_through_cli(src_file):
    src = """
    int g;
    void worker() { g = 2; }
    void main() { async worker(); benign { g = 1; } }
    """
    assert main(["race", src_file(src), "--target", "g"]) == EXIT_SAFE


def test_inline_flag(src_file):
    src = """
    int g;
    void bump() { g = g + 1; }
    void main() { bump(); assert(g == 1); }
    """
    assert main(["check", src_file(src), "--inline"]) == EXIT_SAFE


# -- the campaign subcommand --------------------------------------------------------


def test_race_all_fields_parallel_with_timeout(src_file, capsys):
    assert main(["race", src_file(RACY_SRC), "--all-fields", "EXT",
                 "--jobs", "2", "--timeout", "60"]) == EXIT_ERROR
    out = capsys.readouterr().out
    assert "EXT.a: race" in out
    assert "EXT.b:" in out


def test_campaign_over_corpus_subset(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    args = ["campaign", "--drivers", "tracedrv,imca", "--jobs", "2",
            "--cache-dir", cache, "--telemetry", str(tmp_path / "events.jsonl")]
    assert main(args) == EXIT_ERROR  # imca has one real race
    out = capsys.readouterr().out
    assert "Campaign summary" in out
    assert "imca" in out and "tracedrv" in out
    assert "cache: skipped 0/8" in out
    # cache-warm re-run skips every job
    assert main(args) == EXIT_ERROR
    assert "cache: skipped 8/8 jobs (100%)" in capsys.readouterr().out


def test_campaign_safe_driver_exits_zero(tmp_path):
    assert main(["campaign", "--drivers", "tracedrv", "--no-cache"]) == EXIT_SAFE


def test_campaign_unknown_driver(capsys):
    assert main(["campaign", "--drivers", "nosuchdrv", "--no-cache"]) == EXIT_USAGE


def test_campaign_list_drivers(capsys):
    assert main(["campaign", "--list-drivers"]) == EXIT_SAFE
    out = capsys.readouterr().out
    assert "fdc" in out and "tracedrv" in out
