"""The checking service: admission, dedupe, quotas, streams, drain.

In-process tests drive :class:`~repro.serve.CheckService` directly
(deterministically with ``start_engine=False`` where ordering matters);
HTTP tests host a real asyncio server on a background thread and use
only the stdlib client helper, so they double as protocol tests; the
subprocess test exercises ``python -m repro serve`` end to end,
including the SIGTERM drain ladder.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.schemas import SchemaError, validate_serve_event
from repro.serve import (
    AdmissionError,
    CheckService,
    ServeClient,
    ServeConfig,
    ServeError,
    ServerThread,
    TokenBucket,
)

SAFE = "int g;\nvoid main() { g = 1; assert(g == 1); }\n"
RACY = """
struct EXT { int a; }
void worker(EXT *e) { e->a = 1; }
void main() {
  EXT *e;
  e = malloc(EXT);
  async worker(e);
  e->a = 2;
}
"""


def distinct(n, base=SAFE):
    """``n`` programs with distinct cache keys."""
    return [base.replace("g == 1", f"g == 1 && {i + 2} > 0") for i in range(n)]


def wait_for(predicate, timeout=30.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    pytest.fail(f"timed out waiting for {what}")


@pytest.fixture
def service():
    svc = CheckService(ServeConfig(jobs=1, cache_dir=None))
    yield svc
    svc.stop()


# -- the service core --------------------------------------------------------------


def test_submit_runs_to_a_schema_valid_done_stream(service):
    status, doc = service.submit("t", {"program": SAFE})
    assert status == 202 and doc["state"] == "queued" and not doc["deduped"]
    final = service.get(doc["job"], wait_s=30)
    assert final["state"] == "done"
    assert final["result"]["verdict"] == "safe"
    events, finished = service.events_since(doc["job"], 0)
    assert finished
    assert [e["event"] for e in events] == ["queued", "started", "done"]
    for e in events:
        validate_serve_event(e)
    assert events[-1]["cache"] == "off" and events[-1]["version"]


def test_error_verdict_and_race_prop(service):
    final = _check(service, {"program": RACY, "prop": "race", "target": "EXT.a"})
    assert final["result"]["verdict"] == "error"


def _check(service, payload, tenant="t"):
    status, doc = service.submit(tenant, payload)
    if status == 200:
        return doc
    assert status == 202
    final = service.get(doc["job"], wait_s=30)
    assert final["state"] == "done"
    return final


@pytest.mark.parametrize("payload,fragment", [
    ({}, "program"),
    ({"program": 7}, "program"),
    ({"program": SAFE, "prop": "nope"}, "prop"),
    ({"program": SAFE, "prop": "race"}, "target"),
    ({"program": SAFE, "config": {"bogus_knob": 1}}, "config"),
    ({"program": SAFE, "config": "kiss"}, "config"),
    ({"program": SAFE, "driver": ""}, "driver"),
])
def test_invalid_submissions_are_400(service, payload, fragment):
    with pytest.raises(AdmissionError) as err:
        service.submit("t", payload)
    assert err.value.status == 400 and fragment in err.value.error
    assert service.counts["rejected_invalid"] == 1


def test_unparsable_program_still_yields_a_verdict(service):
    final = _check(service, {"program": "this is not the language"})
    assert final["result"]["verdict"] in ("error", "resource-bound")


def test_persistent_cache_hit_answers_immediately(tmp_path):
    cfg = lambda: ServeConfig(jobs=1, cache_dir=str(tmp_path / "c"))  # noqa: E731
    svc = CheckService(cfg())
    first = _check(svc, {"program": SAFE})
    svc.stop()
    svc2 = CheckService(cfg())
    try:
        status, doc = svc2.submit("other", {"program": SAFE})
        assert status == 200 and doc["state"] == "done"
        assert doc["result"]["cache"] == "hit"
        assert doc["result"]["verdict"] == first["result"]["verdict"]
        events, finished = svc2.events_since(doc["job"], 0)
        assert finished and [e["event"] for e in events] == ["queued", "done"]
        for e in events:
            validate_serve_event(e)
    finally:
        svc2.stop()


def test_inflight_dedupe_fans_events_out_to_both_records():
    svc = CheckService(ServeConfig(jobs=1, cache_dir=None), start_engine=False)
    s1, d1 = svc.submit("alice", {"program": SAFE})
    s2, d2 = svc.submit("bob", {"program": SAFE})
    assert (s1, s2) == (202, 202)
    assert not d1["deduped"] and d2["deduped"]
    assert svc.counts["deduped"] == 1
    svc.pump_once()
    for job_id, expect_cache in ((d1["job"], "off"), (d2["job"], "dedup")):
        events, finished = svc.events_since(job_id, 0)
        assert finished, job_id
        assert [e["event"] for e in events] == ["queued", "started", "done"]
        for e in events:
            validate_serve_event(e)
            assert e["job"] == job_id  # relabelled, not shared
        assert events[-1]["cache"] == expect_cache
        assert events[-1]["verdict"] == "safe"


def test_quota_429_with_retry_after():
    svc = CheckService(ServeConfig(jobs=1, cache_dir=None, quota_rate=1.0,
                                   quota_burst=2), start_engine=False)
    progs = distinct(3)
    assert svc.submit("t", {"program": progs[0]})[0] == 202
    assert svc.submit("t", {"program": progs[1]})[0] == 202
    with pytest.raises(AdmissionError) as err:
        svc.submit("t", {"program": progs[2]})
    assert err.value.status == 429 and err.value.retry_after > 0
    assert svc.counts["rejected_quota"] == 1
    # quotas are per tenant: another tenant is unaffected
    assert svc.submit("other", {"program": progs[2]})[0] == 202


def test_queue_full_429_backpressure():
    svc = CheckService(ServeConfig(jobs=1, cache_dir=None, max_queue=2,
                                   quota_burst=100), start_engine=False)
    progs = distinct(3)
    assert svc.submit("t", {"program": progs[0]})[0] == 202
    assert svc.submit("t", {"program": progs[1]})[0] == 202
    with pytest.raises(AdmissionError) as err:
        svc.submit("t", {"program": progs[2]})
    assert err.value.status == 429 and "queue" in err.value.error
    # dedupe onto an in-flight job does not need a queue slot
    s, d = svc.submit("t2", {"program": progs[0]})
    assert s == 202 and d["deduped"]


def test_token_bucket_refills():
    t = [0.0]
    bucket = TokenBucket(rate=10.0, burst=1, clock=lambda: t[0])
    assert bucket.try_take()
    assert not bucket.try_take()
    assert bucket.retry_after() == pytest.approx(0.1)
    t[0] += 0.1
    assert bucket.try_take()


def test_drain_stops_admission_and_finishes_admitted_work(service):
    status, doc = service.submit("t", {"program": SAFE})
    service.drain()
    with pytest.raises(AdmissionError) as err:
        service.submit("t", {"program": RACY, "prop": "race", "target": "EXT.a"})
    assert err.value.status == 503
    final = service.get(doc["job"], wait_s=30)
    assert final["state"] == "done" and final["result"]["verdict"] == "safe"
    wait_for(lambda: service.stopped, what="engine drain")


def test_degrade_pending_ends_backlog_with_valid_done_events():
    svc = CheckService(ServeConfig(jobs=1, cache_dir=None), start_engine=False)
    ids = [svc.submit("t", {"program": p})[1]["job"] for p in distinct(4)]
    svc.degrade_pending("interrupted: SIGTERM")
    svc.pump_once()
    for job_id in ids:
        events, finished = svc.events_since(job_id, 0)
        assert finished
        done = events[-1]
        validate_serve_event(done)
        assert done["verdict"] == "resource-bound"
        assert svc.get(job_id)["result"]["detail"].startswith("interrupted:")


def test_stats_doc_shape(service):
    _check(service, {"program": SAFE})
    doc = service.stats_doc()
    assert doc["counts"]["submitted"] == 1 and doc["counts"]["completed"] == 1
    assert doc["queue"]["max_queue"] == service.config.max_queue
    assert doc["workers"] == 1 and doc["version"]
    assert service.healthz_doc()["status"] == "ok"
    service.drain()
    assert service.healthz_doc()["status"] == "draining"


def test_serve_event_validator_rejects_bad_documents():
    good = {"schema": "kiss-serve/1", "event": "done", "t": 0.1, "job": "t/0",
            "verdict": "safe", "attempts": 1, "cache": "miss", "wall_s": 0.1,
            "version": "1.0.0"}
    validate_serve_event(dict(good))
    for breakage in ({"schema": "kiss-serve/2"}, {"event": "finished"},
                     {"verdict": "crash"}, {"cache": "maybe"}, {"t": -1.0},
                     {"job": ""}, {"version": 3}):
        with pytest.raises(SchemaError):
            validate_serve_event({**good, **breakage})


# -- the HTTP layer ----------------------------------------------------------------


@pytest.fixture
def server(tmp_path):
    svc = CheckService(ServeConfig(jobs=1, cache_dir=str(tmp_path / "c"),
                                   quota_rate=500.0, quota_burst=500))
    with ServerThread(svc) as srv:
        yield srv


def test_http_round_trip_and_stream(server):
    client = ServeClient("127.0.0.1", server.port, tenant="httpc")
    assert client.healthz()["status"] == "ok"
    final = client.check(SAFE)
    assert final["result"]["verdict"] == "safe"
    events = list(client.events(final["job"]))
    assert [e["event"] for e in events] == ["queued", "started", "done"]
    for e in events:
        validate_serve_event(e)
    # resubmission is a cache hit answered on the POST itself
    status, doc = client.submit(SAFE)
    assert status == 200 and doc["result"]["cache"] == "hit"
    stats = client.stats()
    assert stats["counts"]["cache_hits"] == 1
    assert stats["cache"]["entries"] == 1


def test_http_errors(server):
    client = ServeClient("127.0.0.1", server.port)
    with pytest.raises(ServeError) as err:
        client.status("nope/99")
    assert err.value.status == 404
    status, doc = client._request("GET", "/no/such/route")
    assert status == 404
    status, doc = client._request("POST", "/v1/jobs")  # empty body
    assert status == 400
    status, doc = client._request("GET", "/v1/jobs")  # wrong method
    assert status == 405


def test_http_quota_429_sets_retry_after(tmp_path):
    svc = CheckService(ServeConfig(jobs=1, cache_dir=None, quota_rate=0.5,
                                   quota_burst=1))
    with ServerThread(svc) as srv:
        client = ServeClient("127.0.0.1", srv.port, tenant="greedy")
        progs = distinct(2)
        status, _ = client.submit(progs[0])
        assert status in (200, 202)
        status, doc = client.submit(progs[1])
        assert status == 429 and doc["retry_after"] > 0
        with pytest.raises(ServeError) as err:
            client.check(progs[1])
        assert err.value.status == 429


def test_two_concurrent_clients_identical_submission_dedupes(server):
    """Satellite 4's concurrent dedupe shape, over real HTTP: two
    clients race the same program in; exactly one check runs, both get
    the same verdict, and at least one response is marked deduped/hit."""
    program = SAFE.replace("g == 1", "g == 1 && 777 > 0")
    out, errs = {}, []

    def one(name):
        try:
            client = ServeClient("127.0.0.1", server.port, tenant=name)
            out[name] = client.check(program)
        except Exception as exc:  # pragma: no cover - surfaced below
            errs.append((name, exc))

    threads = [threading.Thread(target=one, args=(n,)) for n in ("c1", "c2")]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60)
    assert not errs, errs
    verdicts = {d["result"]["verdict"] for d in out.values()}
    assert verdicts == {"safe"}
    states = sorted(d["result"]["cache"] for d in out.values())
    assert states in (["dedup", "miss"], ["hit", "miss"])
    stats = ServeClient("127.0.0.1", server.port).stats()
    assert stats["counts"]["submitted"] == 1  # one real check for two clients


# -- the subprocess acceptance path ------------------------------------------------


def _spawn_server(tmp_path, *extra):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--cache-dir", str(tmp_path / "cache"), *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True)
    ready = json.loads(proc.stdout.readline())
    assert ready["event"] == "serve_listening"
    return proc, ready["port"]


@pytest.mark.slow
def test_cli_serve_dedupes_resubmission_and_drains_on_sigterm(tmp_path):
    """The CI acceptance shape: submit a corpus, resubmit it (>= 90%
    must dedupe through the cache), then SIGTERM and assert a clean
    drain (exit 0, no admissions after the signal)."""
    proc, port = _spawn_server(tmp_path, "--quota-rate", "500",
                               "--quota-burst", "500")
    try:
        client = ServeClient("127.0.0.1", port, tenant="ci")
        corpus = distinct(10)
        first = [client.check(p, timeout=120) for p in corpus]
        assert all(d["result"]["verdict"] == "safe" for d in first)
        second = [client.check(p, timeout=120) for p in corpus]
        hits = sum(1 for d in second if d["result"]["cache"] == "hit")
        assert hits >= 9, f"only {hits}/10 resubmissions deduped"
        for d in first + second:
            for e in client.events(d["job"]):
                validate_serve_event(e)
        proc.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + 30
        refused = False
        while time.monotonic() < deadline and proc.poll() is None:
            try:
                status, _ = client.submit("int h;\nvoid main() { h = 3; }\n")
                assert status != 202, "admitted a job while draining"
            except (ServeError, OSError):
                refused = True  # 503 while draining, then connection refused
            time.sleep(0.05)
        assert proc.wait(timeout=30) == 0, proc.stderr.read()
        assert refused or proc.poll() is not None
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)


# -- server-side swarms ------------------------------------------------------------

TWO_FORKS = open(os.path.join(os.path.dirname(__file__), "fuzz_corpus",
                              "two-forks-error.kp")).read()


def _pump_swarm(svc, swarm_id, pumps=64):
    for _ in range(pumps):
        doc = svc.get_swarm(swarm_id)
        if doc["state"] == "done":
            return doc
        svc.pump_once()
    return svc.get_swarm(swarm_id)


def test_swarm_fans_out_aggregates_and_streams(tmp_path):
    """POST /v1/swarm semantics in process: N tile jobs on the shared
    engine, an interleaved event stream, and exactly one aggregate done
    event carrying the replay-validated error verdict."""
    svc = CheckService(ServeConfig(jobs=1, cache_dir=str(tmp_path / "c")),
                       start_engine=False)
    try:
        status, doc = svc.submit_swarm("t", {"program": TWO_FORKS,
                                             "tiles": 4, "rounds": 3})
        assert status == 202 and doc["state"] == "running" and doc["tiles"] == 4
        swarm_id = doc["swarm"]
        final = _pump_swarm(svc, swarm_id)
        assert final["state"] == "done" and final["verdict"] == "error"
        assert final["witness_tile"] is not None and final["trace_validated"]
        events, finished = svc.swarm_events_since(swarm_id, 0)
        assert finished
        for e in events:
            validate_serve_event(e)
        agg = [e for e in events if e["event"] == "done" and e["job"] == swarm_id]
        assert len(agg) == 1 and agg[0] is events[-1]
        assert agg[0]["cache"] == "aggregate" and agg[0]["verdict"] == "error"
        tile_done = [e for e in events
                     if e["event"] == "done" and e["job"] != swarm_id]
        assert len(tile_done) == 4  # every tile's terminal interleaved
        assert svc.counts["swarms"] == 1
        # the tiles are ordinary cached jobs: an identical swarm re-hits
        _, doc2 = svc.submit_swarm("t", {"program": TWO_FORKS,
                                         "tiles": 4, "rounds": 3})
        final2 = _pump_swarm(svc, doc2["swarm"])
        assert final2["verdict"] == "error"
        assert svc.counts["cache_hits"] == 4
    finally:
        svc.stop()


def test_swarm_first_error_cancels_sibling_tiles(tmp_path):
    """First-error fan-in: the moment a tile errs, its unsettled
    siblings are cancelled; the aggregate error verdict is undiluted
    and the cancellations are observable in the stream."""
    svc = CheckService(ServeConfig(jobs=1, cache_dir=None), start_engine=False)
    try:
        _, doc = svc.submit_swarm("t", {"program": TWO_FORKS, "tiles": 6,
                                        "rounds": 3, "first_error": True})
        final = _pump_swarm(svc, doc["swarm"])
        assert final["state"] == "done" and final["verdict"] == "error"
        expected = final["tiles"] - final["witness_tile"] - 1  # serial order
        assert final["cancelled_tiles"] == expected
        events, _ = svc.swarm_events_since(doc["swarm"], 0)
        cancelled = [e for e in events if e["event"] == "cancelled"]
        assert len(cancelled) == expected
        assert all("first-error" in e["reason"] for e in cancelled)
        assert svc.counts["cancelled"] == expected
    finally:
        svc.stop()


def test_swarm_admission_validation_and_unknown_ids(tmp_path):
    svc = CheckService(ServeConfig(jobs=1, cache_dir=None), start_engine=False)
    try:
        for payload, fragment in (
            ({}, "program"),
            ({"program": TWO_FORKS, "tiles": 0}, "tiles"),
            ({"program": TWO_FORKS, "rounds": 99}, "rounds"),
            ({"program": TWO_FORKS, "first_error": "yes"}, "first_error"),
        ):
            with pytest.raises(AdmissionError) as err:
                svc.submit_swarm("t", payload)
            assert err.value.status == 400 and fragment in err.value.error
        assert svc.get_swarm("t/swarm99") is None
        assert svc.cancel_swarm("t/swarm99") is None
    finally:
        svc.stop()


def test_http_swarm_round_trip_cancel_and_stream(server):
    client = ServeClient("127.0.0.1", server.port, tenant="swarmer")
    status, doc = client.submit_swarm(TWO_FORKS, tiles=4, rounds=3)
    assert status == 202 and doc["swarm"]
    final = client.swarm_wait(doc["swarm"], timeout=120)
    assert final["verdict"] == "error" and final["trace_validated"]
    events = list(client.swarm_events(doc["swarm"]))
    for e in events:
        validate_serve_event(e)
    assert events[-1]["job"] == doc["swarm"] and events[-1]["cache"] == "aggregate"
    # a finished swarm refuses cancellation; an unknown one is a 404
    status, _ = client.cancel_swarm(doc["swarm"])
    assert status == 409
    status, _ = client.cancel_swarm("swarmer/swarm99")
    assert status == 404
    status, body = client._request("POST", "/v1/swarm", {"program": ""})
    assert status == 400 and "program" in body["error"]
