"""Unit tests for CFG construction and DOT export."""

import pytest

from repro.cfg import build_program_cfg, cfg_to_dot, program_to_dot
from repro.cfg.build import CfgBuildError, build_cfg
from repro.lang import parse, parse_core


def cfg_of(src, fn="main"):
    return build_program_cfg(parse_core(src)).cfg(fn)


def kinds_reachable(cfg):
    seen, work = set(), [cfg.entry]
    kinds = []
    while work:
        nid = work.pop()
        if nid in seen:
            continue
        seen.add(nid)
        node = cfg.node(nid)
        kinds.append(node.kind)
        work.extend(node.succs)
    return kinds


def test_straightline_chain():
    cfg = cfg_of("int g; void main() { g = 1; g = 2; }")
    kinds = kinds_reachable(cfg)
    assert kinds.count("assign") == 2
    assert kinds.count("return") == 1  # implicit exit


def test_entry_is_first_statement():
    cfg = cfg_of("int g; void main() { g = 1; }")
    assert cfg.node(cfg.entry).kind == "assign"


def test_empty_function_is_a_single_return():
    cfg = cfg_of("void main() { }")
    assert cfg.node(cfg.entry).kind == "return"


def test_choice_head_fans_out():
    cfg = cfg_of("int g; void main() { choice { g = 1; } or { g = 2; } or { g = 3; } }")
    head = cfg.node(cfg.entry)
    assert head.kind == "skip"
    assert len(head.succs) == 3


def test_iter_head_loops_and_exits():
    cfg = cfg_of("int g; void main() { iter { g = g + 1; } }")
    head = cfg.node(cfg.entry)
    assert head.kind == "skip"
    assert len(head.succs) == 2  # body and fallthrough
    # the body's last node loops back to the head
    body_entry = head.succs[0]
    node = cfg.node(body_entry)
    while node.succs and node.succs[0] != head.id:
        node = cfg.node(node.succs[0])
    assert head.id in node.succs


def test_return_has_no_successors():
    cfg = cfg_of("int f() { return 1; } void main() { int x; x = f(); }", fn="f")
    rets = [n for n in cfg if n.kind == "return" and n.stmt.value is not None]
    assert rets and all(not r.succs for r in rets)


def test_code_after_return_is_unreachable_but_built():
    cfg = cfg_of("void main() { return; skip; }")
    kinds = kinds_reachable(cfg)
    assert "skip" not in kinds  # unreachable from entry
    assert any(n.kind == "skip" for n in cfg)  # but present in the graph


def test_atomic_becomes_single_node_with_subcfg():
    cfg = cfg_of("int g; void main() { atomic { g = g + 1; g = g - 1; } }")
    atomics = [n for n in cfg if n.kind == "atomic"]
    assert len(atomics) == 1
    sub = atomics[0].sub
    assert sub is not None
    assert sum(1 for _ in sub) >= 2


def test_non_core_input_rejected():
    prog = parse("void main() { if (true) { skip; } }")
    with pytest.raises(CfgBuildError):
        build_cfg(prog.functions["main"])


def test_program_cfg_size_counts_subcfgs():
    pcfg = build_program_cfg(parse_core("int g; void main() { atomic { g = 1; } }"))
    flat = sum(len(c) for c in pcfg.cfgs.values())
    assert pcfg.size() > flat - 1  # sub-CFG nodes included


def test_origin_records_statement_text():
    cfg = cfg_of("int g; void main() { g = 42; }")
    node = cfg.node(cfg.entry)
    assert "42" in node.origin.text
    assert node.origin.func == "main"


def test_dot_export_contains_nodes_and_edges():
    pcfg = build_program_cfg(parse_core("int g; void main() { g = 1; g = 2; }"))
    dot = program_to_dot(pcfg)
    assert dot.startswith("digraph")
    assert "->" in dot
    assert "main" in dot


def test_dot_export_escapes_quotes():
    cfg = cfg_of("int g; void main() { g = 1; }")
    out = cfg_to_dot(cfg)
    assert '"' in out and "label=" in out


def test_unknown_function_lookup_raises():
    pcfg = build_program_cfg(parse_core("void main() { }"))
    with pytest.raises(KeyError):
        pcfg.cfg("nope")
