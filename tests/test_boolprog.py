"""Tests for the boolean-program IR and the Bebop engine."""

import pytest

from repro.seqcheck.boolprog import (
    BAnd,
    BAssert,
    BAssign,
    BAssume,
    BCall,
    BConst,
    BGoto,
    BNondet,
    BNot,
    BOr,
    BProc,
    BProgram,
    BReturn,
    BSkip,
    BVar,
    eval_bexpr,
)
from repro.seqcheck.bebop import check_boolean_program, find_error_trace


# -- expression evaluation -------------------------------------------------------


def test_eval_const_and_var():
    assert eval_bexpr(BConst(True), {}) == [True]
    assert eval_bexpr(BVar("x"), {"x": False}) == [False]


def test_eval_nondet_both_values():
    assert set(eval_bexpr(BNondet(), {})) == {True, False}


def test_eval_not_and_or():
    env = {"a": True, "b": False}
    assert eval_bexpr(BNot(BVar("a")), env) == [False]
    assert eval_bexpr(BAnd(BVar("a"), BVar("b")), env) == [False]
    assert eval_bexpr(BOr(BVar("a"), BVar("b")), env) == [True]


def test_eval_nondet_under_and():
    vals = eval_bexpr(BAnd(BNondet(), BConst(True)), {})
    assert set(vals) == {True, False}


# -- program validation --------------------------------------------------------------


def prog_with(body, globals_=("g",), locals_=(), entry_extra=None):
    p = BProgram(globals=list(globals_))
    p.procs["main"] = BProc("main", locals=list(locals_), body=body)
    if entry_extra:
        p.procs.update(entry_extra)
    return p


def test_validate_rejects_unknown_label():
    p = prog_with([BGoto(labels=["nope"])])
    with pytest.raises(ValueError):
        p.validate()


def test_validate_rejects_bad_assignment():
    p = prog_with([BAssign(targets=["zz"], exprs=[BConst(True)])])
    with pytest.raises(ValueError):
        p.validate()


def test_validate_rejects_call_arity():
    callee = BProc("f", params=["a"], body=[BReturn([])])
    p = prog_with([BCall(proc="f", args=[], rets=[])], entry_extra={"f": callee})
    with pytest.raises(ValueError):
        p.validate()


# -- bebop reachability -----------------------------------------------------------------


def test_assert_true_safe():
    p = prog_with([BAssert(cond=BConst(True))])
    assert check_boolean_program(p).safe


def test_assert_false_unsafe():
    p = prog_with([BAssert(cond=BConst(False))])
    r = check_boolean_program(p)
    assert not r.safe
    assert r.error_proc == "main"


def test_assume_blocks_assert():
    p = prog_with([BAssume(cond=BConst(False)), BAssert(cond=BConst(False))])
    assert check_boolean_program(p).safe


def test_assignment_flows():
    p = prog_with(
        [
            BAssign(targets=["g"], exprs=[BConst(True)]),
            BAssert(cond=BVar("g")),
        ]
    )
    assert check_boolean_program(p).safe


def test_nondet_assignment_both_branches():
    p = prog_with(
        [
            BAssign(targets=["g"], exprs=[BNondet()]),
            BAssert(cond=BVar("g")),
        ]
    )
    r = check_boolean_program(p)
    assert not r.safe


def test_parallel_assignment_swaps():
    p = BProgram(globals=["a", "b"])
    p.procs["main"] = BProc(
        "main",
        body=[
            BAssign(targets=["a"], exprs=[BConst(True)]),
            BAssign(targets=["a", "b"], exprs=[BVar("b"), BVar("a")]),  # swap
            BAssert(cond=BAnd(BVar("b"), BNot(BVar("a")))),
        ],
    )
    assert check_boolean_program(p).safe


def test_goto_nondeterminism():
    p = prog_with(
        [
            BGoto(labels=["yes", "no"]),
            BAssign(label="yes", targets=["g"], exprs=[BConst(True)]),
            BGoto(labels=["end"]),
            BAssign(label="no", targets=["g"], exprs=[BConst(False)]),
            BSkip(label="end"),
            BAssert(cond=BVar("g")),
        ]
    )
    assert not check_boolean_program(p).safe


def test_loop_terminates_via_tabulation():
    # infinite loop flipping g: tabulation converges, assert inside holds
    p = prog_with(
        [
            BSkip(label="head"),
            BAssign(targets=["g"], exprs=[BNot(BVar("g"))]),
            BAssert(cond=BOr(BVar("g"), BNot(BVar("g")))),
            BGoto(labels=["head", "end"]),
            BSkip(label="end"),
        ]
    )
    assert check_boolean_program(p).safe


def test_call_and_summary():
    setg = BProc("setg", body=[BAssign(targets=["g"], exprs=[BConst(True)]), BReturn([])])
    p = prog_with(
        [BCall(proc="setg", args=[], rets=[]), BAssert(cond=BVar("g"))],
        entry_extra={"setg": setg},
    )
    assert check_boolean_program(p).safe


def test_call_with_params_and_returns():
    ident = BProc("ident", params=["x"], nrets=1, body=[BReturn([BVar("x")])])
    p = BProgram(globals=[])
    p.procs["ident"] = ident
    p.procs["main"] = BProc(
        "main",
        locals=["r"],
        body=[
            BCall(proc="ident", args=[BConst(True)], rets=["r"]),
            BAssert(cond=BVar("r")),
        ],
    )
    assert check_boolean_program(p).safe


def test_recursion_converges():
    # f flips g then calls itself nondeterministically; assert can fail
    f = BProc(
        "f",
        body=[
            BAssign(targets=["g"], exprs=[BNot(BVar("g"))]),
            BGoto(labels=["again", "done"]),
            BSkip(label="again"),
            BCall(proc="f", args=[], rets=[]),
            BSkip(label="done"),
            BReturn([]),
        ],
    )
    p = prog_with(
        [BCall(proc="f", args=[], rets=[]), BAssert(cond=BVar("g"))],
        entry_extra={"f": f},
    )
    r = check_boolean_program(p)
    assert not r.safe  # two flips restore g=False


def test_summary_reuse_counts():
    f = BProc("f", body=[BReturn([])])
    body = [BCall(proc="f", args=[], rets=[]) for _ in range(3)]
    p = prog_with(body, entry_extra={"f": f})
    r = check_boolean_program(p)
    assert r.safe
    assert r.summaries >= 1


# -- explicit trace extraction -------------------------------------------------------------


def test_find_error_trace_simple():
    p = prog_with(
        [
            BAssign(targets=["g"], exprs=[BConst(True)]),
            BAssert(cond=BNot(BVar("g"))),
        ]
    )
    trace = find_error_trace(p)
    assert trace is not None
    assert trace[-1][0] == "main"
    assert "assert" in str(trace[-1][2])


def test_find_error_trace_none_when_safe():
    p = prog_with([BAssert(cond=BConst(True))])
    assert find_error_trace(p) is None


def test_find_error_trace_through_call():
    setg = BProc("setg", body=[BAssign(targets=["g"], exprs=[BConst(True)]), BReturn([])])
    p = prog_with(
        [BCall(proc="setg", args=[], rets=[]), BAssert(cond=BNot(BVar("g")))],
        entry_extra={"setg": setg},
    )
    trace = find_error_trace(p)
    assert trace is not None
    procs = [t[0] for t in trace]
    assert "setg" in procs and "main" in procs
