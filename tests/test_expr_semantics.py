"""Differential fuzzing of the expression pipeline.

Random expressions are evaluated two ways: directly in Python (the
reference semantics) and by compiling through the full front end
(parse → typecheck → lower → CFG → explicit checker) and asserting the
computed value.  Any divergence in parsing precedence, lowering
(including short-circuit evaluation), or the interpreter shows up here.
"""

from hypothesis import given, settings, strategies as st


from repro.lang import parse_core
from repro.seqcheck.explicit import check_sequential


def c_div(a, b):
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def c_mod(a, b):
    return a - b * c_div(a, b)


class IntExpr:
    """A random int expression with its Python value."""

    def __init__(self, text, value):
        self.text = text
        self.value = value


@st.composite
def int_expr(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        n = draw(st.integers(min_value=0, max_value=20))
        return IntExpr(str(n), n)
    op = draw(st.sampled_from(["+", "-", "*", "/", "%", "neg"]))
    if op == "neg":
        e = draw(int_expr(depth + 1))
        return IntExpr(f"(-{e.text})", -e.value)
    a = draw(int_expr(depth + 1))
    b = draw(int_expr(depth + 1))
    if op in ("/", "%"):
        # keep denominators constant and non-zero
        d = draw(st.integers(min_value=1, max_value=9))
        val = c_div(a.value, d) if op == "/" else c_mod(a.value, d)
        return IntExpr(f"({a.text} {op} {d})", val)
    val = {"+": a.value + b.value, "-": a.value - b.value, "*": a.value * b.value}[op]
    return IntExpr(f"({a.text} {op} {b.text})", val)


@st.composite
def bool_expr(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            b = draw(st.booleans())
            return IntExpr("true" if b else "false", b)
        op = draw(st.sampled_from(["==", "!=", "<", "<=", ">", ">="]))
        a = draw(int_expr(depth + 1))
        c = draw(int_expr(depth + 1))
        val = {
            "==": a.value == c.value,
            "!=": a.value != c.value,
            "<": a.value < c.value,
            "<=": a.value <= c.value,
            ">": a.value > c.value,
            ">=": a.value >= c.value,
        }[op]
        return IntExpr(f"({a.text} {op} {c.text})", val)
    op = draw(st.sampled_from(["&&", "||", "!"]))
    if op == "!":
        e = draw(bool_expr(depth + 1))
        return IntExpr(f"(!{e.text})", not e.value)
    a = draw(bool_expr(depth + 1))
    b = draw(bool_expr(depth + 1))
    val = (a.value and b.value) if op == "&&" else (a.value or b.value)
    return IntExpr(f"({a.text} {op} {b.text})", val)


@settings(max_examples=60, deadline=None)
@given(int_expr())
def test_int_expression_value(e):
    src = f"int g; void main() {{ g = {e.text}; assert(g == {e.value}); }}"
    assert check_sequential(parse_core(src)).is_safe, src


@settings(max_examples=30, deadline=None)
@given(int_expr())
def test_int_expression_wrong_value_detected(e):
    src = f"int g; void main() {{ g = {e.text}; assert(g == {e.value + 1}); }}"
    assert check_sequential(parse_core(src)).is_error, src


@settings(max_examples=60, deadline=None)
@given(bool_expr())
def test_bool_expression_value(e):
    expected = "b" if e.value else "!b"
    src = f"bool b; void main() {{ b = {e.text}; assert({expected}); }}"
    assert check_sequential(parse_core(src)).is_safe, src


def test_short_circuit_does_not_crash_guarded_division():
    # canary for short-circuit lowering: the right operand must not be
    # evaluated when the left decides — otherwise this divides by zero
    src = """
    int d; bool ok;
    void main() {
      d = 0;
      ok = d != 0 && 10 / d > 0;
      assert(!ok);
    }
    """
    assert check_sequential(parse_core(src)).is_safe


@settings(max_examples=20, deadline=None)
@given(bool_expr(), bool_expr())
def test_if_condition_agrees_with_python(c, d):
    src = f"""
    int r;
    void main() {{
      if ({c.text}) {{ r = 1; }} else {{ r = 2; }}
      assert(r == {1 if c.value else 2});
    }}
    """
    assert check_sequential(parse_core(src)).is_safe, src
