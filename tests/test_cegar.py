"""Tests for predicate abstraction and the CEGAR loop (SLAM-lite)."""

import pytest

from repro.lang import parse_core
from repro.lang.ast import Binary, IntLit, Var
from repro.seqcheck.abstraction import (
    AbstractionError,
    Abstractor,
    PredicateSet,
    atoms_of,
    expr_vars,
    subst,
)
from repro.seqcheck.bebop import check_boolean_program
from repro.seqcheck.cegar import check_cegar
from repro.seqcheck.explicit import check_sequential
from repro.lang.parser import parse_expr


# -- helpers ---------------------------------------------------------------


def test_subst_replaces_variable():
    e = parse_expr("x + y")
    out = subst(e, "x", IntLit(3))
    assert str(out) == str(parse_expr("3 + y"))


def test_subst_ignores_other_names():
    e = parse_expr("x + y")
    assert subst(e, "z", IntLit(3)) == e


def test_expr_vars():
    assert expr_vars(parse_expr("x + y * x")) == {"x", "y"}


def test_atoms_of_decomposes_boolean_structure():
    e = parse_expr("x == 1 && (!b || y < 2)")
    atoms = {str(a) for a in atoms_of(e)}
    assert atoms == {str(parse_expr("x == 1")), "b", str(parse_expr("y < 2"))}


# -- abstraction -----------------------------------------------------------------


def abstract(src, global_preds):
    prog = parse_core(src)
    preds = PredicateSet(global_preds=[parse_expr(p) for p in global_preds])
    a = Abstractor(prog, preds)
    return a.abstract()


def test_abstraction_proves_with_right_predicate():
    # `ok` names the condition so the needed predicates are expressible
    # without referring to lowering temps
    bprog = abstract(
        "int g; bool ok; void main() { g = 1; ok = g == 1; assert(ok); }",
        ["g == 1", "ok"],
    )
    assert check_boolean_program(bprog).safe


def test_abstraction_without_predicates_cannot_prove():
    bprog = abstract("int g; void main() { g = 1; assert(g == 1); }", [])
    assert not check_boolean_program(bprog).safe


def test_abstraction_rejects_pointers():
    prog = parse_core("void main() { int x; int *p; p = &x; }")
    with pytest.raises(AbstractionError):
        Abstractor(prog, PredicateSet()).abstract()


def test_abstraction_rejects_malloc():
    prog = parse_core("struct S { int a; } void main() { S *p; p = malloc(S); }")
    with pytest.raises(AbstractionError):
        Abstractor(prog, PredicateSet()).abstract()


def test_assume_abstracted_overapproximately():
    # with the predicate g == 0, assume(g != 0) must block the error
    bprog = abstract(
        """
        int g; bool c;
        void main() { c = g != 0; assume(c); assert(false); }
        """,
        ["g != 0"],
    )
    # c is a local bool carrying g != 0 — without a predicate tying c to
    # g != 0 the abstraction cannot block, so this stays unsafe; the CEGAR
    # loop discovers the tie (tested below)
    r = check_boolean_program(bprog)
    assert not r.safe


# -- CEGAR end-to-end ----------------------------------------------------------------


def cegar(src, **kw):
    return check_cegar(parse_core(src), **kw)


def test_cegar_trivial_safe():
    r = cegar("void main() { assert(true); }")
    assert r.is_safe


def test_cegar_trivial_error():
    r = cegar("void main() { assert(false); }")
    assert r.is_error


def test_cegar_proves_simple_safety():
    r = cegar("int g; void main() { g = 1; assert(g == 1); }")
    assert r.is_safe
    assert r.rounds >= 1


def test_cegar_finds_real_error_with_witness():
    r = cegar("int g; void main() { g = 2; assert(g == 1); }")
    assert r.is_error


def test_cegar_refines_through_branch():
    r = cegar(
        """
        int x; int y;
        void main() {
          x = 3;
          if (x > 0) { y = 1; } else { y = 2; }
          assert(y == 1);
        }
        """
    )
    assert r.is_safe


def test_cegar_error_through_branch():
    r = cegar(
        """
        int x; int y;
        void main() {
          x = 0 - 3;
          if (x > 0) { y = 1; } else { y = 2; }
          assert(y == 1);
        }
        """
    )
    assert r.is_error


def test_cegar_agrees_with_explicit_checker():
    sources = [
        "int g; void main() { g = 5; g = g - 5; assert(g == 0); }",
        "int g; void main() { g = 1; if (g == 1) { assert(false); } }",
        "bool b; void main() { b = true; assume(b); assert(b); }",
    ]
    for src in sources:
        explicit = check_sequential(parse_core(src))
        r = cegar(src)
        assert r.is_error == explicit.is_error, src


def test_cegar_nondet_choice():
    r = cegar(
        """
        int g;
        void main() {
          choice { g = 1; } or { g = 2; }
          assert(g >= 1);
        }
        """
    )
    assert r.is_safe


def test_cegar_diverges_on_counting_loop():
    """The property needs counting through an unbounded-ish loop — each
    refinement round adds one more `g == k` predicate and the loop never
    closes: exactly SLAM's divergence (the paper's resource-bound rows)."""
    r = cegar(
        """
        int g;
        void main() {
          g = 0;
          iter { g = g + 2; }
          assert(g != 25);
        }
        """,
        max_rounds=6,
    )
    # g stays even, so the program is safe — but proving it needs a parity
    # argument the wp-atom refinement can only approach one constant at a
    # time (g+2 == 25, g+4 == 25, ...): refinement never converges
    assert r.status == "diverged"
    assert r.rounds <= 6


def test_cegar_unsupported_fragment_reported():
    r = cegar("struct S { int a; } void main() { S *p; p = malloc(S); }")
    assert r.status == "unsupported"
