"""The lazy pc-guarded sequentialization: KISS-level coverage without
eager snapshot guesses, strictly more coverage than the eager K-round
transform on programs whose intermediate values are computed rather
than stored as literals, the replay contract of its trace mapper, and
the call-free scalar-fragment restrictions."""

import json
from pathlib import Path

import pytest

from repro import obs
from repro.core.checker import Kiss
from repro.core.transform import TransformError
from repro.lang import parse, parse_core
from repro.lang.lower import lower_program
from repro.lazy import LazyTransformer, lazy_transform

CORPUS = Path(__file__).parent / "fuzz_corpus"
MANIFEST = {
    e["file"]: e
    for e in json.loads((CORPUS / "manifest.json").read_text())["programs"]
}

THREE_SWITCH = (CORPUS / "three-switch.kp").read_text()
INCREMENT_CHAIN = (CORPUS / "increment-chain.kp").read_text()

#: corpus file -> verdict of the lazy pipeline at K=3 (the bound that
#: covers every pinned program's erroneous interleaving).
LAZY_K3 = {
    "two-forks-error.kp": "error",
    "safe-locked.kp": "safe",
    "loop-safe.kp": "safe",
    "error-locked.kp": "error",
    "delayed-worker.kp": "error",
    "three-switch.kp": "error",
    "increment-chain.kp": "error",
}


def _lazy(rounds, **kw):
    return Kiss(strategy="lazy", rounds=rounds, **kw)


# -- corpus verdicts at K=3, every error trace replay-validated --------------------


def test_lazy_k3_covers_every_corpus_file():
    assert set(LAZY_K3) == set(MANIFEST)


@pytest.mark.parametrize("name", sorted(LAZY_K3))
def test_corpus_verdicts_at_k3(name):
    source = (CORPUS / name).read_text()
    r = _lazy(3, validate_traces=True).check_assertions(parse(source))
    assert r.verdict == LAZY_K3[name], f"{name}: {r.summary()}"
    assert r.strategy == "lazy" and r.rounds == 3
    assert "[lazy K=3]" in r.summary()
    if r.is_error:
        assert r.trace_validated is True, f"{name}: trace must replay concurrently"


# -- K=1 is purely sequential, K=2 has the KISS two-switch budget ------------------


def test_k1_finds_no_preemption_bugs():
    r = _lazy(1).check_assertions(parse(THREE_SWITCH))
    assert r.verdict == "safe", r.summary()


def test_three_switch_safe_at_k2_error_at_k3():
    assert _lazy(2).check_assertions(parse(THREE_SWITCH)).verdict == "safe"
    r = _lazy(3, validate_traces=True).check_assertions(parse(THREE_SWITCH))
    assert r.verdict == "error" and r.trace_validated is True
    tids = [step.tid for step in r.concurrent_trace.steps]
    assert len(set(tids)) == 2, r.concurrent_trace.format()


# -- strictly more coverage than eager rounds --------------------------------------


def test_increment_chain_beats_the_eager_guess_domain():
    """The pinned separation witness: x == 2 arises only by incrementing,
    so it is outside the eager transform's literal guess pool at any K —
    but the lazy interpreter needs no guesses."""
    prog = parse(INCREMENT_CHAIN)
    assert Kiss(max_ts=1).check_assertions(prog).verdict == "safe"
    for k in (3, 4):
        r = Kiss(max_ts=1, strategy="rounds", rounds=k).check_assertions(prog)
        assert r.verdict == "safe", f"eager K={k}: {r.summary()}"
    r = _lazy(3, validate_traces=True).check_assertions(prog)
    assert r.verdict == "error", r.summary()
    assert r.trace_validated is True


def test_increment_chain_has_a_real_concurrent_witness():
    from repro.concheck import check_concurrent

    result = check_concurrent(lower_program(parse(INCREMENT_CHAIN)), max_states=200_000)
    assert result.is_error, "the corpus program must truly go wrong unboundedly"


# -- both backends, witness emission ----------------------------------------------


def test_cegar_backend_smoke():
    src = """
    int data; bool ready;
    void w() { assume(ready); assert(data == 5); }
    void main() { data = 5; ready = true; async w(); }
    """
    for rounds, expected in ((1, "safe"), (2, "safe")):
        r = _lazy(rounds, backend="cegar").check_assertions(parse(src))
        assert r.verdict == expected, r.summary()


def test_safe_verdict_emits_a_certified_witness():
    from repro.witness.validate import validate_witness_doc

    r = _lazy(2, witness=True).check_assertions(parse(THREE_SWITCH))
    assert r.is_safe and r.witness is not None
    assert r.witness["strategy"] == "lazy" and r.witness["rounds"] == 2
    assert validate_witness_doc(r.witness).status == "certified"


# -- cs_tile: schedule-point subsets ----------------------------------------------


def test_cs_points_are_enumerated():
    t = LazyTransformer(rounds=3)
    t.transform(lower_program(parse(THREE_SWITCH)))
    assert len(t.instances) == 2
    assert t.cs_points and all(":" in p for p in t.cs_points)
    assert len(t.cs_points) == len(set(t.cs_points))


def test_empty_tile_is_sequential():
    """An empty tile allows no constrained segment end: only run-to-
    completion schedules remain, so the three-switch error vanishes."""
    r = _lazy(3, cs_tile=[]).check_assertions(parse(THREE_SWITCH))
    assert r.verdict == "safe", r.summary()


def test_full_tile_matches_monolithic():
    t = LazyTransformer(rounds=3)
    t.transform(lower_program(parse(THREE_SWITCH)))
    r = _lazy(3, cs_tile=list(t.cs_points),
              validate_traces=True).check_assertions(parse(THREE_SWITCH))
    assert r.verdict == "error" and r.trace_validated is True


def test_malformed_tile_point_is_rejected():
    with pytest.raises(TransformError, match="cs_tile"):
        lazy_transform(lower_program(parse(THREE_SWITCH)), rounds=3,
                       cs_tile=["nonsense"])


# -- validation and fragment restrictions ------------------------------------------


def test_ctor_validation():
    with pytest.raises(ValueError):
        Kiss(strategy="lazy", rounds=0)
    with pytest.raises(ValueError):
        LazyTransformer(rounds=0)
    with pytest.raises(ValueError, match="cs_tile"):
        Kiss(strategy="rounds", rounds=2, cs_tile=["0:1"])


def test_race_checking_is_kiss_only():
    from repro.core.race import RaceTarget

    kiss = _lazy(2)
    with pytest.raises(ValueError, match="KISS-only"):
        kiss.check_race(parse("int g; void main() { g = 1; }"),
                        RaceTarget.global_var("g"))


def test_unlowered_input_is_rejected():
    with pytest.raises(TransformError, match="core program"):
        LazyTransformer(rounds=2).transform(parse(THREE_SWITCH))


@pytest.mark.parametrize(
    "source,message",
    [
        ("int x; void f() { x = 1; } void main() { f(); }", "call-free"),
        ("struct S { int a; } void main() { S* p; p = malloc(S); }", "unsupported"),
        ("struct S { int a; } S* p; void main() { }", "unsupported type"),
        ("int x; void w() { x = 1; } void main() { while (x < 3) { async w(); } }",
         "async under iter"),
    ],
)
def test_fragment_restrictions(source, message):
    core = lower_program(parse(source))
    with pytest.raises(TransformError, match=message):
        LazyTransformer(rounds=2).transform(core)


def test_spawn_cycle_is_rejected():
    src = """
    void a() { async b(); }
    void b() { async a(); }
    void main() { async a(); }
    """
    with pytest.raises(TransformError, match="spawn cycle"):
        LazyTransformer(rounds=2).transform(lower_program(parse(src)))


def test_division_is_allowed():
    src = "int x; void main() { x = 8; x = x / 2; assert(x == 4); }"
    r = _lazy(2).check_assertions(parse(src))
    assert r.verdict == "safe", r.summary()


# -- observability -----------------------------------------------------------------


def test_transform_counters():
    with obs.observing(obs.Recorder()) as rec:
        lazy_transform(lower_program(parse(THREE_SWITCH)), rounds=3)
        counters = rec.metrics()["counters"]
    assert counters["lazy_instances"] == 2
    assert counters["lazy_nodes"] >= 10
    assert counters["lazy_cs_candidates"] == counters["lazy_nodes"] - 2


def test_atomic_is_one_step():
    """An atomic block is a single node: no schedule point can land
    inside it, so the dirty intermediate state is never observable."""
    src = """
    int x;
    void w() { assert(x != 1); }
    void main() { async w(); atomic { x = 1; x = 2; } }
    """
    r = _lazy(3, validate_traces=True).check_assertions(parse(src))
    assert r.verdict == "safe", r.summary()
