"""Regression corpus replay: every program under tests/fuzz_corpus/ is
re-run through the differential oracle and must reproduce the verdicts
recorded in manifest.json — with no divergence.  Programs that once
exposed (or nearly exposed) interesting behaviour stay pinned here even
as the generator evolves."""

import json
from pathlib import Path

import pytest

from repro.fuzz import differential_check_source

CORPUS = Path(__file__).parent / "fuzz_corpus"
MANIFEST = json.loads((CORPUS / "manifest.json").read_text())


def _entries():
    return [pytest.param(e, id=e["file"]) for e in MANIFEST["programs"]]


def test_manifest_covers_every_corpus_file():
    listed = {e["file"] for e in MANIFEST["programs"]}
    on_disk = {p.name for p in CORPUS.glob("*.kp")}
    assert listed == on_disk


def test_corpus_exercises_both_verdicts():
    verdicts = {e["concurrent"] for e in MANIFEST["programs"]}
    assert verdicts == {"safe", "error"}


@pytest.mark.parametrize("entry", _entries())
def test_corpus_program_replays(entry):
    source = (CORPUS / entry["file"]).read_text()
    v = differential_check_source(source, max_ts=entry["max_ts"])
    assert not v.diverged, f"{entry['file']} diverged: {v.describe()}"
    assert v.concurrent == entry["concurrent"], v.describe()
    assert v.sequential == entry["sequential"], v.describe()
