"""Tests for the synthetic driver corpus (fast subset; the full Table 1/2
runs live in benchmarks/)."""

import pytest

from repro.drivers import (
    DRIVER_SPECS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    check_driver,
    run_table2,
    spec_by_name,
)
from repro.drivers.generator import generate_source
from repro.drivers.harness import (
    all_pairs,
    permissive_pairs,
    refined_pairs,
    rule_a1,
    rule_a2,
    rule_a3,
    rule_ioctl,
)
from repro.drivers.spec import FieldKind, Routine
from repro.lang import parse_core


# -- spec consistency with the paper's numbers ------------------------------------


def test_corpus_has_18_drivers():
    assert len(DRIVER_SPECS) == 18


def test_total_fields_match_table1():
    assert sum(s.field_count for s in DRIVER_SPECS) == 481


def test_total_races_match_table1():
    assert sum(s.expected_table1_races for s in DRIVER_SPECS) == 71


def test_total_noraces_match_table1():
    assert sum(s.expected_table1_noraces for s in DRIVER_SPECS) == 346


def test_total_refined_races_match_table2():
    assert sum(s.expected_table2_races for s in DRIVER_SPECS) == 30


def test_per_driver_numbers_match_paper():
    for s in DRIVER_SPECS:
        kloc, fields, races, noraces = PAPER_TABLE1[s.name]
        assert s.kloc == kloc, s.name
        assert s.field_count == fields, s.name
        assert s.expected_table1_races == races, s.name
        assert s.expected_table1_noraces == noraces, s.name
        assert s.expected_table2_races == PAPER_TABLE2.get(s.name, 0), s.name


def test_kbfiltr_moufiltr_are_ioctl_serialized():
    assert spec_by_name("kbfiltr").ioctl_serialized
    assert spec_by_name("moufiltr").ioctl_serialized
    assert not spec_by_name("fdc").ioctl_serialized


def test_total_kloc_close_to_paper():
    assert abs(sum(s.kloc for s in DRIVER_SPECS) - 69.6) < 0.01


# -- harness rules ------------------------------------------------------------------


def test_all_pairs_count():
    rs = list(Routine)
    n = len(rs)
    assert len(all_pairs(rs)) == n * (n + 1) // 2


def test_rule_a1_pnp_pairs():
    assert rule_a1((Routine.PNP_QUERY, Routine.PNP_OTHER))
    assert rule_a1((Routine.PNP_START, Routine.PNP_QUERY))
    assert not rule_a1((Routine.PNP_QUERY, Routine.READ))


def test_rule_a2_start_with_anything():
    assert rule_a2((Routine.PNP_START, Routine.READ))
    assert rule_a2((Routine.POWER_SYS, Routine.PNP_START))
    assert not rule_a2((Routine.PNP_QUERY, Routine.READ))


def test_rule_a3_same_category_power():
    assert rule_a3((Routine.POWER_SYS, Routine.POWER_SYS))
    assert rule_a3((Routine.POWER_DEV, Routine.POWER_DEV))
    assert not rule_a3((Routine.POWER_SYS, Routine.POWER_DEV))


def test_rule_ioctl():
    assert rule_ioctl((Routine.IOCTL, Routine.IOCTL))
    assert not rule_ioctl((Routine.IOCTL, Routine.READ))


def test_refined_pairs_subset_of_permissive():
    rs = list(Routine)
    assert set(refined_pairs(rs)) < set(permissive_pairs(rs))


def test_refined_keeps_real_race_pair():
    from repro.drivers.spec import REAL_PAIR

    assert REAL_PAIR in refined_pairs(list(Routine))


def test_refined_drops_spurious_pairs():
    from repro.drivers.spec import SPURIOUS_PAIRS

    refined = set(refined_pairs(list(Routine), ioctl_serialized=True))
    for kind, pair in SPURIOUS_PAIRS.items():
        normalized = pair if pair in all_pairs(list(Routine)) else (pair[1], pair[0])
        assert normalized not in refined, kind


# -- generation ----------------------------------------------------------------------


def test_every_driver_generates_and_parses():
    for s in DRIVER_SPECS:
        prog = parse_core(generate_source(s, loc_scale=0))
        assert "DEVICE_EXTENSION" in prog.structs
        assert len(prog.structs["DEVICE_EXTENSION"].fields) == s.field_count


def test_generated_source_scales_with_kloc():
    small = generate_source(spec_by_name("tracedrv"))
    big = generate_source(spec_by_name("fdc"))
    assert len(big.splitlines()) > len(small.splitlines())


def test_refined_harness_has_fewer_branches():
    s = spec_by_name("gameenum")
    permissive = generate_source(s, refined_harness=False, loc_scale=0)
    refined = generate_source(s, refined_harness=True, loc_scale=0)
    assert permissive.count("async") > refined.count("async")


# -- end-to-end on the small drivers (the full corpus runs in benchmarks/) -----------


@pytest.mark.parametrize("name", ["tracedrv", "imca", "toaster/toastmon"])
def test_small_driver_reproduces_table1_row(name):
    spec = spec_by_name(name)
    r = check_driver(spec)
    assert r.races == spec.expected_table1_races
    assert r.no_races == spec.expected_table1_noraces
    assert r.unresolved == spec.expected_unresolved


def test_toastmon_table2_row():
    spec = spec_by_name("toaster/toastmon")
    t1 = check_driver(spec)
    [t2] = run_table2([t1], specs=[spec])
    assert t2.races == spec.expected_table2_races


def test_unresolved_fields_report_resource_bound():
    spec = spec_by_name("mouclass")
    hard = [f.name for f in spec.fields if f.kind is FieldKind.UNRESOLVED]
    r = check_driver(spec, fields=hard)
    assert r.unresolved == len(hard)
