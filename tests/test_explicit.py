"""Unit tests for the sequential explicit-state checker."""

import pytest

from repro.lang import parse_core
from repro.seqcheck.explicit import check_sequential
from repro.seqcheck.trace import CheckStatus


def run(src, **kw):
    return check_sequential(parse_core(src), **kw)


def test_trivially_safe():
    r = run("void main() { skip; }")
    assert r.is_safe


def test_assert_true_safe():
    r = run("void main() { assert(true); }")
    assert r.is_safe


def test_assert_false_fails():
    r = run("void main() { assert(false); }")
    assert r.is_error
    assert r.violation_kind == "assert"


def test_arithmetic():
    r = run("int g; void main() { g = 2 + 3 * 4; assert(g == 14); }")
    assert r.is_safe


def test_division_truncates_toward_zero():
    r = run("int g; void main() { g = -7 / 2; assert(g == -3); }")
    assert r.is_safe


def test_modulo_sign_follows_dividend():
    r = run("int g; void main() { g = -7 % 2; assert(g == -1); }")
    assert r.is_safe


def test_division_by_zero_detected():
    r = run("int g; int h; void main() { g = 1 / h; }")
    assert r.is_error
    assert r.violation_kind == "div-zero"


def test_globals_default_initialized():
    r = run("int g; bool b; void main() { assert(g == 0); assert(!b); }")
    assert r.is_safe


def test_global_initializer():
    r = run("int g = 5; void main() { assert(g == 5); }")
    assert r.is_safe


def test_negative_global_initializer():
    r = run("int g = -3; void main() { assert(g == -3); }")
    assert r.is_safe


def test_if_both_branches_explored():
    r = run(
        "bool b; void main() { b = nondet; if (b) { assert(true); } else { assert(false); } }"
    )
    assert r.is_error


def test_assume_prunes_path():
    r = run("bool b; void main() { b = nondet; assume(b); assert(b); }")
    assert r.is_safe


def test_assume_false_blocks_sequential_program():
    # assume(false) in a sequential program means the path never continues,
    # so the assert after it is unreachable: safe.
    r = run("void main() { assume(false); assert(false); }")
    assert r.is_safe


def test_while_loop_terminates_via_memoization():
    r = run("int g; void main() { while (g < 5) { g = g + 1; } assert(g == 5); }")
    assert r.is_safe


def test_iter_explores_zero_or_more():
    r = run("int g; void main() { iter { g = g + 1; assume(g < 3); } assert(g < 3); }")
    assert r.is_safe


def test_function_call_and_return_value():
    r = run("int inc(int x) { return x + 1; } void main() { int y; y = inc(41); assert(y == 42); }")
    assert r.is_safe


def test_recursion_bounded():
    r = run(
        """
        int fact(int n) { if (n <= 1) { return 1; } int r; r = fact(n - 1); return n * r; }
        void main() { int x; x = fact(5); assert(x == 120); }
        """
    )
    assert r.is_safe


def test_fall_off_end_of_nonvoid_returns_default():
    r = run("int f() { skip; } void main() { int x; x = 1; x = f(); assert(x == 0); }")
    assert r.is_safe


def test_pointer_roundtrip_through_local():
    r = run("void main() { int x; int *p; p = &x; *p = 9; assert(x == 9); }")
    assert r.is_safe


def test_pointer_to_global():
    r = run("int g; void main() { int *p; p = &g; *p = 4; assert(g == 4); }")
    assert r.is_safe


def test_null_deref_detected():
    r = run("void main() { int *p; p = null; *p = 1; }")
    assert r.is_error
    assert r.violation_kind == "null-deref"


def test_malloc_and_field_access():
    r = run(
        "struct S { int a; bool b; } void main() { S *p; p = malloc(S); assert(p->a == 0); p->a = 3; assert(p->a == 3); }"
    )
    assert r.is_safe


def test_two_cells_independent():
    r = run(
        """
        struct S { int a; }
        void main() {
          S *p; S *q;
          p = malloc(S); q = malloc(S);
          p->a = 1; q->a = 2;
          assert(p->a == 1); assert(q->a == 2); assert(p != q);
        }
        """
    )
    assert r.is_safe


def test_address_of_field():
    r = run(
        "struct S { int a; } void main() { S *p; int *q; p = malloc(S); q = &p->a; *q = 8; assert(p->a == 8); }"
    )
    assert r.is_safe


def test_malloc_in_loop_converges_via_gc_canonicalization():
    # Each iteration leaks a cell; canonical freezing garbage-collects it,
    # so the state space stays finite.
    r = run(
        "struct S { int a; } void main() { int i; iter { S *p; p = malloc(S); p->a = 1; } assert(true); }",
        max_states=10_000,
    )
    assert r.is_safe


def test_call_in_loop_converges():
    r = run(
        "int id(int x) { return x; } void main() { int g; iter { g = id(g); } assert(g == 0); }",
        max_states=10_000,
    )
    assert r.is_safe


def test_indirect_call():
    r = run(
        "int f() { return 7; } void main() { func v; int x; v = f; x = v(); assert(x == 7); }"
    )
    assert r.is_safe


def test_indirect_call_undefined_function_value():
    r = run("void main() { func v; v(); }")
    assert r.is_error
    assert r.violation_kind == "undef-call"


def test_async_rejected():
    r = run("void f() { } void main() { async f(); }")
    assert r.is_error
    assert r.violation_kind == "not-sequential"


def test_atomic_executes_indivisibly_and_transparently():
    r = run("int g; void main() { atomic { g = g + 1; g = g + 1; } assert(g == 2); }")
    assert r.is_safe


def test_atomic_with_internal_choice():
    r = run(
        "int g; void main() { atomic { choice { g = 1; } or { g = 2; } } assert(g >= 1); assert(g <= 2); }"
    )
    assert r.is_safe


def test_atomic_leading_assume_blocks_path():
    r = run("bool b; void main() { atomic { assume(b); } assert(false); }")
    assert r.is_safe  # the only path is blocked


def test_state_budget_exhaustion_reported():
    r = run(
        "int g; void main() { iter { g = g + 1; } }",
        max_states=50,
    )
    assert r.exhausted


def test_error_trace_ends_with_failing_assert():
    r = run("int g; void main() { g = 1; g = 2; assert(g == 1); }")
    assert r.is_error
    assert "assert" in str(r.trace[-1]).lower()
    # trace is shortest-first BFS: two assigns, the lowered condition
    # evaluation, and the assert itself
    assert len(r.trace) == 4


def test_choice_explores_all_branches():
    r = run("int g; void main() { choice { g = 1; } or { g = 2; } or { g = 3; } assert(g != 2); }")
    assert r.is_error


def test_stats_populated():
    r = run("int g; void main() { g = 1; }")
    assert r.stats.states >= 2
    assert r.stats.transitions >= 1
