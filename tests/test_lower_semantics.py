"""End-to-end semantic checks for trickier surface constructs — each
program encodes its own expected outcome in an assert."""

import pytest

from repro.lang import parse_core
from repro.seqcheck.explicit import check_sequential


def safe(src):
    r = check_sequential(parse_core(src))
    assert r.is_safe, r.format_trace()


def error(src):
    assert check_sequential(parse_core(src)).is_error


def test_short_circuit_in_while_condition():
    safe(
        """
        int n; int seen;
        void main() {
          int *p; int x;
          x = 3; p = &x;
          while (n < 3 && *p > 0) { n = n + 1; seen = seen + *p; }
          assert(n == 3);
          assert(seen == 9);
        }
        """
    )


def test_null_guard_in_while_condition():
    safe(
        """
        struct Node { int v; Node *next; }
        int sum;
        void main() {
          Node *a; Node *b; Node *cur;
          a = malloc(Node); b = malloc(Node);
          a->v = 1; a->next = b;
          b->v = 2; b->next = null;
          cur = a;
          while (cur != null && sum < 100) {
            sum = sum + cur->v;
            cur = cur->next;
          }
          assert(sum == 3);
        }
        """
    )


def test_linked_list_reversal():
    safe(
        """
        struct Node { int v; Node *next; }
        void main() {
          Node *a; Node *b; Node *c; Node *prev; Node *cur; Node *nxt;
          a = malloc(Node); b = malloc(Node); c = malloc(Node);
          a->v = 1; a->next = b;
          b->v = 2; b->next = c;
          c->v = 3; c->next = null;
          prev = null; cur = a;
          while (cur != null) {
            nxt = cur->next;
            cur->next = prev;
            prev = cur;
            cur = nxt;
          }
          assert(prev->v == 3);
          assert(prev->next->v == 2);
          assert(prev->next->next->v == 1);
          assert(prev->next->next->next == null);
        }
        """
    )


def test_else_if_chain():
    safe(
        """
        int x; int out;
        void main() {
          x = 2;
          if (x == 0) { out = 10; }
          else { if (x == 1) { out = 20; } else { if (x == 2) { out = 30; } else { out = 40; } } }
          assert(out == 30);
        }
        """
    )


def test_malloc_into_field_lvalue():
    safe(
        """
        struct Inner { int v; }
        struct Outer { Inner *inner; }
        void main() {
          Outer *o;
          o = malloc(Outer);
          o->inner = malloc(Inner);
          o->inner->v = 5;
          assert(o->inner->v == 5);
        }
        """
    )


def test_call_result_into_deref_lvalue():
    safe(
        """
        int five() { return 5; }
        void main() {
          int x; int *p;
          p = &x;
          *p = five();
          assert(x == 5);
        }
        """
    )


def test_declaration_with_initializer_uses_prior_state():
    safe(
        """
        int g;
        void main() {
          g = 4;
          int doubled = g * 2;
          assert(doubled == 8);
        }
        """
    )


def test_condition_side_effect_ordering():
    # the condition is evaluated exactly once per iteration, before the body
    safe(
        """
        int reads; int n;
        bool check() { reads = reads + 1; return n < 2; }
        void main() {
          bool c;
          c = check();
          while (c) { n = n + 1; c = check(); }
          assert(n == 2);
          assert(reads == 3);
        }
        """
    )


def test_deeply_nested_field_chain():
    safe(
        """
        struct C { int v; }
        struct B { C *c; }
        struct A { B *b; }
        void main() {
          A *a;
          a = malloc(A);
          a->b = malloc(B);
          a->b->c = malloc(C);
          a->b->c->v = 9;
          assert(a->b->c->v == 9);
        }
        """
    )


def test_chained_comparisons_via_temps():
    error(
        """
        int x;
        void main() {
          x = 5;
          assert(x > 1 && x < 5);
        }
        """
    )


def test_unary_minus_of_expression():
    safe("int g; void main() { g = -(2 + 3); assert(g == -5); }")


def test_not_of_comparison():
    safe("int g; bool b; void main() { g = 1; b = !(g == 2); assert(b); }")


def test_assignment_value_not_an_expression():
    # C allows `x = y = 1`; this language does not — it must not parse
    from repro.lang.parser import ParseError

    with pytest.raises(ParseError):
        parse_core("int x; int y; void main() { x = y = 1; }")


def test_benign_block_is_semantically_transparent():
    safe(
        """
        int g;
        void main() {
          benign { g = 7; }
          assert(g == 7);
        }
        """
    )
