"""Unit tests for the Figure 4 sequentialization."""

import pytest

from repro.lang import ast, parse_core
from repro.lang.lower import is_core_program
from repro.lang.types import check_program
from repro.core import names
from repro.core.transform import KissTransformer, TransformError, kiss_transform, spawn_families
from repro.seqcheck.explicit import check_sequential
from repro.concheck import check_concurrent


SPAWN_SRC = """
bool flag;
void worker() { flag = true; }
void main() { async worker(); assert(!flag); }
"""


def transform(src, max_ts=0):
    return kiss_transform(parse_core(src), max_ts=max_ts)


# -- static shape --------------------------------------------------------------


def test_output_is_core_and_typechecks():
    out = transform(SPAWN_SRC, max_ts=1)
    assert is_core_program(out)
    check_program(out)  # raises on ill-typed instrumentation


def test_output_has_no_async():
    out = transform(SPAWN_SRC, max_ts=2)
    for f in out.functions.values():
        assert not any(isinstance(s, ast.AsyncCall) for s in ast.walk_stmts(f.body))


def test_entry_is_check_wrapper():
    out = transform(SPAWN_SRC)
    assert out.entry == names.CHECK_FN
    assert names.CHECK_FN in out.functions


def test_raise_global_added():
    out = transform(SPAWN_SRC)
    assert names.RAISE_VAR in out.globals


def test_ts_globals_only_when_max_positive():
    out0 = transform(SPAWN_SRC, max_ts=0)
    assert names.TS_SIZE not in out0.globals
    out2 = transform(SPAWN_SRC, max_ts=2)
    assert names.TS_SIZE in out2.globals
    assert names.ts_count("worker") in out2.globals


def test_schedule_function_only_when_max_positive():
    assert names.SCHEDULE_FN not in transform(SPAWN_SRC, max_ts=0).functions
    assert names.SCHEDULE_FN in transform(SPAWN_SRC, max_ts=1).functions


def test_input_not_mutated():
    prog = parse_core(SPAWN_SRC)
    before = {name: len(f.locals) for name, f in prog.functions.items()}
    kiss_transform(prog, max_ts=1)
    after = {name: len(f.locals) for name, f in prog.functions.items()}
    assert before == after
    assert prog.entry == "main"


def test_reserved_names_rejected():
    with pytest.raises(TransformError):
        transform("int __kiss_raise; void main() { }")


def test_non_core_input_rejected():
    from repro.lang import parse

    with pytest.raises(TransformError):
        kiss_transform(parse("void main() { if (true) { skip; } }"))


def test_spawn_families_direct():
    prog = parse_core(SPAWN_SRC)
    fams = spawn_families(prog)
    assert [f.name for f in fams] == ["worker"]
    assert not fams[0].indirect


def test_spawn_families_indirect():
    prog = parse_core(
        "void w() { } void main() { func v; v = w; async v(); }"
    )
    fams = spawn_families(prog)
    assert len(fams) == 1 and fams[0].indirect


def test_negative_max_ts_rejected():
    with pytest.raises(ValueError):
        KissTransformer(max_ts=-1)


def test_original_statements_untagged_instrumentation_tagged():
    out = transform(SPAWN_SRC)
    main = out.functions["main"]
    tags = [s.kiss_tag for s in ast.walk_stmts(main.body) if not isinstance(s, ast.Block)]
    assert None in tags  # original statements survive untagged
    assert "instr" in tags


# -- behaviour: the sequential program simulates the concurrent one ---------------


def run_kiss(src, max_ts=0, **kw):
    return check_sequential(transform(src, max_ts=max_ts), **kw)


def test_inline_async_completes_and_error_found_at_ts0():
    r = run_kiss(SPAWN_SRC, max_ts=0)
    assert r.is_error
    assert r.violation_kind == "assert"


def test_error_also_found_at_ts1():
    r = run_kiss(SPAWN_SRC, max_ts=1)
    assert r.is_error


def test_partial_execution_of_spawned_thread_via_raise():
    # worker sets a then b; main's assert fails only if worker stopped in
    # between — requires RAISE-based partial thread termination
    src = """
    bool a; bool b;
    void worker() { a = true; b = true; }
    void main() {
      async worker();
      assume(a);
      assert(b);
    }
    """
    r = run_kiss(src, max_ts=0)
    assert r.is_error


def test_safe_program_stays_safe():
    src = """
    int lock; int g;
    void acquire() { atomic { assume(lock == 0); lock = 1; } }
    void release() { atomic { lock = 0; } }
    void worker() { acquire(); g = 2; release(); }
    void main() {
      async worker();
      acquire();
      g = 1;
      assert(g == 1);
      release();
    }
    """
    r = run_kiss(src, max_ts=1)
    assert r.is_safe


def test_ts1_needed_for_resumption_bug():
    # the bug needs: spawn, parent progresses, child runs, parent resumes
    src = """
    int phase;
    void worker() { assume(phase == 1); phase = 2; }
    void main() {
      async worker();
      phase = 1;
      assume(phase == 2);
      assert(false);
    }
    """
    r0 = run_kiss(src, max_ts=0)
    assert r0.is_safe  # ts bound 0 misses it (the paper's coverage knob)
    r1 = run_kiss(src, max_ts=1)
    assert r1.is_error
    # ground truth: the concurrent program really has the bug
    assert check_concurrent(parse_core(src)).is_error


def test_ts_full_falls_back_to_synchronous_call():
    # two asyncs, ts of size 1: the second is called synchronously
    src = """
    int n;
    void w1() { atomic { n = n + 1; } }
    void w2() { atomic { n = n + 1; } }
    void main() {
      async w1();
      async w2();
      assume(n == 2);
      assert(n == 2);
    }
    """
    r = run_kiss(src, max_ts=1)
    assert r.is_safe


def test_spawned_thread_receives_arguments():
    src = """
    struct S { int a; }
    void worker(S *p) { assert(p->a == 5); }
    void main() { S *e; e = malloc(S); e->a = 5; async worker(e); }
    """
    assert run_kiss(src, max_ts=0).is_safe
    assert run_kiss(src, max_ts=1).is_safe


def test_argument_snapshot_at_spawn_time():
    # args are captured when async executes, not when the thread runs
    src = """
    int g;
    void worker(int x) { assert(x == 1); }
    void main() {
      g = 1;
      async worker(g);
      g = 2;
    }
    """
    assert run_kiss(src, max_ts=1).is_safe


def test_indirect_async_dispatch():
    src = """
    bool done;
    void w() { done = true; }
    void main() {
      func v;
      v = w;
      async v();
      assume(done);
      assert(done);
    }
    """
    assert run_kiss(src, max_ts=1).is_safe


def test_multiple_parked_threads_any_order():
    src = """
    int a; int b;
    void w1() { a = 1; }
    void w2() { assume(a == 1); b = 1; }
    void main() {
      async w2();
      async w1();
      assume(b == 1);
      assert(false);
    }
    """
    # needs both threads parked and dispatched in data-dependent order
    r = run_kiss(src, max_ts=2)
    assert r.is_error


def test_kiss_error_implies_concurrent_error():
    """Completeness spot-check ("never reports false errors")."""
    sources = [
        SPAWN_SRC,
        """
        int phase;
        void worker() { assume(phase == 1); phase = 2; }
        void main() { async worker(); phase = 1; assume(phase == 2); assert(false); }
        """,
    ]
    for src in sources:
        for max_ts in (0, 1, 2):
            r = run_kiss(src, max_ts=max_ts)
            if r.is_error:
                assert check_concurrent(parse_core(src)).is_error
