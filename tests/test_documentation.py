"""Documentation guarantees: every module and every public callable in
the library carries a docstring (deliverable-level check, not style
nitpicking)."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _modules():
    out = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        out.append(info.name)
    return out


MODULES = _modules()


def test_every_module_has_a_docstring():
    missing = []
    for name in MODULES:
        mod = importlib.import_module(name)
        if not (mod.__doc__ or "").strip():
            missing.append(name)
    assert not missing, f"modules without docstrings: {missing}"


def test_public_functions_and_classes_documented():
    missing = []
    for name in MODULES:
        mod = importlib.import_module(name)
        for attr_name, attr in vars(mod).items():
            if attr_name.startswith("_"):
                continue
            if getattr(attr, "__module__", None) != name:
                continue  # re-exports are documented at their home
            if inspect.isclass(attr) or inspect.isfunction(attr):
                if not (inspect.getdoc(attr) or "").strip():
                    missing.append(f"{name}.{attr_name}")
    assert not missing, f"undocumented public items: {missing}"


def test_docs_exist_and_reference_real_modules():
    import pathlib

    root = pathlib.Path(__file__).resolve().parent.parent
    for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                "docs/LANGUAGE.md", "docs/ALGORITHMS.md"):
        text = (root / doc).read_text()
        assert len(text) > 500, f"{doc} is suspiciously short"
    design = (root / "DESIGN.md").read_text()
    for module in ("repro.lang", "core.transform", "seqcheck", "concheck", "drivers"):
        assert module.split(".")[-1] in design


def test_examples_have_run_instructions():
    import pathlib

    root = pathlib.Path(__file__).resolve().parent.parent
    examples = sorted((root / "examples").glob("*.py"))
    assert len(examples) >= 3
    for ex in examples:
        head = ex.read_text()[:1200]
        assert '"""' in head, f"{ex.name} lacks a docstring"
        assert "Run:" in head, f"{ex.name} lacks run instructions"
