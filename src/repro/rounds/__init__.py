"""K-round (Lal–Reps style) eager sequentialization.

Where :mod:`repro.core.transform` implements the paper's Figure 4 — two
context switches for two threads — this package implements the tunable
generalization: a round-robin schedule with ``K`` rounds, versioned
copies of the shared globals per round, guessed round-entry snapshots,
and an epilogue that assumes snapshot consistency.  See
``docs/SEQUENTIALIZATION.md``.
"""

from .transform import (
    TAG_RR_ADVANCE,
    TAG_RR_FAIL,
    TAG_RR_WRITE,
    RoundRobinTransformer,
    rounds_transform,
)
from .tracemap import map_result, map_trace

__all__ = [
    "RoundRobinTransformer",
    "rounds_transform",
    "TAG_RR_ADVANCE",
    "TAG_RR_FAIL",
    "TAG_RR_WRITE",
    "map_result",
    "map_trace",
]
