"""The eager K-round sequentialization (Lal–Reps / La Torre–Madhusudan–
Parlato style), built on the Figure 4 machinery of
:mod:`repro.core.transform`.

KISS covers executions of two threads with at most two context switches
(Theorem 1).  The K-round transform generalizes this to a *round-robin*
schedule with ``K`` rounds: every thread is preempted at most ``K - 1``
times, and threads run in spawn order within each round.  The translation
is *eager* — each thread runs all of its rounds contiguously:

* every shared global ``g`` that is written anywhere gets ``K - 1``
  versioned copies ``__kiss_r<k>_g`` (round 0 uses ``g`` itself);
* the entry wrapper nondeterministically *guesses* the value of every
  copy — the state each round starts from — and records the guess in
  ``__kiss_g<k>_g``;
* one-hot boolean flags ``__kiss_in_r<k>`` track the running thread's
  current round (booleans rather than an int counter: the CEGAR backend
  abstracts boolean guards far more cheaply than int comparisons);
  before every statement that touches a versioned global the thread may
  nondeterministically advance its round (``TAG_RR_ADVANCE``), and may
  ``raise``-terminate exactly as in Figure 4;
* reads and writes of a versioned global dispatch on the round flags to
  the round's copy (``TAG_RR_WRITE`` on the write branches);
* ``async`` reuses the bounded ``ts`` multiset of Figure 4, additionally
  parking the *spawn round* per slot (as ``K`` booleans); parked
  threads are dispatched FIFO after ``main`` returns by
  ``__kiss_rr_run``, which restores the round flags to the spawn round
  (a child's first round is the round its parent spawned it in);
* an ``assert`` cannot fail on the spot — the guessed snapshots may be
  inconsistent — so its failure branch records the violation in
  ``__kiss_rr_err`` (``TAG_RR_FAIL``) and raises; the entry epilogue
  *assumes* snapshot consistency (the guessed entry state of round ``k``
  equals the exit state of round ``k - 1``) and only then asserts
  ``!__kiss_rr_err``;
* with ``K = 1`` all of the versioning machinery disappears and the
  result is the purely sequential program (threads run to completion in
  spawn order, with ``raise`` still modelling never-scheduled threads).

Soundness: every error reported corresponds to a real interleaving — the
consistency epilogue ensures the per-round version variables concatenate
into a genuine round-robin execution, which the rounds trace mapper
(:mod:`repro.rounds.tracemap`) reconstructs.  Completeness is bounded in
three documented ways: by ``K`` (at most ``K - 1`` preemptions per
thread), by the *finite guess domain* (a guessed round-entry state must
match the previous round's exit state, so guesses range over each
global's initial value and the constants stored into it — globals
written from computed expressions fall back to the program's whole
literal pool, which still misses values like long increment chains),
and by FIFO dispatch order of same-family parked threads.

The transform only supports the scalar fragment when ``K >= 2``: no
heap (``malloc``/pointers/fields — heap cells cannot be versioned), no
``/`` or ``%`` (a division under an unvalidated guess could report a
spurious division by zero), no asserts inside ``atomic`` (the failure
branch must ``return``, which atomic regions forbid), and no writes to
function-typed globals.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro import obs
from repro.lang.ast import (
    BOOL,
    FUNC,
    INT,
    Assert,
    Assign,
    Assume,
    AsyncCall,
    Atomic,
    Binary,
    Block,
    BoolLit,
    BoolType,
    Call,
    Choice,
    Expr,
    Field,
    FuncDecl,
    GlobalDecl,
    IntLit,
    IntType,
    Iter,
    Malloc,
    Program,
    Return,
    Skip,
    Stmt,
    Type,
    Unary,
    Var,
    is_atom,
    stmt_exprs,
    walk_exprs,
    walk_stmts,
)
from repro.core import names
from repro.core.transform import (
    TAG_ROOT,
    KissTransformer,
    SpawnFamily,
    TransformError,
    _FnCtx,
    _tag,
    default_const_for,
)

TAG_RR_ADVANCE = "rr-advance"  # __kiss_round := __kiss_round + 1
TAG_RR_WRITE = "rr-write"  # the executed dispatch-write branch of a global write
TAG_RR_FAIL = "rr-fail"  # __kiss_rr_err := true (carries the failing assert's sid)


class _RoundsCtx(_FnCtx):
    """Per-function context: Figure 4 temps plus one shared value temp
    per redirected global."""

    def __init__(self, decl: FuncDecl):
        super().__init__(decl)
        #: user locals/params that shadow a global of the same name
        self.shadowed: Set[str] = set(decl.locals) | {p.name for p in decl.params}
        self._gtmps: Dict[str, Var] = {}

    def gtmp(self, gname: str, typ: Type) -> Var:
        """The value temp for redirected accesses of global ``gname``."""
        v = self._gtmps.get(gname)
        if v is None:
            v = self.fresh(typ)
            self._gtmps[gname] = v
        return v


class RoundRobinTransformer(KissTransformer):
    """``transform(P)`` emits an ordinary sequential core program whose
    executions simulate the K-round round-robin executions of ``P``.

    Parameters
    ----------
    rounds:
        The round budget ``K >= 1``.  ``K = 2`` subsumes the KISS
        coverage for two threads; larger ``K`` converges on all
        executions with boundedly many preemptions per thread.
    max_ts:
        Bound on the parked-thread multiset, exactly as in Figure 4
        (0 inlines every ``async`` synchronously).
    guess_values:
        Optional override of the integer snapshot-guess domain (a list
        of ints used for every int-typed global).  The default harvests
        the program's int literals, the globals' initial values and 0.
    por:
        Shared-access POR (:mod:`repro.analysis.sharedaccess`): written
        globals the analysis proves single-threaded are left *unversioned*
        — no snapshot copies, no guesses, no advance points in front of
        their accesses (counted by ``por_schedule_points_pruned``).
    """

    def __init__(
        self,
        rounds: int = 2,
        max_ts: int = 0,
        guess_values: Optional[List[int]] = None,
        por: bool = False,
    ):
        super().__init__(max_ts=max_ts, por=por)
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.rounds = rounds
        self.guess_values = guess_values
        # Populated by transform():
        self.versioned: List[str] = []
        self.domains: Dict[str, List[Expr]] = {}
        self.advance_points = 0
        self._por_excluded: Set[str] = set()

    # -- public API -------------------------------------------------------------------

    def transform(self, prog: Program) -> Program:
        with obs.span(
            "transform",
            transformer=type(self).__name__,
            max_ts=self.max_ts,
            rounds=self.rounds,
        ):
            return self._transform(prog)

    # -- analysis ---------------------------------------------------------------------

    def _written_globals(self, prog: Program) -> List[str]:
        """Globals assigned anywhere (declaration order).  Read-only
        globals keep their initial value in every round and need no
        versioned copies."""
        written: Set[str] = set()
        for func in prog.functions.values():
            shadowed = set(func.locals) | {p.name for p in func.params}
            for s in walk_stmts(func.body):
                target = None
                if isinstance(s, (Assign, Malloc)):
                    target = s.lhs
                elif isinstance(s, Call):
                    target = s.lhs
                if isinstance(target, Var) and target.name not in shadowed and target.name in prog.globals:
                    written.add(target.name)
        return [g for g in prog.globals if g in written]

    def _check_restrictions(self, prog: Program) -> None:
        if self.rounds == 1:
            return  # no versioning: the full Figure 4 fragment is fine
        for func in prog.functions.values():
            for s in walk_stmts(func.body):
                if isinstance(s, Malloc):
                    raise TransformError("rounds >= 2: heap cells cannot be round-versioned (malloc)")
                if isinstance(s, Atomic):
                    for inner in walk_stmts(s.body):
                        if isinstance(inner, Assert):
                            raise TransformError("rounds >= 2: assert inside atomic is unsupported")
                for e in stmt_exprs(s):
                    for sub in walk_exprs(e):
                        if isinstance(sub, Field):
                            raise TransformError("rounds >= 2: field accesses are unsupported")
                        if isinstance(sub, Unary) and sub.op in ("*", "&"):
                            raise TransformError("rounds >= 2: pointers are unsupported")
                        if isinstance(sub, Binary) and sub.op in ("/", "%"):
                            raise TransformError(
                                "rounds >= 2: division under an unvalidated snapshot guess "
                                "could report a spurious error"
                            )
        for g in self.versioned:
            typ = prog.globals[g].type
            if not isinstance(typ, (IntType, BoolType)):
                raise TransformError(
                    f"rounds >= 2: written global '{g}' has unversionable type {typ}"
                )

    def _guess_domains(self, prog: Program) -> Dict[str, List[Expr]]:
        """The finite snapshot-guess domain per versioned global.

        A consistent guess must equal the previous round's exit value,
        i.e. the initial value or something *stored* into the global —
        so the domain harvests the int literals directly assigned to it.
        A global written from a computed expression (``g := g + 1``, a
        call result, another variable) falls back to the program's whole
        int-literal pool — wider, still finite, still incomplete for
        values no literal mentions (a documented coverage bound;
        ``guess_values`` overrides)."""
        pool: Set[int] = {0}
        for g in prog.globals.values():
            if isinstance(g.init, IntLit):
                pool.add(g.init.value)
        for func in prog.functions.values():
            for s in walk_stmts(func.body):
                for e in stmt_exprs(s):
                    for sub in walk_exprs(e):
                        if isinstance(sub, IntLit):
                            pool.add(sub.value)

        stored: Dict[str, Set[int]] = {g: set() for g in self.versioned}
        complex_write: Set[str] = set()
        for func in prog.functions.values():
            shadowed = set(func.locals) | {p.name for p in func.params}
            for s in walk_stmts(func.body):
                target = s.lhs if isinstance(s, (Assign, Call)) else None
                if not (isinstance(target, Var) and target.name in stored and target.name not in shadowed):
                    continue
                rhs = s.rhs if isinstance(s, Assign) else None
                if isinstance(rhs, IntLit):
                    stored[target.name].add(rhs.value)
                elif isinstance(rhs, BoolLit):
                    pass  # bool domains are always {false, true}
                else:
                    complex_write.add(target.name)

        domains: Dict[str, List[Expr]] = {}
        for g in self.versioned:
            if isinstance(prog.globals[g].type, BoolType):
                domains[g] = [BoolLit(False), BoolLit(True)]
                continue
            if self.guess_values is not None:
                ints = set(self.guess_values)
            else:
                init = prog.globals[g].init
                ints = {init.value if isinstance(init, IntLit) else 0}
                ints |= stored[g]
                if g in complex_write:
                    ints |= pool
            domains[g] = [IntLit(v) for v in sorted(ints)]
        return domains

    # -- orchestration ----------------------------------------------------------------

    def _transform(self, prog: Program) -> Program:
        from repro.lang.lower import clone_program, is_core_program
        from repro.core.transform import spawn_families

        if not is_core_program(prog):
            raise TransformError("input must be a core program (run repro.lang.lower first)")
        self._check_no_reserved(prog)
        out = clone_program(prog)
        self.prog = out
        self.families = spawn_families(out)
        self.emit_schedule = self.max_ts > 0 and bool(self.families)
        self.versioned = self._written_globals(out) if self.rounds > 1 else []
        self._por_excluded = set()
        if self.por and self.versioned:
            from repro.analysis.sharedaccess import analyze_shared_access

            self._por_shared = analyze_shared_access(out).shared
            self._por_excluded = {g for g in self.versioned if g not in self._por_shared}
            self.versioned = [g for g in self.versioned if g in self._por_shared]
        self._check_restrictions(out)
        self.domains = self._guess_domains(out)
        self.advance_points = 0

        for func in list(out.functions.values()):
            self._transform_function(func)

        self._add_globals(out)
        if self.emit_schedule:
            out.functions[names.RR_RUN_FN] = self._make_driver(out)
        out.functions[names.CHECK_FN] = self._make_check_entry(out)
        out.entry = names.CHECK_FN

        n_guesses = (self.rounds - 1) * len(self.versioned)
        obs.inc("rounds_snapshot_guesses", n_guesses)
        obs.inc(
            "rounds_guess_branches",
            (self.rounds - 1) * sum(len(self.domains[g]) for g in self.versioned),
        )
        obs.inc("rounds_consistency_assumes", n_guesses)
        obs.inc("rounds_advance_points", self.advance_points)
        return out

    def _transform_function(self, decl: FuncDecl) -> None:
        fctx = _RoundsCtx(decl)
        decl.body = Block(self._transform_stmts(fctx, decl.body.stmts))

    # -- globals and round state ------------------------------------------------------

    def _add_globals(self, out: Program) -> None:
        super()._add_globals(out)  # raise flag + ts counts/slots
        if self.rounds > 1:
            if self.emit_schedule:
                for fam in self.families:
                    for slot in range(self.max_ts):
                        for k in range(self.rounds):
                            gname = names.ts_slot_round(fam.name, slot, k)
                            out.globals[gname] = GlobalDecl(gname, BOOL, BoolLit(False))
            for k in range(self.rounds):
                gname = names.rr_in_round(k)
                out.globals[gname] = GlobalDecl(gname, BOOL, BoolLit(k == 0))
        out.globals[names.RR_ERR_VAR] = GlobalDecl(names.RR_ERR_VAR, BOOL, BoolLit(False))
        for g in self.versioned:
            decl = out.globals[g]
            for k in range(1, self.rounds):
                for mk in (names.rr_global, names.rr_guess):
                    gname = mk(g, k)
                    out.globals[gname] = GlobalDecl(gname, decl.type, decl.init)

    def _version(self, gname: str, k: int) -> str:
        return gname if k == 0 else names.rr_global(gname, k)

    # -- per-statement rewriting ------------------------------------------------------

    def _schedule_prefix(self) -> List[Stmt]:
        return []  # no mid-program scheduling: dispatch happens in __kiss_rr_run

    def _is_versioned(self, fctx: _RoundsCtx, name: str) -> bool:
        return name in self.domains and name not in fctx.shadowed

    def _accesses_versioned(self, fctx: _RoundsCtx, s: Stmt) -> bool:
        for inner in walk_stmts(s):
            for e in stmt_exprs(inner):
                for sub in walk_exprs(e):
                    if isinstance(sub, Var) and self._is_versioned(fctx, sub.name):
                        return True
        return False

    def _advance_prefix(self, fctx: _RoundsCtx) -> List[Stmt]:
        """The nondeterministic round-advance point: an ``iter`` whose
        body moves the one-hot flag from some round ``k < K - 1`` to
        ``k + 1`` (so 0 to K-1 advances happen here)."""
        if self.rounds == 1:
            return []
        branches = []
        for k in range(self.rounds - 1):
            branches.append(
                Block(
                    [
                        _tag(Assume(Var(names.rr_in_round(k)))),
                        _tag(Assign(Var(names.rr_in_round(k)), BoolLit(False))),
                        _tag(Assign(Var(names.rr_in_round(k + 1)), BoolLit(True)), TAG_RR_ADVANCE),
                    ]
                )
            )
        body = branches[0] if len(branches) == 1 else Block([_tag(Choice(branches))])
        self.advance_points += 1
        return [_tag(Iter(body))]

    def _context_prefix(self, fctx: _RoundsCtx, s: Stmt) -> List[Stmt]:
        """Advance + raise choice, inserted only before statements whose
        effect is observable across threads (versioned-global access) or
        that can block (``assume``) — preemption anywhere else commutes
        with the next such point."""
        blocking = isinstance(s, Assume) or (
            isinstance(s, Atomic) and any(isinstance(x, Assume) for x in walk_stmts(s.body))
        )
        if not blocking and not self._accesses_versioned(fctx, s):
            if self._por_excluded and self._accesses_excluded(fctx, s):
                obs.inc("por_schedule_points_pruned")
            return []
        return self._advance_prefix(fctx) + self._full_prefix(fctx, s)

    def _accesses_excluded(self, fctx: _RoundsCtx, s: Stmt) -> bool:
        """Does ``s`` touch a written global that POR left unversioned?
        (These are the accesses that would have carried an advance/raise
        point without the reduction — the honest prune count.)"""
        for inner in walk_stmts(s):
            for e in stmt_exprs(inner):
                for sub in walk_exprs(e):
                    if (
                        isinstance(sub, Var)
                        and sub.name in self._por_excluded
                        and sub.name not in fctx.shadowed
                    ):
                        return True
        return False

    def _read_atom(self, fctx: _RoundsCtx, e: Expr, out: List[Stmt]) -> Expr:
        """Redirect a versioned-global read through the current round's
        copy; other atoms pass through."""
        if not (isinstance(e, Var) and self._is_versioned(fctx, e.name)):
            return e
        g = e.name
        tmp = fctx.gtmp(g, self.prog.globals[g].type)
        branches = []
        for k in range(self.rounds):
            branches.append(
                Block(
                    [
                        _tag(Assume(Var(names.rr_in_round(k)))),
                        _tag(Assign(tmp, Var(self._version(g, k)))),
                    ]
                )
            )
        out.append(_tag(Choice(branches)))
        return tmp

    def _write_global(
        self, fctx: _RoundsCtx, g: str, value: Expr, sid: int, tag: str = TAG_RR_WRITE
    ) -> List[Stmt]:
        """The dispatch-write: one branch per round, writing the round's
        copy.  The executed branch is the statement's user step in the
        mapped trace (``TAG_RR_WRITE`` carries the original sid)."""
        branches = []
        for k in range(self.rounds):
            w = Assign(Var(self._version(g, k)), value)
            _tag(w, tag, sid=sid)
            branches.append(
                Block(
                    [
                        _tag(Assume(Var(names.rr_in_round(k)))),
                        w,
                    ]
                )
            )
        return [_tag(Choice(branches))]

    def _rewrite_assign(self, fctx: _RoundsCtx, s: Assign, out: List[Stmt]) -> None:
        rhs = s.rhs
        if isinstance(rhs, Binary):
            left = self._read_atom(fctx, rhs.left, out)
            right = self._read_atom(fctx, rhs.right, out)
            if left is not rhs.left or right is not rhs.right:
                rhs = Binary(rhs.op, left, right)
        elif isinstance(rhs, Unary):
            operand = self._read_atom(fctx, rhs.operand, out)
            if operand is not rhs.operand:
                rhs = Unary(rhs.op, operand)
        elif is_atom(rhs):
            rhs = self._read_atom(fctx, rhs, out)
        if isinstance(s.lhs, Var) and self._is_versioned(fctx, s.lhs.name):
            g = s.lhs.name
            if is_atom(rhs):
                value = rhs
            else:
                value = fctx.gtmp(g, self.prog.globals[g].type)
                out.append(_tag(Assign(value, rhs)))
            out.extend(self._write_global(fctx, g, value, sid=s.sid))
        else:
            s.rhs = rhs  # keeps the original statement (sid, no tag): the user step
            out.append(s)

    def _rewrite_atomic_body(self, fctx: _RoundsCtx, stmts: Sequence[Stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        for s in stmts:
            if isinstance(s, Block):
                inner = Block(self._rewrite_atomic_body(fctx, s.stmts))
                inner.sid = s.sid
                out.append(inner)
            elif isinstance(s, Choice):
                branches = []
                for b in s.branches:
                    nb = Block(self._rewrite_atomic_body(fctx, b.stmts))
                    nb.sid = b.sid
                    branches.append(nb)
                c = Choice(branches, s.pos, sid=s.sid)
                c.kiss_tag = s.kiss_tag
                out.append(c)
            elif isinstance(s, Iter):
                body = Block(self._rewrite_atomic_body(fctx, s.body.stmts))
                body.sid = s.body.sid
                it = Iter(body, s.pos, sid=s.sid)
                it.kiss_tag = s.kiss_tag
                out.append(it)
            elif isinstance(s, Assign):
                self._rewrite_assign(fctx, s, out)
            elif isinstance(s, Assume):
                s.cond = self._read_atom(fctx, s.cond, out)
                out.append(s)
            elif isinstance(s, Skip):
                out.append(s)
            else:
                raise TransformError(f"unsupported statement in atomic: {type(s).__name__}")
        return out

    def _transform_stmt(self, fctx: _RoundsCtx, s: Stmt) -> List[Stmt]:
        if isinstance(s, (Block, Choice, Iter)):
            return super()._transform_stmt(fctx, s)  # structural recursion
        if isinstance(s, Return):
            return [s]
        if isinstance(s, Call):
            out: List[Stmt] = []
            s.args = [self._read_atom(fctx, a, out) for a in s.args]
            redirect_ret = (
                isinstance(s.lhs, Var)
                and self._is_versioned(fctx, s.lhs.name)
            )
            if redirect_ret:
                g = s.lhs.name
                tmp = fctx.gtmp(g, self.prog.globals[g].type)
                s.lhs = tmp
                out.append(s)
                out.extend(self._if_raise_return(fctx))
                # silent write: the call node itself is the replayable
                # step, so the dispatch-write must not add a user step
                out.extend(self._write_global(fctx, g, tmp, sid=0, tag="instr"))
            else:
                out.append(s)
                out.extend(self._if_raise_return(fctx))
            return out
        if isinstance(s, AsyncCall):
            out = []
            s.args = [self._read_atom(fctx, a, out) for a in s.args]
            out.extend(self._lower_async(fctx, s))
            return out
        if isinstance(s, Malloc):
            if self.rounds > 1:
                raise TransformError("rounds >= 2: heap cells cannot be round-versioned (malloc)")
            return [s]
        if isinstance(s, Skip):
            return [s]
        if isinstance(s, Assign):
            out = self._context_prefix(fctx, s)
            self._rewrite_assign(fctx, s, out)
            return out
        if isinstance(s, Assume):
            out = self._context_prefix(fctx, s)
            s.cond = self._read_atom(fctx, s.cond, out)
            out.append(s)
            return out
        if isinstance(s, Assert):
            return self._rewrite_assert(fctx, s)
        if isinstance(s, Atomic):
            out = self._context_prefix(fctx, s)
            if self.rounds > 1 and self._accesses_versioned(fctx, s):
                s.body = Block(self._rewrite_atomic_body(fctx, s.body.stmts))
            out.append(s)
            return out
        raise TransformError(f"cannot transform statement {type(s).__name__}")

    def _rewrite_assert(self, fctx: _RoundsCtx, s: Assert) -> List[Stmt]:
        out = self._context_prefix(fctx, s)
        if self.rounds == 1:
            # no guesses to invalidate an error: assert in place
            out.append(s)
            return out
        s.cond = self._read_atom(fctx, s.cond, out)
        cond = s.cond
        tneg = fctx.tneg()
        ok = Block([_tag(Assume(cond)), s])  # s keeps its sid: the passing user step
        fail = Block(
            [
                _tag(Assign(tneg, Unary("!", cond))),
                _tag(Assume(tneg)),
                _tag(Assign(Var(names.RR_ERR_VAR), BoolLit(True)), TAG_RR_FAIL, sid=s.sid),
            ]
            + self._raise_stmts(fctx)
        )
        out.append(_tag(Choice([ok, fail])))
        return out

    # -- async parking ----------------------------------------------------------------

    def _put_stmts(self, fctx: _FnCtx, s: AsyncCall, fam: SpawnFamily) -> List[Stmt]:
        stmts = super()._put_stmts(fctx, s, fam)
        if self.rounds == 1:
            return stmts
        slot_choice = stmts[0]
        for slot, branch in enumerate(slot_choice.branches):
            for k in range(self.rounds):
                branch.stmts.append(
                    _tag(
                        Assign(
                            Var(names.ts_slot_round(fam.name, slot, k)),
                            Var(names.rr_in_round(k)),
                        )
                    )
                )
        return stmts

    # -- the dispatch driver ----------------------------------------------------------

    def _make_driver(self, out: Program) -> FuncDecl:
        """``__kiss_rr_run``: after ``main`` returns, repeatedly pick a
        family and run its oldest parked thread to completion, restoring
        the round flags to the recorded spawn round.  Dispatch is FIFO
        per family (slot 0, then compact) so spawn order is respected;
        a dispatched thread may immediately ``raise``, which models the
        never-scheduled threads of Figure 4."""
        decl = FuncDecl(names.RR_RUN_FN, [], None, Block([]))
        fctx = _FnCtx(decl)
        branches = [self._driver_branch(out, fctx, fam) for fam in self.families]
        decl.body = Block([_tag(Iter(Block([_tag(Choice(branches))])))])
        return decl

    def _driver_branch(self, out: Program, fctx: _FnCtx, fam: SpawnFamily) -> Block:
        count = Var(names.ts_count(fam.name))
        any_fn = next(iter(out.functions))
        stmts: List[Stmt] = []
        occupied = fctx.fresh(BOOL)
        stmts.append(_tag(Assign(occupied, Binary("<", IntLit(0), count))))
        stmts.append(_tag(Assume(occupied)))

        arg_atoms: List[Expr] = []
        if fam.indirect:
            fvar = fctx.fresh(FUNC)
            stmts.append(_tag(Assign(fvar, Var(names.ts_slot_fn(0)))))
            callee: Var = fvar
        else:
            callee = Var(fam.name)
            for j, p in enumerate(fam.params):
                tmp = fctx.fresh(p.type)
                stmts.append(_tag(Assign(tmp, Var(names.ts_slot_arg(fam.name, 0, j)))))
                arg_atoms.append(tmp)
        spawn_flags: List[Var] = []
        if self.rounds > 1:
            for k in range(self.rounds):
                tmp = fctx.fresh(BOOL)
                stmts.append(_tag(Assign(tmp, Var(names.ts_slot_round(fam.name, 0, k)))))
                spawn_flags.append(tmp)

        # Compact slots 1.. down to 0.., reset the last slot to defaults.
        for j in range(self.max_ts - 1):
            if fam.indirect:
                stmts.append(_tag(Assign(Var(names.ts_slot_fn(j)), Var(names.ts_slot_fn(j + 1)))))
            else:
                for a, p in enumerate(fam.params):
                    stmts.append(
                        _tag(
                            Assign(
                                Var(names.ts_slot_arg(fam.name, j, a)),
                                Var(names.ts_slot_arg(fam.name, j + 1, a)),
                            )
                        )
                    )
            if self.rounds > 1:
                for k in range(self.rounds):
                    stmts.append(
                        _tag(
                            Assign(
                                Var(names.ts_slot_round(fam.name, j, k)),
                                Var(names.ts_slot_round(fam.name, j + 1, k)),
                            )
                        )
                    )
        last = self.max_ts - 1
        if fam.indirect:
            stmts.append(_tag(Assign(Var(names.ts_slot_fn(last)), default_const_for(FUNC, any_fn))))
        else:
            for a, p in enumerate(fam.params):
                stmts.append(
                    _tag(
                        Assign(
                            Var(names.ts_slot_arg(fam.name, last, a)),
                            default_const_for(p.type, any_fn),
                        )
                    )
                )
        if self.rounds > 1:
            for k in range(self.rounds):
                stmts.append(
                    _tag(Assign(Var(names.ts_slot_round(fam.name, last, k)), BoolLit(False)))
                )
        stmts.append(_tag(Assign(count, Binary("-", count, IntLit(1)))))
        stmts.append(_tag(Assign(Var(names.TS_SIZE), Binary("-", Var(names.TS_SIZE), IntLit(1)))))
        for k in range(self.rounds if self.rounds > 1 else 0):
            stmts.append(_tag(Assign(Var(names.rr_in_round(k)), spawn_flags[k])))
        from repro.core.transform import TAG_DISPATCH

        call = Call(None, callee, arg_atoms)
        _tag(call, TAG_DISPATCH, spawn=fam.name)
        stmts.append(call)
        stmts.append(_tag(Assign(Var(names.RAISE_VAR), BoolLit(False))))
        return Block(stmts)

    # -- the entry wrapper ------------------------------------------------------------

    def _make_check_entry(self, out: Program) -> FuncDecl:
        orig_entry = out.entry
        decl = FuncDecl(names.CHECK_FN, [], None, Block([]))
        fctx = _FnCtx(decl)
        stmts: List[Stmt] = [_tag(Assign(Var(names.RAISE_VAR), BoolLit(False)))]

        # Snapshot guesses: for every copy, pick a value from the finite
        # domain and record it for the consistency epilogue.
        for k in range(1, self.rounds):
            for g in self.versioned:
                branches = [
                    Block(
                        [
                            _tag(Assign(Var(names.rr_global(g, k)), const)),
                            _tag(Assign(Var(names.rr_guess(g, k)), const)),
                        ]
                    )
                    for const in self.domains[g]
                ]
                stmts.append(_tag(Choice(branches)))

        root_call = Call(None, Var(orig_entry), [])
        _tag(root_call, TAG_ROOT, spawn=orig_entry)
        stmts.append(root_call)
        stmts.append(_tag(Assign(Var(names.RAISE_VAR), BoolLit(False))))
        if self.emit_schedule:
            stmts.append(_tag(Call(None, Var(names.RR_RUN_FN), [])))

        # Consistency epilogue: the guessed entry state of round k must
        # equal the exit state of round k-1; inconsistent executions are
        # pruned here, before the deferred error flag is checked.
        teq = fctx.fresh(BOOL) if self.rounds > 1 and self.versioned else None
        for k in range(1, self.rounds):
            for g in self.versioned:
                prev = Var(self._version(g, k - 1))
                stmts.append(_tag(Assign(teq, Binary("==", Var(names.rr_guess(g, k)), prev))))
                stmts.append(_tag(Assume(teq)))
        tnot = fctx.fresh(BOOL)
        stmts.append(_tag(Assign(tnot, Unary("!", Var(names.RR_ERR_VAR)))))
        stmts.append(_tag(Assert(tnot)))
        decl.body = Block(stmts)
        return decl


def rounds_transform(prog: Program, rounds: int = 2, max_ts: int = 0) -> Program:
    """Sequentialize a concurrent core program with a K-round budget."""
    return RoundRobinTransformer(rounds=rounds, max_ts=max_ts).transform(prog)
