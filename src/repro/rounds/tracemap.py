"""Mapping K-round sequential error traces back to concurrent
interleavings.

The eager transform runs each thread's rounds *contiguously*, so the
sequential trace is thread-major: thread 0's rounds 0..K-1, then each
dispatched thread's rounds.  The real round-robin interleaving is
round-major.  The mapper therefore walks the sequential trace exactly
like :mod:`repro.core.tracemap` (context stack per dispatch/inline,
virtual call depth), labels every reconstructed step with the round it
executed in (tracking ``TAG_RR_ADVANCE`` increments and the recorded
spawn round restored at each dispatch), and then *stably sorts* the
steps by round: within a round, steps keep their sequential execution
order, which by the snapshot-consistency epilogue is exactly the order
the round-robin schedule runs them in.

An error trace ends at the entry epilogue's ``assert(!__kiss_rr_err)``;
the real violation is the statement whose failure branch set the flag
(``TAG_RR_FAIL``, carrying the original sid).  After sorting, the plan
is truncated just past that step — later-round steps happen after the
violation in the reconstructed interleaving.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.cfg.graph import ProgramCfg
from repro.core.tracemap import ConcurrentTrace, PlanStep, TraceMapError, _ThreadCtx
from repro.core.transform import TAG_DISPATCH, TAG_INLINE_ASYNC, TAG_PUT, TAG_ROOT
from repro.seqcheck.trace import CheckResult, TraceStep

from .transform import TAG_RR_ADVANCE, TAG_RR_FAIL, TAG_RR_WRITE


@dataclass
class _Entry:
    round: int
    step: PlanStep
    fail: bool = False


def map_trace(pcfg: ProgramCfg, trace: List[TraceStep]) -> ConcurrentTrace:
    """Reconstruct the round-robin interleaving from a sequential trace
    of a :class:`~repro.rounds.transform.RoundRobinTransformer` program."""
    entries: List[_Entry] = []
    vdepth = 0
    contexts: List[_ThreadCtx] = [_ThreadCtx(tid=0, depth=0)]
    next_tid = 1
    cur_round = 0
    parked: Dict[str, Deque[Tuple[int, int]]] = defaultdict(deque)
    nodes = [pcfg.cfg(step.func).node(step.node_id) for step in trace]

    for node in nodes:
        tag = node.origin.tag
        cur = contexts[-1].tid

        if node.kind == "call":
            if tag == TAG_ROOT:
                pass  # thread 0 enters the original program at round 0
            elif tag == TAG_INLINE_ASYNC:
                tid = next_tid
                next_tid += 1
                entries.append(
                    _Entry(cur_round, PlanStep(cur, node.origin.sid, "spawn", node.origin.text))
                )
                contexts.append(_ThreadCtx(tid, vdepth))
            elif tag == TAG_DISPATCH:
                family = getattr(node.stmt, "kiss_spawn", None) or ""
                if not parked[family]:
                    raise TraceMapError(f"dispatch of '{family}' with no parked thread")
                tid, spawn_round = parked[family].popleft()
                cur_round = spawn_round  # the driver restores the round flags
                contexts.append(_ThreadCtx(tid, vdepth))
            vdepth += 1
            continue

        if node.kind == "return":
            vdepth -= 1
            if vdepth < 0:
                raise TraceMapError("trace unwinds past the entry frame")
            while len(contexts) > 1 and contexts[-1].depth == vdepth:
                contexts.pop()
            continue

        if tag == TAG_PUT:
            tid = next_tid
            next_tid += 1
            parked[node.stmt.kiss_spawn or ""].append((tid, cur_round))
            entries.append(
                _Entry(cur_round, PlanStep(cur, node.origin.sid, "spawn", node.origin.text))
            )
            continue

        if tag == TAG_RR_ADVANCE:
            cur_round += 1
            continue

        if tag in ("user", TAG_RR_WRITE) or tag == TAG_RR_FAIL:
            entries.append(
                _Entry(
                    cur_round,
                    PlanStep(cur, node.origin.sid, "step", node.origin.text),
                    fail=(tag == TAG_RR_FAIL),
                )
            )

    entries.sort(key=lambda e: e.round)  # stable: in-round order preserved
    out = ConcurrentTrace()
    for e in entries:
        out.steps.append(e.step)
        if e.fail:
            break  # everything after happens past the violation
    return out


def map_result(pcfg: ProgramCfg, result: CheckResult) -> Optional[ConcurrentTrace]:
    """Map a checker result's trace; None when there is no error trace."""
    if not result.is_error:
        return None
    return map_trace(pcfg, result.trace)
