"""Unification-based (Steensgaard-style) points-to analysis.

The paper (Section 5) uses Das's unification-based pointer analysis
[PLDI 2000] to prune ``check_r``/``check_w`` calls that cannot touch the
distinguished location ``r``.  This module implements the classic
Steensgaard variant: flow- and context-insensitive, almost-linear time,
with a field-sensitive, type-merged heap (all instances of a struct type
share one abstract cell per field — sound, and exact enough for device
extensions, which are allocated once).

Abstract locations:

* ``("g", name)`` — a global variable
* ``("l", func, name)`` — a local/parameter of ``func``
* ``("sf", struct, field)`` — field ``field`` of any ``struct`` instance
* ``("ret", func)`` — the return value of ``func``

Each location's equivalence class carries a ``pointee`` class: the class
of everything it may point to.  Assignments unify pointees; address-of
unifies a pointee with the addressed location's class.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.lang.ast import (
    Assert,
    Assign,
    Assume,
    AsyncCall,
    Atomic,
    Binary,
    Call,
    Expr,
    Field,
    FuncDecl,
    Malloc,
    Program,
    PtrType,
    Return,
    StructType,
    Unary,
    Var,
    walk_stmts,
)
from repro.lang.types import Env, typeof

Loc = Tuple


class _Nodes:
    """Union-find over abstract locations, with lazy pointee edges."""

    def __init__(self) -> None:
        self._parent: Dict[object, object] = {}
        self._pointee: Dict[object, object] = {}
        self._fresh = 0

    def _node(self, key: object) -> object:
        if key not in self._parent:
            self._parent[key] = key
        return key

    def find(self, key: object) -> object:
        self._node(key)
        root = key
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[key] != root:  # path compression
            self._parent[key], key = root, self._parent[key]
        return root

    def pointee(self, key: object) -> object:
        root = self.find(key)
        if root not in self._pointee:
            self._fresh += 1
            fresh = ("fresh", self._fresh)
            self._node(fresh)
            self._pointee[root] = fresh
        return self.find(self._pointee[root])

    def union(self, a: object, b: object) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        pa = self._pointee.pop(ra, None)
        pb = self._pointee.pop(rb, None)
        self._parent[ra] = rb
        if pa is not None and pb is not None:
            self._pointee[rb] = pb
            self.union(pa, pb)
        elif pa is not None:
            self._pointee[rb] = pa
        elif pb is not None:
            self._pointee[rb] = pb

    def same(self, a: object, b: object) -> bool:
        return self.find(a) == self.find(b)


class AliasAnalysis:
    """Whole-program Steensgaard analysis over a core program."""

    def __init__(self, prog: Program):
        self.prog = prog
        self.nodes = _Nodes()
        self._run()

    # -- location helpers ----------------------------------------------------------

    def _var_loc(self, func: FuncDecl, name: str) -> Optional[Loc]:
        if name in func.locals or any(p.name == name for p in func.params):
            return ("l", func.name, name)
        if name in self.prog.globals:
            return ("g", name)
        return None  # a function name used as a value

    def _field_loc(self, func: FuncDecl, base: Var, field: str) -> Optional[Loc]:
        env = Env(self.prog, func)
        try:
            t = typeof(env, base)
        except Exception:
            return None
        if isinstance(t, PtrType) and isinstance(t.elem, StructType):
            return ("sf", t.elem.name, field)
        return None

    # -- constraint generation ---------------------------------------------------------

    def _run(self) -> None:
        for func in self.prog.functions.values():
            for s in walk_stmts(func.body):
                self._stmt(func, s)

    def _value_class(self, func: FuncDecl, e: Expr) -> Optional[Loc]:
        """The location whose *pointee* models the value of atom ``e``."""
        if isinstance(e, Var):
            return self._var_loc(func, e.name)
        return None

    def _unify_values(self, a: Optional[Loc], b: Optional[Loc]) -> None:
        if a is None or b is None:
            return
        self.nodes.union(self.nodes.pointee(a), self.nodes.pointee(b))

    def _stmt(self, func: FuncDecl, s) -> None:
        if isinstance(s, Assign):
            self._assign(func, s)
        elif isinstance(s, Malloc):
            # the malloc'd cell's fields are reachable via ("sf", S, f) —
            # nothing to unify for the pointer itself beyond its type
            lhs = self._var_loc(func, s.lhs.name)
            if lhs is not None:
                self.nodes.union(self.nodes.pointee(lhs), ("cell", s.struct_name))
        elif isinstance(s, Call):
            self._call(func, s.func.name, s.args, s.lhs)
        elif isinstance(s, AsyncCall):
            self._call(func, s.func.name, s.args, None)
        elif isinstance(s, Return):
            if s.value is not None and isinstance(s.value, Var):
                v = self._var_loc(func, s.value.name)
                self._unify_values(("ret", func.name), v)

    def _assign(self, func: FuncDecl, s: Assign) -> None:
        lhs, rhs = s.lhs, s.rhs
        # *p = a  /  p->f = a
        if isinstance(lhs, Unary) and lhs.op == "*":
            p = self._var_loc(func, lhs.operand.name)
            if p is None:
                return
            target = self.nodes.pointee(p)
            if isinstance(rhs, Var):
                r = self._var_loc(func, rhs.name)
                if r is not None:
                    self.nodes.union(self.nodes.pointee(target), self.nodes.pointee(r))
            return
        if isinstance(lhs, Field):
            floc = self._field_loc(func, lhs.base, lhs.name)
            if floc is not None and isinstance(rhs, Var):
                r = self._var_loc(func, rhs.name)
                if r is not None:
                    self.nodes.union(self.nodes.pointee(floc), self.nodes.pointee(r))
            return
        # v = ...
        v = self._var_loc(func, lhs.name)
        if v is None:
            return
        if isinstance(rhs, Unary) and rhs.op == "&":
            target = rhs.operand
            if isinstance(target, Var):
                tloc = self._var_loc(func, target.name)
                if tloc is not None:
                    self.nodes.union(self.nodes.pointee(v), tloc)
            elif isinstance(target, Field):
                floc = self._field_loc(func, target.base, target.name)
                if floc is not None:
                    self.nodes.union(self.nodes.pointee(v), floc)
            return
        if isinstance(rhs, Unary) and rhs.op == "*":
            p = self._var_loc(func, rhs.operand.name)
            if p is not None:
                deref = self.nodes.pointee(self.nodes.pointee(p))
                self.nodes.union(self.nodes.pointee(v), deref)
            return
        if isinstance(rhs, Field):
            floc = self._field_loc(func, rhs.base, rhs.name)
            if floc is not None:
                self.nodes.union(self.nodes.pointee(v), self.nodes.pointee(floc))
            return
        if isinstance(rhs, Var):
            self._unify_values(v, self._var_loc(func, rhs.name))
            return
        # constants / unary / binary over atoms: no pointer flow (the
        # language has no pointer arithmetic)

    def _call(self, func: FuncDecl, callee_name: str, args, lhs) -> None:
        # Direct calls unify parameters/return; indirect calls are
        # zero-argument and untyped, so only direct targets matter here.
        callee = self.prog.functions.get(callee_name)
        if callee is None or self._var_loc(func, callee_name) is not None:
            # Indirect call: the target may be any zero-parameter function,
            # so a result pointer may carry any of their return values.
            if lhs is not None and isinstance(lhs, Var):
                for fn in self.prog.functions.values():
                    if not fn.params:
                        self._unify_values(self._var_loc(func, lhs.name), ("ret", fn.name))
            return
        for p, a in zip(callee.params, args):
            if isinstance(a, Var):
                self._unify_values(("l", callee.name, p.name), self._var_loc(func, a.name))
        if lhs is not None and isinstance(lhs, Var):
            self._unify_values(self._var_loc(func, lhs.name), ("ret", callee.name))

    # -- queries -----------------------------------------------------------------------------

    def may_point_to(self, func: FuncDecl, pointer_var: str, target: Loc) -> bool:
        """May the *value* of ``pointer_var`` (in ``func``) be the address of
        ``target``?  Conservative: unknown variables answer True."""
        p = self._var_loc(func, pointer_var)
        if p is None:
            return True
        return self.nodes.same(self.nodes.pointee(p), target)

    def global_loc(self, name: str) -> Loc:
        return ("g", name)

    def field_loc(self, struct: str, field: str) -> Loc:
        return ("sf", struct, field)
