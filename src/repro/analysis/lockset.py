"""A static lockset race detector (the Eraser algorithm, static flavour).

Section 7 of the paper: "Most existing race-detection tools, both static
and dynamic, are based on the lockset algorithm which can handle only
the simplest synchronization mechanism of locks."  This module implements
that baseline so the claim can be *measured* (see
``benchmarks/bench_lockset_comparison.py``): on lock-protected state it
agrees with KISS, but on event-, interlocked-, or flag-based
synchronization it produces the false positives (and occasionally false
negatives) that motivate the KISS approach.

Algorithm
---------
1. *Lock-function discovery*: a function whose body is exactly
   ``atomic { assume(*l == 0); *l = 1 }`` over a pointer parameter is an
   acquire; ``atomic { *l = 0 }`` is a release (the paper's §3 encoding,
   which the OS model's ``KeAcquireSpinLock``/``KeReleaseSpinLock``
   follow).
2. *Held-lock dataflow*: forward must-analysis over each function's CFG
   (meet = intersection), interprocedural over (function, entry lockset)
   contexts.  Lock identities are the actual argument expressions'
   alias-analysis classes.
3. *Candidate locksets*: every access (read/write) to every shared
   location is recorded with the locks held; a location's candidate set
   is the intersection.  A location with a write access and an empty
   candidate set — and accesses from more than one thread context — is
   reported as a potential race.

Thread contexts are approximated syntactically: the entry function is
one context, each ``async`` start function (transitively) is another.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.alias import AliasAnalysis
from repro.cfg.build import build_program_cfg
from repro.cfg.graph import Node, ProgramCfg
from repro.core.race import statement_accesses
from repro.lang.ast import (
    Assign,
    Assume,
    AsyncCall,
    Atomic,
    Call,
    FuncDecl,
    IntLit,
    Program,
    PtrType,
    StructType,
    Unary,
    Var,
    walk_stmts,
)

Lock = object  # an alias-analysis class representative
Lockset = FrozenSet


@dataclass
class LocksetWarning:
    location: str  # "g" or "S.field"
    kind: str  # "race" (empty candidate set with a write)
    accesses: int
    contexts: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        return f"lockset: possible race on {self.location} ({self.accesses} accesses, threads: {', '.join(self.contexts)})"


@dataclass
class LocksetReport:
    warnings: List[LocksetWarning]
    locations_checked: int
    acquire_functions: List[str]
    release_functions: List[str]

    def warned(self, location: str) -> bool:
        return any(w.location == location for w in self.warnings)


def _classify_lock_function(func: FuncDecl) -> Optional[str]:
    """"acquire" / "release" / None, by body shape (the §3 lock encoding)."""
    if len(func.params) != 1 or not isinstance(func.params[0].type, PtrType):
        return None
    body = [s for s in func.body.stmts]
    atomics = [s for s in body if isinstance(s, Atomic)]
    if len(atomics) != 1:
        return None
    inner = atomics[0].body.stmts
    pname = func.params[0].name

    def is_deref_of_param(e) -> bool:
        return isinstance(e, Unary) and e.op == "*" and isinstance(e.operand, Var)

    # release: a single `*l = 0`
    stores = [
        s
        for s in inner
        if isinstance(s, Assign) and isinstance(s.lhs, Unary) and s.lhs.op == "*"
    ]
    assumes = [s for s in inner if isinstance(s, Assume)]
    if stores and not assumes:
        s = stores[-1]
        if isinstance(s.rhs, IntLit) and s.rhs.value == 0:
            return "release"
    # acquire: an assume on the loaded lock followed by `*l = 1`
    if stores and assumes:
        s = stores[-1]
        if isinstance(s.rhs, IntLit) and s.rhs.value == 1:
            return "acquire"
    return None


class LocksetAnalyzer:
    """Whole-program lockset inference and race reporting (see module doc)."""
    def __init__(self, prog: Program):
        self.prog = prog
        self.pcfg: ProgramCfg = build_program_cfg(prog)
        self.alias = AliasAnalysis(prog)
        self.acquires: Dict[str, int] = {}  # fn -> lock param index
        self.releases: Dict[str, int] = {}
        for f in prog.functions.values():
            kind = _classify_lock_function(f)
            if kind == "acquire":
                self.acquires[f.name] = 0
            elif kind == "release":
                self.releases[f.name] = 0
        # access log: location key -> list of (lockset, mode, context)
        self._accesses: Dict[str, List[Tuple[Lockset, str, str]]] = {}

    # -- lock identity -------------------------------------------------------------

    def _lock_of_arg(self, func: FuncDecl, arg) -> Optional[Lock]:
        """The identity of the lock a call argument denotes.

        Unification merges every lock that ever flows into the shared
        acquire function's parameter, so the alias class alone cannot
        tell locks apart.  Idiomatic code passes ``&lock`` directly
        (lowered to a uniquely-assigned temp), so when the argument
        variable has exactly one definition in the function and it is an
        address-of, the lock is identified syntactically; otherwise fall
        back to the (coarse but sound-for-reporting) alias class.
        """
        if not isinstance(arg, Var):
            return None
        defs = [
            s
            for s in walk_stmts(func.body)
            if isinstance(s, Assign) and isinstance(s.lhs, Var) and s.lhs.name == arg.name
        ]
        if len(defs) == 1 and isinstance(defs[0].rhs, Unary) and defs[0].rhs.op == "&":
            target = defs[0].rhs.operand
            if isinstance(target, Var):
                return ("lock-var", target.name)
            # &p->f : identify by (struct, field)
            from repro.lang.ast import Field as _Field

            if isinstance(target, _Field):
                base = target.base
                t = func.locals.get(base.name)
                for p in func.params:
                    if p.name == base.name:
                        t = p.type
                if isinstance(t, PtrType) and isinstance(t.elem, StructType):
                    return ("lock-field", t.elem.name, target.name)
        loc = self.alias._var_loc(func, arg.name)
        if loc is None:
            return None
        return ("lock-class", self.alias.nodes.pointee(loc))

    # -- location keys -----------------------------------------------------------------

    def _location_keys(self, func: FuncDecl, shape: str, payload) -> List[str]:
        if shape == "var":
            name = payload
            if name in self.prog.globals:
                return [name]
            return []
        if shape == "field":
            base, fld = payload
            t = None
            if base in func.locals:
                t = func.locals[base]
            else:
                for p in func.params:
                    if p.name == base:
                        t = p.type
                g = self.prog.globals.get(base)
                if g is not None:
                    t = g.type
            if isinstance(t, PtrType) and isinstance(t.elem, StructType):
                return [f"{t.elem.name}.{fld}"]
            return []
        # deref: attribute to every global/field the pointer may reach —
        # approximate with globals only (enough for the lock/flag idioms)
        keys = []
        for gname in self.prog.globals:
            if self.alias.may_point_to(func, payload, self.alias.global_loc(gname)):
                keys.append(gname)
        for sname, struct in self.prog.structs.items():
            for fld in struct.fields:
                if self.alias.may_point_to(func, payload, self.alias.field_loc(sname, fld)):
                    keys.append(f"{sname}.{fld}")
        return keys

    # -- interprocedural held-lock analysis ------------------------------------------------

    def analyze(self) -> LocksetReport:
        contexts = self._thread_contexts()
        visited: Set[Tuple[str, Lockset, str]] = set()
        work: List[Tuple[str, Lockset, str]] = [
            (fn, frozenset(), ctx) for ctx, fn in contexts
        ]
        while work:
            fn, entry_locks, ctx = work.pop()
            key = (fn, entry_locks, ctx)
            if key in visited or fn not in self.prog.functions:
                continue
            visited.add(key)
            callees = self._scan_function(self.prog.functions[fn], entry_locks, ctx)
            for callee, locks in callees:
                work.append((callee, locks, ctx))
        return self._report(contexts)

    def _thread_contexts(self) -> List[Tuple[str, str]]:
        out = [("main-thread", self.prog.entry)]
        for func in self.prog.functions.values():
            for s in walk_stmts(func.body):
                if isinstance(s, AsyncCall):
                    out.append((f"spawned:{s.func.name}", s.func.name))
        return out

    def _scan_function(
        self, func: FuncDecl, entry_locks: Lockset, ctx: str
    ) -> List[Tuple[str, Lockset]]:
        """Forward must-held analysis over the function's CFG."""
        cfg = self.pcfg.cfg(func.name)
        held: Dict[int, Lockset] = {cfg.entry: entry_locks}
        order = [cfg.entry]
        seen = {cfg.entry}
        callees: List[Tuple[str, Lockset]] = []
        i = 0
        while i < len(order):
            nid = order[i]
            i += 1
            node = cfg.node(nid)
            locks = held[nid]
            out_locks = locks
            if node.kind == "call":
                callee = node.stmt.func.name
                if callee in self.acquires:
                    lock = self._lock_of_arg(func, node.stmt.args[0]) if node.stmt.args else None
                    if lock is not None:
                        out_locks = locks | {lock}
                elif callee in self.releases:
                    lock = self._lock_of_arg(func, node.stmt.args[0]) if node.stmt.args else None
                    if lock is not None:
                        out_locks = locks - {lock}
                elif callee in self.prog.functions:
                    callees.append((callee, locks))
            if node.stmt is not None and node.kind not in ("call",):
                self._record_accesses(func, node, locks, ctx)
            elif node.kind == "call":
                self._record_accesses(func, node, locks, ctx)
            for succ in node.succs:
                if succ not in seen:
                    seen.add(succ)
                    held[succ] = out_locks
                    order.append(succ)
                else:
                    merged = held[succ] & out_locks  # must-analysis meet
                    if merged != held[succ]:
                        held[succ] = merged
                        if succ not in order[i:]:
                            order.append(succ)
        return callees

    def _record_accesses(self, func: FuncDecl, node: Node, locks: Lockset, ctx: str) -> None:
        if node.kind == "atomic":
            return  # synchronization internals (the lockset tools' blind spot)
        if node.stmt is None:
            return
        for mode, shape, payload in statement_accesses(node.stmt):
            for key in self._location_keys(func, shape, payload):
                self._accesses.setdefault(key, []).append((frozenset(locks), mode, ctx))

    def _report(self, contexts) -> LocksetReport:
        warnings: List[LocksetWarning] = []
        for location, accesses in sorted(self._accesses.items()):
            ctxs = sorted({c for _, _, c in accesses})
            if len(ctxs) < 2:
                continue  # single-threaded access
            if not any(mode == "w" for _, mode, _ in accesses):
                continue  # read-only sharing is fine
            candidate = None
            for locks, _, _ in accesses:
                candidate = locks if candidate is None else (candidate & locks)
            if candidate:
                continue  # consistently protected
            warnings.append(LocksetWarning(location, "race", len(accesses), ctxs))
        return LocksetReport(
            warnings=warnings,
            locations_checked=len(self._accesses),
            acquire_functions=sorted(self.acquires),
            release_functions=sorted(self.releases),
        )


def lockset_check(prog: Program) -> LocksetReport:
    """Run the static lockset baseline over a core program."""
    return LocksetAnalyzer(prog).analyze()
