"""Shared-global access analysis.

Answers one question about a concurrent core program: *which globals can
actually be touched by two different dynamic threads* (with at least one
of the touches a write)?  Everything else is thread-local traffic — a
statement over such globals is invisible to every other thread, so a
sequentialization does not need a context-switch point in front of it.
This is the ``__globalMemoryAccessed`` trick of Lazy-CSeq/VeriSmart,
used here as a cheap partial-order reduction (POR):

* :class:`repro.lazy.transform.LazyTransformer` (``por=True``) restricts
  segment-end points to statements over shared globals (plus the
  blocking/spawn points that can never be pruned);
* :class:`repro.core.transform.KissTransformer` (``por=True``) drops the
  ``schedule(); choice{skip [] RAISE}`` prefix before purely-local
  statements;
* :class:`repro.rounds.transform.RoundRobinTransformer` (``por=True``)
  leaves non-shared written globals unversioned (no snapshot copies, no
  guesses, no advance points).

The analysis is deliberately conservative — over-approximating the
shared set only costs pruning, never soundness:

* **thread roots**: the entry function runs once; every ``async`` site
  with a direct target adds a root for that function, with multiplicity
  2 ("many") when the site can execute more than once (it sits under an
  ``iter``, or its spawning function itself has multiplicity >= 2);
* **access closure**: a root's reads/writes are those of its function
  plus everything reachable through direct synchronous calls;
* a global is **shared** iff the root multiplicities of its accessors
  sum to >= 2 and at least one accessor writes it;
* any *indirect* control flow (``async`` through a function variable, a
  call through a local/global) defeats the root accounting, so the
  analysis falls back to "every written global is shared" (recorded in
  ``SharedAccessInfo.fallback``).

Heap cells are outside the analysis entirely: callers must treat any
statement with ``malloc``/pointer/field traffic as shared (see
``SharedAccessInfo.has_heap``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.lang.ast import (
    Assign,
    AsyncCall,
    Call,
    Field,
    FuncDecl,
    Iter,
    Malloc,
    Program,
    Stmt,
    Unary,
    Var,
    stmt_exprs,
    walk_exprs,
    walk_stmts,
)

#: Multiplicity cap: the analysis only distinguishes "once" from "many".
MANY = 2


@dataclass
class SharedAccessInfo:
    """The analysis result.

    ``shared`` is the set of global names accessible from >= 2 dynamic
    threads with at least one write; ``roots`` maps each thread root
    (entry or async-spawned function) to its multiplicity;
    ``fallback`` records that indirect calls/spawns forced the
    conservative answer; ``has_heap`` flags any malloc/pointer/field
    traffic anywhere (heap cells are never classified local).
    """

    shared: Set[str] = field(default_factory=set)
    roots: Dict[str, int] = field(default_factory=dict)
    fallback: bool = False
    has_heap: bool = False

    def is_shared(self, name: str) -> bool:
        return name in self.shared


def _direct_target(prog: Program, func: FuncDecl, callee: Var) -> bool:
    """A call/async target names a function directly (not a value)."""
    local_names = set(func.locals) | {p.name for p in func.params}
    return (
        callee.name in prog.functions
        and callee.name not in local_names
        and callee.name not in prog.globals
    )


def _direct_accesses(prog: Program, func: FuncDecl) -> Tuple[Set[str], Set[str]]:
    """(reads, writes) of globals performed directly by ``func``'s body
    (call arguments count as reads; callee bodies are handled by the
    closure, async targets by their own roots)."""
    shadowed = set(func.locals) | {p.name for p in func.params}
    reads: Set[str] = set()
    writes: Set[str] = set()

    def note_expr(e, skip: Var = None) -> None:
        for sub in walk_exprs(e):
            if sub is skip:
                continue
            if isinstance(sub, Var) and sub.name in prog.globals and sub.name not in shadowed:
                reads.add(sub.name)

    for s in walk_stmts(func.body):
        target = None
        if isinstance(s, (Assign, Malloc)):
            target = s.lhs
        elif isinstance(s, Call):
            target = s.lhs
        if isinstance(target, Var) and target.name in prog.globals and target.name not in shadowed:
            writes.add(target.name)
        for e in stmt_exprs(s):
            # The written Var itself is not a read; everything else is.
            note_expr(e, skip=target if e is target else None)
    return reads, writes


def _has_heap_traffic(prog: Program) -> bool:
    for func in prog.functions.values():
        for s in walk_stmts(func.body):
            if isinstance(s, Malloc):
                return True
            for e in stmt_exprs(s):
                for sub in walk_exprs(e):
                    if isinstance(sub, Field):
                        return True
                    if isinstance(sub, Unary) and sub.op in ("*", "&"):
                        return True
    return False


def _under_iter(func: FuncDecl, target: Stmt) -> bool:
    """Is ``target`` nested (at any depth) inside an ``iter``?"""
    for s in walk_stmts(func.body):
        if isinstance(s, Iter):
            for inner in walk_stmts(s.body):
                if inner is target:
                    return True
    return False


def _all_written(prog: Program) -> Set[str]:
    written: Set[str] = set()
    for func in prog.functions.values():
        _, w = _direct_accesses(prog, func)
        written |= w
    return written


def analyze_shared_access(prog: Program) -> SharedAccessInfo:
    """Run the analysis on a (core or surface) program AST."""
    info = SharedAccessInfo(has_heap=_has_heap_traffic(prog))

    # -- indirect control flow defeats the accounting -------------------
    for func in prog.functions.values():
        for s in walk_stmts(func.body):
            if isinstance(s, (Call, AsyncCall)) and not _direct_target(prog, func, s.func):
                info.fallback = True
                info.shared = set(_all_written(prog))
                info.roots = {prog.entry: 1}
                return info

    # -- thread roots with multiplicity (Kleene fixpoint, capped) -------
    spawn_sites: List[Tuple[str, str, bool]] = []  # (spawner, target, looped)
    for func in prog.functions.values():
        for s in walk_stmts(func.body):
            if isinstance(s, AsyncCall):
                spawn_sites.append((func.name, s.func.name, _under_iter(func, s)))
    mult: Dict[str, int] = {name: 0 for name in prog.functions}
    if prog.entry in mult:
        mult[prog.entry] = 1
    while True:
        fresh: Dict[str, int] = {name: 0 for name in prog.functions}
        if prog.entry in fresh:
            fresh[prog.entry] = 1
        for spawner, target, looped in spawn_sites:
            m = mult.get(spawner, 0)
            if m == 0:
                continue
            add = MANY if (looped or m >= MANY) else 1
            fresh[target] = min(MANY, fresh.get(target, 0) + add)
        if prog.entry in fresh and fresh[prog.entry] < mult.get(prog.entry, 1):
            fresh[prog.entry] = mult[prog.entry]
        if fresh == mult:
            break
        mult = fresh
    info.roots = {name: m for name, m in mult.items() if m > 0 and (
        name == prog.entry or any(t == name for _, t, _ in spawn_sites))}

    # -- per-root access closure over direct calls ----------------------
    direct: Dict[str, Tuple[Set[str], Set[str]]] = {
        name: _direct_accesses(prog, f) for name, f in prog.functions.items()
    }
    callees: Dict[str, Set[str]] = {name: set() for name in prog.functions}
    for func in prog.functions.values():
        for s in walk_stmts(func.body):
            if isinstance(s, Call):
                callees[func.name].add(s.func.name)

    def closure(root: str) -> Tuple[Set[str], Set[str]]:
        reads: Set[str] = set()
        writes: Set[str] = set()
        seen: Set[str] = set()
        work = [root]
        while work:
            f = work.pop()
            if f in seen or f not in direct:
                continue
            seen.add(f)
            r, w = direct[f]
            reads |= r
            writes |= w
            work.extend(callees[f])
        return reads, writes

    access_mult: Dict[str, int] = {}
    write_mult: Dict[str, int] = {}
    for root, m in info.roots.items():
        reads, writes = closure(root)
        for g in reads | writes:
            access_mult[g] = access_mult.get(g, 0) + m
        for g in writes:
            write_mult[g] = write_mult.get(g, 0) + m
    info.shared = {
        g for g, n in access_mult.items() if n >= 2 and write_mult.get(g, 0) >= 1
    }
    return info


def shared_globals(prog: Program) -> Set[str]:
    """Convenience wrapper: just the shared-global name set."""
    return analyze_shared_access(prog).shared
