"""Atomicity inference via Lipton's theory of reduction.

Section 6.1 of the paper: "We are also planning to use the ideas behind
the type system for atomicity [Flanagan & Qadeer, PLDI 2003] to
automatically prune such benign race conditions."  This module implements
the core of that machinery — mover classification and sequential
composition — for the parallel language:

* ``R`` (right mover): commutes to the right of any other thread's step —
  lock *acquires* (an ``atomic`` block that blocks until free then takes);
* ``L`` (left mover): commutes left — lock *releases*;
* ``B`` (both mover): thread-local steps, and accesses to locations that
  are consistently lock-protected (race-free, per the lockset analysis);
* ``A`` (atomic, non-mover): everything else — in particular accesses
  that may race.

A sequence is atomic iff it matches ``R* (A|B)? L*`` modulo ``B`` steps
(Lipton's reduction); composition is computed with the standard
five-point lattice ``B < R, L < A < N`` where ``N`` (non-atomic) is the
error element produced by e.g. ``A`` followed by ``R`` (two
non-reducible transactions) — we track the regular pattern directly.

Procedure atomicity is inferred bottom-up over the call graph (recursive
cycles conservatively get ``N`` unless every body is call-free).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Set

from repro.analysis.lockset import LocksetAnalyzer, _classify_lock_function
from repro.lang.ast import (
    Assert,
    Assign,
    Assume,
    AsyncCall,
    Atomic,
    Block,
    Call,
    Choice,
    FuncDecl,
    Iter,
    Malloc,
    Program,
    Return,
    Skip,
    Stmt,
)
from repro.core.race import statement_accesses


class Mover(Enum):
    B = "both"
    R = "right"
    L = "left"
    A = "atomic"  # single non-mover action
    N = "non-atomic"  # irreducible composite

    def __str__(self) -> str:
        return self.value


# Sequential composition over atomicity *phases*.  We track where a
# transaction stands: in its R-prefix, at/after its commit action, or in
# its L-suffix.  N is absorbing.
@dataclass
class _Phase:
    state: str = "pre"  # "pre" (R*) | "post" ((A|B) L*) | "broken"

    def step(self, m: Mover) -> None:
        if self.state == "broken":
            return
        if m is Mover.B:
            return
        if m is Mover.N:
            self.state = "broken"
            return
        if self.state == "pre":
            if m is Mover.R:
                return
            # A or L commits the transaction
            self.state = "post"
            return
        # post: only left movers keep the transaction reducible
        if m in (Mover.L,):
            return
        self.state = "broken"

    def result(self) -> Mover:
        # summarize the whole sequence as a single mover for callers:
        # a reducible sequence acts as an atomic action
        return Mover.A if self.state != "broken" else Mover.N


class AtomicityAnalyzer:
    """Mover classification + procedure atomicity inference."""

    def __init__(self, prog: Program):
        self.prog = prog
        lockset = LocksetAnalyzer(prog)
        self._lockset_report = lockset.analyze()
        self._racy_locations: Set[str] = {w.location for w in self._lockset_report.warnings}
        self.acquires = set(lockset.acquires)
        self.releases = set(lockset.releases)
        self._proc_cache: Dict[str, Mover] = {}
        self._in_progress: Set[str] = set()
        self._lockset = lockset

    # -- statement movers ------------------------------------------------------------

    def stmt_mover(self, func: FuncDecl, s: Stmt) -> Mover:
        if isinstance(s, (Skip,)):
            return Mover.B
        if isinstance(s, Atomic):
            # a synchronization primitive's body: acquire-shaped blocks are
            # right movers, release-shaped left movers, other atomic blocks
            # single non-mover actions
            shape = self._atomic_shape(s)
            return shape if shape is not None else Mover.A
        if isinstance(s, (Assign, Malloc, Assert, Assume, Return)):
            return self._access_mover(func, s)
        if isinstance(s, Call):
            name = s.func.name
            if name in self.acquires:
                return Mover.R
            if name in self.releases:
                return Mover.L
            if name in self.prog.functions:
                return self.proc_mover(name)
            return Mover.A  # indirect call: unknown, treat as non-mover action
        if isinstance(s, AsyncCall):
            # forking is a local action (the child's steps are its own)
            return Mover.B
        if isinstance(s, Block):
            return self.sequence_mover(func, s.stmts)
        if isinstance(s, Choice):
            movers = [self.sequence_mover(func, b.stmts) for b in s.branches]
            return _join_all(movers)
        if isinstance(s, Iter):
            body = self.sequence_mover(func, s.body.stmts)
            # a loop of both-movers is a both-mover; a loop of atomic
            # bodies is not reducible to one action in general
            if body is Mover.B:
                return Mover.B
            return Mover.N if body in (Mover.A, Mover.R, Mover.L, Mover.N) else body
        return Mover.A

    def _atomic_shape(self, s: Atomic) -> Optional[Mover]:
        # reuse the lock-function classifier on a synthetic wrapper
        from repro.lang.ast import Assume as _Assume

        inner = s.body.stmts
        has_assume = any(isinstance(x, _Assume) for x in inner)
        stores = [
            x
            for x in inner
            if isinstance(x, Assign) and not isinstance(x.lhs, type(None))
        ]
        if has_assume and stores:
            return Mover.R  # blocking test-and-set: acquire-like
        return None

    def _access_mover(self, func: FuncDecl, s: Stmt) -> Mover:
        worst = Mover.B
        for _, shape, payload in statement_accesses(s):
            keys = self._lockset._location_keys(func, shape, payload)
            if not keys:
                continue  # thread-local
            if any(k in self._racy_locations for k in keys):
                return Mover.A  # potentially racy access: non-mover
            # shared but consistently protected (or read-only): both mover
        return worst

    # -- sequences and procedures ------------------------------------------------------

    def sequence_mover(self, func: FuncDecl, stmts: List[Stmt]) -> Mover:
        movers = [self.stmt_mover(func, s) for s in stmts]
        effective = [m for m in movers if m is not Mover.B]
        if not effective:
            return Mover.B
        phase = _Phase()
        for m in effective:
            phase.step(m)
        if phase.state == "broken":
            return Mover.N
        # reducible: keep the most precise composite classification
        if all(m is Mover.R for m in effective):
            return Mover.R
        if all(m is Mover.L for m in effective):
            return Mover.L
        return Mover.A

    def proc_mover(self, name: str) -> Mover:
        if name in self.acquires:
            return Mover.R
        if name in self.releases:
            return Mover.L
        if name in self._proc_cache:
            return self._proc_cache[name]
        if name in self._in_progress:
            return Mover.N  # recursion: conservatively non-atomic
        self._in_progress.add(name)
        func = self.prog.function(name)
        result = self.sequence_mover(func, func.body.stmts)
        self._in_progress.discard(name)
        self._proc_cache[name] = result
        return result

    def is_atomic(self, name: str) -> bool:
        """Is every execution of procedure ``name`` reducible to a single
        indivisible action?"""
        return self.proc_mover(name) in (Mover.B, Mover.R, Mover.L, Mover.A)

    def report(self) -> Dict[str, bool]:
        return {name: self.is_atomic(name) for name in self.prog.functions}


def _join_all(movers: List[Mover]) -> Mover:
    if any(m is Mover.N for m in movers):
        return Mover.N
    if all(m is Mover.B for m in movers):
        return Mover.B
    if all(m in (Mover.B, Mover.R) for m in movers):
        return Mover.R
    if all(m in (Mover.B, Mover.L) for m in movers):
        return Mover.L
    return Mover.A


def infer_atomicity(prog: Program) -> Dict[str, bool]:
    """Per-procedure atomicity verdicts for a core program."""
    return AtomicityAnalyzer(prog).report()
