"""Static analyses: points-to (check pruning), lockset (baseline),
atomicity (Lipton reduction — §6.1 future work).

``lockset`` and ``atomicity`` import :mod:`repro.core.race` (for access
extraction) which itself imports :mod:`repro.analysis.alias`, so they
are exposed lazily to keep the package initialization acyclic.
"""

from .alias import AliasAnalysis

__all__ = [
    "AliasAnalysis",
    "AtomicityAnalyzer",
    "Mover",
    "infer_atomicity",
    "LocksetAnalyzer",
    "LocksetReport",
    "lockset_check",
    "SharedAccessInfo",
    "analyze_shared_access",
    "shared_globals",
]

_LAZY = {
    "AtomicityAnalyzer": "atomicity",
    "Mover": "atomicity",
    "infer_atomicity": "atomicity",
    "LocksetAnalyzer": "lockset",
    "LocksetReport": "lockset",
    "lockset_check": "lockset",
    "SharedAccessInfo": "sharedaccess",
    "analyze_shared_access": "sharedaccess",
    "shared_globals": "sharedaccess",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.analysis' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
