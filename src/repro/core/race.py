"""Race-detection instrumentation (Figure 5 of the paper).

Extends the Figure 4 sequentialization with a distinguished location ``r``
(a global variable, or a field of a designated struct instance — for
drivers, the device extension), an ``access`` flag in {0,1,2}, and
``check_r``/``check_w`` calls:

* before every statement, extra ``choice`` branches may *record* one of
  the statement's accesses to ``r`` (setting ``access``) and immediately
  RAISE, terminating the recording thread;
* a later conflicting access by a *different* thread finds ``access``
  already set and fails the assertion inside the check function.

Hence an assertion failure inside a check witnesses a read/write or
write/write race between two distinct threads.  Accesses inside
``atomic`` regions are not checked (Figure 5) — atomic blocks model the
internals of synchronization primitives.

Checks that cannot touch ``r`` are pruned in two layers, mirroring the
paper's use of Das's alias analysis:

1. a type filter (an ``int`` access can never alias a ``bool`` field);
2. the unification-based points-to analysis of
   :mod:`repro.analysis.alias` (for dereferences through pointers).

One transformed program is produced per target; drive the loop over all
fields of a struct with :class:`repro.core.checker.Kiss`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro import obs
from repro.analysis.alias import AliasAnalysis
from repro.lang.ast import (
    BOOL,
    INT,
    Assert,
    Assign,
    Assume,
    AsyncCall,
    Binary,
    Block,
    BoolLit,
    Call,
    Choice,
    Expr,
    Field,
    FuncDecl,
    GlobalDecl,
    IntLit,
    Malloc,
    NullLit,
    Param,
    Program,
    PtrType,
    Return,
    Skip,
    Stmt,
    StructType,
    Type,
    Unary,
    Var,
)

from . import names
from .transform import TAG_CHECK, KissTransformer, TransformError, _FnCtx, _tag


@dataclass(frozen=True)
class RaceTarget:
    """The distinguished location ``r``.

    ``RaceTarget.global_var("g")`` — a global variable.
    ``RaceTarget.field("DEVICE_EXTENSION", "stoppingFlag")`` — a field of
    the ``instance``-th allocated DEVICE_EXTENSION (0 = first, the usual
    device-extension pattern).
    """

    kind: str  # "global" | "field"
    name: str  # global name or struct name
    field: Optional[str] = None
    instance: int = 0

    @staticmethod
    def global_var(name: str) -> "RaceTarget":
        return RaceTarget("global", name)

    @staticmethod
    def field_of(struct: str, field: str, instance: int = 0) -> "RaceTarget":
        return RaceTarget("field", struct, field, instance)

    def describe(self) -> str:
        if self.kind == "global":
            return self.name
        suffix = f"[{self.instance}]" if self.instance else ""
        return f"{self.name}{suffix}.{self.field}"

    def value_type(self, prog: Program) -> Type:
        if self.kind == "global":
            if self.name not in prog.globals:
                raise TransformError(f"race target: unknown global '{self.name}'")
            return prog.globals[self.name].type
        struct = prog.structs.get(self.name)
        if struct is None:
            raise TransformError(f"race target: unknown struct '{self.name}'")
        if self.field not in struct.fields:
            raise TransformError(f"race target: {self.name} has no field '{self.field}'")
        return struct.fields[self.field]


# An access is (mode, shape, payload):
#   mode  : "r" | "w"
#   shape : "var"   — payload = variable name           (address &v)
#           "field" — payload = (ptr_var_name, field)   (address &p->f)
#           "deref" — payload = ptr_var_name            (address = value of p)
Access = Tuple[str, str, object]


def statement_accesses(s: Stmt) -> List[Access]:
    """The memory accesses a core statement performs, Figure 5 style."""
    acc: List[Access] = []

    def rd_atom(e: Expr) -> None:
        if isinstance(e, Var):
            acc.append(("r", "var", e.name))

    if isinstance(s, Assign):
        lhs, rhs = s.lhs, s.rhs
        if isinstance(lhs, Unary) and lhs.op == "*":
            rd_atom(lhs.operand)
            acc.append(("w", "deref", lhs.operand.name))
            rd_atom(rhs)
            return acc
        if isinstance(lhs, Field):
            rd_atom(lhs.base)
            rd_atom(rhs)
            acc.append(("w", "field", (lhs.base.name, lhs.name)))
            return acc
        # v = ...
        if isinstance(rhs, Unary) and rhs.op == "&":
            pass  # address-of reads nothing
        elif isinstance(rhs, Unary) and rhs.op == "*":
            rd_atom(rhs.operand)
            acc.append(("r", "deref", rhs.operand.name))
        elif isinstance(rhs, Unary):
            rd_atom(rhs.operand)
        elif isinstance(rhs, Binary):
            rd_atom(rhs.left)
            rd_atom(rhs.right)
        elif isinstance(rhs, Field):
            rd_atom(rhs.base)
            acc.append(("r", "field", (rhs.base.name, rhs.name)))
        else:
            rd_atom(rhs)
        acc.append(("w", "var", lhs.name))
        return acc
    if isinstance(s, Malloc):
        acc.append(("w", "var", s.lhs.name))
        return acc
    if isinstance(s, (Assert, Assume)):
        rd_atom(s.cond)
        return acc
    if isinstance(s, Call):
        for a in s.args:
            rd_atom(a)
        if s.lhs is not None:
            acc.append(("w", "var", s.lhs.name))
        return acc
    if isinstance(s, AsyncCall):
        for a in s.args:
            rd_atom(a)
        return acc
    if isinstance(s, Return):
        if s.value is not None:
            rd_atom(s.value)
        return acc
    # Skip, Atomic (not checked inside), Choice/Iter/Block (structural)
    return acc


class RaceTransformer(KissTransformer):
    """Figure 5: Figure 4 plus access recording for one target location."""

    def __init__(
        self,
        target: RaceTarget,
        max_ts: int = 0,
        use_alias_analysis: bool = True,
    ):
        super().__init__(max_ts=max_ts)
        self.target = target
        self.use_alias_analysis = use_alias_analysis
        self._alias: Optional[AliasAnalysis] = None
        self._target_type: Optional[Type] = None
        self.checks_emitted = 0
        self.checks_pruned = 0

    # -- setup ------------------------------------------------------------------

    def transform(self, prog: Program) -> Program:
        self._target_type = self.target.value_type(prog)
        if isinstance(self._target_type, StructType):
            raise TransformError("race target must be a scalar location")
        self._alias = AliasAnalysis(prog) if self.use_alias_analysis else None
        out = super().transform(prog)
        obs.inc("race_checks_emitted", self.checks_emitted)
        obs.inc("alias_prunes", self.checks_pruned)
        return out

    def extra_globals(self) -> List[GlobalDecl]:
        decls = [
            GlobalDecl(names.ACCESS_VAR, INT, IntLit(0)),
            GlobalDecl(names.TARGET_VAR, PtrType(self._target_type), NullLit()),
        ]
        if self.target.kind == "field":
            decls.append(GlobalDecl(names.ALLOC_SEEN, INT, IntLit(0)))
        return decls

    def extra_functions(self) -> List[FuncDecl]:
        return [self._make_check_fn("r"), self._make_check_fn("w")]

    def _make_check_fn(self, mode: str) -> FuncDecl:
        """``check_r(x) { if (x == &r) { assert(access != 2); access = 1; } }``
        and the write analogue, in core form."""
        fname = names.CHECK_R_FN if mode == "r" else names.CHECK_W_FN
        decl = FuncDecl(fname, [Param("x", PtrType(self._target_type))], None, Block([]))
        decl.locals = {"hit": BOOL, "ok": BOOL, "miss": BOOL, "bad": BOOL}
        if mode == "r":
            # assert(access != 2); access = 1
            guarded = [
                _tag(Assign(Var("bad"), Binary("==", Var(names.ACCESS_VAR), IntLit(2))), TAG_CHECK),
                _tag(Assign(Var("ok"), Unary("!", Var("bad"))), TAG_CHECK),
                _tag(Assert(Var("ok")), TAG_CHECK),
                _tag(Assign(Var(names.ACCESS_VAR), IntLit(1)), TAG_CHECK),
            ]
        else:
            # assert(access == 0); access = 2
            guarded = [
                _tag(Assign(Var("ok"), Binary("==", Var(names.ACCESS_VAR), IntLit(0))), TAG_CHECK),
                _tag(Assert(Var("ok")), TAG_CHECK),
                _tag(Assign(Var(names.ACCESS_VAR), IntLit(2)), TAG_CHECK),
            ]
        body = [
            _tag(Assign(Var("hit"), Binary("==", Var("x"), Var(names.TARGET_VAR))), TAG_CHECK),
            _tag(
                Choice(
                    [
                        Block([_tag(Assume(Var("hit")), TAG_CHECK)] + guarded),
                        Block(
                            [
                                _tag(Assign(Var("miss"), Unary("!", Var("hit"))), TAG_CHECK),
                                _tag(Assume(Var("miss")), TAG_CHECK),
                            ]
                        ),
                    ]
                ),
                TAG_CHECK,
            ),
        ]
        decl.body = Block(body)
        return decl

    # -- target registration -----------------------------------------------------

    def extra_check_prologue(self) -> List[Stmt]:
        if self.target.kind == "global":
            return [_tag(Assign(Var(names.TARGET_VAR), Unary("&", Var(self.target.name))))]
        return []

    def post_malloc(self, fctx: _FnCtx, stmt: Malloc) -> List[Stmt]:
        if self.target.kind != "field" or stmt.struct_name != self.target.name:
            return []
        is_nth = fctx.fresh(BOOL)
        tneg = fctx.tneg()
        register = Block(
            [
                _tag(Assume(is_nth)),
                _tag(
                    Assign(
                        Var(names.TARGET_VAR),
                        Unary("&", Field(Var(stmt.lhs.name), self.target.field)),
                    )
                ),
            ]
        )
        skip_reg = Block([_tag(Assign(tneg, Unary("!", is_nth))), _tag(Assume(tneg))])
        return [
            _tag(Assign(is_nth, Binary("==", Var(names.ALLOC_SEEN), IntLit(self.target.instance)))),
            _tag(Choice([register, skip_reg])),
            _tag(Assign(Var(names.ALLOC_SEEN), Binary("+", Var(names.ALLOC_SEEN), IntLit(1)))),
        ]

    # -- access checks ---------------------------------------------------------------

    def access_check_branches(self, fctx: _FnCtx, stmt: Stmt, out_pre: List[Stmt]) -> List[Block]:
        if getattr(stmt, "kiss_benign", False):
            # §6.1: the programmer vouched for these accesses ("benign
            # race") — the instrumentation skips them
            return []
        branches: List[Block] = []
        for mode, shape, payload in statement_accesses(stmt):
            if not self._may_alias(fctx.decl, shape, payload):
                self.checks_pruned += 1
                continue
            self.checks_emitted += 1
            addr_atom = self._address_atom(fctx, shape, payload, out_pre)
            check_fn = names.CHECK_R_FN if mode == "r" else names.CHECK_W_FN
            call = Call(None, Var(check_fn), [addr_atom])
            _tag(call, TAG_CHECK, sid=stmt.sid)
            branches.append(Block([call] + self._raise_stmts(fctx)))
        return branches

    def _address_atom(self, fctx: _FnCtx, shape: str, payload, out_pre: List[Stmt]) -> Expr:
        if shape == "deref":
            return Var(payload)  # the pointer value *is* the address
        tmp = fctx.fresh(PtrType(self._target_type))
        if shape == "var":
            out_pre.append(_tag(Assign(tmp, Unary("&", Var(payload))), TAG_CHECK))
        else:  # field
            base, fld = payload
            out_pre.append(_tag(Assign(tmp, Unary("&", Field(Var(base), fld))), TAG_CHECK))
        return tmp

    # -- pruning ---------------------------------------------------------------------

    def _may_alias(self, func: FuncDecl, shape: str, payload) -> bool:
        if not self.use_alias_analysis:
            # Figure 5 without the §5 pruning: every access whose value
            # type matches the target's is checked (C's types give this
            # much for free; everything else is the analysis's job).
            return self._type_matches(func, shape, payload)
        prog = self.prog
        target = self.target
        if shape == "var":
            name = payload
            # locals can never be the shared target; a global matches only
            # itself
            if target.kind == "global":
                is_local = name in func.locals or any(p.name == name for p in func.params)
                return name == target.name and not is_local
            return False
        if shape == "field":
            base, fld = payload
            if target.kind != "field" or fld != target.field:
                return False
            struct = self._static_struct_of(func, base)
            return struct is None or struct == target.name
        # deref: type filter + points-to
        name = payload
        ptype = self._static_type_of(func, name)
        if ptype is not None:
            if not (isinstance(ptype, PtrType) and ptype.elem == self._target_type):
                return False
        if self._alias is None:
            return True
        if target.kind == "global":
            loc = self._alias.global_loc(target.name)
        else:
            loc = self._alias.field_loc(target.name, target.field)
        return self._alias.may_point_to(func, name, loc)

    def _type_matches(self, func: FuncDecl, shape: str, payload) -> bool:
        if shape == "var":
            return self._static_type_of(func, payload) == self._target_type
        if shape == "field":
            base, fld = payload
            struct_name = self._static_struct_of(func, base)
            if struct_name is None:
                return True
            struct = self.prog.structs.get(struct_name)
            if struct is None or fld not in struct.fields:
                return True
            return struct.fields[fld] == self._target_type
        ptype = self._static_type_of(func, payload)
        if ptype is None:
            return True
        return isinstance(ptype, PtrType) and ptype.elem == self._target_type

    def _static_type_of(self, func: FuncDecl, name: str) -> Optional[Type]:
        if name in func.locals:
            return func.locals[name]
        for p in func.params:
            if p.name == name:
                return p.type
        g = self.prog.globals.get(name)
        return g.type if g is not None else None

    def _static_struct_of(self, func: FuncDecl, name: str) -> Optional[str]:
        t = self._static_type_of(func, name)
        if isinstance(t, PtrType) and isinstance(t.elem, StructType):
            return t.elem.name
        return None


def kiss_race_transform(
    prog: Program,
    target: RaceTarget,
    max_ts: int = 0,
    use_alias_analysis: bool = True,
) -> Program:
    """Sequentialize ``prog`` with race checking for ``target``."""
    return RaceTransformer(target, max_ts=max_ts, use_alias_analysis=use_alias_analysis).transform(prog)
