"""Mapping sequential error traces back to concurrent interleavings.

The paper: "the error trace leading to the assertion failure in P is
easily constructed from the error trace in P'".  The construction walks
the sequential trace while tracking which *thread context* each step
belongs to.  Thread contexts follow the stack discipline of the
scheduler:

* the root context (thread 0) starts at ``__kiss_check``'s call into the
  original entry function;
* an inlined ``async`` (``ts`` full, or ``max_ts = 0``) starts a new
  context that ends when the inlined call returns;
* a ``put`` parks a new thread (assigning it the next thread id, FIFO per
  start function); the matching ``schedule()`` dispatch re-activates that
  context until the dispatched call returns.

The result is a :class:`ConcurrentTrace`: per-step ``(thread, original
statement)`` pairs, plus ``spawn`` pseudo-steps at the points where the
concurrent program would have executed the ``async``, and ``access``
steps marking the two conflicting accesses of a race trace.  By Theorem 1
the induced thread-id string is always *balanced*
(:func:`repro.concheck.executions.is_balanced`), which the test suite
verifies.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.cfg.graph import ProgramCfg
from repro.seqcheck.trace import CheckResult, TraceStep

from .transform import (
    TAG_CHECK,
    TAG_DISPATCH,
    TAG_INLINE_ASYNC,
    TAG_PUT,
    TAG_ROOT,
)


@dataclass
class PlanStep:
    """One step of the reconstructed concurrent execution.

    ``kind`` is ``"step"`` (an original statement executed by ``tid``),
    ``"spawn"`` (the point where ``tid`` executed the original ``async``),
    or ``"access"`` (a recorded read/write of the race target — race
    traces end with two of these from different threads).
    """

    tid: int
    sid: int
    kind: str = "step"
    text: str = ""

    def __str__(self) -> str:
        marker = {"spawn": " [spawn]", "access": " [access]"}.get(self.kind, "")
        return f"t{self.tid}{marker}: {self.text or f'stmt#{self.sid}'}"


@dataclass
class ConcurrentTrace:
    steps: List[PlanStep] = field(default_factory=list)

    def thread_string(self) -> Tuple[int, ...]:
        return tuple(s.tid for s in self.steps)

    def threads(self) -> List[int]:
        seen: List[int] = []
        for s in self.steps:
            if s.tid not in seen:
                seen.append(s.tid)
        return seen

    def access_steps(self) -> List[PlanStep]:
        return [s for s in self.steps if s.kind == "access"]

    def format(self) -> str:
        return "\n".join(f"  {i:3d}. {s}" for i, s in enumerate(self.steps))

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)


class TraceMapError(Exception):
    pass


@dataclass
class _ThreadCtx:
    tid: int
    depth: int  # virtual-stack depth at which this context was entered


def map_trace(pcfg: ProgramCfg, trace: List[TraceStep]) -> ConcurrentTrace:
    """Reconstruct the concurrent interleaving from a sequential trace.

    ``pcfg`` must be the CFG of the *transformed* program the trace came
    from (node ids in the trace index into it).
    """
    out = ConcurrentTrace()
    vdepth = 0  # virtual call-stack depth
    contexts: List[_ThreadCtx] = [_ThreadCtx(tid=0, depth=0)]
    next_tid = 1
    parked: Dict[str, Deque[int]] = defaultdict(deque)
    nodes = [pcfg.cfg(step.func).node(step.node_id) for step in trace]

    for i, node in enumerate(nodes):
        tag = node.origin.tag
        cur = contexts[-1].tid

        if node.kind == "call":
            spawn = getattr(node.stmt, "kiss_spawn", None)
            if tag == TAG_ROOT:
                pass  # thread 0 enters the original program
            elif tag == TAG_INLINE_ASYNC:
                tid = next_tid
                next_tid += 1
                out.steps.append(PlanStep(cur, node.origin.sid, "spawn", node.origin.text))
                contexts.append(_ThreadCtx(tid, vdepth))
            elif tag == TAG_DISPATCH:
                family = spawn or ""
                if not parked[family]:
                    raise TraceMapError(f"dispatch of '{family}' with no parked thread")
                tid = parked[family].popleft()
                contexts.append(_ThreadCtx(tid, vdepth))
            elif tag == TAG_CHECK and _check_call_records(nodes, i):
                # this check call actually hit the target (recorded an
                # access or failed the conflict assertion inside)
                out.steps.append(PlanStep(cur, node.origin.sid, "access", node.origin.text))
            vdepth += 1
            continue

        if node.kind == "return":
            vdepth -= 1
            if vdepth < 0:
                raise TraceMapError("trace unwinds past the entry frame")
            while len(contexts) > 1 and contexts[-1].depth == vdepth:
                contexts.pop()
            continue

        if tag == TAG_PUT:
            tid = next_tid
            next_tid += 1
            parked[node.stmt.kiss_spawn or ""].append(tid)
            out.steps.append(PlanStep(cur, node.origin.sid, "spawn", node.origin.text))
            continue

        if tag == "user":
            out.steps.append(PlanStep(cur, node.origin.sid, "step", node.origin.text))

    return out


def _check_call_records(nodes, i: int) -> bool:
    """Did the ``check_r``/``check_w`` call at index ``i`` hit the target?

    A hit either sets the ``access`` flag (recording, then RAISE) or fails
    the conflict assertion, in which case the trace ends inside the call.
    A miss runs the miss branch and returns without touching ``access``.
    """
    from repro.lang.ast import Assign, Var

    from . import names

    depth = 0
    for node in nodes[i + 1 :]:
        if node.kind == "call":
            depth += 1
        elif node.kind == "return":
            if depth == 0:
                return False
            depth -= 1
        elif depth == 0 and node.kind == "assign":
            stmt = node.stmt
            if isinstance(stmt, Assign) and isinstance(stmt.lhs, Var) and stmt.lhs.name == names.ACCESS_VAR:
                return True
    return True  # trace ended inside the call: the conflict assertion fired


def map_result(pcfg: ProgramCfg, result: CheckResult) -> Optional[ConcurrentTrace]:
    """Map a checker result's trace; None when there is no error trace."""
    if not result.is_error:
        return None
    return map_trace(pcfg, result.trace)
