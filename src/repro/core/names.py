"""Reserved names introduced by the KISS instrumentation.

All synthesized globals, functions, and temporaries share the ``__kiss_``
prefix; input programs must not use it (checked by the transformer).
"""

PREFIX = "__kiss_"

RAISE_VAR = PREFIX + "raise"  # the paper's `raise` flag
TS_SIZE = PREFIX + "ts_size"  # total elements parked in `ts`
ACCESS_VAR = PREFIX + "access"  # race checking: 0=none, 1=read, 2=write
TARGET_VAR = PREFIX + "target"  # race checking: address of the location r
ALLOC_SEEN = PREFIX + "alloc_seen"  # race checking: allocation counter

SCHEDULE_FN = PREFIX + "schedule"
CHECK_FN = PREFIX + "check"  # entry wrapper implementing Check(s)
CHECK_R_FN = PREFIX + "check_r"
CHECK_W_FN = PREFIX + "check_w"

INDIRECT_FAMILY = PREFIX + "indirect"  # ts family for `async v()` (func var)

# K-round (Lal–Reps) sequentialization (repro.rounds)
RR_ERR_VAR = PREFIX + "rr_err"  # deferred assertion-failure flag
RR_RUN_FN = PREFIX + "rr_run"  # end-of-main dispatch loop over parked threads


def rr_in_round(k: int) -> str:
    """One-hot flag: the running thread is currently in round ``k``.
    (Booleans, not an int counter: the predicate-abstraction backend
    handles boolean guards far more cheaply than int comparisons.)"""
    return f"{PREFIX}in_r{k}"


def rr_global(name: str, k: int) -> str:
    """Round-``k`` copy of shared global ``name`` (round 0 is the
    original global itself)."""
    return f"{PREFIX}r{k}_{name}"


def rr_guess(name: str, k: int) -> str:
    """Saved snapshot guess for ``name`` at entry of round ``k``."""
    return f"{PREFIX}g{k}_{name}"


def ts_slot_round(family: str, slot: int, k: int) -> str:
    """Round-``k`` spawn flag of the thread parked in ``slot``."""
    return f"{PREFIX}ts_{family}_{slot}_r{k}"


def ts_count(family: str) -> str:
    """Per-family element count (`|{parked threads with start fn family}|`)."""
    return f"{PREFIX}ts_{family}_n"


def ts_slot_arg(family: str, slot: int, arg: int) -> str:
    """Storage for argument ``arg`` of the thread parked in ``slot``."""
    return f"{PREFIX}ts_{family}_{slot}_a{arg}"


def ts_slot_fn(slot: int) -> str:
    """Storage for the function value of an indirectly-spawned thread."""
    return f"{PREFIX}ts_fn_{slot}"


def transformed_temp(n: int) -> str:
    """The n-th instrumentation temporary of a function."""
    return f"{PREFIX}t{n}"


# Lazy pc-guarded sequentialization (repro.lazy)


def lz_step(t: int) -> str:
    """Step function of thread instance ``t``: executes the one node the
    instance's saved pc points at."""
    return f"{PREFIX}lz_step{t}"


def lz_at(t: int, pc: int) -> str:
    """One-hot saved-pc flag: instance ``t`` is stopped at node ``pc``."""
    return f"{PREFIX}lz_at{t}_{pc}"


def lz_done(t: int) -> str:
    """Instance ``t`` ran to completion."""
    return f"{PREFIX}lz_done{t}"


def lz_off(t: int) -> str:
    """Instance ``t`` has not been spawned yet (main starts false)."""
    return f"{PREFIX}lz_off{t}"


def lz_local(t: int, name: str) -> str:
    """Promoted per-instance copy of local/param ``name`` (locals must
    survive across segment boundaries, so they become globals)."""
    return f"{PREFIX}lz{t}_{name}"
