"""Reserved names introduced by the KISS instrumentation.

All synthesized globals, functions, and temporaries share the ``__kiss_``
prefix; input programs must not use it (checked by the transformer).
"""

PREFIX = "__kiss_"

RAISE_VAR = PREFIX + "raise"  # the paper's `raise` flag
TS_SIZE = PREFIX + "ts_size"  # total elements parked in `ts`
ACCESS_VAR = PREFIX + "access"  # race checking: 0=none, 1=read, 2=write
TARGET_VAR = PREFIX + "target"  # race checking: address of the location r
ALLOC_SEEN = PREFIX + "alloc_seen"  # race checking: allocation counter

SCHEDULE_FN = PREFIX + "schedule"
CHECK_FN = PREFIX + "check"  # entry wrapper implementing Check(s)
CHECK_R_FN = PREFIX + "check_r"
CHECK_W_FN = PREFIX + "check_w"

INDIRECT_FAMILY = PREFIX + "indirect"  # ts family for `async v()` (func var)


def ts_count(family: str) -> str:
    """Per-family element count (`|{parked threads with start fn family}|`)."""
    return f"{PREFIX}ts_{family}_n"


def ts_slot_arg(family: str, slot: int, arg: int) -> str:
    """Storage for argument ``arg`` of the thread parked in ``slot``."""
    return f"{PREFIX}ts_{family}_{slot}_a{arg}"


def ts_slot_fn(slot: int) -> str:
    """Storage for the function value of an indirectly-spawned thread."""
    return f"{PREFIX}ts_fn_{slot}"


def transformed_temp(n: int) -> str:
    """The n-th instrumentation temporary of a function."""
    return f"{PREFIX}t{n}"
