"""The KISS sequentialization (Figure 4 of the paper).

Transforms a *concurrent* core program ``P`` into a *sequential* core
program ``Check(P)`` whose executions simulate the balanced executions of
``P`` with at most ``max_ts`` threads parked at any time:

* a fresh global ``raise`` lets any thread terminate nondeterministically:
  before every statement we insert ``choice{skip [] RAISE}`` with
  ``RAISE = raise := true; return``, and after every call we insert
  ``if (raise) return`` to propagate the unwinding;
* a fresh bounded multiset ``ts`` (compiled into ordinary globals — one
  slot family per spawnable start function, plus element counts) parks
  forked threads; ``async f(a)`` becomes "park ``f(a)`` if there is room,
  else call it synchronously";
* a synthesized ``__kiss_schedule()`` — called before every statement —
  dispatches a nondeterministically chosen set of parked threads, running
  each to (possibly ``raise``-induced) completion: the stack-discipline
  scheduler of Section 2;
* the new entry point ``__kiss_check()`` implements
  ``Check(s) = raise := false; ts := ∅; [[s]]; schedule()``.

With ``max_ts = 0`` every ``async`` becomes a synchronous call and
``schedule()`` would be a no-op, so its calls are omitted (the paper's
race-detection configuration).

The transformation never mutates its input: the program is deep-copied
and function bodies are rewritten in place under their *original* names,
so function values stored in variables keep working for indirect calls.
Original statements keep their ids and carry no ``kiss_tag``; synthesized
statements are tagged for the error-trace mapper
(:mod:`repro.core.tracemap`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.lang.ast import (
    BOOL,
    FUNC,
    INT,
    Assert,
    Assign,
    Assume,
    AsyncCall,
    Atomic,
    Binary,
    Block,
    BoolLit,
    BoolType,
    Call,
    Choice,
    Expr,
    Field,
    FuncDecl,
    FuncType,
    GlobalDecl,
    IntLit,
    IntType,
    Iter,
    Malloc,
    NullLit,
    Param,
    Program,
    PtrType,
    Return,
    Skip,
    Stmt,
    Type,
    Unary,
    Var,
    stmt_exprs,
    walk_exprs,
    walk_stmts,
)
from repro import obs
from repro.lang.lower import clone_program, is_core_program

from . import names

TAG_INSTR = "instr"
TAG_PUT = "put"
TAG_DISPATCH = "dispatch"
TAG_INLINE_ASYNC = "inline-async"
TAG_CHECK = "check"
TAG_ROOT = "root"  # __kiss_check's call into the original entry (thread 0)


class TransformError(Exception):
    pass


@dataclass
class SpawnFamily:
    """One ``ts`` slot family: threads whose start function is ``name``
    (or any function value, for the indirect family)."""

    name: str
    params: List[Param]
    indirect: bool = False


def _tag(s: Stmt, tag: str = TAG_INSTR, spawn: Optional[str] = None, sid: int = 0) -> Stmt:
    s.kiss_tag = tag
    s.kiss_spawn = spawn
    if sid:
        s.sid = sid
    return s


def default_return_atom(decl: FuncDecl) -> Optional[Expr]:
    """A constant atom of the function's return type (None for void)."""
    ret = decl.ret
    if ret is None:
        return None
    if isinstance(ret, IntType):
        return IntLit(0)
    if isinstance(ret, BoolType):
        return BoolLit(False)
    if isinstance(ret, PtrType):
        return NullLit()
    if isinstance(ret, FuncType):
        # there is no "null function" literal; the function's own name is a
        # well-typed atom and the value is garbage anyway (raise unwinding)
        return Var(decl.name)
    raise TransformError(f"unsupported return type {ret}")


def default_const_for(typ: Type, any_function: str) -> Expr:
    """A constant atom of ``typ`` for resetting vacated ts slots."""
    if isinstance(typ, IntType):
        return IntLit(0)
    if isinstance(typ, BoolType):
        return BoolLit(False)
    if isinstance(typ, PtrType):
        return NullLit()
    if isinstance(typ, FuncType):
        return Var(any_function)
    raise TransformError(f"unsupported slot type {typ}")


def spawn_families(prog: Program) -> List[SpawnFamily]:
    """All slot families needed by ``prog``'s async statements."""
    families: Dict[str, SpawnFamily] = {}
    for func in prog.functions.values():
        local_names = set(func.locals) | {p.name for p in func.params}
        for s in walk_stmts(func.body):
            if not isinstance(s, AsyncCall):
                continue
            name = s.func.name
            direct = name in prog.functions and name not in local_names and name not in prog.globals
            if direct:
                decl = prog.functions[name]
                families.setdefault(name, SpawnFamily(name, list(decl.params)))
            else:
                families.setdefault(
                    names.INDIRECT_FAMILY, SpawnFamily(names.INDIRECT_FAMILY, [], indirect=True)
                )
    return sorted(families.values(), key=lambda f: f.name)


class _FnCtx:
    """Per-function transformation context (temporaries, return default)."""

    def __init__(self, decl: FuncDecl):
        self.decl = decl
        self._counter = 0
        self._tneg: Optional[Var] = None

    def tneg(self) -> Var:
        """A shared bool temp for negated guards (used immediately, so one
        per function suffices — keeps instrumented frames narrow)."""
        if self._tneg is None:
            self._tneg = self.fresh(BOOL)
        return self._tneg

    def fresh(self, typ: Type) -> Var:
        while True:
            self._counter += 1
            name = names.transformed_temp(self._counter)
            if name not in self.decl.locals:
                break
        self.decl.locals[name] = typ
        return Var(name)

    def return_atom(self) -> Optional[Expr]:
        return default_return_atom(self.decl)


class KissTransformer:
    """Figure 4: assertion-checking instrumentation.

    Subclassed by :class:`repro.core.race.RaceTransformer` (Figure 5),
    which overrides the two hook methods.
    """

    def __init__(self, max_ts: int = 0, por: bool = False):
        if max_ts < 0:
            raise ValueError("max_ts must be >= 0")
        self.max_ts = max_ts
        #: shared-access POR (:mod:`repro.analysis.sharedaccess`): drop
        #: the ``schedule(); choice{skip [] RAISE}`` prefix before purely
        #: thread-local statements — preempting (or dispatching) there
        #: commutes with doing so at the next shared/blocking point, so
        #: the simulated execution set is unchanged.
        self.por = por
        # Populated by transform():
        self.prog: Optional[Program] = None
        self.families: List[SpawnFamily] = []
        self.emit_schedule = False
        self._por_shared: Optional[set] = None

    # -- hooks for the race subclass ----------------------------------------------

    def access_check_branches(self, fctx: _FnCtx, stmt: Stmt, out_pre: List[Stmt]) -> List[Block]:
        """Extra ``choice`` branches inserted before ``stmt`` (Figure 5's
        ``check_r``/``check_w``).  ``out_pre`` receives statements that must
        run before the choice (address computations).  Base: none."""
        return []

    def post_malloc(self, fctx: _FnCtx, stmt: Malloc) -> List[Stmt]:
        """Statements inserted after a ``malloc`` (race-target registration).
        Base: none."""
        return []

    def extra_globals(self) -> List[GlobalDecl]:
        return []

    def extra_functions(self) -> List[FuncDecl]:
        return []

    def extra_check_prologue(self) -> List[Stmt]:
        """Statements at the start of ``__kiss_check`` (target setup)."""
        return []

    # -- public API -------------------------------------------------------------------

    def transform(self, prog: Program) -> Program:
        with obs.span("transform", transformer=type(self).__name__, max_ts=self.max_ts):
            return self._transform(prog)

    def _transform(self, prog: Program) -> Program:
        if not is_core_program(prog):
            raise TransformError("input must be a core program (run repro.lang.lower first)")
        self._check_no_reserved(prog)
        out = clone_program(prog)
        self.prog = out
        self.families = spawn_families(out)
        self.emit_schedule = self.max_ts > 0 and bool(self.families)
        if self.por:
            from repro.analysis.sharedaccess import analyze_shared_access

            self._por_shared = analyze_shared_access(out).shared

        for func in list(out.functions.values()):
            self._transform_function(func)

        self._add_globals(out)
        for g in self.extra_globals():
            out.globals[g.name] = g
        if self.emit_schedule:
            out.functions[names.SCHEDULE_FN] = self._make_schedule(out)
        for f in self.extra_functions():
            out.functions[f.name] = f
        out.functions[names.CHECK_FN] = self._make_check_entry(out)
        out.entry = names.CHECK_FN
        return out

    # -- pieces ---------------------------------------------------------------------------

    @staticmethod
    def _check_no_reserved(prog: Program) -> None:
        reserved = [n for n in list(prog.globals) + list(prog.functions) if n.startswith(names.PREFIX)]
        for func in prog.functions.values():
            reserved += [n for n in func.locals if n.startswith(names.PREFIX)]
        if reserved:
            raise TransformError(f"input uses reserved __kiss_ names: {sorted(set(reserved))}")

    def _add_globals(self, out: Program) -> None:
        out.globals[names.RAISE_VAR] = GlobalDecl(names.RAISE_VAR, BOOL, BoolLit(False))
        if not self.emit_schedule:
            return
        out.globals[names.TS_SIZE] = GlobalDecl(names.TS_SIZE, INT, IntLit(0))
        for fam in self.families:
            out.globals[names.ts_count(fam.name)] = GlobalDecl(names.ts_count(fam.name), INT, IntLit(0))
            for slot in range(self.max_ts):
                if fam.indirect:
                    gname = names.ts_slot_fn(slot)
                    out.globals[gname] = GlobalDecl(gname, FUNC)
                else:
                    for j, p in enumerate(fam.params):
                        gname = names.ts_slot_arg(fam.name, slot, j)
                        out.globals[gname] = GlobalDecl(gname, p.type)

    # -- instrumentation of one function -----------------------------------------------------

    def _transform_function(self, decl: FuncDecl) -> None:
        fctx = _FnCtx(decl)
        decl.body = Block(self._transform_stmts(fctx, decl.body.stmts))

    def _transform_stmts(self, fctx: _FnCtx, stmts: Sequence[Stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        for s in stmts:
            out.extend(self._transform_stmt(fctx, s))
        return out

    def _transform_stmt(self, fctx: _FnCtx, s: Stmt) -> List[Stmt]:
        if isinstance(s, Block):
            inner = Block(self._transform_stmts(fctx, s.stmts))
            inner.sid = s.sid
            return [inner]
        if isinstance(s, Choice):
            branches = []
            for b in s.branches:
                nb = Block(self._transform_stmts(fctx, b.stmts))
                nb.sid = b.sid
                branches.append(nb)
            c = Choice(branches, s.pos, sid=s.sid)
            c.kiss_tag = s.kiss_tag
            return [c]
        if isinstance(s, Iter):
            body = Block(self._transform_stmts(fctx, s.body.stmts))
            body.sid = s.body.sid
            it = Iter(body, s.pos, sid=s.sid)
            it.kiss_tag = s.kiss_tag
            return [it]
        if isinstance(s, Return):
            return self._schedule_prefix() + [s]
        if isinstance(s, Call):
            out = self._full_prefix(fctx, s)
            out.append(s)
            out.extend(self._if_raise_return(fctx))
            return out
        if isinstance(s, AsyncCall):
            out = self._full_prefix(fctx, s)
            out.extend(self._lower_async(fctx, s))
            return out
        if isinstance(s, Malloc):
            out = self._full_prefix(fctx, s)
            out.append(s)
            out.extend(self.post_malloc(fctx, s))
            return out
        # simple statements: skip/assign/assert/assume/atomic
        if isinstance(s, (Skip, Assign, Assert, Assume, Atomic)):
            out = self._full_prefix(fctx, s)
            out.append(s)
            return out
        raise TransformError(f"cannot transform statement {type(s).__name__}")

    # -- prefix pieces -------------------------------------------------------------------------

    def _schedule_prefix(self) -> List[Stmt]:
        if not self.emit_schedule:
            return []
        return [_tag(Call(None, Var(names.SCHEDULE_FN), []))]

    def _full_prefix(self, fctx: _FnCtx, stmt: Stmt) -> List[Stmt]:
        """``schedule(); choice{skip [] <checks> [] RAISE}``."""
        pre: List[Stmt] = []
        check_branches = self.access_check_branches(fctx, stmt, pre)
        if self.por and not check_branches and self._por_prunable(fctx, stmt):
            obs.inc("por_schedule_points_pruned")
            return []
        out = self._schedule_prefix()
        out.extend(pre)
        branches = [Block([_tag(Skip())])]
        branches.extend(check_branches)
        branches.append(Block(self._raise_stmts(fctx)))
        out.append(_tag(Choice(branches)))
        return out

    def _por_prunable(self, fctx: _FnCtx, stmt: Stmt) -> bool:
        """Thread-invisible and non-blocking: other threads cannot
        observe (or be blocked by) this statement, so the preemption /
        dispatch / raise opportunity in front of it commutes forward to
        the next kept point.  ``assume`` is never prunable — a blocked
        run must be able to stop right before it — and neither is any
        heap access (heap cells can be shared)."""
        if isinstance(stmt, Skip):
            return True
        if not isinstance(stmt, (Assign, Assert, Atomic)):
            return False
        shared = self._por_shared or set()
        shadowed = set(fctx.decl.locals) | {p.name for p in fctx.decl.params}
        for inner in walk_stmts(stmt):
            if isinstance(inner, Assume):
                return False
            for e in stmt_exprs(inner):
                for sub in walk_exprs(e):
                    if isinstance(sub, Field):
                        return False
                    if isinstance(sub, Unary) and sub.op in ("*", "&"):
                        return False
                    if (
                        isinstance(sub, Var)
                        and sub.name in shared
                        and sub.name not in shadowed
                    ):
                        return False
        return True

    def _raise_stmts(self, fctx: _FnCtx) -> List[Stmt]:
        return [
            _tag(Assign(Var(names.RAISE_VAR), BoolLit(True))),
            _tag(Return(fctx.return_atom())),
        ]

    def _if_raise_return(self, fctx: _FnCtx) -> List[Stmt]:
        tneg = fctx.tneg()
        return [
            _tag(
                Choice(
                    [
                        Block([_tag(Assume(Var(names.RAISE_VAR))), _tag(Return(fctx.return_atom()))]),
                        Block(
                            [
                                _tag(Assign(tneg, Unary("!", Var(names.RAISE_VAR)))),
                                _tag(Assume(tneg)),
                            ]
                        ),
                    ]
                )
            )
        ]

    # -- async lowering ---------------------------------------------------------------------------

    def _family_for(self, fctx: _FnCtx, s: AsyncCall) -> SpawnFamily:
        name = s.func.name
        local_names = set(fctx.decl.locals) | {p.name for p in fctx.decl.params}
        direct = (
            name in self.prog.functions and name not in local_names and name not in self.prog.globals
        )
        if direct:
            return next(f for f in self.families if f.name == name and not f.indirect)
        return next(f for f in self.families if f.indirect)

    def _inline_call(self, fctx: _FnCtx, s: AsyncCall, fam: SpawnFamily) -> List[Stmt]:
        call = Call(None, s.func, list(s.args))
        _tag(call, TAG_INLINE_ASYNC, spawn=fam.name, sid=s.sid)
        return [call, _tag(Assign(Var(names.RAISE_VAR), BoolLit(False)))]

    def _lower_async(self, fctx: _FnCtx, s: AsyncCall) -> List[Stmt]:
        fam = self._family_for(fctx, s)
        if not self.emit_schedule:
            return self._inline_call(fctx, s, fam)
        has_room = fctx.fresh(BOOL)
        room = _tag(Assign(has_room, Binary("<", Var(names.TS_SIZE), IntLit(self.max_ts))))
        put_branch = [_tag(Assume(has_room))] + self._put_stmts(fctx, s, fam)
        tneg = fctx.tneg()
        full_branch = [
            _tag(Assign(tneg, Unary("!", has_room))),
            _tag(Assume(tneg)),
        ] + self._inline_call(fctx, s, fam)
        return [room, _tag(Choice([Block(put_branch), Block(full_branch)]))]

    def _put_stmts(self, fctx: _FnCtx, s: AsyncCall, fam: SpawnFamily) -> List[Stmt]:
        count = Var(names.ts_count(fam.name))
        slot_branches: List[Block] = []
        for slot in range(self.max_ts):
            guard = fctx.fresh(BOOL)
            stmts: List[Stmt] = [
                _tag(Assign(guard, Binary("==", count, IntLit(slot)))),
                _tag(Assume(guard)),
            ]
            if fam.indirect:
                stmts.append(_tag(Assign(Var(names.ts_slot_fn(slot)), s.func)))
            else:
                for j, arg in enumerate(s.args):
                    stmts.append(_tag(Assign(Var(names.ts_slot_arg(fam.name, slot, j)), arg)))
            slot_branches.append(Block(stmts))
        put_marker = _tag(Skip(), TAG_PUT, spawn=fam.name, sid=s.sid)
        return [
            _tag(Choice(slot_branches)),
            _tag(Assign(count, Binary("+", count, IntLit(1)))),
            _tag(Assign(Var(names.TS_SIZE), Binary("+", Var(names.TS_SIZE), IntLit(1)))),
            put_marker,
        ]

    # -- schedule() synthesis -----------------------------------------------------------------------

    def _make_schedule(self, out: Program) -> FuncDecl:
        decl = FuncDecl(names.SCHEDULE_FN, [], None, Block([]))
        fctx = _FnCtx(decl)
        branches: List[Block] = []
        for fam in self.families:
            for slot in range(self.max_ts):
                branches.append(self._dispatch_branch(out, fctx, fam, slot))
        body: List[Stmt] = []
        if branches:
            body.append(_tag(Iter(Block([_tag(Choice(branches))]))))
        decl.body = Block(body)
        return decl

    def _dispatch_branch(self, out: Program, fctx: _FnCtx, fam: SpawnFamily, slot: int) -> Block:
        """Dispatch the thread parked in ``slot`` of family ``fam``:
        guard occupancy, copy out the arguments, compact the remaining
        slots down (keeping unoccupied slots at default values so states
        stay canonical), decrement the counts, call the start function,
        and reset ``raise``."""
        count = Var(names.ts_count(fam.name))
        any_fn = next(iter(out.functions))
        stmts: List[Stmt] = []
        occupied = fctx.fresh(BOOL)
        stmts.append(_tag(Assign(occupied, Binary("<", IntLit(slot), count))))
        stmts.append(_tag(Assume(occupied)))

        arg_atoms: List[Expr] = []
        if fam.indirect:
            fvar = fctx.fresh(FUNC)
            stmts.append(_tag(Assign(fvar, Var(names.ts_slot_fn(slot)))))
            callee: Var = fvar
        else:
            callee = Var(fam.name)
            for j, p in enumerate(fam.params):
                tmp = fctx.fresh(p.type)
                stmts.append(_tag(Assign(tmp, Var(names.ts_slot_arg(fam.name, slot, j)))))
                arg_atoms.append(tmp)

        # Compact: slots (slot+1 ..) shift down, last slot resets to defaults.
        for j in range(slot, self.max_ts - 1):
            if fam.indirect:
                stmts.append(_tag(Assign(Var(names.ts_slot_fn(j)), Var(names.ts_slot_fn(j + 1)))))
            else:
                for a, p in enumerate(fam.params):
                    stmts.append(
                        _tag(
                            Assign(
                                Var(names.ts_slot_arg(fam.name, j, a)),
                                Var(names.ts_slot_arg(fam.name, j + 1, a)),
                            )
                        )
                    )
        last = self.max_ts - 1
        if fam.indirect:
            stmts.append(_tag(Assign(Var(names.ts_slot_fn(last)), default_const_for(FUNC, any_fn))))
        else:
            for a, p in enumerate(fam.params):
                stmts.append(
                    _tag(
                        Assign(
                            Var(names.ts_slot_arg(fam.name, last, a)),
                            default_const_for(p.type, any_fn),
                        )
                    )
                )
        stmts.append(_tag(Assign(count, Binary("-", count, IntLit(1)))))
        stmts.append(_tag(Assign(Var(names.TS_SIZE), Binary("-", Var(names.TS_SIZE), IntLit(1)))))
        call = Call(None, callee, arg_atoms)
        _tag(call, TAG_DISPATCH, spawn=fam.name)
        stmts.append(call)
        stmts.append(_tag(Assign(Var(names.RAISE_VAR), BoolLit(False))))
        return Block(stmts)

    # -- Check(s) entry -----------------------------------------------------------------------------

    def _make_check_entry(self, out: Program) -> FuncDecl:
        orig_entry = out.entry
        stmts: List[Stmt] = [_tag(Assign(Var(names.RAISE_VAR), BoolLit(False)))]
        stmts.extend(self.extra_check_prologue())
        root_call = Call(None, Var(orig_entry), [])
        _tag(root_call, TAG_ROOT, spawn=orig_entry)
        stmts.append(root_call)
        stmts.append(_tag(Assign(Var(names.RAISE_VAR), BoolLit(False))))
        if self.emit_schedule:
            stmts.append(_tag(Call(None, Var(names.SCHEDULE_FN), [])))
        return FuncDecl(names.CHECK_FN, [], None, Block(stmts))


def kiss_transform(prog: Program, max_ts: int = 0) -> Program:
    """Sequentialize a concurrent core program for assertion checking."""
    return KissTransformer(max_ts=max_ts).transform(prog)
