"""High-level KISS checking API (the full Figure 1 pipeline).

``Kiss`` wraps: core lowering (if needed) → Figure 4/5 instrumentation →
sequential backend → error-trace mapping.  One call checks one property;
``check_races_on_struct`` runs the paper's per-field loop over a device
extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import cancel, obs
from repro.cfg.build import build_program_cfg
from repro.cfg.graph import ProgramCfg
from repro.lang.ast import Program
from repro.lang.lower import is_core_program, lower_program
from repro.schemas import STRATEGIES
from repro.seqcheck.explicit import SequentialChecker
from repro.seqcheck.trace import CheckResult, CheckStatus

from .race import RaceTarget, RaceTransformer
from .tracemap import ConcurrentTrace, map_result
from .transform import TAG_CHECK, KissTransformer


@dataclass
class KissResult:
    """The outcome of one KISS run.

    ``verdict``: ``"safe"`` (no error found among the simulated
    executions — NOT a proof of correctness, per the paper's unsoundness),
    ``"error"`` (a real error: an assertion violation or a race), or
    ``"resource-bound"`` (the backend exhausted its budget).

    ``error_kind``: ``"race"`` when the failing assertion sits inside a
    ``check_r``/``check_w`` (Figure 5), ``"assertion"`` for an original
    assertion, or the backend's violation kind for memory errors.

    ``strategy``/``rounds``: which sequentialization produced the
    verdict — ``"kiss"`` (Figure 4, ``rounds`` is None), ``"rounds"``
    (the eager K-round transform of :mod:`repro.rounds`, ``rounds`` = K),
    or ``"lazy"`` (the pc-guarded lazy transform of :mod:`repro.lazy`,
    ``rounds`` = K).
    """

    verdict: str
    error_kind: Optional[str] = None
    strategy: str = "kiss"
    rounds: Optional[int] = None
    target: Optional[RaceTarget] = None
    backend_result: Optional[CheckResult] = None
    transformed: Optional[Program] = None
    concurrent_trace: Optional[ConcurrentTrace] = None
    checks_emitted: int = 0
    checks_pruned: int = 0
    #: None = not validated; True/False = replay verdict (see
    #: repro.concheck.replay) when ``Kiss(validate_traces=True)``.
    trace_validated: Optional[bool] = None
    #: Per-phase timings and counters (the ``kiss-metrics/1`` snapshot of
    #: :mod:`repro.obs`) when ``Kiss(observe=True)``; None otherwise.
    metrics: Optional[dict] = None
    #: ``kiss-witness/1`` safety certificate (see :mod:`repro.witness`)
    #: when ``Kiss(witness=True)`` and the verdict is safe; None when the
    #: verdict is not safe or no witness could be honestly emitted.
    witness: Optional[dict] = None

    @property
    def is_error(self) -> bool:
        return self.verdict == "error"

    @property
    def is_safe(self) -> bool:
        return self.verdict == "safe"

    @property
    def exhausted(self) -> bool:
        return self.verdict == "resource-bound"

    @property
    def is_race(self) -> bool:
        return self.error_kind == "race"

    def summary(self) -> str:
        what = f" on {self.target.describe()}" if self.target else ""
        budget = f" [{self.strategy} K={self.rounds}]" if self.rounds is not None else ""
        if self.is_error:
            return f"{self.error_kind}{what}: {self.backend_result.message}{budget}"
        return f"{self.verdict}{what}{budget}"


class Kiss:
    """The KISS checker (Figure 1): instrument, then run a sequential
    backend, then map the error trace back.

    Parameters
    ----------
    max_ts:
        Bound on the ``ts`` multiset (the paper's coverage/cost knob).
        0 replaces every ``async`` with a synchronous call — the
        configuration the paper uses for race detection; 1 suffices for
        the Bluetooth reference-counting bug.
    max_states:
        Backend state budget; exceeding it yields ``"resource-bound"``
        (the paper's 20-minute/800 MB bound per driver/field run).
    use_alias_analysis:
        Prune race checks with the Steensgaard analysis (Section 5).
    map_traces:
        Reconstruct concurrent error traces (Figure 1's back arrow).
    validate_traces:
        Additionally *replay* every mapped error trace against the
        original concurrent semantics (guided search) and record the
        verdict in ``KissResult.trace_validated`` — a per-trace check of
        the paper's "never reports false errors" guarantee.
    backend:
        ``"explicit"`` (default) — the explicit-state checker, complete
        for finite data and the backend used for the driver corpus; or
        ``"cegar"`` — the SLAM-lite predicate-abstraction stack (the
        paper's actual architecture), for programs whose sequentialized
        form stays in the scalar fragment.  CEGAR divergence and
        unsupported fragments surface as ``"resource-bound"``; error
        traces are not mapped for this backend (its counterexamples are
        abstract).
    observe:
        Record per-phase timings and counters for each check
        (:mod:`repro.obs`) and attach the snapshot as
        ``KissResult.metrics``.  Off by default: the instrumentation
        points then hit the no-op recorder (see
        ``benchmarks/bench_obs_overhead.py`` for the measured cost).
    witness:
        On a safe verdict, emit a ``kiss-witness/1`` safety certificate
        (:func:`repro.witness.emit.emit_witness`) and attach it as
        ``KissResult.witness``.  The certificate embeds the sequential
        program text plus an inductive invariant (the explicit backend's
        reached-set, or the cegar backend's final abstraction) and can
        be re-checked by the standalone validator
        (``python -m repro.witness.validate``) with no trust in this
        checker.  Emission re-runs the backend on the canonical reparse
        of the transformed program, so it roughly doubles the cost of a
        safe check; it never changes the verdict.
    strategy:
        Which sequentialization to use for assertion checking:
        ``"kiss"`` (default, Figure 4), ``"rounds"`` (the eager K-round
        round-robin transform of :mod:`repro.rounds`), or ``"lazy"``
        (the pc-guarded lazy round-robin transform of
        :mod:`repro.lazy`; see ``docs/SEQUENTIALIZATION.md``).  Race
        checking (Figure 5) is KISS-only.
    rounds:
        The round budget K for ``strategy="rounds"``/``"lazy"``
        (ignored for ``"kiss"``).  K=2 subsumes KISS's coverage for two
        threads.
    por:
        Opt-in shared-access partial-order reduction
        (:mod:`repro.analysis.sharedaccess`): schedule/switch points in
        front of purely thread-local statements are pruned (counted by
        the ``por_schedule_points_pruned`` obs counter).  Verdicts are
        unaffected; the sequential state space shrinks.
    cs_tile:
        ``strategy="lazy"`` only: restrict context-switch points to the
        given ``"<instance>:<pc>"`` list — one tile of a swarm campaign
        (see :mod:`repro.campaign.swarm`).  Coverage-only: a tile's
        verdict is sound but bounded by its enabled points.
    """

    def __init__(
        self,
        max_ts: int = 0,
        max_states: int = 500_000,
        use_alias_analysis: bool = True,
        map_traces: bool = True,
        validate_traces: bool = False,
        backend: str = "explicit",
        cegar_rounds: int = 16,
        inline: bool = False,
        observe: bool = False,
        strategy: str = "kiss",
        rounds: int = 2,
        witness: bool = False,
        por: bool = False,
        cs_tile: Optional[List[str]] = None,
    ):
        if backend not in ("explicit", "cegar"):
            raise ValueError(f"unknown backend {backend!r}")
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}")
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        if cs_tile is not None and strategy != "lazy":
            raise ValueError("cs_tile requires strategy='lazy'")
        self.strategy = strategy
        self.rounds = rounds
        self.por = por
        self.cs_tile = list(cs_tile) if cs_tile is not None else None
        self.max_ts = max_ts
        self.max_states = max_states
        self.use_alias_analysis = use_alias_analysis
        self.map_traces = (map_traces or validate_traces) and backend == "explicit"
        self.validate_traces = validate_traces and backend == "explicit"
        self.backend = backend
        self.cegar_rounds = cegar_rounds
        #: pre-pass: inline small leaf functions (lock wrappers etc.)
        #: before instrumenting — shrinks the explored state space
        self.inline = inline
        #: record per-phase timings and counters (:mod:`repro.obs`) and
        #: attach the snapshot as ``KissResult.metrics``
        self.observe = observe
        #: emit a ``kiss-witness/1`` certificate on safe verdicts
        self.witness = witness

    # -- pipeline pieces --------------------------------------------------------

    def _as_core(self, prog: Program) -> Program:
        if is_core_program(prog):
            core = prog
        else:
            with obs.span("lower"):
                core = lower_program(prog)
        if self.inline:
            from repro.lang.inline import inline_program
            from repro.lang.lower import clone_program

            core = inline_program(clone_program(core))
        return core

    def _transformer(self) -> KissTransformer:
        """The assertion-checking transformer for the configured strategy."""
        if self.strategy == "rounds":
            from repro.rounds import RoundRobinTransformer

            return RoundRobinTransformer(rounds=self.rounds, max_ts=self.max_ts, por=self.por)
        if self.strategy == "lazy":
            from repro.lazy import LazyTransformer

            return LazyTransformer(
                rounds=self.rounds, max_ts=self.max_ts, por=self.por, cs_tile=self.cs_tile
            )
        return KissTransformer(max_ts=self.max_ts, por=self.por)

    def sequentialize(self, prog: Program) -> Program:
        """The sequentialization only (Figure 4 or the K-round
        transform, per ``strategy``): the sequential program, for
        inspection."""
        return self._transformer().transform(self._as_core(prog))

    def sequentialize_for_race(self, prog: Program, target: RaceTarget) -> Program:
        """Figure 5 only: the race-instrumented sequential program."""
        t = RaceTransformer(target, max_ts=self.max_ts, use_alias_analysis=self.use_alias_analysis)
        return t.transform(self._as_core(prog))

    def _run_backend(self, transformed: Program) -> (CheckResult, ProgramCfg):
        with obs.span("cfg"):
            pcfg = build_program_cfg(transformed)
        if self.backend == "cegar":
            return self._run_cegar(transformed), pcfg
        checker = SequentialChecker(pcfg, max_states=self.max_states)
        return checker.check(), pcfg

    def _run_cegar(self, transformed: Program) -> CheckResult:
        from repro.seqcheck.cegar import CegarChecker

        r = CegarChecker(transformed, max_rounds=self.cegar_rounds).check()
        if r.status == "safe":
            return CheckResult(CheckStatus.SAFE, message=f"CEGAR: {r.rounds} rounds")
        if r.status == "error":
            return CheckResult(
                CheckStatus.ERROR,
                violation_kind="assert",
                message=f"CEGAR: error after {r.rounds} rounds ({r.predicates} predicates)",
            )
        return CheckResult(CheckStatus.EXHAUSTED, message=f"CEGAR {r.status}: {r.message}")

    def _classify(self, result: CheckResult, pcfg: ProgramCfg) -> Optional[str]:
        if not result.is_error:
            return None
        last = result.trace[-1] if result.trace else None
        if last is not None:
            node = pcfg.cfg(last.func).node(last.node_id)
            if node.origin.tag == TAG_CHECK:
                return "race"
        if result.violation_kind == "assert":
            return "assertion"
        return result.violation_kind

    def _finish(
        self,
        result: CheckResult,
        pcfg: ProgramCfg,
        transformed: Program,
        core: Optional[Program] = None,
        target: Optional[RaceTarget] = None,
        transformer: Optional[KissTransformer] = None,
    ) -> KissResult:
        verdict = {
            CheckStatus.SAFE: "safe",
            CheckStatus.ERROR: "error",
            CheckStatus.EXHAUSTED: "resource-bound",
        }[result.status]
        error_kind = self._classify(result, pcfg)
        ctrace = None
        if self.map_traces and result.is_error:
            with obs.span("trace-map"):
                if target is None and self.strategy == "rounds":
                    from repro.rounds.tracemap import map_result as rounds_map_result

                    ctrace = rounds_map_result(pcfg, result)
                elif target is None and self.strategy == "lazy":
                    from repro.lazy.tracemap import map_result as lazy_map_result

                    ctrace = lazy_map_result(pcfg, result)
                else:
                    ctrace = map_result(pcfg, result)
        validated: Optional[bool] = None
        if self.validate_traces and ctrace is not None and core is not None:
            from repro.concheck.replay import replay_trace

            expect = "feasible" if error_kind == "race" else "error"
            with obs.span("trace-replay"):
                validated = replay_trace(core, ctrace, expect=expect).ok
        witness: Optional[dict] = None
        if self.witness and verdict == "safe":
            from repro.witness.emit import emit_witness

            strategy = self.strategy if target is None else "kiss"
            with obs.span("witness-emit"):
                witness = emit_witness(
                    transformed,
                    backend=self.backend,
                    strategy=strategy,
                    rounds=self.rounds if strategy in ("rounds", "lazy") else None,
                    max_states=self.max_states,
                    cegar_rounds=self.cegar_rounds,
                    target=target.describe() if target is not None else None,
                )
        return KissResult(
            verdict=verdict,
            error_kind=error_kind,
            strategy=self.strategy if target is None else "kiss",
            rounds=self.rounds if self.strategy in ("rounds", "lazy") and target is None else None,
            target=target,
            backend_result=result,
            transformed=transformed,
            concurrent_trace=ctrace,
            checks_emitted=getattr(transformer, "checks_emitted", 0),
            checks_pruned=getattr(transformer, "checks_pruned", 0),
            trace_validated=validated,
            witness=witness,
        )

    # -- public checks --------------------------------------------------------------

    def check_assertions(self, prog: Program) -> KissResult:
        """Check the program's own assertions (sequentialize + backend)."""
        recorder, ctx = obs.maybe_observing(self.observe)
        with ctx, obs.span(
            "check", prop="assertion", backend=self.backend, strategy=self.strategy
        ):
            core = self._as_core(prog)
            transformed = self._transformer().transform(core)
            result, pcfg = self._run_backend(transformed)
            out = self._finish(result, pcfg, transformed, core=core)
        if self.observe and recorder is not None:
            out.metrics = recorder.metrics()
        return out

    def check_transformed(self, core: Program, transformed: Program) -> KissResult:
        """Backend + trace mapping on an already-sequentialized program
        (``core`` is its concurrent original, for replay validation).
        :func:`sweep_ts` uses this to skip redundant re-checks when
        consecutive bounds transform to the identical program."""
        recorder, ctx = obs.maybe_observing(self.observe)
        with ctx, obs.span(
            "check", prop="assertion", backend=self.backend, strategy=self.strategy
        ):
            result, pcfg = self._run_backend(transformed)
            out = self._finish(result, pcfg, transformed, core=core)
        if self.observe and recorder is not None:
            out.metrics = recorder.metrics()
        return out

    def check_race(self, prog: Program, target: RaceTarget) -> KissResult:
        """Check for races on one location (Figure 5 + backend)."""
        if self.strategy != "kiss":
            raise ValueError("race checking is KISS-only (Figure 5 instrumentation)")
        recorder, ctx = obs.maybe_observing(self.observe)
        with ctx, obs.span(
            "check", prop="race", backend=self.backend, target=target.describe()
        ):
            core = self._as_core(prog)
            transformer = RaceTransformer(
                target, max_ts=self.max_ts, use_alias_analysis=self.use_alias_analysis
            )
            transformed = transformer.transform(core)
            result, pcfg = self._run_backend(transformed)
            out = self._finish(
                result, pcfg, transformed, core=core, target=target, transformer=transformer
            )
        if self.observe and recorder is not None:
            out.metrics = recorder.metrics()
        return out

    def check_races_on_struct(
        self,
        prog: Program,
        struct_name: str,
        jobs: int = 1,
        timeout: Optional[float] = None,
        cache_dir: Optional[str] = None,
    ) -> Dict[str, KissResult]:
        """The paper's per-field loop: one run per field of ``struct_name``
        (the device extension).  Returns ``{field: result}``.

        Delegates to the campaign engine (:mod:`repro.campaign`):
        ``jobs`` > 1 fans the fields out over worker processes,
        ``timeout`` bounds each field's wall clock (a diverging field
        degrades to ``"resource-bound"`` instead of hanging the loop),
        and ``cache_dir`` enables the content-addressed result cache.
        With the defaults everything runs in-process and results keep
        their traces; results that cross a process or cache boundary
        are slimmed to verdict + stats.
        """
        from repro.campaign import CampaignConfig, CampaignScheduler, CheckJob
        from repro.lang.pretty import pretty_program

        core = self._as_core(prog)
        struct = core.struct(struct_name)
        source = pretty_program(core)
        config = {
            "max_ts": self.max_ts,
            "max_states": self.max_states,
            "use_alias_analysis": self.use_alias_analysis,
            "backend": self.backend,
            "cegar_rounds": self.cegar_rounds,
            "inline": False,  # _as_core already inlined
            "por": False,  # the race instrumentation never prunes switch points
            "map_traces": self.map_traces,
            "validate_traces": self.validate_traces,
            "observe": self.observe,
            "witness": self.witness,
        }
        batch = [
            CheckJob(
                job_id=f"{struct_name}.{fname}",
                driver=struct_name,
                source=source,
                prop="race",
                target=f"{struct_name}.{fname}",
                config=config,
            )
            for fname in struct.fields
        ]
        scheduler = CampaignScheduler(
            CampaignConfig(jobs=jobs, timeout=timeout, cache_dir=cache_dir)
        )
        results = scheduler.run(batch)
        out: Dict[str, KissResult] = {}
        for fname, jr in zip(struct.fields, results):
            rich = scheduler.rich_results.get(jr.job_id)
            out[fname] = rich if rich is not None else jr.as_kiss_result()
        return out


def sweep_ts(
    prog: Program,
    max_bound: int = 3,
    stop_on_error: bool = True,
    **kiss_kwargs,
) -> List["KissResult"]:
    """The paper's §2 usage pattern: "start KISS with a small size for ts
    and then increase it as permitted by the computational resources".

    Runs assertion checking at ts bounds 0..max_bound, returning one
    result per bound (stopping early at the first error by default).

    Consecutive bounds often sequentialize to the *identical* program —
    most obviously when the program has fewer ``async`` statements than
    slots — so each transformed program is hashed and a repeat skips
    the backend, reusing the previous bound's result (counted by the
    ``bound_sweep_skips`` obs counter).
    """
    import hashlib
    from dataclasses import replace

    from repro.lang.pretty import pretty_program

    results: List[KissResult] = []
    core: Optional[Program] = None
    prev_hash: Optional[str] = None
    prev: Optional[KissResult] = None
    for bound in range(max_bound + 1):
        cancel.poll()
        kiss = Kiss(max_ts=bound, **kiss_kwargs)
        if core is None:
            core = kiss._as_core(prog)
        transformed = kiss._transformer().transform(core)
        digest = hashlib.sha256(pretty_program(transformed).encode()).hexdigest()
        if prev is not None and digest == prev_hash:
            obs.inc("bound_sweep_skips")
            r = replace(prev)
        else:
            r = kiss.check_transformed(core, transformed)
            prev_hash = digest
        prev = r
        results.append(r)
        if stop_on_error and r.is_error:
            break
    return results
