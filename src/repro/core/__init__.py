"""The KISS sequentialization and its high-level checking API."""

from .transform import KissTransformer, kiss_transform

__all__ = ["KissTransformer", "kiss_transform"]
