"""Cooperative cancellation for in-flight checks.

A :class:`CancelToken` is a sentinel *file*: cancelling touches the
file, polling stats it.  A file (rather than a ``multiprocessing.Event``)
survives ``ProcessPoolExecutor`` pickling, works identically for the
in-process serve engine thread and for pool workers, and needs no
cleanup protocol beyond ``unlink`` — the same shared-nothing shape as
the flock-guarded cache appends.

Like :mod:`repro.faults` and :mod:`repro.obs`, the token is *ambient*
inside a worker: :func:`scope` installs it for the duration of one job,
and the checking backends call the module-level :func:`poll` at their
iteration boundaries (explicit-state expansion, CEGAR refinement
rounds, per-``ts`` sweep steps).  When no token is installed — every
non-campaign caller — ``poll()`` is a global load and a ``None`` test,
so the hot loops pay nothing for the hook.

``poll()`` raises :class:`Cancelled` once the sentinel appears; the
worker catches it and reports verdict ``"cancelled"`` with detail
``cancelled[: reason]``.  Cancelled outcomes are never cached and never
count as verdicts (see ``docs/ROBUSTNESS.md``).

The ``stat`` itself is throttled: a token only touches the filesystem
every :data:`POLL_EVERY` polls, and caches a positive answer forever
(cancellation is one-way).  Delivery fires the ``cancel_deliver`` fault
point so chaos tests can drop or delay cancellations deterministically.
"""

from __future__ import annotations

import os
from typing import Iterator, Optional

from contextlib import contextmanager

from repro import faults

#: Filesystem stats per token are amortized over this many polls.  At
#: explicit-state expansion rates (~1e5 states/s) this bounds delivery
#: latency to a few milliseconds while keeping the stat off the hot path.
POLL_EVERY = 64


class Cancelled(Exception):
    """Raised by :func:`poll` inside a cancelled job.  The message is
    the cancellation reason (may be empty)."""


class CancelToken:
    """A one-way cancellation flag backed by a sentinel file."""

    __slots__ = ("path", "_set", "_countdown")

    def __init__(self, path: str):
        self.path = path
        self._set = False
        self._countdown = 0

    def cancel(self, reason: str = "") -> None:
        """Deliver the cancellation: write ``reason`` to the sentinel.
        Idempotent; safe to call from any thread or process."""
        faults.fire("cancel_deliver")
        tmp = f"{self.path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w") as f:
                f.write(reason)
            os.replace(tmp, self.path)
        except OSError:
            # last resort: a bare touch still delivers (reason lost)
            try:
                with open(self.path, "w"):
                    pass
            except OSError:
                pass
        self._set = True

    def is_set(self) -> bool:
        """True once cancelled.  Throttled: only stats the sentinel every
        :data:`POLL_EVERY` calls, and a positive answer is cached."""
        if self._set:
            return True
        if self._countdown > 0:
            self._countdown -= 1
            return False
        self._countdown = POLL_EVERY - 1
        if os.path.exists(self.path):
            self._set = True
        return self._set

    def reason(self) -> str:
        """The reason written by :meth:`cancel` ('' when none)."""
        try:
            with open(self.path) as f:
                return f.read().strip()
        except OSError:
            return ""

    def clear(self) -> None:
        """Remove the sentinel (owner-side cleanup)."""
        try:
            os.unlink(self.path)
        except OSError:
            pass


#: the ambient token for the current job, installed by :func:`scope`.
_token: Optional[CancelToken] = None


@contextmanager
def scope(token: Optional[CancelToken]) -> Iterator[None]:
    """Install ``token`` as the ambient cancellation flag for the
    duration of one job.  ``scope(None)`` is a no-op context."""
    global _token
    prev = _token
    _token = token
    try:
        yield
    finally:
        _token = prev


def poll() -> None:
    """Raise :class:`Cancelled` if the ambient token is set.  Called at
    backend iteration boundaries; near-free when no token is installed."""
    t = _token
    if t is not None and t.is_set():
        raise Cancelled(t.reason())
