"""Plain-text table rendering for the experiment harnesses."""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an aligned text table (paper-style, for bench output)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def agreement_note(matches: int, total: int, what: str) -> str:
    """One-line paper-agreement summary for bench output."""
    pct = 100.0 * matches / total if total else 100.0
    return f"{what}: {matches}/{total} rows match the paper ({pct:.0f}%)"
