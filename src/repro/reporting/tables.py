"""Plain-text table rendering for the experiment harnesses."""

from __future__ import annotations

import unicodedata
from typing import List, Sequence


def display_width(text: str) -> int:
    """Terminal-column width of ``text``.

    ``len()`` miscounts two common cases that appear in driver names and
    backend messages: East Asian wide/fullwidth characters occupy two
    columns, and combining marks occupy none.  Alignment uses this
    instead of ``len()`` so mixed-width rows still line up.
    """
    width = 0
    for ch in text:
        if unicodedata.combining(ch):
            continue
        width += 2 if unicodedata.east_asian_width(ch) in ("W", "F") else 1
    return width


def _pad(text: str, width: int) -> str:
    return text + " " * max(0, width - display_width(text))


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an aligned text table (paper-style, for bench output)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [display_width(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], display_width(c))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(_pad(h, w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(_pad(c, w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def agreement_note(matches: int, total: int, what: str) -> str:
    """One-line paper-agreement summary for bench output."""
    pct = 100.0 * matches / total if total else 100.0
    return f"{what}: {matches}/{total} rows match the paper ({pct:.0f}%)"
