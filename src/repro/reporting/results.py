"""Persistent experiment records (paper vs. measured), JSON round-trip.

The benchmark harnesses print human-readable tables; these records are
the machine-readable form used to regenerate EXPERIMENTS.md and to diff
runs over time.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class RowRecord:
    key: str  # e.g. driver name
    paper: Dict[str, object]
    measured: Dict[str, object]

    @property
    def matches(self) -> bool:
        return all(self.measured.get(k) == v for k, v in self.paper.items())


@dataclass
class ExperimentRecord:
    experiment: str  # "table1", "table2", ...
    rows: List[RowRecord] = field(default_factory=list)
    notes: str = ""

    @property
    def matches(self) -> int:
        return sum(1 for r in self.rows if r.matches)

    @property
    def total(self) -> int:
        return len(self.rows)

    def add(self, key: str, paper: Dict[str, object], measured: Dict[str, object]) -> None:
        self.rows.append(RowRecord(key, dict(paper), dict(measured)))

    def to_json(self) -> str:
        return json.dumps(
            {
                "experiment": self.experiment,
                "notes": self.notes,
                "rows": [asdict(r) for r in self.rows],
            },
            indent=2,
            sort_keys=True,
        )

    @staticmethod
    def from_json(text: str) -> "ExperimentRecord":
        data = json.loads(text)
        rec = ExperimentRecord(data["experiment"], notes=data.get("notes", ""))
        for r in data["rows"]:
            rec.add(r["key"], r["paper"], r["measured"])
        return rec

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json())

    @staticmethod
    def load(path: str) -> "ExperimentRecord":
        with open(path) as f:
            return ExperimentRecord.from_json(f.read())


def table1_record(driver_runs, paper_table1) -> ExperimentRecord:
    """Build the E1 record from corpus run results."""
    rec = ExperimentRecord("table1")
    for run in driver_runs:
        kloc, fields, races, noraces = paper_table1[run.name]
        rec.add(
            run.name,
            {"races": races, "no_races": noraces},
            {
                "races": run.races,
                "no_races": run.no_races,
                "unresolved": run.unresolved,
                "fields": len(run.outcomes),
            },
        )
    return rec


def table2_record(driver_runs, paper_table2) -> ExperimentRecord:
    """Build the E2 record from the refined-harness re-runs."""
    rec = ExperimentRecord("table2")
    by_name = {r.name: r for r in driver_runs}
    for name, races in paper_table2.items():
        measured = by_name[name].races if name in by_name else 0
        rec.add(name, {"races": races}, {"races": measured})
    return rec
