"""Reporting helpers for the benchmark harnesses."""

from .tables import agreement_note, display_width, render_table

__all__ = ["render_table", "agreement_note", "display_width"]
