"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro check file.kp                 # assertion checking
    python -m repro check file.kp --max-ts 1
    python -m repro rounds file.kp --rounds 3     # K-round sequentialization
    python -m repro lazy file.kp --rounds 3       # lazy pc-guarded K rounds
    python -m repro campaign --swarm file.kp      # N-tile swarm of one program
    python -m repro race file.kp --target g       # race on global g
    python -m repro race file.kp --target S.field # race on a struct field
    python -m repro race file.kp --all-fields S   # the per-field loop
    python -m repro sequentialize file.kp         # print Figure 4 output
    python -m repro interleavings file.kp         # baseline model checker
    python -m repro campaign --jobs 8             # parallel cached corpus sweep
    python -m repro fuzz --count 500 --seed 0     # differential fuzzing
    python -m repro check file.kp --witness       # certify a safe verdict
    python -m repro witness check --doc cert.json # validate a certificate
    python -m repro witness check                 # certify corpora end to end
    python -m repro profile file.kp               # per-phase timing breakdown
    python -m repro profile file.kp --json        # kiss-profile/1 document
    python -m repro serve --port 8731             # the checking service (HTTP)
    python -m repro cache stats                   # result-cache shape
    python -m repro cache prune --older-than 7d   # drop old entries, compact
    python -m repro campaign --journal j.jsonl    # write-ahead job journal
    python -m repro campaign --journal j.jsonl --resume   # crash recovery
    python -m repro journal stats j.jsonl         # journal shape
    python -m repro journal replay j.jsonl        # what a resume would re-run
    python -m repro --version                     # print the package version

The input language is the paper's parallel language with C-like syntax
(see README).  Exit status: 0 = safe, 1 = error found, 2 = resource
bound, 3 = usage/parse error, 130 = campaign gracefully interrupted
(SIGINT/SIGTERM; the partial summary is still written and the cache
holds every completed job).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.concheck import check_concurrent
from repro.core.checker import Kiss
from repro.core.race import RaceTarget
from repro.lang import parse_core
from repro.lang.lexer import LexError
from repro.lang.parser import ParseError
from repro.lang.pretty import pretty_program
from repro.lang.types import KissTypeError
from repro.schemas import STRATEGIES

EXIT_SAFE = 0
EXIT_ERROR = 1
EXIT_BOUND = 2
EXIT_USAGE = 3
EXIT_INTERRUPTED = 130  # 128 + SIGINT, the shell convention


def _load(path: str):
    with open(path) as f:
        return parse_core(f.read())


def _kiss(args) -> Kiss:
    return Kiss(
        max_ts=args.max_ts,
        max_states=args.max_states,
        use_alias_analysis=not getattr(args, "no_alias", False),
        validate_traces=getattr(args, "validate", False),
        backend=getattr(args, "backend", "explicit"),
        inline=getattr(args, "inline", False),
        strategy=getattr(args, "strategy", "kiss"),
        rounds=getattr(args, "rounds", 2),
        por=getattr(args, "por", False),
        witness=getattr(args, "witness", False) or bool(getattr(args, "witness_out", None)),
    )


def _report(result, args=None) -> int:
    print(f"verdict: {result.summary()}")
    if result.is_error and result.concurrent_trace is not None:
        print("concurrent error trace:")
        print(result.concurrent_trace.format())
        if result.trace_validated is not None:
            print(f"trace replayed against concurrent semantics: "
                  f"{'ok' if result.trace_validated else 'FAILED'}")
    stats = result.backend_result.stats
    print(f"[backend: {stats.states} states, {stats.transitions} transitions]")
    if result.witness is not None:
        w = result.witness
        print(f"witness: {w['kind']} (sha256 {w['program_sha256'][:12]}…) — "
              f"validate with `python -m repro witness check --doc CERT.json`")
        out = getattr(args, "witness_out", None) if args is not None else None
        if out:
            from repro.ioutil import atomic_write_json

            atomic_write_json(out, w)
            print(f"wrote {out}")
    elif args is not None and getattr(args, "witness", False) and result.is_safe:
        print("witness: none emitted (canonical re-run not safe within budget)")
    if result.is_error:
        return EXIT_ERROR
    if result.exhausted:
        return EXIT_BOUND
    return EXIT_SAFE


def _parse_target(text: str) -> RaceTarget:
    if "." in text:
        struct, field = text.split(".", 1)
        return RaceTarget.field_of(struct, field)
    return RaceTarget.global_var(text)


def cmd_check(args) -> int:
    """The `check` subcommand: assertion checking (Figure 4)."""
    prog = _load(args.file)
    return _report(_kiss(args).check_assertions(prog), args)


def cmd_rounds(args) -> int:
    """The `rounds` subcommand: assertion checking through the K-round
    sequentialization (see docs/SEQUENTIALIZATION.md).

    ``--rounds 2`` subsumes the KISS coverage for two threads; larger
    budgets cover executions with up to K-1 preemptions per thread.
    The verdict line reports the round budget.
    """
    prog = _load(args.file)
    return _report(_kiss(args).check_assertions(prog), args)


def cmd_lazy(args) -> int:
    """The `lazy` subcommand: assertion checking through the lazy
    pc-guarded K-round sequentialization (see docs/SEQUENTIALIZATION.md).

    Unlike eager ``rounds`` there are no snapshot guesses to get wrong —
    the driver interprets one thread segment at a time over the single
    shared store, so every reported error is a real K-round execution by
    construction.  ``--por`` prunes context-switch candidates at
    statements that touch no shared global.
    """
    prog = _load(args.file)
    return _report(_kiss(args).check_assertions(prog), args)


def cmd_race(args) -> int:
    """The `race` subcommand: race checking (Figure 5), one target or per-field.

    The per-field loop (``--all-fields``) runs through the campaign
    scheduler: ``--jobs`` fans fields out over worker processes and
    ``--timeout`` bounds each field's wall clock, so one diverging field
    degrades to ``resource-bound`` instead of hanging the run.
    """
    prog = _load(args.file)
    kiss = _kiss(args)
    if args.all_fields:
        results = kiss.check_races_on_struct(
            prog, args.all_fields, jobs=args.jobs, timeout=args.timeout
        )
        worst = EXIT_SAFE
        for field, r in results.items():
            print(f"{args.all_fields}.{field}: {r.summary()}")
            if r.is_error:
                worst = EXIT_ERROR
            elif r.exhausted and worst == EXIT_SAFE:
                worst = EXIT_BOUND
        return worst
    if not args.target:
        print("race: provide --target NAME or --all-fields STRUCT", file=sys.stderr)
        return EXIT_USAGE
    return _report(kiss.check_race(prog, _parse_target(args.target)), args)


def _parse_hedge(text: Optional[str]) -> Optional[float]:
    """``"p95"``/``"p99"``/``"0.9"`` → a latency quantile in (0, 1)."""
    if text is None:
        return None
    raw = text[1:] if text.startswith("p") else None
    q = (float(raw) / 100.0) if raw is not None else float(text)
    if not (0.0 < q < 1.0):
        raise ValueError(f"hedge quantile must be in (0, 1): {text!r}")
    return q


def _resume_journal(config) -> None:
    """``--resume``: replay the write-ahead journal and run the jobs a
    crashed run still owed *before* the main campaign.  Settled work
    answers from the result cache; the re-run writes fresh terminal
    records, so a second resume finds nothing left."""
    import dataclasses

    from repro.campaign import CampaignScheduler
    from repro.campaign.journal import replay as journal_replay

    plan = journal_replay(config.journal_path)
    print(plan.summary())
    if not plan.jobs:
        return
    # The recovery pass keeps the journal but not the main run's
    # telemetry stream (Telemetry opens its path with "w").
    sched = CampaignScheduler(dataclasses.replace(config, telemetry_path=None))
    results = sched.run(plan.jobs)
    hits = sum(1 for r in results if r.cache_hit)
    print(f"recovery: re-ran {len(results)} incomplete jobs "
          f"({hits} answered from cache)")


def cmd_campaign(args) -> int:
    """The `campaign` subcommand: the Table 1 job matrix through the
    campaign engine (parallel workers, result cache, telemetry).

    Robustness knobs (docs/ROBUSTNESS.md): `--memory-limit` arms a
    per-worker RLIMIT_AS ceiling, `--deadline` bounds the whole
    campaign (past it, in-flight jobs are cooperatively cancelled),
    SIGINT/SIGTERM drain gracefully (exit 130, partial but
    schema-valid `--summary-json`, cache intact for the re-run), and
    `--inject` runs a deterministic fault plan for chaos testing.

    Durability (docs/ROBUSTNESS.md): `--journal PATH` records every
    job's admitted/started/terminal lifecycle write-ahead; after a
    crash (even kill -9), `--resume` replays the journal and re-runs
    exactly the jobs still owed.  `--hedge p95` duplicates stragglers
    past the per-driver latency quantile (first finisher wins).

    `--swarm FILE.kp` switches to swarm mode (docs/SWARM.md): one
    program expanded into `--tiles` schedule tiles of the lazy
    sequentialization, each an ordinary cached job, aggregated back to
    one verdict with a replay-validated trace on error.  `--first-error`
    cancels sibling tiles the moment any tile errs.
    """
    from repro.campaign import CampaignConfig, DEFAULT_CACHE_DIR, default_jobs, run_corpus_campaign
    from repro.drivers import DRIVER_SPECS, spec_by_name
    from repro.faults import FaultPlan
    from repro.ioutil import atomic_write_json

    if args.swarm:
        return _swarm(args)
    if args.list_drivers:
        for s in DRIVER_SPECS:
            print(f"{s.name}  ({len(s.fields)} fields)")
        return EXIT_SAFE
    try:
        specs = (
            [spec_by_name(n.strip()) for n in args.drivers.split(",")]
            if args.drivers
            else DRIVER_SPECS
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return EXIT_USAGE
    try:
        plan = FaultPlan.parse(args.inject, seed=args.inject_seed) if args.inject else None
        hedge = _parse_hedge(args.hedge)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.resume and not args.journal:
        print("error: --resume needs --journal PATH", file=sys.stderr)
        return EXIT_USAGE
    cache_dir = None if args.no_cache else (args.cache_dir or DEFAULT_CACHE_DIR)
    config = CampaignConfig(
        jobs=args.jobs if args.jobs is not None else default_jobs(),
        timeout=args.timeout,
        retries=args.retries,
        cache_dir=cache_dir,
        telemetry_path=args.telemetry,
        deadline=args.deadline,
        memory_limit=args.memory_limit,
        fault_plan=plan,
        journal_path=args.journal,
        hedge=hedge,
    )
    if args.resume:
        _resume_journal(config)
    _, results, scheduler = run_corpus_campaign(
        specs,
        config,
        refined=args.refined,
        max_states=args.max_states,
        loc_scale=args.loc_scale,
        witness=args.witness or bool(args.witness_dir),
    )
    print(scheduler.summary(results))
    if args.witness_dir:
        import os

        from repro.ioutil import atomic_write_json

        os.makedirs(args.witness_dir, exist_ok=True)
        written = 0
        for r in results:
            if r.witness is None:
                continue
            name = r.job_id.replace("/", "__") + ".witness.json"
            atomic_write_json(os.path.join(args.witness_dir, name), r.witness)
            written += 1
        print(f"wrote {written} certificates to {args.witness_dir}")
    if args.summary_json:
        atomic_write_json(args.summary_json, scheduler.summary_doc(results))
        print(f"wrote {args.summary_json}")
    if scheduler.interrupted is not None:
        print(f"campaign interrupted ({scheduler.interrupted}); "
              f"completed jobs are cached — re-run to resume", file=sys.stderr)
        return EXIT_INTERRUPTED
    if any(r.table_verdict == "race" for r in results):
        return EXIT_ERROR
    if any(r.table_verdict == "unresolved" for r in results):
        return EXIT_BOUND
    return EXIT_SAFE


def _swarm(args) -> int:
    """`campaign --swarm`: the N-tile swarm mode over one program."""
    from repro.campaign import CampaignConfig, DEFAULT_CACHE_DIR, default_jobs, run_swarm_campaign
    from repro.faults import FaultPlan

    try:
        plan = FaultPlan.parse(args.inject, seed=args.inject_seed) if args.inject else None
        hedge = _parse_hedge(args.hedge)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.resume and not args.journal:
        print("error: --resume needs --journal PATH", file=sys.stderr)
        return EXIT_USAGE
    cache_dir = None if args.no_cache else (args.cache_dir or DEFAULT_CACHE_DIR)
    config = CampaignConfig(
        jobs=args.jobs if args.jobs is not None else default_jobs(),
        timeout=args.timeout,
        retries=args.retries,
        cache_dir=cache_dir,
        telemetry_path=args.telemetry,
        deadline=args.deadline,
        memory_limit=args.memory_limit,
        fault_plan=plan,
        journal_path=args.journal,
        hedge=hedge,
    )
    if args.resume:
        _resume_journal(config)
    with open(args.swarm) as f:
        source = f.read()
    report = run_swarm_campaign(
        source,
        tiles=args.tiles,
        rounds=args.swarm_rounds,
        seed=args.swarm_seed,
        por=args.por,
        max_states=args.max_states,
        campaign_config=config,
        first_error=args.first_error,
    )
    print(report.summary())
    if report.interrupted is not None:
        print(f"swarm interrupted ({report.interrupted}); completed tiles are "
              f"cached — re-run to resume", file=sys.stderr)
        return EXIT_INTERRUPTED
    if report.is_error:
        return EXIT_ERROR
    if report.verdict == "resource-bound":
        return EXIT_BOUND
    return EXIT_SAFE


def cmd_fuzz(args) -> int:
    """The `fuzz` subcommand: differential fuzzing of the KISS pipeline
    against the balanced-interleaving oracle (see docs/FUZZING.md).

    Generates ``--count`` random concurrent programs from ``--seed``,
    cross-checks each through the campaign scheduler (``--jobs``
    workers, optional cache and telemetry), and delta-debugs any
    verdict divergence to a minimal witness before reporting it.
    """
    from repro.campaign import CampaignConfig, default_jobs
    from repro.fuzz import GenConfig, run_fuzz_campaign

    gen_config = GenConfig(
        max_workers=args.max_workers,
        max_stmts=args.max_stmts,
        max_depth=args.max_depth,
    )
    campaign_config = CampaignConfig(
        jobs=args.jobs if args.jobs is not None else default_jobs(),
        timeout=args.timeout,
        retries=args.retries,
        cache_dir=args.cache_dir,
        telemetry_path=args.telemetry,
    )
    if args.strategy != "kiss" and args.race:
        print(f"fuzz: --race is not available with --strategy {args.strategy}",
              file=sys.stderr)
        return EXIT_USAGE
    report = run_fuzz_campaign(
        count=args.count,
        seed=args.seed,
        gen_config=gen_config,
        campaign_config=campaign_config,
        max_states=args.max_states,
        race=args.race,
        strategy=args.strategy,
        rounds=args.rounds,
        por=args.por,
        witness=args.witness,
        do_shrink=not args.no_shrink,
    )
    print(report.summary())
    if args.save and report.divergences:
        import os

        os.makedirs(args.save, exist_ok=True)
        for d in report.divergences:
            path = os.path.join(args.save, f"divergence_{d.seed}.kp")
            with open(path, "w") as f:
                f.write(f"// seed {d.seed}: {d.detail}\n" + d.shrunk_source)
            print(f"saved {path}")
    return EXIT_SAFE if report.ok else EXIT_ERROR


def cmd_profile(args) -> int:
    """The `profile` subcommand: one observed checking run with a
    per-phase timing breakdown (see docs/OBSERVABILITY.md).

    Runs the same pipeline as ``check`` (or ``race`` when ``--target``
    is given) under an ambient :mod:`repro.obs` recorder, so every
    phase — parse, lower, transform, backend, trace mapping — lands in
    one per-phase table alongside the checker's counter registry.
    ``--json`` prints the ``kiss-profile/1`` document instead (the
    shape used for ``BENCH_*.json`` artifacts); ``--output`` writes
    that document to a file in either mode.
    """
    import json

    from repro import obs

    recorder = obs.Recorder()
    with obs.observing(recorder):
        prog = _load(args.file)
        kiss = _kiss(args)
        if args.target:
            result = kiss.check_race(prog, _parse_target(args.target))
        else:
            result = kiss.check_assertions(prog)
    metrics = recorder.metrics()
    doc = obs.profile_document(
        file=args.file,
        prop="race" if args.target else "assertion",
        target=args.target,
        verdict=result.verdict,
        config={
            "max_ts": args.max_ts,
            "max_states": args.max_states,
            "backend": args.backend,
            "inline": args.inline,
            "use_alias_analysis": not getattr(args, "no_alias", False),
        },
        metrics=metrics,
    )
    if args.output:
        from repro.ioutil import atomic_write_json

        atomic_write_json(args.output, doc)
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        print(f"verdict: {result.summary()}")
        print(obs.render_metrics(metrics))
        if args.output:
            print(f"wrote {args.output}")
    if result.is_error:
        return EXIT_ERROR
    if result.exhausted:
        return EXIT_BOUND
    return EXIT_SAFE


def cmd_serve(args) -> int:
    """The `serve` subcommand: checking-as-a-service (docs/SERVICE.md).

    Hosts the stdlib HTTP JSON API over the shared campaign engine:
    POST program + property + config to ``/v1/jobs``, stream
    ``kiss-serve/1`` events, dedupe through the content-addressed
    cache.  Prints one ``serve_listening`` JSON line once bound (use
    ``--port 0`` to let the OS pick).  SIGTERM/SIGINT drain gracefully:
    admission stops, admitted work finishes, every stream ends with a
    schema-valid ``done`` event; a second signal degrades the
    not-yet-started backlog, like a batch campaign interrupt.
    """
    from repro import obs
    from repro.campaign import DEFAULT_CACHE_DIR
    from repro.faults import FaultPlan
    from repro.serve import CheckService, ServeConfig, run_server

    try:
        plan = FaultPlan.parse(args.inject, seed=args.inject_seed) if args.inject else None
        hedge = _parse_hedge(args.hedge)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.resume and not args.journal:
        print("error: --resume needs --journal PATH", file=sys.stderr)
        return EXIT_USAGE
    cache_dir = None if args.no_cache else (args.cache_dir or DEFAULT_CACHE_DIR)
    config = ServeConfig(
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        cache_dir=cache_dir,
        memory_limit=args.memory_limit,
        fault_plan=plan,
        telemetry_path=args.telemetry,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        max_queue=args.max_queue,
        journal_path=args.journal,
        resume=args.resume,
        hedge=hedge,
    )
    # An ambient recorder so /stats surfaces the obs counters
    # (serve_submissions, cache hits, jobs_interrupted, ...).
    with obs.observing(obs.Recorder()):
        service = CheckService(config)
        return run_server(service, host=args.host, port=args.port)


def _parse_age(text: str) -> float:
    """``"45"``/``"30m"``/``"12h"``/``"7d"`` → seconds."""
    units = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
    scale = units.get(text[-1:].lower())
    if scale is not None:
        return float(text[:-1]) * scale
    return float(text)


def cmd_cache(args) -> int:
    """The `cache` subcommand: inspect and maintain the result cache.

    ``stats`` prints the store's shape (entries, size, verdict tallies,
    load-time corruption counters); ``prune --older-than AGE`` drops
    entries older than AGE (``30m``/``12h``/``7d`` or plain seconds) and
    compacts the JSONL file atomically — pruning with a huge AGE is a
    pure compaction pass.
    """
    import json as _json

    from repro.campaign import DEFAULT_CACHE_DIR, ResultCache

    cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    if args.cache_command == "stats":
        stats = cache.stats()
        if args.json:
            print(_json.dumps(stats, indent=2))
            return EXIT_SAFE
        print(f"cache: {stats['path']}")
        print(f"entries: {stats['entries']}  ({stats['file_bytes']} bytes on disk)")
        for verdict, n in sorted(stats["verdicts"].items()):
            print(f"  {verdict}: {n}")
        if stats["corrupt_lines"] or stats["stale_lines"]:
            print(f"skipped at load: {stats['corrupt_lines']} corrupt, "
                  f"{stats['stale_lines']} stale lines (prune compacts them away)")
        return EXIT_SAFE
    # prune
    try:
        age_s = _parse_age(args.older_than)
    except (ValueError, IndexError):
        print(f"error: bad --older-than {args.older_than!r} "
              f"(use seconds or 30m/12h/7d)", file=sys.stderr)
        return EXIT_USAGE
    kept, dropped = cache.prune(age_s)
    print(f"pruned {dropped} entries older than {args.older_than}; kept {kept}")
    return EXIT_SAFE


def cmd_journal(args) -> int:
    """The `journal` subcommand: inspect the write-ahead job journal.

    ``stats`` prints the recovery shape a resume would see (admitted /
    done / cancelled / abandoned / incomplete tallies); ``replay`` also
    lists the incomplete jobs — exactly the set ``campaign --resume``
    would re-run.  Neither runs any checking.
    """
    import json as _json
    import os

    from repro.campaign.journal import replay as journal_replay

    if not os.path.exists(args.path):
        print(f"error: no journal at {args.path}", file=sys.stderr)
        return EXIT_USAGE
    plan = journal_replay(args.path)
    if args.json:
        doc = plan.summary_doc()
        doc["path"] = args.path
        if args.journal_command == "replay":
            doc["jobs"] = [
                {"job": j.job_id, "driver": j.driver, "prop": j.prop,
                 "key": plan.keys.get(j.job_id),
                 "tenant": plan.tenants.get(j.job_id)}
                for j in plan.jobs
            ]
        print(_json.dumps(doc, indent=2))
        return EXIT_SAFE
    print(f"journal: {args.path}")
    print(plan.summary())
    if args.journal_command == "replay":
        for j in plan.jobs:
            tenant = plan.tenants.get(j.job_id)
            suffix = f"  [{tenant}]" if tenant else ""
            print(f"  {j.job_id}  ({j.driver}, {j.prop}){suffix}")
    return EXIT_SAFE


def cmd_sequentialize(args) -> int:
    """The `sequentialize` subcommand: print the transformed program."""
    prog = _load(args.file)
    kiss = _kiss(args)
    if args.target:
        out = kiss.sequentialize_for_race(prog, _parse_target(args.target))
    else:
        out = kiss.sequentialize(prog)
    print(pretty_program(out))
    return EXIT_SAFE


def cmd_interleavings(args) -> int:
    """The `interleavings` subcommand: the full-interleaving baseline checker."""
    prog = _load(args.file)
    result = check_concurrent(prog, max_states=args.max_states, context_bound=args.context_bound)
    print(f"verdict: {result.status}")
    if result.is_error:
        print(result.format_trace())
        return EXIT_ERROR
    if result.exhausted:
        return EXIT_BOUND
    print(f"[{result.stats.states} states explored]")
    return EXIT_SAFE


_WITNESS_EXIT = {"certified": EXIT_SAFE, "refuted": EXIT_ERROR, "unsupported": EXIT_BOUND}


def cmd_witness(args) -> int:
    """The `witness check` subcommand: kiss-witness/1 certificates
    (docs/WITNESSES.md), three modes.

    ``--doc CERT.json`` validates one serialized certificate with the
    standalone validator (no checker code runs).  ``FILE.kp`` checks the
    program, emits a certificate for a safe verdict, and validates it
    (``--out`` persists the certificate).  With neither, the *trust
    sweep* runs: every safe verdict across the driver corpus (explicit
    backend) and the pinned fuzz corpus (both backends) must come with a
    certificate the independent validator certifies.

    Exit status: 0 = certified (sweep: all certified), 1 = refuted or an
    error verdict, 2 = unsupported / no witness emitted, 3 = usage.
    """
    import json

    from repro.witness.validate import validate_witness_doc

    if args.doc:
        try:
            with open(args.doc) as f:
                doc = json.load(f)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        report = validate_witness_doc(doc)
        print(json.dumps(report.to_dict(), indent=2) if args.json else report)
        return _WITNESS_EXIT[report.status]

    if args.file:
        prog = _load(args.file)
        kiss = Kiss(max_ts=args.max_ts, max_states=args.max_states,
                    backend=args.backend, strategy=args.strategy,
                    rounds=args.rounds, witness=True)
        r = kiss.check_assertions(prog)
        if not r.is_safe:
            print(f"verdict: {r.summary()} — witnesses certify safe verdicts only")
            return EXIT_ERROR if r.is_error else EXIT_BOUND
        if r.witness is None:
            print("verdict: safe, but no witness could be emitted "
                  "(canonical re-run not safe within budget)")
            return EXIT_BOUND
        if args.out:
            from repro.ioutil import atomic_write_json

            atomic_write_json(args.out, r.witness)
            print(f"wrote {args.out}")
        report = validate_witness_doc(r.witness)
        print(f"witness: {r.witness['kind']} "
              f"(sha256 {r.witness['program_sha256'][:12]}…)")
        print(json.dumps(report.to_dict(), indent=2) if args.json else report)
        return _WITNESS_EXIT[report.status]

    return _witness_sweep(args)


def _witness_sweep(args) -> int:
    """The no-argument ``witness check`` mode: certify every safe
    verdict the corpora produce.  Driver corpus runs through the
    campaign engine with certificate emission on (explicit backend —
    driver programs use pointers, outside the cegar fragment); the
    pinned fuzz corpus is checked under both backends."""
    import json
    import os

    from repro.campaign import CampaignConfig, CampaignScheduler, default_jobs
    from repro.campaign.corpus import corpus_jobs
    from repro.drivers import DRIVER_SPECS, spec_by_name
    from repro.lang import parse
    from repro.witness.validate import validate_witness_doc

    try:
        specs = (
            [spec_by_name(n.strip()) for n in args.drivers.split(",")]
            if args.drivers
            else DRIVER_SPECS
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return EXIT_USAGE

    failures = []
    checked = certified = skipped = 0

    def examine(label, verdict, witness):
        nonlocal checked, certified, skipped
        if verdict != "safe":
            skipped += 1
            return
        checked += 1
        if witness is None:
            failures.append(f"{label}: safe verdict without a certificate")
            return
        report = validate_witness_doc(witness)
        if report.status == "certified":
            certified += 1
        else:
            failures.append(f"{label}: {report}")

    jobs = corpus_jobs(specs, witness=True, max_states=args.max_states)
    config = CampaignConfig(jobs=args.jobs if args.jobs is not None else default_jobs())
    for r in CampaignScheduler(config).run(jobs):
        examine(r.job_id, r.verdict, r.witness)
    driver_line = f"driver corpus: {checked} safe verdicts over {len(jobs)} race checks"

    corpus_dir = args.corpus or os.path.join("tests", "fuzz_corpus")
    manifest_path = os.path.join(corpus_dir, "manifest.json")
    if os.path.exists(manifest_path):
        with open(manifest_path) as f:
            manifest = json.load(f)
        for entry in manifest["programs"]:
            with open(os.path.join(corpus_dir, entry["file"])) as f:
                prog = parse(f.read())
            for backend in ("explicit", "cegar"):
                r = Kiss(max_ts=entry["max_ts"], backend=backend,
                         witness=True).check_assertions(prog)
                examine(f"{entry['file']}[{backend}]", r.verdict, r.witness)
    else:
        print(f"note: no fuzz corpus at {corpus_dir}; sweeping the driver corpus only")

    print(driver_line)
    print(f"witness sweep: {checked} safe verdicts, {certified} certified, "
          f"{skipped} non-safe skipped, {len(failures)} failures")
    for f in failures:
        print(f"FAIL {f}")
    return EXIT_SAFE if not failures else EXIT_ERROR


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for shell-completion tooling)."""
    from repro import package_version

    p = argparse.ArgumentParser(prog="repro", description=__doc__.split("\n")[0])
    p.add_argument("--version", action="version",
                   version=f"%(prog)s {package_version()}")
    sub = p.add_subparsers(dest="command", required=True)

    def common(sp, race=False):
        sp.add_argument("file", help="source file in the parallel language")
        sp.add_argument("--max-ts", type=int, default=0, help="ts bound (default 0)")
        sp.add_argument("--max-states", type=int, default=500_000, help="state budget")
        sp.add_argument("--validate", action="store_true",
                        help="replay error traces against concurrent semantics")
        sp.add_argument("--backend", choices=("explicit", "cegar"), default="explicit",
                        help="sequential backend (cegar = SLAM-lite, scalar fragment)")
        sp.add_argument("--inline", action="store_true",
                        help="inline small leaf functions before instrumenting")
        sp.add_argument("--witness", action="store_true",
                        help="emit a kiss-witness/1 safety certificate on a safe verdict")
        sp.add_argument("--witness-out", metavar="PATH",
                        help="write the certificate to PATH (implies --witness)")
        sp.add_argument("--por", action="store_true",
                        help="shared-access partial-order reduction: drop schedule "
                             "points at statements touching no shared global")
        if race:
            sp.add_argument("--no-alias", action="store_true",
                            help="disable alias-analysis check pruning")

    sp = sub.add_parser("check", help="check assertions (Figure 4)")
    common(sp)
    sp.set_defaults(func=cmd_check)

    sp = sub.add_parser(
        "rounds", help="check assertions through the K-round sequentialization"
    )
    common(sp)
    sp.add_argument("--rounds", type=int, default=2,
                    help="round budget K (default 2; K=1 is purely sequential)")
    sp.set_defaults(func=cmd_rounds, strategy="rounds")

    sp = sub.add_parser(
        "lazy",
        help="check assertions through the lazy pc-guarded K-round sequentialization",
    )
    common(sp)
    sp.add_argument("--rounds", type=int, default=2,
                    help="round budget K (default 2; K=1 is purely sequential)")
    sp.set_defaults(func=cmd_lazy, strategy="lazy")

    sp = sub.add_parser("race", help="check for races (Figure 5)")
    common(sp, race=True)
    sp.add_argument("--target", help="global name or Struct.field")
    sp.add_argument("--all-fields", metavar="STRUCT", help="check every field of STRUCT")
    sp.add_argument("--jobs", type=int, default=1,
                    help="worker processes for --all-fields (default 1)")
    sp.add_argument("--timeout", type=float, default=None,
                    help="per-field wall-clock bound in seconds for --all-fields")
    sp.set_defaults(func=cmd_race)

    sp = sub.add_parser(
        "campaign",
        help="parallel, cached, fault-tolerant checking runs over the driver corpus",
    )
    sp.add_argument("--jobs", type=int, default=None,
                    help="worker processes (default: CPU count)")
    sp.add_argument("--timeout", type=float, default=None,
                    help="per-job wall-clock bound in seconds")
    sp.add_argument("--retries", type=int, default=1,
                    help="extra attempts for timed-out/crashed jobs (default 1)")
    sp.add_argument("--drivers", metavar="NAMES",
                    help="comma-separated Table 1 driver names (default: all 18)")
    sp.add_argument("--list-drivers", action="store_true", help="list corpus drivers and exit")
    sp.add_argument("--refined", action="store_true",
                    help="use the refined harness (the Table 2 configuration)")
    sp.add_argument("--max-states", type=int, default=300_000, help="state budget per job")
    sp.add_argument("--loc-scale", type=int, default=0,
                    help="filler-code scale for generated drivers (default 0 = none)")
    sp.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="result-cache directory (default .kiss-cache)")
    sp.add_argument("--no-cache", action="store_true", help="disable the result cache")
    sp.add_argument("--telemetry", metavar="PATH",
                    help="write the JSONL telemetry event stream to PATH")
    sp.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                    help="campaign-wide wall-clock budget: past it, stop submitting, "
                         "drain in-flight jobs, mark the remainder resource-bound")
    sp.add_argument("--memory-limit", type=int, default=None, metavar="MB",
                    help="per-worker RLIMIT_AS soft ceiling; an over-budget job "
                         "degrades to resource-bound instead of killing the pool")
    sp.add_argument("--summary-json", metavar="PATH",
                    help="write the kiss-campaign/1 summary document to PATH "
                         "(atomic write; schema-valid even when interrupted)")
    sp.add_argument("--witness", action="store_true",
                    help="emit kiss-witness/1 certificates for safe verdicts "
                         "(attached to results; cache keys are unchanged)")
    sp.add_argument("--witness-dir", metavar="DIR",
                    help="persist each certificate to DIR as an atomic JSON "
                         "artifact (implies --witness)")
    sp.add_argument("--inject", action="append", metavar="SPEC", default=None,
                    help="fault-injection rule point:kind[:key=value,...] for chaos "
                         "runs, e.g. mid_check:crash:hits=1+3 (repeatable; see "
                         "docs/ROBUSTNESS.md)")
    sp.add_argument("--inject-seed", type=int, default=0,
                    help="seed for probabilistic (p=) fault rules (default 0)")
    sp.add_argument("--journal", metavar="PATH", default=None,
                    help="write-ahead job journal (kiss-journal/1 JSONL): every "
                         "job's admitted/started/terminal lifecycle, crash-safe")
    sp.add_argument("--resume", action="store_true",
                    help="replay --journal first and re-run the jobs a crashed "
                         "run left incomplete (settled work answers from cache)")
    sp.add_argument("--hedge", metavar="Q", default=None,
                    help="hedged retries: duplicate a job stuck past this "
                         "per-driver latency quantile (p95, p99, or 0.9); "
                         "first finisher wins, the twin is cancelled")
    sp.add_argument("--swarm", metavar="FILE.kp", default=None,
                    help="swarm mode: tile FILE's lazy schedule space into "
                         "--tiles jobs instead of sweeping the driver corpus")
    sp.add_argument("--tiles", type=int, default=8,
                    help="tile count for --swarm (default 8)")
    sp.add_argument("--swarm-rounds", type=int, default=3,
                    help="lazy round budget K for --swarm (default 3)")
    sp.add_argument("--swarm-seed", type=int, default=0,
                    help="tiling shuffle seed for --swarm (default 0)")
    sp.add_argument("--por", action="store_true",
                    help="shared-access partial-order reduction inside each tile")
    sp.add_argument("--first-error", action="store_true",
                    help="for --swarm: cancel sibling tiles the moment any tile "
                         "finds an error (the aggregate verdict is unchanged)")
    sp.set_defaults(func=cmd_campaign)

    sp = sub.add_parser(
        "fuzz",
        help="differential fuzzing: random programs, both checkers, divergence = bug",
    )
    sp.add_argument("--count", type=int, default=100, help="programs to generate (default 100)")
    sp.add_argument("--seed", type=int, default=0, help="first generator seed (default 0)")
    sp.add_argument("--jobs", type=int, default=None,
                    help="worker processes (default: CPU count)")
    sp.add_argument("--timeout", type=float, default=None,
                    help="per-program wall-clock bound in seconds")
    sp.add_argument("--retries", type=int, default=1,
                    help="extra attempts for timed-out/crashed jobs (default 1)")
    sp.add_argument("--max-states", type=int, default=50_000,
                    help="state budget per checker side (default 50000)")
    sp.add_argument("--max-workers", type=int, default=2,
                    help="max forked threads per program (default 2)")
    sp.add_argument("--max-stmts", type=int, default=4,
                    help="max statements per generated region (default 4)")
    sp.add_argument("--max-depth", type=int, default=2,
                    help="max if/while nesting depth (default 2)")
    sp.add_argument("--race", action="store_true",
                    help="also run the race pipeline on the distinguished location "
                         "with trace replay (false-race detection; KISS strategy only)")
    sp.add_argument("--strategy", choices=STRATEGIES, default="kiss",
                    help="sequentialization under test: the Figure 4 pipeline "
                         "against balanced interleavings, or a K-round transform "
                         "(eager 'rounds' or pc-guarded 'lazy') against all "
                         "interleavings (default kiss)")
    sp.add_argument("--rounds", type=int, default=2,
                    help="round budget K for --strategy rounds/lazy (default 2)")
    sp.add_argument("--por", action="store_true",
                    help="shared-access partial-order reduction on the "
                         "sequential side (any strategy)")
    sp.add_argument("--witness", action="store_true",
                    help="third cross-check: every safe agreement must emit a "
                         "certificate the independent validator certifies "
                         "(a refuted one is an 'uncertified' divergence)")
    sp.add_argument("--no-shrink", action="store_true",
                    help="report divergences without delta-debugging them")
    sp.add_argument("--save", metavar="DIR",
                    help="write minimized diverging programs to DIR as .kp files")
    sp.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="campaign result-cache directory (default: no cache)")
    sp.add_argument("--telemetry", metavar="PATH",
                    help="write the JSONL telemetry event stream to PATH")
    sp.set_defaults(func=cmd_fuzz)

    sp = sub.add_parser(
        "profile", help="one observed checking run with a per-phase timing breakdown"
    )
    common(sp, race=True)
    sp.add_argument("--target", help="race target (global or Struct.field); default: assertions")
    sp.add_argument("--json", action="store_true",
                    help="print the kiss-profile/1 JSON document instead of tables")
    sp.add_argument("--output", metavar="PATH",
                    help="also write the kiss-profile/1 JSON document to PATH")
    sp.set_defaults(func=cmd_profile)

    sp = sub.add_parser(
        "serve", help="checking-as-a-service: HTTP JSON API over the campaign engine"
    )
    sp.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    sp.add_argument("--port", type=int, default=8731,
                    help="TCP port (default 8731; 0 = OS-assigned, see the ready line)")
    sp.add_argument("--jobs", type=int, default=1,
                    help="worker processes (default 1 = in-process; note --timeout "
                         "needs --jobs >= 2)")
    sp.add_argument("--timeout", type=float, default=None,
                    help="per-job wall-clock bound in seconds (pool mode only)")
    sp.add_argument("--retries", type=int, default=1,
                    help="extra attempts for timed-out/crashed jobs (default 1)")
    sp.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="result-cache directory (default .kiss-cache)")
    sp.add_argument("--no-cache", action="store_true", help="disable the result cache")
    sp.add_argument("--memory-limit", type=int, default=None, metavar="MB",
                    help="per-worker RLIMIT_AS soft ceiling")
    sp.add_argument("--telemetry", metavar="PATH",
                    help="write the JSONL telemetry event stream to PATH")
    sp.add_argument("--quota-rate", type=float, default=20.0,
                    help="sustained submissions/second allowed per tenant (default 20)")
    sp.add_argument("--quota-burst", type=int, default=40,
                    help="per-tenant burst allowance (default 40)")
    sp.add_argument("--max-queue", type=int, default=256,
                    help="admitted-but-unfinished jobs before 429 backpressure (default 256)")
    sp.add_argument("--inject", action="append", metavar="SPEC", default=None,
                    help="fault-injection rule point:kind[:key=value,...] — the chaos "
                         "plan applies to served traffic (docs/ROBUSTNESS.md)")
    sp.add_argument("--inject-seed", type=int, default=0,
                    help="seed for probabilistic (p=) fault rules (default 0)")
    sp.add_argument("--journal", metavar="PATH", default=None,
                    help="write-ahead job journal for served jobs (kiss-journal/1)")
    sp.add_argument("--resume", action="store_true",
                    help="on startup, replay --journal: answer settled work from "
                         "cache, re-enqueue the jobs a crash left incomplete")
    sp.add_argument("--hedge", metavar="Q", default=None,
                    help="hedged retries past this per-driver latency quantile "
                         "(p95, p99, or 0.9)")
    sp.set_defaults(func=cmd_serve)

    sp = sub.add_parser("cache", help="inspect and maintain the result cache")
    cache_sub = sp.add_subparsers(dest="cache_command", required=True)
    csp = cache_sub.add_parser("stats", help="print the store's shape")
    csp.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="result-cache directory (default .kiss-cache)")
    csp.add_argument("--json", action="store_true", help="machine-readable output")
    csp.set_defaults(func=cmd_cache)
    csp = cache_sub.add_parser(
        "prune", help="drop entries older than AGE and compact the store"
    )
    csp.add_argument("--older-than", required=True, metavar="AGE",
                     help="age threshold: seconds, or 30m / 12h / 7d")
    csp.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="result-cache directory (default .kiss-cache)")
    csp.set_defaults(func=cmd_cache)

    sp = sub.add_parser("journal", help="inspect the write-ahead job journal")
    journal_sub = sp.add_subparsers(dest="journal_command", required=True)
    jsp = journal_sub.add_parser("stats", help="print the recovery shape")
    jsp.add_argument("path", help="kiss-journal/1 JSONL file")
    jsp.add_argument("--json", action="store_true", help="machine-readable output")
    jsp.set_defaults(func=cmd_journal)
    jsp = journal_sub.add_parser(
        "replay", help="list the incomplete jobs a --resume would re-run"
    )
    jsp.add_argument("path", help="kiss-journal/1 JSONL file")
    jsp.add_argument("--json", action="store_true", help="machine-readable output")
    jsp.set_defaults(func=cmd_journal)

    sp = sub.add_parser(
        "witness", help="emit and independently validate kiss-witness/1 certificates"
    )
    wsub = sp.add_subparsers(dest="witness_command", required=True)
    wsp = wsub.add_parser(
        "check", help="validate a certificate, certify a program, or sweep the corpora"
    )
    wsp.add_argument("file", nargs="?",
                     help="program to check and certify (omit to sweep the corpora)")
    wsp.add_argument("--doc", metavar="PATH",
                     help="validate an existing kiss-witness/1 JSON document instead")
    wsp.add_argument("--backend", choices=("explicit", "cegar"), default="explicit",
                     help="backend for FILE mode (default explicit)")
    wsp.add_argument("--strategy", choices=STRATEGIES, default="kiss",
                     help="sequentialization for FILE mode (default kiss)")
    wsp.add_argument("--rounds", type=int, default=2,
                     help="round budget K for --strategy rounds/lazy (default 2)")
    wsp.add_argument("--max-ts", type=int, default=0, help="ts bound (default 0)")
    wsp.add_argument("--max-states", type=int, default=500_000, help="state budget")
    wsp.add_argument("--out", metavar="PATH",
                     help="write the emitted certificate to PATH (atomic)")
    wsp.add_argument("--jobs", type=int, default=None,
                     help="worker processes for the corpus sweep (default: CPU count)")
    wsp.add_argument("--drivers", metavar="NAMES",
                     help="comma-separated driver subset for the corpus sweep")
    wsp.add_argument("--corpus", metavar="DIR", default=None,
                     help="pinned fuzz corpus directory (default tests/fuzz_corpus)")
    wsp.add_argument("--json", action="store_true",
                     help="print the validation report as JSON")
    wsp.set_defaults(func=cmd_witness)

    sp = sub.add_parser("sequentialize", help="print the transformed sequential program")
    common(sp, race=True)
    sp.add_argument("--target", help="also apply race instrumentation for this target")
    sp.set_defaults(func=cmd_sequentialize)

    sp = sub.add_parser("interleavings", help="baseline: explore all interleavings")
    sp.add_argument("file")
    sp.add_argument("--max-states", type=int, default=500_000)
    sp.add_argument("--context-bound", type=int, default=None)
    sp.set_defaults(func=cmd_interleavings)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except (LexError, ParseError, KissTypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
