"""Crash-safe file primitives shared by the campaign and obs layers.

Two failure modes motivate this module (see docs/ROBUSTNESS.md):

* **Interleaved appends** — two campaigns sharing one ``.kiss-cache/``
  append result lines concurrently.  A buffered ``write`` larger than
  the stdio buffer is issued as several OS-level writes, so lines from
  the two processes can interleave into garbage.  :func:`locked_append`
  serializes whole-line appends with ``fcntl.flock`` (advisory, so all
  writers must go through it — ours do).
* **Torn artifacts** — a crash (or SIGKILL) mid-write leaves a partial
  JSON document that a later reader chokes on.  :func:`atomic_write_text`
  writes to a temporary file in the same directory, flushes and fsyncs
  it, and ``os.replace``\\ s it over the destination, so readers observe
  either the old document or the new one, never a prefix.

On platforms without ``fcntl`` (Windows) the lock degrades to a plain
append; the atomic-replace path is portable.
"""

from __future__ import annotations

import json
import os
from typing import Any

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None


def locked_append(path: str, data: str) -> None:
    """Append ``data`` to ``path`` under an exclusive ``flock``.

    The lock covers the whole append (including the flush), so two
    processes appending JSONL lines can never interleave partial lines.
    Raises ``OSError`` on write failure — callers decide whether a
    failed append is fatal (the result cache treats it as "not
    persisted", never as a campaign error).
    """
    with open(path, "a") as f:
        if fcntl is not None:
            fcntl.flock(f.fileno(), fcntl.LOCK_EX)
            try:
                f.write(data)
                f.flush()
            finally:
                fcntl.flock(f.fileno(), fcntl.LOCK_UN)
        else:  # pragma: no cover - non-POSIX
            f.write(data)
            f.flush()


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via write-temp + ``os.replace``.

    The temporary lives in the destination directory (``os.replace``
    must not cross filesystems) and is fsynced before the rename, so a
    crash at any point leaves either the previous file or the complete
    new one.
    """
    directory = os.path.dirname(os.path.abspath(path))
    tmp = os.path.join(directory, f".{os.path.basename(path)}.{os.getpid()}.tmp")
    try:
        with open(tmp, "w") as f:
            f.write(text)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # replace failed or write raised
            try:
                os.unlink(tmp)
            except OSError:
                pass


def atomic_write_json(path: str, doc: Any, indent: int = 2) -> None:
    """:func:`atomic_write_text` for a JSON document (trailing newline)."""
    atomic_write_text(path, json.dumps(doc, indent=indent) + "\n")
