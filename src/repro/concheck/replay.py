"""Guided replay: validate mapped KISS traces against concurrent semantics.

The paper's completeness claim is that every error KISS reports is a
real error of the concurrent program, witnessed by the mapped trace.
This module *checks* that, trace by trace: a
:class:`~repro.core.tracemap.ConcurrentTrace` is replayed as a schedule
constraint over the original concurrent program —

* each ``step`` entry obliges the named thread to execute the named
  original statement next (navigation nodes in between are free),
* ``spawn`` entries oblige the thread to execute the original ``async``,
* ``access`` entries (race traces) oblige the thread to *reach and
  execute* the access statement.

Replay succeeds if the schedule is feasible, and for assertion traces if
executing the final step raises the expected assertion violation.
Internal branch points (lowered ``choice`` heads) are resolved by DFS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.cfg.build import build_program_cfg
from repro.cfg.graph import Node, ProgramCfg
from repro.core.tracemap import ConcurrentTrace, PlanStep
from repro.lang.ast import Program
from repro.seqcheck.interp import Interp, Violation
from repro.seqcheck.state import Frame, FuncVal, Store, default_value

from .interleave import ConWorld, World


@dataclass
class ReplayResult:
    ok: bool
    reason: str = ""
    steps_executed: int = 0


class _ReplayFailure(Exception):
    pass


class TraceReplayer:
    """DFS over the concurrent transition system under a schedule plan."""

    MAX_SILENT_STEPS = 300  # navigation steps allowed between plan entries

    def __init__(self, prog: Program, max_nodes: int = 200_000):
        self.pcfg: ProgramCfg = build_program_cfg(prog)
        self.prog = prog
        self.interp = Interp(self.pcfg)
        self.max_nodes = max_nodes
        self._expanded = 0

    # -- public -----------------------------------------------------------------

    def replay(self, trace: ConcurrentTrace, expect: str = "error") -> ReplayResult:
        """``expect`` is ``"error"`` (final step must fail an assertion)
        or ``"feasible"`` (the schedule must merely be executable)."""
        plan = list(trace.steps)
        init = self._initial()
        self._expanded = 0
        try:
            ok = self._dfs(init, plan, 0, 0, expect, set())
        except _ReplayFailure as exc:
            return ReplayResult(False, str(exc))
        if ok:
            return ReplayResult(True, steps_executed=len(plan))
        return ReplayResult(False, "no execution realizes the mapped schedule")

    # -- machinery ------------------------------------------------------------------

    def _initial(self) -> ConWorld:
        store = Store()
        for name, g in self.prog.globals.items():
            store.globals[name] = (
                self.interp.eval_const_expr(g.init) if g.init is not None else default_value(g.type)
            )
        entry = self.prog.function(self.pcfg.entry)
        locals_: Dict[str, object] = {n: default_value(t) for n, t in entry.locals.items()}
        frame = Frame(entry.name, self.pcfg.cfg(entry.name).entry, locals_, store.fresh_frame_id())
        return ConWorld(World(store, [[frame]]), [0], 1)

    @staticmethod
    def _observable(node: Node) -> bool:
        if node.kind in ("call", "return"):
            return False  # the mapper folds calls/returns into contexts
        if node.kind == "skip":
            # user `skip;` statements are mapped steps; choice/iter heads
            # and other synthesized skips are free navigation
            return node.origin.tag == "user" and node.stmt is not None
        return node.origin.sid != 0

    def _dfs(
        self,
        cw: ConWorld,
        plan: List[PlanStep],
        i: int,
        silent: int,
        expect: str,
        visited: Set,
    ) -> bool:
        self._expanded += 1
        if self._expanded > self.max_nodes:
            raise _ReplayFailure("replay search budget exceeded")
        if i == len(plan):
            return True  # full schedule realized (errors return earlier)
        if silent > self.MAX_SILENT_STEPS:
            return False
        key = (cw.freeze(), i)
        if key in visited:
            return False
        visited.add(key)

        step = plan[i]
        if step.tid not in cw.tids:
            return False
        idx = cw.tids.index(step.tid)
        frame = cw.world.stacks[idx][-1]
        node = self.pcfg.cfg(frame.func).node(frame.node)
        last = i == len(plan) - 1

        if self._observable(node):
            if not self._matches(node, step):
                return False
            try:
                succs = self._execute(cw, idx, node)
            except Violation as v:
                if last and expect == "error" and v.kind == "assert":
                    return True
                return False
            if last and expect == "error":
                return False  # expected the final step to fail
            for succ in succs:
                if self._dfs(succ, plan, i + 1, 0, expect, visited):
                    return True
            if not succs and last and expect == "feasible":
                # the final access blocked (e.g. a trailing assume) — the
                # statement was still reached; treat reaching it as enough
                return False
            return False

        # navigation / call / return: free moves
        try:
            succs = self._execute(cw, idx, node)
        except Violation:
            return False
        for succ in succs:
            if self._dfs(succ, plan, i, silent + 1, expect, visited):
                return True
        return False

    def _matches(self, node: Node, step: PlanStep) -> bool:
        if step.kind == "spawn":
            return node.kind == "async" and node.stmt.sid == step.sid
        if node.kind == "async":
            return False
        return node.origin.sid == step.sid

    # one scheduled step of thread idx; returns successor configurations
    def _execute(self, cw: ConWorld, idx: int, node: Node) -> List[ConWorld]:
        kind = node.kind
        if kind == "return":
            return self._exec_return(cw, idx, node)
        if kind == "call":
            c = cw.clone()
            frame = c.world.stacks[idx][-1]
            stmt = node.stmt
            callee = self._resolve(stmt.func.name, frame, c.world.store, node)
            args = [self.interp.eval_atom(a, frame, c.world.store) for a in stmt.args]
            c.world.stacks[idx].append(self._frame_for(callee, args, c.world.store))
            return [c]
        if kind == "async":
            c = cw.clone()
            frame = c.world.stacks[idx][-1]
            stmt = node.stmt
            callee = self._resolve(stmt.func.name, frame, c.world.store, node)
            args = [self.interp.eval_atom(a, frame, c.world.store) for a in stmt.args]
            c.world.stacks.append([self._frame_for(callee, args, c.world.store)])
            c.tids.append(c.next_tid)
            c.next_tid += 1
            return self._advance(c, idx, node)
        if kind == "atomic":
            out: List[ConWorld] = []
            for w in self.interp.run_atomic(cw.world, idx, node):
                out.extend(self._advance(ConWorld(w, list(cw.tids), cw.next_tid), idx, node))
            return out
        c = cw.clone()
        frame = c.world.stacks[idx][-1]
        ok = self.interp.exec_simple(node, frame, c.world.store, c.world.frames())
        if not ok:
            return []
        return self._advance(c, idx, node)

    def _advance(self, c: ConWorld, idx: int, node: Node) -> List[ConWorld]:
        out = []
        for j, succ in enumerate(node.succs):
            c2 = c.clone() if j + 1 < len(node.succs) else c
            c2.world.stacks[idx][-1].node = succ
            out.append(c2)
        return out

    def _frame_for(self, func_name: str, args: List, store: Store) -> Frame:
        decl = self.prog.function(func_name)
        locals_: Dict[str, object] = {p.name: a for p, a in zip(decl.params, args)}
        for name, typ in decl.locals.items():
            locals_[name] = default_value(typ)
        return Frame(func_name, self.pcfg.cfg(func_name).entry, locals_, store.fresh_frame_id())

    def _resolve(self, name: str, frame: Frame, store: Store, node: Node) -> str:
        if name in frame.locals or name in store.globals:
            v = frame.locals.get(name, store.globals.get(name))
            if not isinstance(v, FuncVal) or v.name not in self.prog.functions:
                raise Violation("bad-call", f"indirect call through {v!r}", node)
            return v.name
        if name in self.prog.functions:
            return name
        raise Violation("undef-call", f"unknown function {name}", node)

    def _exec_return(self, cw: ConWorld, idx: int, node: Node) -> List[ConWorld]:
        c = cw.clone()
        stack = c.world.stacks[idx]
        frame = stack[-1]
        decl = self.prog.function(frame.func)
        stmt = node.stmt
        if stmt.value is not None:
            value = self.interp.eval_atom(stmt.value, frame, c.world.store)
        elif decl.ret is not None:
            value = default_value(decl.ret)
        else:
            value = None
        stack.pop()
        if not stack:
            del c.world.stacks[idx]
            del c.tids[idx]
            return [c]
        caller = stack[-1]
        call_node = self.pcfg.cfg(caller.func).node(caller.node)
        if call_node.kind != "call":
            raise Violation("internal", "return into non-call", node)
        if call_node.stmt.lhs is not None and value is not None:
            self.interp._write_var(call_node.stmt.lhs.name, value, caller, c.world.store)
        return self._advance(c, idx, call_node)


def replay_trace(prog: Program, trace: ConcurrentTrace, expect: str = "error") -> ReplayResult:
    """Validate a mapped trace against the original concurrent program."""
    return TraceReplayer(prog).replay(trace, expect=expect)
