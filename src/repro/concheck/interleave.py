"""Explicit-state model checker for *concurrent* core programs.

This is the "traditional model checker" of the paper's introduction: it
explores all thread interleavings and therefore pays the exponential cost
that KISS avoids.  It serves three roles in this reproduction:

1. the baseline for the scalability benchmarks (E6 in DESIGN.md),
2. the semantic ground truth used to validate mapped KISS error traces
   ("never reports false errors"),
3. the reference for the Theorem 1 coverage experiments, via the optional
   context-switch bound and the per-trace thread-id strings.

Scheduling granularity is one CFG node per step, except ``atomic``
regions, which execute indivisibly.  A thread whose next step is an
unsatisfied ``assume`` (or an atomic region all of whose paths begin with
one) is *blocked*; it becomes enabled again when another thread makes the
condition true.  A state where live threads exist but none is enabled is
a quiescent leaf (legal: the paper's ``assume`` blocks forever).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cfg.build import build_program_cfg
from repro.cfg.graph import Node, ProgramCfg
from repro.lang.ast import Program
from repro.seqcheck.interp import Interp, ResourceLimit, Violation, World
from repro.seqcheck.state import Frame, FuncVal, Store, default_value
from repro.seqcheck.trace import CheckResult, CheckStats, CheckStatus, TraceStep


@dataclass
class ConWorld:
    """A concurrent configuration: a :class:`World` plus thread identities."""

    world: World
    tids: List[int]
    next_tid: int

    def clone(self) -> "ConWorld":
        return ConWorld(self.world.clone(), list(self.tids), self.next_tid)

    def freeze(self) -> Tuple:
        return (self.world.freeze(), tuple(self.tids))

    @property
    def thread_count(self) -> int:
        return len(self.tids)


@dataclass(frozen=True)
class BalanceState:
    """The stack-discipline automaton of §4.1 (see
    :func:`repro.concheck.executions.balanced_prefix_feasible`): a stack of
    active thread ids plus the set of ids whose blocks have closed.
    A step by ``tid`` is allowed iff the extended string remains a prefix
    of some balanced string."""

    stack: Tuple[int, ...] = ()
    closed: frozenset = frozenset()

    def step(self, tid: int) -> Optional["BalanceState"]:
        if tid in self.closed:
            return None
        stack = self.stack
        if stack and stack[-1] == tid:
            return self
        if tid in stack:
            i = len(stack) - 1
            newly_closed = []
            while stack[i] != tid:
                newly_closed.append(stack[i])
                i -= 1
            return BalanceState(stack[: i + 1], self.closed | frozenset(newly_closed))
        return BalanceState(stack + (tid,), self.closed)


class ConcurrentChecker:
    """BFS over all interleavings of a concurrent core program."""

    def __init__(
        self,
        pcfg: ProgramCfg,
        max_states: int = 500_000,
        context_bound: Optional[int] = None,
        balanced_only: bool = False,
        compress_invisible: bool = False,
        detect_deadlocks: bool = False,
    ):
        self.pcfg = pcfg
        self.prog: Program = pcfg.program
        self.interp = Interp(pcfg)
        self.max_states = max_states
        self.context_bound = context_bound
        self.balanced_only = balanced_only
        self.compress_invisible = compress_invisible
        self.detect_deadlocks = detect_deadlocks
        self._invisible_cache: Dict[Tuple[str, int], bool] = {}

    # -- invisible-transition compression (partial-order-style reduction) ------

    MAX_COMPRESS_CHAIN = 32

    def _is_invisible(self, func: str, node: Node) -> bool:
        """A transition no other thread can observe or be affected by:
        an assignment whose reads and writes touch only locals.  Such
        transitions commute with every other thread's transitions, so
        chaining them onto the preceding step of the same thread is a
        sound reduction for safety checking (the paper's cited
        partial-order methods [21, 31], in their simplest form)."""
        key = (func, node.id)
        cached = self._invisible_cache.get(key)
        if cached is not None:
            return cached
        result = False
        if node.kind == "assign" and len(node.succs) == 1:
            stmt = node.stmt
            decl = self.prog.function(func)
            local_names = set(decl.locals) | {p.name for p in decl.params}

            def local_var(e) -> bool:
                from repro.lang.ast import Var as _Var

                return isinstance(e, _Var) and e.name in local_names

            lhs, rhs = stmt.lhs, stmt.rhs
            from repro.lang.ast import Binary as _Bin, Unary as _Un, Var as _Var
            from repro.lang.ast import is_const as _is_const

            def pure_atom(e) -> bool:
                return _is_const(e) or local_var(e)

            if isinstance(lhs, _Var) and local_var(lhs):
                if pure_atom(rhs):
                    result = True
                elif isinstance(rhs, _Un) and rhs.op in ("-", "!") and pure_atom(rhs.operand):
                    result = True
                elif isinstance(rhs, _Bin) and rhs.op not in ("/", "%") and pure_atom(rhs.left) and pure_atom(rhs.right):
                    result = True
        self._invisible_cache[key] = result
        return result

    # -- public API ---------------------------------------------------------------

    def check(self) -> CheckResult:
        stats = CheckStats()
        init = self._initial()
        bal0 = BalanceState() if self.balanced_only else None
        init_key = self._key(init, last_tid=None, switches=0, bal=bal0)
        parents: Dict[Tuple, Optional[Tuple[Tuple, TraceStep]]] = {init_key: None}
        queue = deque([(init, init_key, None, 0, 0, bal0)])
        stats.states = 1
        while queue:
            cw, key, last_tid, switches, depth, bal = queue.popleft()
            stats.max_depth = max(stats.max_depth, depth)
            try:
                successors = self._successors(cw)
            except ResourceLimit as r:
                return CheckResult(CheckStatus.EXHAUSTED, message=str(r), stats=stats)
            if self.detect_deadlocks and not successors and cw.tids:
                # live threads, none enabled: every thread is blocked on an
                # `assume` (or an atomic region's leading assume) forever.
                # Legal under the paper's semantics, but worth reporting as
                # a deadlock when asked (SPIN-style invalid end state).
                trace = self._build_trace(parents, key)
                blocked = ", ".join(
                    f"t{tid}@{cw.world.stacks[i][-1].func}" for i, tid in enumerate(cw.tids)
                )
                return CheckResult(
                    CheckStatus.ERROR,
                    violation_kind="deadlock",
                    message=f"all live threads blocked: {blocked}",
                    trace=trace,
                    stats=stats,
                )
            for succ, step, err in successors:
                stats.transitions += 1
                new_bal = bal
                if bal is not None:
                    new_bal = bal.step(step.tid)
                    if new_bal is None:
                        continue  # not schedulable by the stack discipline
                new_switches = switches
                if last_tid is not None and step.tid != last_tid:
                    new_switches += 1
                if self.context_bound is not None and new_switches > self.context_bound:
                    continue
                if err is not None:
                    trace = self._build_trace(parents, key) + [step]
                    return CheckResult(
                        CheckStatus.ERROR,
                        violation_kind=err.kind,
                        message=err.message,
                        trace=trace,
                        stats=stats,
                    )
                succ_key = self._key(succ, step.tid, new_switches, new_bal)
                if succ_key in parents:
                    continue
                parents[succ_key] = (key, step)
                stats.states += 1
                if stats.states > self.max_states:
                    return CheckResult(
                        CheckStatus.EXHAUSTED,
                        message=f"state budget of {self.max_states} exceeded",
                        stats=stats,
                    )
                queue.append((succ, succ_key, step.tid, new_switches, depth + 1, new_bal))
        return CheckResult(CheckStatus.SAFE, stats=stats)

    def _key(
        self,
        cw: ConWorld,
        last_tid: Optional[int],
        switches: int,
        bal: Optional[BalanceState] = None,
    ) -> Tuple:
        base = (self.interp.freezer.freeze(cw.world.store, cw.world.stacks), tuple(cw.tids))
        if self.context_bound is not None:
            base = (base, last_tid, switches)
        if bal is not None:
            base = (base, bal.stack, bal.closed)
        return base

    # -- construction ----------------------------------------------------------------

    def _initial(self) -> ConWorld:
        store = Store()
        for name, g in self.prog.globals.items():
            if g.init is not None:
                store.globals[name] = self.interp.eval_const_expr(g.init)
            else:
                store.globals[name] = default_value(g.type)
        entry = self.prog.function(self.pcfg.entry)
        if entry.params:
            raise Violation("entry", f"entry function '{entry.name}' must take no parameters")
        frame = self._fresh_frame(entry.name, [], store)
        return ConWorld(World(store, [[frame]]), [0], 1)

    def _fresh_frame(self, func_name: str, args: List, store: Store) -> Frame:
        decl = self.prog.function(func_name)
        if len(args) != len(decl.params):
            raise Violation(
                "arity", f"call of {func_name} with {len(args)} args (expected {len(decl.params)})"
            )
        locals_: Dict[str, object] = {p.name: a for p, a in zip(decl.params, args)}
        for name, typ in decl.locals.items():
            locals_[name] = default_value(typ)
        return Frame(func_name, self.pcfg.cfg(func_name).entry, locals_, store.fresh_frame_id())

    # -- transition relation ------------------------------------------------------------

    def _successors(self, cw: ConWorld) -> List[Tuple[ConWorld, TraceStep, Optional[Violation]]]:
        """All one-step successors across all enabled threads.

        Violations are returned (not raised) so that one failing thread does
        not mask other interleavings in the BFS frontier ordering; the
        caller reports the first error encountered in BFS order.
        """
        out: List[Tuple[ConWorld, TraceStep, Optional[Violation]]] = []
        for idx in range(len(cw.tids)):
            try:
                out.extend(self._thread_steps(cw, idx))
            except Violation as v:
                frame = cw.world.stacks[idx][-1]
                node = v.node or self.pcfg.cfg(frame.func).node(frame.node)
                step = TraceStep(frame.func, node.id, node.origin, tid=cw.tids[idx])
                out.append((cw, step, v))
        return out

    def _thread_steps(self, cw: ConWorld, idx: int) -> List[Tuple[ConWorld, TraceStep, None]]:
        stack = cw.world.stacks[idx]
        frame = stack[-1]
        cfg = self.pcfg.cfg(frame.func)
        node = cfg.node(frame.node)
        tid = cw.tids[idx]
        step = TraceStep(frame.func, node.id, node.origin, tid=tid)
        kind = node.kind

        if kind == "return":
            return self._exec_return(cw, idx, node, step)
        if kind == "call":
            c = cw.clone()
            frame2 = c.world.stacks[idx][-1]
            stmt = node.stmt
            callee = self._resolve_callee(stmt.func.name, frame2, c.world.store, node)
            args = [self.interp.eval_atom(a, frame2, c.world.store) for a in stmt.args]
            c.world.stacks[idx].append(self._fresh_frame(callee, args, c.world.store))
            return [(c, step, None)]
        if kind == "async":
            c = cw.clone()
            frame2 = c.world.stacks[idx][-1]
            stmt = node.stmt
            callee = self._resolve_callee(stmt.func.name, frame2, c.world.store, node)
            args = [self.interp.eval_atom(a, frame2, c.world.store) for a in stmt.args]
            new_frame = self._fresh_frame(callee, args, c.world.store)
            c.world.stacks.append([new_frame])
            c.tids.append(c.next_tid)
            c.next_tid += 1
            return self._advance(c, idx, node, step)
        if kind == "atomic":
            out: List[Tuple[ConWorld, TraceStep, None]] = []
            results = self.interp.run_atomic(cw.world, idx, node)
            for w in results:
                c = ConWorld(w, list(cw.tids), cw.next_tid)
                out.extend(self._advance(c, idx, node, step))
            return out  # empty => blocked
        # simple nodes
        c = cw.clone()
        frame2 = c.world.stacks[idx][-1]
        ok = self.interp.exec_simple(node, frame2, c.world.store, c.world.frames())
        if not ok:
            return []  # blocked on assume; will be retried when rescheduled
        return self._advance(c, idx, node, step)

    def _advance(
        self, c: ConWorld, idx: int, node: Node, step: TraceStep
    ) -> List[Tuple[ConWorld, TraceStep, None]]:
        out = []
        for i, succ_id in enumerate(node.succs):
            c2 = c.clone() if i + 1 < len(node.succs) else c
            c2.world.stacks[idx][-1].node = succ_id
            if self.compress_invisible:
                self._compress(c2, idx)
            out.append((c2, step, None))
        return out

    def _compress(self, c: ConWorld, idx: int) -> None:
        """Chain invisible local transitions onto the step just taken."""
        for _ in range(self.MAX_COMPRESS_CHAIN):
            frame = c.world.stacks[idx][-1]
            node = self.pcfg.cfg(frame.func).node(frame.node)
            if not self._is_invisible(frame.func, node):
                return
            self.interp.exec_simple(node, frame, c.world.store, c.world.frames())
            frame.node = node.succs[0]

    def _resolve_callee(self, name: str, frame: Frame, store: Store, node: Node) -> str:
        if name in frame.locals or name in store.globals:
            v = frame.locals.get(name, store.globals.get(name))
            if not isinstance(v, FuncVal):
                raise Violation("bad-call", f"call through non-function value {v!r}", node)
            if v.name not in self.prog.functions:
                raise Violation("undef-call", f"call of undefined function value {v}", node)
            return v.name
        if name in self.prog.functions:
            return name
        raise Violation("undef-call", f"call of unknown function '{name}'", node)

    def _exec_return(
        self, cw: ConWorld, idx: int, node: Node, step: TraceStep
    ) -> List[Tuple[ConWorld, TraceStep, None]]:
        c = cw.clone()
        stack = c.world.stacks[idx]
        frame = stack[-1]
        stmt = node.stmt
        decl = self.prog.function(frame.func)
        if stmt.value is not None:
            value = self.interp.eval_atom(stmt.value, frame, c.world.store)
        elif decl.ret is not None:
            value = default_value(decl.ret)
        else:
            value = None
        stack.pop()
        if not stack:
            # thread finished
            del c.world.stacks[idx]
            del c.tids[idx]
            return [(c, step, None)]
        caller = stack[-1]
        call_node = self.pcfg.cfg(caller.func).node(caller.node)
        if call_node.kind != "call":
            raise Violation("internal", "return into a non-call continuation", node)
        if call_node.stmt.lhs is not None:
            if value is None:
                raise Violation("void-result", f"void result of {frame.func} used as a value", node)
            self.interp._write_var(call_node.stmt.lhs.name, value, caller, c.world.store)
        return self._advance(c, idx, call_node, step)

    @staticmethod
    def _build_trace(parents: Dict, key: Tuple) -> List[TraceStep]:
        steps: List[TraceStep] = []
        cur = key
        while parents.get(cur) is not None:
            prev, step = parents[cur]
            steps.append(step)
            cur = prev
        steps.reverse()
        return steps


def check_concurrent(
    prog: Program,
    max_states: int = 500_000,
    context_bound: Optional[int] = None,
    balanced_only: bool = False,
    compress_invisible: bool = False,
    detect_deadlocks: bool = False,
) -> CheckResult:
    """Model-check a concurrent core program, exploring all interleavings
    (or only the balanced ones — the §4.1 characterization of what KISS
    simulates — when ``balanced_only`` is set).  ``compress_invisible``
    enables the partial-order-style reduction; ``detect_deadlocks``
    reports all-threads-blocked states as errors."""
    pcfg = build_program_cfg(prog)
    return ConcurrentChecker(
        pcfg,
        max_states=max_states,
        context_bound=context_bound,
        balanced_only=balanced_only,
        compress_invisible=compress_invisible,
        detect_deadlocks=detect_deadlocks,
    ).check()
