"""Concurrent explicit-state model checking (the paper's baseline) and
execution-string analysis (Section 4.1)."""

from .executions import balanced_prefix_feasible, context_switches, is_balanced, thread_string
from .interleave import ConcurrentChecker, check_concurrent

__all__ = [
    "ConcurrentChecker",
    "check_concurrent",
    "is_balanced",
    "balanced_prefix_feasible",
    "context_switches",
    "thread_string",
]
