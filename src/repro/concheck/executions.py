"""Execution-string analysis (Section 4.1 of the paper).

An execution of a concurrent program induces a string over thread
identifiers (one symbol per transition).  The paper defines the *balanced*
strings: for a finite set of thread ids ``X`` the language ``L_X``
contains the executions schedulable by KISS's stack-discipline scheduler —
the root thread ``i`` runs, and at suspension points complete balanced
executions of disjoint groups of other threads run contiguously, after
which ``i`` may resume.  Theorem 1: with unbounded ``ts``, the KISS
sequential program goes wrong iff some balanced execution of the
concurrent program goes wrong.

This module implements the balanced-string recognizer, context-switch
counting, and helpers used by the Theorem 1 tests and the coverage
benchmarks.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.seqcheck.trace import TraceStep


def thread_string(trace: Sequence[TraceStep]) -> Tuple[int, ...]:
    """The string of thread ids induced by an execution trace."""
    return tuple(step.tid for step in trace)


def context_switches(s: Sequence[int]) -> int:
    """Number of adjacent positions executed by different threads."""
    return sum(1 for a, b in zip(s, s[1:]) if a != b)


def _segments_without(s: Sequence[int], root: int) -> List[List[int]]:
    """Maximal contiguous runs of ``s`` that do not mention ``root``."""
    segments: List[List[int]] = []
    current: List[int] = []
    for sym in s:
        if sym == root:
            if current:
                segments.append(current)
                current = []
        else:
            current.append(sym)
    if current:
        segments.append(current)
    return segments


def _split_first_block(s: Sequence[int]) -> int:
    """Length of the shortest prefix of ``s`` whose alphabet is disjoint
    from the rest (the forced boundary of the first balanced block)."""
    end = 0
    last = {}
    for i, sym in enumerate(s):
        last[sym] = i
    end = last[s[0]]
    i = 0
    while i <= end:
        end = max(end, last[s[i]])
        i += 1
    return end + 1


def _is_balanced_concat(s: Sequence[int]) -> bool:
    """True if ``s`` is a concatenation of balanced strings over pairwise
    disjoint thread-id alphabets."""
    s = list(s)
    while s:
        n = _split_first_block(s)
        if not is_balanced(s[:n]):
            return False
        s = s[n:]
    return True


def is_balanced(s: Sequence[int]) -> bool:
    """Membership in ``L_X`` where ``X`` is the alphabet of ``s``.

    The empty string is balanced.  Otherwise the first symbol is the root
    thread; every maximal root-free segment must itself be a concatenation
    of balanced strings over disjoint alphabets, and distinct segments
    must use disjoint alphabets (each dispatched thread runs exactly once,
    contiguously).
    """
    s = list(s)
    if not s:
        return True
    root = s[0]
    segments = _segments_without(s, root)
    seen: set = set()
    for seg in segments:
        alphabet = set(seg)
        if alphabet & seen:
            return False
        seen |= alphabet
        if not _is_balanced_concat(seg):
            return False
    return True


def balanced_prefix_feasible(s: Sequence[int]) -> bool:
    """True if ``s`` is a prefix of *some* balanced string.

    Used to prune concurrent exploration to balanced executions only: a
    prefix is feasible iff treating every currently-"open" thread block as
    extendable keeps the stack discipline intact.  Equivalently: maintain
    a stack of active thread ids; a symbol may only be (a) the top of the
    stack, (b) a previously-unseen id (a new block pushes), or (c) an id
    deeper in the stack — but only if everything above it has *completed*,
    which for a prefix means we pop those ids and they may never recur.
    """
    stack: List[int] = []
    closed: set = set()
    for sym in s:
        if sym in closed:
            return False
        if stack and stack[-1] == sym:
            continue
        if sym in stack:
            while stack[-1] != sym:
                closed.add(stack.pop())
            continue
        stack.append(sym)
    return True
