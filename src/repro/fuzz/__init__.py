"""Differential fuzzing: random concurrent programs cross-checked
against the balanced-interleaving oracle.

The subsystem turns the repo's two checkers into a standing correctness
oracle for the KISS transformation (Theorem 1 of the paper):

* :mod:`gen` — seeded random generator of well-typed concurrent
  programs (bounded forks, locks, shared globals, asserts, and a
  distinguished race location);
* :mod:`oracle` — the differential verdict: balanced-only concurrent
  checking vs the Figure 4 pipeline, with divergence classification;
* :mod:`shrink` — delta-debugging minimizer for diverging programs;
* :mod:`runner` — fuzz batches as campaign jobs (parallel workers,
  timeouts, cache, telemetry — see :mod:`repro.campaign`).

CLI: ``python -m repro fuzz --count 500 --seed 0``.
"""

from .gen import GenConfig, GeneratedProgram, ProgramGenerator, count_statements
from .oracle import (
    FALSE_RACE,
    INCOMPLETE,
    UNSOUND,
    OracleVerdict,
    differential_check,
    differential_check_source,
)
from .runner import Divergence, FuzzReport, fuzz_jobs, run_fuzz_campaign
from .shrink import shrink, shrink_report

__all__ = [
    "GenConfig",
    "GeneratedProgram",
    "ProgramGenerator",
    "count_statements",
    "OracleVerdict",
    "differential_check",
    "differential_check_source",
    "UNSOUND",
    "INCOMPLETE",
    "FALSE_RACE",
    "shrink",
    "shrink_report",
    "Divergence",
    "FuzzReport",
    "fuzz_jobs",
    "run_fuzz_campaign",
]
