"""Seeded random generator of well-typed concurrent core-language programs.

The generator draws from the fragment of the paper's parallel language
where Theorem 1 is an *exact* equivalence the differential oracle can
test mechanically (see :mod:`repro.fuzz.oracle`):

* a handful of shared ``int`` globals plus one *distinguished race
  location* (the global named by ``GenConfig.race_global``) that worker
  threads read and write, sometimes under a lock;
* locks in the Section 3 encoding — plain ``int`` cells manipulated
  inside ``atomic`` blocks (``atomic { assume(l == 0); l = 1; }`` /
  ``atomic { l = 0; }``);
* bounded forks: ``async wN()`` statements at the top level of ``main``
  only, so the number of dynamic threads equals the number of ``async``
  statements and ``max_ts = forks`` makes the KISS simulation cover
  every balanced execution;
* ``assert`` / ``assume`` over globals, ``if`` with optional ``else``,
  and ``while`` loops over *local* counters (always terminating, so the
  explored state spaces stay finite);
* no pointers, no division — every runtime violation a generated
  program can exhibit is an assertion failure, the "goes wrong" of
  Theorem 1.

Determinism: all randomness flows through one ``random.Random(seed)``;
the same ``(seed, config)`` always yields the same source text, which is
what makes fuzz findings replayable (``python -m repro fuzz --seed N``)
and lets campaign caching work across runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.lang.ast import (
    Assert,
    Assign,
    Assume,
    AsyncCall,
    Atomic,
    Binary,
    Block,
    Expr,
    If,
    INT,
    IntLit,
    Program,
    Skip,
    Stmt,
    Var,
    VarDecl,
    While,
    walk_stmts,
)
from repro.lang.builder import ProgramBuilder
from repro.lang.pretty import pretty_program

#: Comparison operators usable in generated conditions.
_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")

#: Statement kinds and their relative weights (cumulative sampling keeps
#: the draw order stable across Python versions).
_KIND_WEIGHTS = (
    ("write", 6),
    ("incr", 4),
    ("read", 3),
    ("assert", 4),
    ("assume", 1),
    ("if", 3),
    ("loop", 1),
    ("locked", 2),
    ("skip", 1),
)


@dataclass(frozen=True)
class GenConfig:
    """Size/shape knobs for the generator.

    ``max_workers`` bounds the number of forked thread functions (and
    hence ``async`` statements — each worker is spawned exactly once);
    ``max_stmts`` bounds the statements drawn per region; ``max_depth``
    bounds ``if``/``while`` nesting; ``max_const`` bounds the integer
    literals; ``loop_bound`` is the trip count of generated counter
    loops.  ``race_global`` names the distinguished race location every
    program declares and most touch.
    """

    max_workers: int = 2
    max_stmts: int = 4
    max_depth: int = 2
    n_globals: int = 2
    n_locks: int = 1
    max_const: int = 2
    loop_bound: int = 2
    race_global: str = "shared"

    def __post_init__(self):
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.max_stmts < 1:
            raise ValueError("max_stmts must be >= 1")
        if self.n_globals < 1:
            raise ValueError("n_globals must be >= 1")


@dataclass
class GeneratedProgram:
    """One generator output: the type-checked surface AST, its source
    text (the canonical replay artifact), and the fork count that sizes
    ``max_ts`` for an exact differential comparison."""

    seed: int
    config: GenConfig
    program: Program
    source: str
    n_forks: int

    def stmt_count(self) -> int:
        return count_statements(self.program)


def count_statements(prog: Program) -> int:
    """Number of executable statements across all function bodies
    (``Block`` containers are structure, not statements; declarations
    without initializers are bookkeeping)."""
    n = 0
    for func in prog.functions.values():
        for s in walk_stmts(func.body):
            if isinstance(s, Block):
                continue
            if isinstance(s, VarDecl) and s.init is None:
                continue
            n += 1
    return n


class _FuncGen:
    """Per-function generation state: the locals allocated so far (loop
    counters) and the set of locks currently held on the generation path
    (so lock regions nest without self-deadlocking on the same lock)."""

    def __init__(self):
        self.locals: List[str] = []
        self.held: List[str] = []


class ProgramGenerator:
    """Draws :class:`GeneratedProgram` values from a seeded stream."""

    def __init__(self, config: Optional[GenConfig] = None):
        self.config = config or GenConfig()

    # -- random pieces -----------------------------------------------------------

    def _pick_kind(self, rng: random.Random, depth: int, in_atomic: bool) -> str:
        kinds = []
        for kind, w in _KIND_WEIGHTS:
            if kind in ("if", "loop", "locked") and depth >= self.config.max_depth:
                continue
            if kind == "locked" and (in_atomic or not self.config.n_locks):
                continue
            kinds.extend([kind] * w)
        return rng.choice(kinds)

    def _global(self, rng: random.Random) -> str:
        """Any shared int cell, the race location included (it is just a
        global the generator is told to favour)."""
        names = [f"g{i}" for i in range(self.config.n_globals)] + [self.config.race_global] * 2
        return rng.choice(names)

    def _const(self, rng: random.Random) -> IntLit:
        return IntLit(rng.randint(0, self.config.max_const))

    def _cond(self, rng: random.Random) -> Expr:
        return Binary(rng.choice(_CMP_OPS), Var(self._global(rng)), self._const(rng))

    # -- statements --------------------------------------------------------------

    def _stmt(self, rng: random.Random, fg: _FuncGen, depth: int) -> List[Stmt]:
        kind = self._pick_kind(rng, depth, in_atomic=False)
        if kind == "write":
            return [Assign(Var(self._global(rng)), self._const(rng))]
        if kind == "incr":
            g = self._global(rng)
            return [Assign(Var(g), Binary("+", Var(g), IntLit(1)))]
        if kind == "read":
            src, dst = self._global(rng), self._global(rng)
            return [Assign(Var(dst), Var(src))]
        if kind == "assert":
            return [Assert(self._cond(rng))]
        if kind == "assume":
            # Assumptions only over equality/inequality close to the
            # initial values, so most generated paths stay live.
            op = rng.choice(("==", "!=", "<="))
            return [Assume(Binary(op, Var(self._global(rng)), self._const(rng)))]
        if kind == "if":
            then = self._stmts(rng, fg, depth + 1, rng.randint(1, 2))
            els = self._stmts(rng, fg, depth + 1, rng.randint(1, 2)) if rng.random() < 0.4 else None
            return [If(self._cond(rng), Block(then), Block(els) if els is not None else None)]
        if kind == "loop":
            counter = f"i{len(fg.locals)}"
            fg.locals.append(counter)
            body = self._stmts(rng, fg, depth + 1, rng.randint(1, 2))
            body.append(Assign(Var(counter), Binary("+", Var(counter), IntLit(1))))
            # Declaration and initialisation are emitted as separate
            # statements because that is the form the parser itself
            # produces for ``int x = 0;`` — keeping parse∘pretty an
            # identity on generated sources.
            return [
                VarDecl(counter, INT, None),
                Assign(Var(counter), IntLit(0)),
                While(Binary("<", Var(counter), IntLit(self.config.loop_bound)), Block(body)),
            ]
        if kind == "locked":
            free = [f"l{i}" for i in range(self.config.n_locks) if f"l{i}" not in fg.held]
            if not free:
                return [Skip()]
            lock = rng.choice(free)
            fg.held.append(lock)
            inner = self._stmts(rng, fg, depth + 1, rng.randint(1, 2))
            fg.held.pop()
            acquire = Atomic(Block([Assume(Binary("==", Var(lock), IntLit(0))),
                                    Assign(Var(lock), IntLit(1))]))
            release = Atomic(Block([Assign(Var(lock), IntLit(0))]))
            return [acquire] + inner + [release]
        return [Skip()]

    def _stmts(self, rng: random.Random, fg: _FuncGen, depth: int, n: int) -> List[Stmt]:
        out: List[Stmt] = []
        for _ in range(n):
            out.extend(self._stmt(rng, fg, depth))
        return out

    # -- whole programs ----------------------------------------------------------

    def generate(self, seed: int) -> GeneratedProgram:
        rng = random.Random(seed)
        cfg = self.config
        b = ProgramBuilder()
        for i in range(cfg.n_globals):
            b.global_var(f"g{i}", INT, IntLit(0))
        b.global_var(cfg.race_global, INT, IntLit(0))
        for i in range(cfg.n_locks):
            b.global_var(f"l{i}", INT, IntLit(0))

        n_workers = rng.randint(1, cfg.max_workers)
        for w in range(n_workers):
            fg = _FuncGen()
            body = self._stmts(rng, fg, 0, rng.randint(1, cfg.max_stmts))
            b.function(f"w{w}").stmts(body)

        # main: statements with the asyncs spliced in at random top-level
        # positions (forks stay at depth 0 so the dynamic thread count is
        # exactly the static async count).
        fg = _FuncGen()
        body = self._stmts(rng, fg, 0, rng.randint(1, cfg.max_stmts))
        for w in range(n_workers):
            body.insert(rng.randint(0, len(body)), AsyncCall(Var(f"w{w}"), []))
        b.function("main").stmts(body)

        prog = b.build()
        return GeneratedProgram(
            seed=seed,
            config=cfg,
            program=prog,
            source=pretty_program(prog),
            n_forks=n_workers,
        )

    def generate_batch(self, count: int, seed: int = 0) -> List[GeneratedProgram]:
        """``count`` programs at consecutive seeds ``seed .. seed+count-1``."""
        return [self.generate(seed + i) for i in range(count)]
