"""Delta-debugging shrinker for diverging fuzz programs.

Given a program (as source text) and a predicate "is still interesting"
(for the fuzzer: "the differential oracle still reports a divergence",
see :mod:`repro.fuzz.oracle`), the shrinker greedily applies
structure-aware reductions until no single edit preserves the predicate:

* delete a contiguous run of statements from any block (ddmin-style,
  largest runs first);
* flatten a structured statement into one of its child blocks
  (``if`` → then/else branch, ``while``/``iter``/``atomic`` → body,
  ``choice`` → one branch);
* delete a whole function or global declaration (legal once nothing
  references it — validity is established by re-parsing, so an edit
  that breaks a reference is simply skipped).

Every candidate is validated by pretty-printing and re-parsing (which
type-checks); the predicate only ever sees well-formed source text, and
the value returned is itself well-formed and still interesting — the
invariant the property tests pin down.

The shrinker is deterministic: edits are enumerated in a fixed order
and the first improving edit is taken, so the same input and predicate
always produce the same minimized program.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from repro.lang import parse
from repro.lang.ast import (
    Atomic,
    Block,
    Choice,
    FuncDecl,
    If,
    Iter,
    Program,
    Stmt,
    VarDecl,
    While,
)
from repro.lang.lower import clone_program
from repro.lang.pretty import pretty_program

from .gen import count_statements

#: A path into a function body: each step descends from the block's
#: statement at ``index`` into the child block named ``slot``.
Path = Tuple[Tuple[int, str], ...]

#: An edit: ("del", func, path, start, stop) | ("flatten", func, path,
#: index, slot) | ("delfunc", func) | ("delglobal", name).
Edit = Tuple


def _child_slots(s: Stmt) -> List[str]:
    if isinstance(s, If):
        return ["then"] + (["els"] if s.els is not None else [])
    if isinstance(s, While):
        return ["body"]
    if isinstance(s, (Iter, Atomic)):
        return ["body"]
    if isinstance(s, Choice):
        return [f"branch{i}" for i in range(len(s.branches))]
    if isinstance(s, Block):
        return ["block"]
    return []


def _get_slot(s: Stmt, slot: str) -> Block:
    if slot == "then":
        return s.then
    if slot == "els":
        return s.els
    if slot == "body":
        return s.body
    if slot == "block":
        return s
    if slot.startswith("branch"):
        return s.branches[int(slot[len("branch"):])]
    raise KeyError(slot)


def _blocks(body: Block) -> Iterator[Tuple[Path, Block]]:
    """All blocks of a function body, outermost first."""
    stack: List[Tuple[Path, Block]] = [((), body)]
    while stack:
        path, block = stack.pop(0)
        yield path, block
        for i, s in enumerate(block.stmts):
            for slot in _child_slots(s):
                stack.append((path + ((i, slot),), _get_slot(s, slot)))


def _resolve(func: FuncDecl, path: Path) -> Block:
    block: Block = func.body
    for index, slot in path:
        block = _get_slot(block.stmts[index], slot)
    return block


def _edits(prog: Program) -> Iterator[Edit]:
    """Candidate edits, most aggressive first."""
    for fname in prog.functions:
        if fname != prog.entry:
            yield ("delfunc", fname)
    for gname in prog.globals:
        yield ("delglobal", gname)
    # Large deletions before small ones, per block.
    for fname, func in prog.functions.items():
        for path, block in _blocks(func.body):
            n = len(block.stmts)
            size = n
            while size >= 1:
                for start in range(0, n - size + 1):
                    yield ("del", fname, path, start, start + size)
                size //= 2
    for fname, func in prog.functions.items():
        for path, block in _blocks(func.body):
            for i, s in enumerate(block.stmts):
                for slot in _child_slots(s):
                    yield ("flatten", fname, path, i, slot)


def _prune_locals(prog: Program) -> None:
    """Drop locals-table entries whose declarations were deleted, so the
    pretty-printer does not resurrect them as hoisted declarations."""
    from repro.lang.ast import walk_stmts

    for func in prog.functions.values():
        declared = {p.name for p in func.params}
        for s in walk_stmts(func.body):
            if isinstance(s, VarDecl):
                declared.add(s.name)
        func.locals = {n: t for n, t in func.locals.items() if n in declared}


def _apply(prog: Program, edit: Edit) -> Optional[str]:
    """Apply one edit to a clone; return the candidate source text, or
    ``None`` if the edit is structurally vacuous or yields an invalid
    program."""
    clone = clone_program(prog)
    kind = edit[0]
    if kind == "delfunc":
        del clone.functions[edit[1]]
    elif kind == "delglobal":
        del clone.globals[edit[1]]
    elif kind == "del":
        _, fname, path, start, stop = edit
        block = _resolve(clone.functions[fname], path)
        if not block.stmts[start:stop]:
            return None
        del block.stmts[start:stop]
    elif kind == "flatten":
        _, fname, path, index, slot = edit
        block = _resolve(clone.functions[fname], path)
        child = _get_slot(block.stmts[index], slot)
        block.stmts[index:index + 1] = list(child.stmts)
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown edit {edit!r}")
    _prune_locals(clone)
    source = pretty_program(clone)
    try:
        parse(source)
    except Exception:
        return None
    return source


def shrink(
    source: str,
    still_interesting: Callable[[str], bool],
    max_checks: int = 2_000,
) -> str:
    """Minimize ``source`` while ``still_interesting`` holds.

    The predicate receives candidate source text (always well-formed)
    and must return ``True`` when the property of interest — for fuzz
    findings, the oracle divergence — is preserved.  Returns the
    smallest variant found (at worst, the canonical pretty-print of the
    input).  ``max_checks`` bounds the number of predicate evaluations.
    """
    best_prog = parse(source)
    best_src = pretty_program(best_prog)
    checks = 0
    improved = True
    while improved and checks < max_checks:
        improved = False
        for edit in _edits(best_prog):
            candidate = _apply(best_prog, edit)
            if candidate is None or candidate == best_src:
                continue
            checks += 1
            if still_interesting(candidate):
                best_prog = parse(candidate)
                best_src = candidate
                improved = True
                break
            if checks >= max_checks:
                break
    return best_src


def shrink_report(source: str, shrunk: str) -> str:
    """One-line size summary for fuzz reports."""
    before = count_statements(parse(source))
    after = count_statements(parse(shrunk))
    return f"shrunk {before} -> {after} statements"
