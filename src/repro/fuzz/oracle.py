"""The differential oracle: balanced concurrent checking vs the KISS pipeline.

Theorem 1 states that ``Check(P)`` (the Figure 4 sequentialization with
an unbounded ``ts``) goes wrong iff some *balanced* execution of ``P``
goes wrong.  For the generator's fragment (forks only at the top level
of ``main``, each worker spawned once) a ``ts`` bound equal to the fork
count is effectively unbounded, so the two sides of the theorem are both
executable here:

* the **concurrent side**: :func:`repro.concheck.check_concurrent` with
  ``balanced_only=True`` — the explicit interleaving checker pruned to
  the stack-discipline executions of §4.1;
* the **sequential side**: Figure 4 instrumentation followed by the
  explicit sequential backend (the same pipeline as
  :class:`repro.core.checker.Kiss`, with an injection point for the
  transformer so mutation tests can plant bugs).

A verdict *divergence* is a correctness bug in the repo:

* sequential ``error`` with concurrent ``safe`` breaks "KISS never
  reports false errors" (the paper's unsoundness goes the other way);
* concurrent ``error`` with sequential ``safe`` breaks the Theorem 1
  coverage guarantee (every balanced execution is simulated).

Runs where either side exhausts its state budget are *inconclusive*,
not divergences — the theorem only speaks about fully explored spaces.

An optional race mode additionally runs the Figure 5 race pipeline on
the program's distinguished race location and replays any reported race
trace against the concurrent semantics (the per-trace "never reports
false errors" check of :mod:`repro.concheck.replay`).

An optional witness mode (``witness=True``) adds a third cross-check on
the *safe* side: every conclusive safe agreement must come with a
``kiss-witness/1`` certificate that the independent validator certifies
(:mod:`repro.witness`).  A refuted certificate is the
:data:`UNCERTIFIED` divergence.

``strategy="rounds"`` cross-checks the K-round sequentialization
(:mod:`repro.rounds`) instead.  The rounds transform has no balanced
analogue of Theorem 1, so the concurrent side explores *all*
interleavings; a concurrent error the rounds pipeline misses is then a
*coverage gap* (K too small, or a snapshot value outside the finite
guess domain) — recorded but **not** a divergence.  A rounds error
without any concurrent witness still is (:data:`UNSOUND`): the
consistency epilogue claims every reported error is a real round-robin
execution.

``strategy="lazy"`` cross-checks the pc-guarded lazy sequentialization
(:mod:`repro.lazy`) the same way: all interleavings on the concurrent
side, with a concurrent-only error recorded as a *coverage gap* of the
K-round schedule bound.  Unlike eager rounds there is no guess domain —
a lazy coverage gap always means K was too small.

In KISS mode, every :data:`INCOMPLETE` divergence is additionally
probed with the rounds transform at ``K = 3``: Figure 4 covers two
context switches, so a balanced error that KISS misses but three rounds
catch localizes the miss to the context-switch budget rather than a
pipeline bug (``closed_by_rounds``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro import obs
from repro.cfg.build import build_program_cfg
from repro.concheck import check_concurrent
from repro.core.race import RaceTarget
from repro.core.transform import KissTransformer
from repro.lazy import LazyTransformer
from repro.rounds import RoundRobinTransformer
from repro.schemas import STRATEGIES
from repro.lang import parse, parse_core
from repro.lang.ast import Program
from repro.lang.lower import clone_program, is_core_program, lower_program
from repro.seqcheck.explicit import SequentialChecker
from repro.seqcheck.trace import CheckStatus

#: A transformer factory: ``max_ts -> KissTransformer`` (or a buggy
#: subclass, for mutation testing).
TransformerFactory = Callable[[int], KissTransformer]

#: Human-readable divergence directions.
UNSOUND = "unsound"  # sequential error without a balanced concurrent witness
INCOMPLETE = "incomplete"  # balanced concurrent error missed by the pipeline
FALSE_RACE = "false-race"  # race trace that does not replay concurrently
UNCERTIFIED = "uncertified"  # safe verdict whose kiss-witness/1 certificate is refuted


@dataclass
class OracleVerdict:
    """Outcome of one differential run.

    ``concurrent``/``sequential`` use the usual verdict vocabulary
    (``"safe"`` / ``"error"`` / ``"resource-bound"``); ``divergence`` is
    ``None`` when the sides agree (or the run is inconclusive), else one
    of :data:`UNSOUND` / :data:`INCOMPLETE` / :data:`FALSE_RACE`.
    """

    concurrent: str
    sequential: str
    divergence: Optional[str] = None
    detail: str = ""
    con_states: int = 0
    seq_states: int = 0
    race_verdict: Optional[str] = None
    #: rounds mode: a concurrent error the K-round pipeline missed —
    #: expected incompleteness (bounded K / finite guess domain), not a bug.
    coverage_gap: bool = False
    #: KISS mode, on an :data:`INCOMPLETE` divergence: did the K=3
    #: rounds probe catch the missed error?  None = probe inconclusive.
    closed_by_rounds: Optional[bool] = None
    #: witness mode, on a conclusive safe agreement: the independent
    #: validator's verdict on the emitted certificate (``"certified"`` /
    #: ``"refuted"`` / ``"unsupported"``), ``"missing"`` when emission
    #: declined, None when the cross-check did not run.  Only
    #: ``"refuted"`` is a divergence (:data:`UNCERTIFIED`).
    witness_status: Optional[str] = None

    @property
    def diverged(self) -> bool:
        return self.divergence is not None

    @property
    def conclusive(self) -> bool:
        """Both sides fully explored their state spaces."""
        return "resource-bound" not in (self.concurrent, self.sequential)

    def describe(self) -> str:
        if self.diverged:
            tail = ""
            if self.closed_by_rounds is not None:
                tail = f" [closed by rounds K=3: {'yes' if self.closed_by_rounds else 'no'}]"
            return f"{self.divergence}: {self.detail}{tail}"
        if self.coverage_gap:
            return f"coverage-gap: {self.detail}"
        tail = f" race={self.race_verdict}" if self.race_verdict else ""
        if self.witness_status:
            tail += f" witness={self.witness_status}"
        return f"agree: concurrent={self.concurrent} sequential={self.sequential}{tail}"


_STATUS = {
    CheckStatus.SAFE: "safe",
    CheckStatus.ERROR: "error",
    CheckStatus.EXHAUSTED: "resource-bound",
}


def _as_core(prog: Union[str, Program]) -> Program:
    if isinstance(prog, str):
        return parse_core(prog)
    if is_core_program(prog):
        return prog
    # lower_program works in place; never mutate a caller's AST.
    return lower_program(clone_program(prog))


def differential_check(
    prog: Union[str, Program],
    max_ts: int,
    max_states: int = 50_000,
    transformer_factory: Optional[TransformerFactory] = None,
    race_global: Optional[str] = None,
    strategy: str = "kiss",
    rounds: int = 2,
    por: bool = False,
    witness: bool = False,
) -> OracleVerdict:
    """Cross-check one program (source text, surface AST, or core AST).

    ``max_ts`` must be at least the program's dynamic fork count for the
    coverage direction to be meaningful (the generator supplies this as
    :attr:`~repro.fuzz.gen.GeneratedProgram.n_forks`).  ``race_global``
    additionally runs the race pipeline on that global with trace
    replay (KISS strategy only — the bounded-round pipelines have no
    race mode).  ``por`` enables the shared-access partial-order
    reduction in whichever transformer the strategy selects; POR is a
    verdict-preserving pruning, so it rides along on the sequential side
    without changing what counts as a divergence.

    ``witness`` adds a third cross-check on conclusive safe agreement:
    emit a ``kiss-witness/1`` certificate for the sequentialized program
    and re-check it with the independent validator (:mod:`repro.witness`).
    A certificate the validator *refutes* is an :data:`UNCERTIFIED`
    divergence — the checker claimed safe but cannot back the claim.
    A declined emission or an ``unsupported`` validation is recorded in
    ``witness_status`` but is not a divergence (honest budget outcomes).
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}")
    if strategy != "kiss" and race_global is not None:
        raise ValueError(f"race checking is not available under strategy={strategy!r}")
    core = _as_core(prog)

    with obs.span("oracle-concurrent", max_ts=max_ts):
        con = check_concurrent(
            core, max_states=max_states, balanced_only=(strategy == "kiss")
        )
    obs.inc("concurrent_states", con.stats.states)
    with obs.span("oracle-sequential", max_ts=max_ts):
        if transformer_factory is not None:
            factory = transformer_factory
        elif strategy == "rounds":
            factory = lambda ts: RoundRobinTransformer(rounds=rounds, max_ts=ts, por=por)
        elif strategy == "lazy":
            factory = lambda ts: LazyTransformer(rounds=rounds, max_ts=ts, por=por)
        else:
            factory = lambda ts: KissTransformer(max_ts=ts, por=por)
        transformed = factory(max_ts).transform(core)
        seq = SequentialChecker(build_program_cfg(transformed), max_states=max_states).check()
    obs.inc("oracle_runs")

    v = OracleVerdict(
        concurrent=_STATUS[con.status],
        sequential=_STATUS[seq.status],
        con_states=con.stats.states,
        seq_states=seq.stats.states,
    )
    if v.conclusive:
        if v.sequential == "error" and v.concurrent == "safe":
            v.divergence = UNSOUND
            witness = "balanced concurrent execution" if strategy == "kiss" else "interleaving"
            v.detail = (
                f"sequential pipeline reported '{seq.violation_kind}' "
                f"({seq.message}) but no {witness} goes wrong"
            )
        elif v.concurrent == "error" and v.sequential == "safe":
            if strategy in ("rounds", "lazy"):
                # Expected incompleteness: the round budget (and, for
                # eager rounds, the finite guess domain) missed the
                # erroneous interleaving.
                v.coverage_gap = True
                what = "round-robin" if strategy == "rounds" else "lazy round-robin"
                v.detail = (
                    f"concurrent execution reported '{con.violation_kind}' "
                    f"({con.message}) outside the K={rounds} {what} coverage"
                )
                obs.inc(f"{strategy}_coverage_gaps")
            else:
                v.divergence = INCOMPLETE
                v.detail = (
                    f"balanced concurrent execution reported '{con.violation_kind}' "
                    f"({con.message}) but the sequential pipeline found no error"
                )
                _rounds_probe(core, max_ts, max_states, v)
    if race_global is not None and not v.diverged:
        _race_check(core, max_ts, max_states, race_global, v)
    if witness and not v.diverged and v.conclusive and v.sequential == "safe":
        _witness_check(transformed, strategy, rounds, max_states, v)
    return v


def _witness_check(
    transformed: Program, strategy: str, rounds: int, max_states: int, v: OracleVerdict
) -> None:
    """Emit a certificate for the safe sequential verdict and re-check it
    with the independent validator; a refuted certificate is the
    :data:`UNCERTIFIED` divergence (the emitter and the validator are
    separate implementations, so this is a genuine third opinion)."""
    from repro.witness.emit import emit_witness
    from repro.witness.validate import validate_witness_doc

    with obs.span("oracle-witness"):
        doc = emit_witness(
            transformed,
            backend="explicit",
            strategy=strategy,
            rounds=rounds if strategy in ("rounds", "lazy") else None,
            max_states=max_states,
        )
        if doc is None:
            v.witness_status = "missing"
            return
        report = validate_witness_doc(doc)
    v.witness_status = report.status
    obs.inc("oracle_witness_checks")
    if report.status == "refuted":
        v.divergence = UNCERTIFIED
        v.detail = f"safe verdict but its certificate is refuted: {report}"


def _rounds_probe(core: Program, max_ts: int, max_states: int, v: OracleVerdict) -> None:
    """On an INCOMPLETE divergence, ask whether three rounds see the
    error Figure 4's two context switches missed — separating budget
    misses from genuine pipeline bugs."""
    with obs.span("oracle-rounds-probe", rounds=3):
        try:
            transformed = RoundRobinTransformer(rounds=3, max_ts=max_ts).transform(core)
            probe = SequentialChecker(
                build_program_cfg(transformed), max_states=max_states
            ).check()
        except Exception:
            return  # probe is best-effort; None = inconclusive
    if probe.status == CheckStatus.ERROR:
        v.closed_by_rounds = True
        obs.inc("rounds_closed_incomplete")
    elif probe.status == CheckStatus.SAFE:
        v.closed_by_rounds = False


def _race_check(
    core: Program, max_ts: int, max_states: int, race_global: str, v: OracleVerdict
) -> None:
    """Figure 5 on the distinguished location, with trace replay: a
    reported race whose mapped trace does not replay under the
    concurrent semantics is a :data:`FALSE_RACE` divergence."""
    from repro.core.checker import Kiss

    kiss = Kiss(max_ts=max_ts, max_states=max_states, validate_traces=True)
    r = kiss.check_race(core, RaceTarget.global_var(race_global))
    v.race_verdict = r.verdict
    if r.is_error and r.trace_validated is False:
        v.divergence = FALSE_RACE
        v.detail = (
            f"race reported on '{race_global}' but its mapped trace "
            f"does not replay under the concurrent semantics"
        )


def differential_check_source(
    source: str,
    max_ts: int,
    max_states: int = 50_000,
    race_global: Optional[str] = None,
    strategy: str = "kiss",
    rounds: int = 2,
    por: bool = False,
    witness: bool = False,
) -> OracleVerdict:
    """Worker-friendly entry point: parse surface source, then check.
    (Kept separate so campaign workers never need AST arguments.)"""
    return differential_check(
        parse(source),
        max_ts=max_ts,
        max_states=max_states,
        race_global=race_global,
        strategy=strategy,
        rounds=rounds,
        por=por,
        witness=witness,
    )
