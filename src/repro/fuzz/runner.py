"""Fuzz batches on top of the campaign engine.

A fuzz batch is an ordinary campaign: one :class:`CheckJob` with
``prop="fuzz"`` per generated program (generation is cheap and happens
up front; the differential checking is the expensive part and runs in
the workers).  The batch therefore inherits everything PR 1 built —
parallel dispatch, per-job wall-clock timeouts with retry, the
content-addressed result cache, and JSONL telemetry.

Verdict vocabulary for fuzz jobs:

* ``"safe"``   — the two checkers agreed (the expected outcome);
* ``"error"``  — a verdict divergence: a real correctness bug in the
  transformation or one of the checkers (``error_kind`` carries the
  direction, ``detail`` the description);
* ``"resource-bound"`` — inconclusive (a state budget or the job
  timeout was exhausted before both sides finished).

After the campaign, any diverging program is minimized with the
delta-debugging shrinker before reporting, with the oracle re-run
in-process as the shrinking predicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.campaign import CampaignConfig, CampaignScheduler, CheckJob, JobResult
from repro.lang import parse

from .gen import GenConfig, ProgramGenerator, count_statements
from .oracle import differential_check_source
from .shrink import shrink


@dataclass
class Divergence:
    """One minimized fuzz finding."""

    seed: int
    detail: str
    source: str
    shrunk_source: str
    shrunk_stmts: int
    #: KISS-mode INCOMPLETE findings: did the K=3 rounds probe catch the
    #: error Figure 4 missed?  None = probe inconclusive / not run.
    closed_by_rounds: Optional[bool] = None

    def format(self) -> str:
        return (
            f"seed {self.seed}: {self.detail}\n"
            f"minimized to {self.shrunk_stmts} statements:\n{self.shrunk_source}"
        )


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    count: int
    seed: int
    agreed: int = 0
    inconclusive: int = 0
    #: rounds mode: concurrent errors outside the K-round coverage —
    #: expected incompleteness, counted but not findings.
    coverage_gaps: int = 0
    divergences: List[Divergence] = field(default_factory=list)
    results: List[JobResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        gaps = f", {self.coverage_gaps} coverage gaps" if self.coverage_gaps else ""
        lines = [
            f"fuzz: {self.count} programs (seeds {self.seed}..{self.seed + self.count - 1}): "
            f"{self.agreed} agreed, {len(self.divergences)} diverged, "
            f"{self.inconclusive} inconclusive{gaps}"
        ]
        for d in self.divergences:
            lines.append("")
            lines.append(d.format())
        return "\n".join(lines)


def fuzz_jobs(
    count: int,
    seed: int = 0,
    gen_config: Optional[GenConfig] = None,
    max_states: int = 50_000,
    race: bool = False,
    strategy: str = "kiss",
    rounds: int = 2,
    por: bool = False,
    witness: bool = False,
) -> List[CheckJob]:
    """One differential-checking job per generated program.

    Each job's ``max_ts`` equals the program's fork count, making the
    Theorem 1 comparison exact; ``fuzz_race`` (when ``race`` is set)
    additionally enables the false-race replay check on the generator's
    distinguished location.  ``strategy="rounds"`` / ``"lazy"``
    cross-check the K-round sequentializations against *all*
    interleavings instead (no race mode there).  ``por`` turns on the
    shared-access reduction in the sequential pipeline.  ``fuzz_witness``
    (when ``witness`` is set) adds the certificate cross-check on safe
    agreements (see :data:`repro.fuzz.oracle.UNCERTIFIED`).  All of
    these knobs participate in the cache key.
    """
    if strategy != "kiss" and race:
        raise ValueError(f"race checking is not available under strategy={strategy!r}")
    cfg = gen_config or GenConfig()
    gen = ProgramGenerator(cfg)
    jobs = []
    for gp in gen.generate_batch(count, seed):
        config = {
            "max_ts": gp.n_forks,
            "max_states": max_states,
            "strategy": strategy,
            "rounds": rounds,
            "por": por,
        }
        if race:
            config["fuzz_race"] = cfg.race_global
        if witness:
            config["fuzz_witness"] = True
        jobs.append(
            CheckJob(
                job_id=f"fuzz/{gp.seed}",
                driver="fuzz",
                source=gp.source,
                prop="fuzz",
                config=config,
            )
        )
    return jobs


def _job_seed(job_id: str) -> int:
    try:
        return int(job_id.rsplit("/", 1)[-1])
    except ValueError:  # pragma: no cover - job ids are generated above
        return -1


def run_fuzz_campaign(
    count: int,
    seed: int = 0,
    gen_config: Optional[GenConfig] = None,
    campaign_config: Optional[CampaignConfig] = None,
    max_states: int = 50_000,
    race: bool = False,
    strategy: str = "kiss",
    rounds: int = 2,
    por: bool = False,
    witness: bool = False,
    do_shrink: bool = True,
    shrink_max_checks: int = 2_000,
) -> FuzzReport:
    """Generate, differentially check (through the campaign scheduler),
    and shrink any divergences.  Returns the full report."""
    jobs = fuzz_jobs(
        count, seed, gen_config, max_states=max_states, race=race,
        strategy=strategy, rounds=rounds, por=por, witness=witness,
    )
    scheduler = CampaignScheduler(campaign_config or CampaignConfig())
    results = scheduler.run(jobs)

    report = FuzzReport(count=count, seed=seed, results=results)
    race_global = (gen_config or GenConfig()).race_global if race else None
    for job, result in zip(jobs, results):
        if result.verdict == "safe":
            report.agreed += 1
            if result.detail.startswith("coverage-gap"):
                report.coverage_gaps += 1
        elif result.verdict == "resource-bound":
            report.inconclusive += 1
        else:
            report.divergences.append(
                _minimize(
                    job, result, max_states, race_global, strategy, rounds, por,
                    witness, do_shrink, shrink_max_checks,
                )
            )
    return report


def _minimize(
    job: CheckJob,
    result: JobResult,
    max_states: int,
    race_global: Optional[str],
    strategy: str,
    rounds: int,
    por: bool,
    witness: bool,
    do_shrink: bool,
    shrink_max_checks: int,
) -> Divergence:
    max_ts = job.config.get("max_ts", 0)

    def oracle(src: str):
        return differential_check_source(
            src, max_ts=max_ts, max_states=max_states, race_global=race_global,
            strategy=strategy, rounds=rounds, por=por, witness=witness,
        )

    def still_diverges(src: str) -> bool:
        try:
            return oracle(src).diverged
        except Exception:
            return False

    closed: Optional[bool] = None
    try:
        # One in-process rerun: the worker's verdict crossed a process
        # boundary as a string, but the rounds-probe outcome matters for
        # triage, so recover it from the live OracleVerdict.
        closed = oracle(job.source).closed_by_rounds
    except Exception:
        pass
    shrunk = (
        shrink(job.source, still_diverges, max_checks=shrink_max_checks)
        if do_shrink
        else job.source
    )
    return Divergence(
        seed=_job_seed(job.job_id),
        detail=result.detail,
        source=job.source,
        shrunk_source=shrunk,
        shrunk_stmts=count_statements(parse(shrunk)),
        closed_by_rounds=closed,
    )
