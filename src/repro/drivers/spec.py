"""Specifications for the synthetic driver corpus.

The paper evaluates KISS on 18 Windows drivers (Table 1).  The driver
*sources* are proprietary, so this reproduction synthesizes each driver
from a :class:`DriverSpec` capturing exactly the structure that
determines the tables:

* the device-extension field count,
* which fields carry a *real* race (present under any harness — these
  survive into Table 2),
* which fields carry a *harness-dependent* race: conflicting accesses
  reachable only when the permissive harness runs a dispatch-routine pair
  the OS never actually issues concurrently (rules A1–A3, or the
  kbfiltr/moufiltr serialized-Ioctl rule) — these account for the
  71 → 30 drop between Table 1 and Table 2,
* which fields exhausted the paper's 20-minute/800 MB resource bound.

On the last point: SLAM's cost is property-dependent (predicate
abstraction diverges for some fields and not others), while an
explicit-state backend explores the same state space for every target
field.  The per-field resource-bound *outcomes* are therefore taken from
the spec (they reproduce the paper's reported distribution rather than
re-deriving it); see DESIGN.md §2 for the substitution note.

Dispatch-routine categories mirror the IRP classes named by the paper's
harness rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple


class Routine(Enum):
    """Dispatch-routine categories (IRP classes)."""

    PNP_START = "DispatchPnpStart"  # a Pnp IRP that starts/removes the device (rule A2)
    PNP_QUERY = "DispatchPnpQueryStop"  # other Pnp IRPs (rule A1)
    PNP_OTHER = "DispatchPnpCaps"
    POWER_SYS = "DispatchPowerSys"  # system Power IRPs (rule A3)
    POWER_DEV = "DispatchPowerDev"  # device Power IRPs (rule A3)
    IOCTL = "DispatchIoctl"  # device control (kbfiltr/moufiltr rule)
    READ = "DispatchRead"
    WRITE = "DispatchWrite"

    @property
    def is_pnp(self) -> bool:
        return self in (Routine.PNP_START, Routine.PNP_QUERY, Routine.PNP_OTHER)


class FieldKind(Enum):
    CLEAN = "clean"  # all accesses lock-protected: race-free
    RACY_REAL = "racy-real"  # unprotected conflict under an always-legal pair
    RACY_A1 = "racy-a1"  # conflict only between two concurrent Pnp IRPs
    RACY_A2 = "racy-a2"  # conflict only when a start/remove Pnp runs with another IRP
    RACY_A3 = "racy-a3"  # conflict only between two same-category Power IRPs
    RACY_IOCTL = "racy-ioctl"  # conflict only between two concurrent Ioctls
    UNRESOLVED = "unresolved"  # exceeded the paper's resource bound

    @property
    def is_spurious(self) -> bool:
        return self in (FieldKind.RACY_A1, FieldKind.RACY_A2, FieldKind.RACY_A3, FieldKind.RACY_IOCTL)

    @property
    def races_in_permissive(self) -> bool:
        return self is FieldKind.RACY_REAL or self.is_spurious


#: For each spurious kind, a (writer, reader) routine pair that the
#: permissive harness runs concurrently but the refined harness forbids.
SPURIOUS_PAIRS: Dict[FieldKind, Tuple[Routine, Routine]] = {
    FieldKind.RACY_A1: (Routine.PNP_QUERY, Routine.PNP_OTHER),
    FieldKind.RACY_A2: (Routine.PNP_START, Routine.READ),
    FieldKind.RACY_A3: (Routine.POWER_SYS, Routine.POWER_SYS),
    FieldKind.RACY_IOCTL: (Routine.IOCTL, Routine.IOCTL),
}

#: Real races use a pair that every harness allows (the Figure 6 pattern:
#: a Pnp query-stop write racing a Power read).
REAL_PAIR: Tuple[Routine, Routine] = (Routine.PNP_QUERY, Routine.POWER_DEV)


@dataclass
class FieldSpec:
    name: str
    kind: FieldKind


@dataclass
class DriverSpec:
    """Everything the generator needs to synthesize one driver."""

    name: str
    kloc: float  # the paper's code size (ours is scaled down)
    fields: List[FieldSpec]
    ioctl_serialized: bool = False  # kbfiltr/moufiltr: Ioctls never concurrent

    @property
    def field_count(self) -> int:
        return len(self.fields)

    def count(self, *kinds: FieldKind) -> int:
        return sum(1 for f in self.fields if f.kind in kinds)

    @property
    def expected_table1_races(self) -> int:
        return sum(1 for f in self.fields if f.kind.races_in_permissive)

    @property
    def expected_table1_noraces(self) -> int:
        return self.count(FieldKind.CLEAN)

    @property
    def expected_table2_races(self) -> int:
        return self.count(FieldKind.RACY_REAL)

    @property
    def expected_unresolved(self) -> int:
        return self.count(FieldKind.UNRESOLVED)


def make_fields(
    real: int,
    a1: int = 0,
    a2: int = 0,
    a3: int = 0,
    ioctl: int = 0,
    unresolved: int = 0,
    clean: int = 0,
) -> List[FieldSpec]:
    """Build a field list with conventional names per kind."""
    out: List[FieldSpec] = []

    def add(count: int, kind: FieldKind, base: str) -> None:
        for i in range(count):
            out.append(FieldSpec(f"{base}{i}", kind))

    add(real, FieldKind.RACY_REAL, "RacyState")
    add(a1, FieldKind.RACY_A1, "PnpState")
    add(a2, FieldKind.RACY_A2, "StartState")
    add(a3, FieldKind.RACY_A3, "PowerState")
    add(ioctl, FieldKind.RACY_IOCTL, "IoctlState")
    add(unresolved, FieldKind.UNRESOLVED, "HardState")
    add(clean, FieldKind.CLEAN, "Counter")
    return out
