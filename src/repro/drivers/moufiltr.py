"""A hand-written moufiltr-style filter driver model.

The paper (§6): all seven races KISS reported on moufiltr (and all eight
on kbfiltr) had error traces involving *two concurrent Ioctl IRPs* — but
"the position of these two drivers in the driver stack ensures that they
will never receive two concurrent Ioctl IRPs; consequently, the race
conditions reported by KISS were spurious."

This model shows the pattern concretely: the Ioctl dispatch routine does
an unprotected read-modify-write of connection state (safe if Ioctls are
serialized, racy if not).  The two harnesses correspond to the paper's
first and second experiments:

* ``moufiltr_permissive_program`` — the OS may send any pair of IRPs,
  including two Ioctls: KISS reports the race (Table 1's seven reports);
* ``moufiltr_refined_program`` — the driver-specific rule is encoded in
  the harness (no concurrent Ioctls): no race (Table 2's zero).
"""

from __future__ import annotations

from repro.lang import parse_core
from repro.lang.ast import Program

from .osmodel import OS_MODEL_SRC

_BODY = (
    OS_MODEL_SRC
    + """
struct DEVICE_EXTENSION {
  int ConnectCount;
  int InputCount;
}

int SpinLock;

// Ioctl handler: internal-device-control connect/disconnect requests.
// The RMW of ConnectCount is unprotected — harmless when the driver
// stack serializes Ioctls, a race if two run concurrently.
void MouFilter_DispatchIoctl(DEVICE_EXTENSION *e) {
  int count;
  count = e->ConnectCount;
  e->ConnectCount = count + 1;
}

// The read path takes the spin lock properly.
void MouFilter_ReadNotification(DEVICE_EXTENSION *e) {
  KeAcquireSpinLock(&SpinLock);
  e->InputCount = e->InputCount + 1;
  KeReleaseSpinLock(&SpinLock);
}
"""
)

MOUFILTR_PERMISSIVE_SRC = (
    _BODY
    + """
void main() {
  DEVICE_EXTENSION *e;
  e = malloc(DEVICE_EXTENSION);
  e->ConnectCount = 0;
  e->InputCount = 0;
  // first-run harness: the OS may send any pair, including two Ioctls
  choice {
    async MouFilter_DispatchIoctl(e);
    MouFilter_DispatchIoctl(e);
  } or {
    async MouFilter_DispatchIoctl(e);
    MouFilter_ReadNotification(e);
  } or {
    async MouFilter_ReadNotification(e);
    MouFilter_ReadNotification(e);
  }
}
"""
)

MOUFILTR_REFINED_SRC = (
    _BODY
    + """
void main() {
  DEVICE_EXTENSION *e;
  e = malloc(DEVICE_EXTENSION);
  e->ConnectCount = 0;
  e->InputCount = 0;
  // refined harness: the driver stack serializes Ioctls, so two
  // concurrent Ioctls are impossible — drop that pair
  choice {
    async MouFilter_DispatchIoctl(e);
    MouFilter_ReadNotification(e);
  } or {
    async MouFilter_ReadNotification(e);
    MouFilter_ReadNotification(e);
  }
}
"""
)


def moufiltr_permissive_program() -> Program:
    """The model under the first-run harness (concurrent Ioctls allowed)."""
    return parse_core(MOUFILTR_PERMISSIVE_SRC)


def moufiltr_refined_program() -> Program:
    """The model under the refined harness (Ioctls serialized)."""
    return parse_core(MOUFILTR_REFINED_SRC)
