"""Concurrent harnesses for driver checking (Section 6).

"For each device driver, we created a concurrent program with two
threads, each of which nondeterministically calls a dispatch routine."
The *permissive* harness allows every pair of dispatch routines.  After
feedback from the driver quality team, the *refined* harness drops the
pairs the OS never issues concurrently:

* A1 — two Pnp IRPs are never concurrent;
* A2 — no IRP is concurrent with a Pnp IRP that starts or removes the
  device;
* A3 — two concurrently-sent Power IRPs belong to different categories;
* (driver-specific) — kbfiltr/moufiltr never receive two concurrent
  Ioctl IRPs (their position in the driver stack serializes them).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from .spec import DriverSpec, Routine

Pair = Tuple[Routine, Routine]


def all_pairs(routines: Sequence[Routine]) -> List[Pair]:
    """Every unordered pair, including a routine with itself."""
    out: List[Pair] = []
    for i, a in enumerate(routines):
        for b in routines[i:]:
            out.append((a, b))
    return out


def rule_a1(pair: Pair) -> bool:
    """True if the pair violates A1 (two concurrent Pnp IRPs)."""
    a, b = pair
    return a.is_pnp and b.is_pnp


def rule_a2(pair: Pair) -> bool:
    """True if the pair violates A2 (anything concurrent with start/remove)."""
    return Routine.PNP_START in pair


def rule_a3(pair: Pair) -> bool:
    """True if the pair violates A3 (two same-category Power IRPs)."""
    a, b = pair
    return (a == b == Routine.POWER_SYS) or (a == b == Routine.POWER_DEV)


def rule_ioctl(pair: Pair) -> bool:
    """True if the pair is two concurrent Ioctls (driver-specific rule)."""
    a, b = pair
    return a == b == Routine.IOCTL


def permissive_pairs(routines: Sequence[Routine]) -> List[Pair]:
    """The first-run harness: everything goes."""
    return all_pairs(routines)


def refined_pairs(routines: Sequence[Routine], ioctl_serialized: bool = False) -> List[Pair]:
    """The second-run harness: drop pairs forbidden by A1–A3 (and the
    serialized-Ioctl rule where it applies)."""
    out = []
    for pair in all_pairs(routines):
        if rule_a1(pair) or rule_a2(pair) or rule_a3(pair):
            continue
        if ioctl_serialized and rule_ioctl(pair):
            continue
        out.append(pair)
    return out


def harness_pairs(spec: DriverSpec, routines: Sequence[Routine], refined: bool) -> List[Pair]:
    """The dispatch-routine pairs the chosen harness allows for this driver."""
    if refined:
        return refined_pairs(routines, ioctl_serialized=spec.ioctl_serialized)
    return permissive_pairs(routines)
