"""The 18-driver corpus and the Table 1 / Table 2 experiment runners.

``DRIVER_SPECS`` reconstructs, for every driver row of Table 1, a
:class:`~repro.drivers.spec.DriverSpec` whose field-kind counts are
derived from the paper's numbers:

* Table 1 "Races"    = real + harness-dependent (spurious) fields,
* Table 2 "Races"    = real fields (the refined harness keeps them),
* Table 1 "No Races" = clean fields,
* the remainder      = fields that exhausted the paper's resource bound.

The spurious fields are distributed over the A1/A2/A3 rules — except for
kbfiltr and moufiltr, where the paper says *all* reported races involved
two concurrent Ioctl IRPs (their driver-specific rule).

``run_table1`` checks every field of every driver with the permissive
harness and ``ts = 0`` (the paper's configuration); ``run_table2``
re-checks the fields that raced, with the refined harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .spec import DriverSpec, FieldSpec, make_fields

#: Paper numbers: name -> (KLOC, fields, Table-1 races, Table-1 no-races)
PAPER_TABLE1: Dict[str, tuple] = {
    "tracedrv": (0.5, 3, 0, 3),
    "moufiltr": (1.0, 14, 7, 7),
    "kbfiltr": (1.1, 15, 8, 7),
    "imca": (1.1, 5, 1, 4),
    "startio": (1.1, 9, 0, 9),
    "toaster/toastmon": (1.4, 8, 1, 7),
    "diskperf": (2.4, 16, 2, 14),
    "1394diag": (2.7, 18, 1, 17),
    "1394vdev": (2.8, 18, 1, 17),
    "fakemodem": (2.9, 39, 6, 31),
    "gameenum": (3.9, 45, 11, 24),
    "toaster/bus": (5.0, 30, 0, 22),
    "serenum": (5.9, 41, 5, 21),
    "toaster/func": (6.6, 24, 7, 17),
    "mouclass": (7.0, 34, 1, 32),
    "kbdclass": (7.4, 36, 1, 33),
    "mouser": (7.6, 34, 1, 27),
    "fdc": (9.2, 92, 18, 54),
}

#: Paper Table 2: races remaining under the refined harness.
PAPER_TABLE2: Dict[str, int] = {
    "moufiltr": 0,
    "kbfiltr": 0,
    "imca": 1,
    "toaster/toastmon": 1,
    "diskperf": 0,
    "1394diag": 1,
    "1394vdev": 1,
    "fakemodem": 6,
    "gameenum": 1,
    "serenum": 2,
    "toaster/func": 5,
    "mouclass": 1,
    "kbdclass": 1,
    "mouser": 1,
    "fdc": 9,
}


def _spec(name, kloc, *, real=0, a1=0, a2=0, a3=0, ioctl=0, unresolved=0, clean=0, serialized=False):
    return DriverSpec(
        name=name,
        kloc=kloc,
        fields=make_fields(real, a1, a2, a3, ioctl, unresolved, clean),
        ioctl_serialized=serialized,
    )


DRIVER_SPECS: List[DriverSpec] = [
    _spec("tracedrv", 0.5, clean=3),
    _spec("moufiltr", 1.0, ioctl=7, clean=7, serialized=True),
    _spec("kbfiltr", 1.1, ioctl=8, clean=7, serialized=True),
    _spec("imca", 1.1, real=1, clean=4),
    _spec("startio", 1.1, clean=9),
    _spec("toaster/toastmon", 1.4, real=1, clean=7),
    _spec("diskperf", 2.4, a1=1, a2=1, clean=14),
    _spec("1394diag", 2.7, real=1, clean=17),
    _spec("1394vdev", 2.8, real=1, clean=17),
    _spec("fakemodem", 2.9, real=6, clean=31, unresolved=2),
    _spec("gameenum", 3.9, real=1, a1=4, a2=3, a3=3, clean=24, unresolved=10),
    _spec("toaster/bus", 5.0, clean=22, unresolved=8),
    _spec("serenum", 5.9, real=2, a1=1, a2=1, a3=1, clean=21, unresolved=15),
    _spec("toaster/func", 6.6, real=5, a1=1, a3=1, clean=17),
    _spec("mouclass", 7.0, real=1, clean=32, unresolved=1),
    _spec("kbdclass", 7.4, real=1, clean=33, unresolved=2),
    _spec("mouser", 7.6, real=1, clean=27, unresolved=6),
    _spec("fdc", 9.2, real=9, a1=3, a2=3, a3=3, clean=54, unresolved=20),
]


def spec_by_name(name: str) -> DriverSpec:
    """Look up a corpus driver spec by its Table 1 name."""
    for s in DRIVER_SPECS:
        if s.name == name:
            return s
    raise KeyError(f"no driver named '{name}'")


# ---------------------------------------------------------------------------
# Runners
# ---------------------------------------------------------------------------


@dataclass
class FieldOutcome:
    field: str
    verdict: str  # "race" | "no-race" | "unresolved"
    states: int = 0


@dataclass
class DriverRunResult:
    name: str
    outcomes: List[FieldOutcome] = field(default_factory=list)

    @property
    def races(self) -> int:
        return sum(1 for o in self.outcomes if o.verdict == "race")

    @property
    def no_races(self) -> int:
        return sum(1 for o in self.outcomes if o.verdict == "no-race")

    @property
    def unresolved(self) -> int:
        return sum(1 for o in self.outcomes if o.verdict == "unresolved")

    def racy_fields(self) -> List[str]:
        return [o.field for o in self.outcomes if o.verdict == "race"]


def check_driver(
    spec: DriverSpec,
    refined: bool = False,
    fields: Optional[Sequence[str]] = None,
    max_states: int = 300_000,
    unresolved_budget: int = 200,
    loc_scale: int = 0,
    jobs: int = 1,
    timeout: Optional[float] = None,
    cache_dir: Optional[str] = None,
) -> DriverRunResult:
    """Run the per-field race check over one driver.

    ``fields`` restricts the run (Table 2 re-checks only the racy fields).
    Fields the spec marks UNRESOLVED get ``unresolved_budget`` states —
    the corpus-level model of the paper's 20-minute SLAM bound (see
    :mod:`repro.drivers.spec` for why this is spec-driven).
    ``loc_scale=0`` skips filler code for speed; benchmarks that report
    code size use the default scale instead.

    The per-field loop is executed by the campaign engine
    (:mod:`repro.campaign`): ``jobs`` worker processes, an optional
    per-field wall-clock ``timeout`` (degrading to ``unresolved``), and
    an optional content-addressed result cache under ``cache_dir``.
    """
    # deferred import: repro.campaign.corpus imports this module
    from repro.campaign import CampaignConfig, run_corpus_campaign

    fields_by = {spec.name: list(fields)} if fields is not None else None
    runs, _, _ = run_corpus_campaign(
        [spec],
        CampaignConfig(jobs=jobs, timeout=timeout, cache_dir=cache_dir),
        refined=refined,
        fields_by_driver=fields_by,
        max_states=max_states,
        unresolved_budget=unresolved_budget,
        loc_scale=loc_scale,
    )
    return runs[0] if runs else DriverRunResult(spec.name)


def run_table1(
    specs: Optional[Sequence[DriverSpec]] = None, **kw
) -> List[DriverRunResult]:
    """Experiment E1: permissive harness over every field of every driver."""
    return [check_driver(s, refined=False, **kw) for s in (specs or DRIVER_SPECS)]


def run_table2(
    table1: Sequence[DriverRunResult],
    specs: Optional[Sequence[DriverSpec]] = None,
    **kw,
) -> List[DriverRunResult]:
    """Experiment E2: refined harness over the fields that raced in E1."""
    by_name = {r.name: r for r in table1}
    out = []
    for s in specs or DRIVER_SPECS:
        racy = by_name[s.name].racy_fields() if s.name in by_name else []
        if not racy:
            continue
        out.append(check_driver(s, refined=True, fields=racy, **kw))
    return out
