"""The toaster/toastmon race of Figure 6 — a confirmed bug in the paper.

``ToastMon_DispatchPnp`` writes ``DevicePnPState`` (to ``StopPending``)
while holding the remove lock, but the remove lock is a *reference
count*, not a mutex — it does not serialize the write against
``ToastMon_DispatchPower``'s unprotected read of the same field.  The
read/write race survives the refined harness because a Pnp query-stop
IRP and a Power IRP may legitimately run concurrently.

State encoding: ``DevicePnPState`` values 0 = Started, 1 = StopPending,
2 = Deleted (the constants of the real driver's enum).
"""

from __future__ import annotations

from repro.lang import parse_core
from repro.lang.ast import Program

from .osmodel import OS_MODEL_SRC

TOASTMON_SRC = (
    OS_MODEL_SRC
    + """
struct DEVICE_EXTENSION {
  int DevicePnPState;
  int RemoveLock;
  int OutstandingIO;
}

void ToastMon_DispatchPnp(DEVICE_EXTENSION *e) {
  int status;
  status = IoAcquireRemoveLock(&e->RemoveLock);
  // IRP_MN_QUERY_STOP_DEVICE: Race: write access
  e->DevicePnPState = 1;
  IoReleaseRemoveLock(&e->RemoveLock);
}

void ToastMon_DispatchPower(DEVICE_EXTENSION *e) {
  int state;
  // Race: read access (unprotected test against Deleted)
  state = e->DevicePnPState;
  if (state == 2) {
    return;
  }
  state = 0;
}

void main() {
  DEVICE_EXTENSION *e;
  e = malloc(DEVICE_EXTENSION);
  e->DevicePnPState = 0;
  e->RemoveLock = 0;
  e->OutstandingIO = 0;
  // the refined harness still allows a (query-stop Pnp, Power) pair
  async ToastMon_DispatchPower(e);
  ToastMon_DispatchPnp(e);
}
"""
)


def toastmon_program() -> Program:
    """The Figure 6 model as a core program."""
    return parse_core(TOASTMON_SRC)
