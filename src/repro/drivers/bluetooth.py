"""The simplified Bluetooth driver model of Figure 2, plus the fixed
variant the paper describes in Section 6.

The model has four pieces of shared state: the device extension fields
``pendingIo``, ``stoppingFlag``, ``stoppingEvent``, and the auxiliary
global ``stopped`` used to state the safety property.  ``main`` allocates
the extension, forks ``BCSP_PnpStop``, and calls ``BCSP_PnpAdd``.

Known defects (both found by KISS in the paper):

* a read/write race on ``stoppingFlag`` (unprotected write in
  ``BCSP_PnpStop`` vs. the read in ``BCSP_IoIncrement``), detectable with
  ``ts`` bound 0;
* the reference-counting assertion violation in ``BCSP_PnpAdd``
  (``BCSP_IoIncrement`` checks ``stoppingFlag`` *before* atomically
  incrementing ``pendingIo``, so the stop path can see the count reach
  zero while an add is still entering), detectable with ``ts`` bound 1.

The fixed variant makes ``BCSP_IoIncrement`` check the flag and bump the
count in one atomic action (the interlocked pattern the driver quality
team suggested), which removes the assertion violation.
"""

from __future__ import annotations

from repro.lang import parse_core
from repro.lang.ast import Program

DEVICE_EXTENSION = "DEVICE_EXTENSION"

BLUETOOTH_SRC = """
struct DEVICE_EXTENSION {
  int pendingIo;
  bool stoppingFlag;
  bool stoppingEvent;
}

bool stopped;

void main() {
  DEVICE_EXTENSION *e;
  e = malloc(DEVICE_EXTENSION);
  e->pendingIo = 1;
  e->stoppingFlag = false;
  e->stoppingEvent = false;
  stopped = false;
  async BCSP_PnpStop(e);
  BCSP_PnpAdd(e);
}

void BCSP_PnpAdd(DEVICE_EXTENSION *e) {
  int status;
  status = BCSP_IoIncrement(e);
  if (status == 0) {
    // do work here
    assert(!stopped);
  }
  BCSP_IoDecrement(e);
}

void BCSP_PnpStop(DEVICE_EXTENSION *e) {
  e->stoppingFlag = true;
  BCSP_IoDecrement(e);
  assume(e->stoppingEvent);
  // release allocated resources
  stopped = true;
}

int BCSP_IoIncrement(DEVICE_EXTENSION *e) {
  if (e->stoppingFlag) {
    return -1;
  }
  atomic { e->pendingIo = e->pendingIo + 1; }
  return 0;
}

void BCSP_IoDecrement(DEVICE_EXTENSION *e) {
  int pendingIo;
  atomic {
    e->pendingIo = e->pendingIo - 1;
    pendingIo = e->pendingIo;
  }
  if (pendingIo == 0) {
    e->stoppingEvent = true;
  }
}
"""

# The fix: test the flag and increment in one indivisible step, failing
# the increment if stopping has begun (InterlockedIncrement-style).
BLUETOOTH_FIXED_SRC = BLUETOOTH_SRC.replace(
    """int BCSP_IoIncrement(DEVICE_EXTENSION *e) {
  if (e->stoppingFlag) {
    return -1;
  }
  atomic { e->pendingIo = e->pendingIo + 1; }
  return 0;
}""",
    """int BCSP_IoIncrement(DEVICE_EXTENSION *e) {
  bool stopping;
  atomic {
    stopping = e->stoppingFlag;
    if (!stopping) {
      e->pendingIo = e->pendingIo + 1;
    }
  }
  if (stopping) {
    return -1;
  }
  return 0;
}""",
)


def bluetooth_program() -> Program:
    """The Figure 2 model as a core program."""
    return parse_core(BLUETOOTH_SRC)


def bluetooth_fixed_program() -> Program:
    """The repaired model (no assertion violation)."""
    return parse_core(BLUETOOTH_FIXED_SRC)
