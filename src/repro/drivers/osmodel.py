"""Models of the Windows kernel routines the drivers use.

The paper: "SLAM already provided stubs for these calls; we augmented
them to model the synchronization operations accurately.  Some of the
synchronization routines we modeled were KeAcquireSpinLock,
KeWaitForSingleObject, InterlockedCompareExchange, InterlockedIncrement,
etc."  These are the same encodings, written in the parallel language —
each primitive is an ``atomic``/``assume`` combination exactly as
Section 3 prescribes (``lock_acquire = atomic{assume(*l == 0); *l = 1}``).

``OS_MODEL_SRC`` is concatenated into every generated driver program.
Locks are plain ``int`` cells: 0 = free, 1 = held.  Events are ``bool``
cells: ``KeWaitForSingleObject`` blocks until true.
"""

OS_MODEL_SRC = """
// ---- Windows kernel synchronization models (see repro.drivers.osmodel) ----

void KeAcquireSpinLock(int *lock) {
  atomic { assume(*lock == 0); *lock = 1; }
}

void KeReleaseSpinLock(int *lock) {
  atomic { *lock = 0; }
}

int InterlockedIncrement(int *cell) {
  int v;
  atomic { *cell = *cell + 1; v = *cell; }
  return v;
}

int InterlockedDecrement(int *cell) {
  int v;
  atomic { *cell = *cell - 1; v = *cell; }
  return v;
}

int InterlockedCompareExchange(int *dest, int exchange, int comparand) {
  int old;
  atomic {
    old = *dest;
    if (old == comparand) { *dest = exchange; }
  }
  return old;
}

int InterlockedExchange(int *dest, int value) {
  int old;
  atomic { old = *dest; *dest = value; }
  return old;
}

void KeWaitForSingleObject(bool *event) {
  assume(*event);
}

void KeSetEvent(bool *event) {
  *event = true;
}

void KeClearEvent(bool *event) {
  *event = false;
}

// IoAcquireRemoveLock / IoReleaseRemoveLock: reference counting on an
// int cell; the paper's remove-lock idiom (toaster/toastmon, Figure 6).
int IoAcquireRemoveLock(int *count) {
  int v;
  v = InterlockedIncrement(count);
  return v;
}

void IoReleaseRemoveLock(int *count) {
  int v;
  v = InterlockedDecrement(count);
}
"""

#: Function names defined by the OS model (used by generators to avoid
#: accidental redefinition).
OS_MODEL_FUNCTIONS = (
    "KeAcquireSpinLock",
    "KeReleaseSpinLock",
    "InterlockedIncrement",
    "InterlockedDecrement",
    "InterlockedCompareExchange",
    "InterlockedExchange",
    "KeWaitForSingleObject",
    "KeSetEvent",
    "KeClearEvent",
    "IoAcquireRemoveLock",
    "IoReleaseRemoveLock",
)
