"""The fakemodem driver models from Section 6.

Two aspects of fakemodem appear in the paper:

* **Benign race on OpenCount**: the field counts threads executing in
  the driver and is incremented under a spin lock everywhere *except*
  one unprotected read that only tests for zero — the read is atomic
  anyway, so the programmer skipped the lock.  KISS (correctly) reports
  it; the paper discusses it as the motivating example for benign-race
  annotations (future work, implemented here as
  ``RaceTarget``-level suppression in the corpus runner).

* **Correct reference counting**: the paper introduced a ``stopped``
  auxiliary variable and assertions (as in the Bluetooth driver) and
  KISS reported no errors — fakemodem's increment routine tests the
  stopping flag and bumps the count in one interlocked action, i.e. it
  already implements the *fixed* Bluetooth pattern.
"""

from __future__ import annotations

from repro.lang import parse_core
from repro.lang.ast import Program

from .osmodel import OS_MODEL_SRC

FAKEMODEM_SRC = (
    OS_MODEL_SRC
    + """
struct DEVICE_EXTENSION {
  int OpenCount;
  bool Started;
  bool RemovePending;
  bool StopEvent;
}

int SpinLock;
bool stopped;

void FakeModem_Open(DEVICE_EXTENSION *e) {
  KeAcquireSpinLock(&SpinLock);
  e->OpenCount = e->OpenCount + 1;
  KeReleaseSpinLock(&SpinLock);
}

void FakeModem_Close(DEVICE_EXTENSION *e) {
  KeAcquireSpinLock(&SpinLock);
  e->OpenCount = e->OpenCount - 1;
  KeReleaseSpinLock(&SpinLock);
}

void FakeModem_CheckIdle(DEVICE_EXTENSION *e) {
  int count;
  // Benign race: a single unprotected read, only compared with 0;
  // the read is atomic already so the lock overhead was skipped.
  count = e->OpenCount;
  if (count == 0) {
    e->StopEvent = true;
  }
}

void main() {
  DEVICE_EXTENSION *e;
  e = malloc(DEVICE_EXTENSION);
  e->OpenCount = 0;
  e->Started = true;
  e->RemovePending = false;
  e->StopEvent = false;
  async FakeModem_Open(e);
  async FakeModem_Close(e);
  FakeModem_CheckIdle(e);
}
"""
)

# Reference counting done right: the interlocked test-and-increment
# (the fixed Bluetooth pattern) with the paper's auxiliary `stopped`
# variable and assertion.
FAKEMODEM_REFCOUNT_SRC = """
struct DEVICE_EXTENSION {
  int PendingIo;
  bool Stopping;
  bool StopEvent;
}

bool stopped;

int Fake_IoIncrement(DEVICE_EXTENSION *e) {
  bool stopping;
  atomic {
    stopping = e->Stopping;
    if (!stopping) {
      e->PendingIo = e->PendingIo + 1;
    }
  }
  if (stopping) {
    return -1;
  }
  return 0;
}

void Fake_IoDecrement(DEVICE_EXTENSION *e) {
  int pending;
  atomic {
    e->PendingIo = e->PendingIo - 1;
    pending = e->PendingIo;
  }
  if (pending == 0) {
    e->StopEvent = true;
  }
}

void Fake_DispatchIo(DEVICE_EXTENSION *e) {
  int status;
  status = Fake_IoIncrement(e);
  if (status == 0) {
    assert(!stopped);
    Fake_IoDecrement(e);
  }
}

void Fake_Stop(DEVICE_EXTENSION *e) {
  e->Stopping = true;
  Fake_IoDecrement(e);
  assume(e->StopEvent);
  stopped = true;
}

void main() {
  DEVICE_EXTENSION *e;
  e = malloc(DEVICE_EXTENSION);
  e->PendingIo = 1;
  e->Stopping = false;
  e->StopEvent = false;
  stopped = false;
  async Fake_Stop(e);
  Fake_DispatchIo(e);
}
"""


def fakemodem_program() -> Program:
    """The OpenCount (benign race) model."""
    return parse_core(FAKEMODEM_SRC)


def fakemodem_refcount_program() -> Program:
    """The reference-counting model (no assertion violation expected)."""
    return parse_core(FAKEMODEM_REFCOUNT_SRC)


# The same model with the §6.1 benign-race annotation applied: the
# programmer marks the deliberate unprotected read, and KISS skips it.
FAKEMODEM_ANNOTATED_SRC = FAKEMODEM_SRC.replace(
    """  // Benign race: a single unprotected read, only compared with 0;
  // the read is atomic already so the lock overhead was skipped.
  count = e->OpenCount;""",
    """  // Benign race: annotated, so check_r/check_w are not inserted.
  benign { count = e->OpenCount; }""",
)


def fakemodem_annotated_program() -> Program:
    """The OpenCount model with the benign annotation (no race reported)."""
    return parse_core(FAKEMODEM_ANNOTATED_SRC)
