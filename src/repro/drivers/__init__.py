"""Driver models and the synthetic Windows-driver corpus (Section 6)."""

from .bluetooth import DEVICE_EXTENSION, bluetooth_fixed_program, bluetooth_program
from .corpus import (
    DRIVER_SPECS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    check_driver,
    run_table1,
    run_table2,
    spec_by_name,
)
from .fakemodem import fakemodem_program, fakemodem_refcount_program
from .generator import generate_driver, generate_source
from .moufiltr import moufiltr_permissive_program, moufiltr_refined_program
from .spec import DriverSpec, FieldKind, FieldSpec, Routine
from .toastmon import toastmon_program

__all__ = [
    "DEVICE_EXTENSION",
    "bluetooth_program",
    "bluetooth_fixed_program",
    "toastmon_program",
    "fakemodem_program",
    "fakemodem_refcount_program",
    "moufiltr_permissive_program",
    "moufiltr_refined_program",
    "DRIVER_SPECS",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "DriverSpec",
    "FieldSpec",
    "FieldKind",
    "Routine",
    "check_driver",
    "run_table1",
    "run_table2",
    "spec_by_name",
    "generate_driver",
    "generate_source",
]
