"""Synthesis of driver models from :class:`~repro.drivers.spec.DriverSpec`.

Each generated driver follows the shape the paper describes: a device
extension allocated once in ``main``, a library of dispatch routines the
OS may call, a spin lock protecting the "clean" fields, and a two-thread
harness that nondeterministically picks a pair of dispatch routines
(``async`` one, call the other) — see :mod:`repro.drivers.harness`.

Field kinds map to access patterns:

* ``CLEAN`` — increment under ``KeAcquireSpinLock`` in one routine, read
  under the lock in another: race-free under every harness.
* ``RACY_REAL`` — the Figure 6 toastmon pattern: an unprotected write in
  the Pnp query-stop path races a read in the device-Power path, a pair
  every harness allows.
* ``RACY_A1``/``RACY_A2``/``RACY_A3``/``RACY_IOCTL`` — the same
  unprotected conflict, but placed in a routine pair that only the
  permissive harness runs concurrently (see ``SPURIOUS_PAIRS``).
* ``UNRESOLVED`` — lock-protected accesses inside the ``HeavyWork``
  helper; the corpus runner gives these fields the resource-bound
  outcome (see the substitution note in :mod:`repro.drivers.spec`).

``loc_scale`` adds filler helper code proportional to the paper's KLOC
figure so relative driver sizes are preserved (filler is never called —
it models code volume, not behavior).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.lang import parse_core
from repro.lang.ast import Program

from .osmodel import OS_MODEL_SRC
from .spec import (
    REAL_PAIR,
    SPURIOUS_PAIRS,
    DriverSpec,
    FieldKind,
    FieldSpec,
    Routine,
)
from .harness import harness_pairs

EXTENSION = "DEVICE_EXTENSION"

#: Routines every generated driver defines (the harness picks pairs).
ALL_ROUTINES: List[Routine] = list(Routine)


def _writer_reader(kind: FieldKind):
    if kind is FieldKind.RACY_REAL:
        return REAL_PAIR
    return SPURIOUS_PAIRS[kind]


class DriverGenerator:
    """Assembles one driver model from a spec (see module doc)."""
    def __init__(self, spec: DriverSpec, refined_harness: bool = False, loc_scale: int = 6):
        self.spec = spec
        self.refined = refined_harness
        self.loc_scale = loc_scale
        # routine -> list of body statements (source lines)
        self._bodies: Dict[Routine, List[str]] = {r: [] for r in ALL_ROUTINES}

    # -- source assembly -----------------------------------------------------------

    def source(self) -> str:
        self._place_field_accesses()
        parts = [self._header(), OS_MODEL_SRC, self._heavy_work()]
        parts.extend(self._routine(r) for r in ALL_ROUTINES)
        parts.append(self._main())
        parts.append(self._filler())
        return "\n".join(parts)

    def program(self) -> Program:
        """The generated driver as a core program."""
        return parse_core(self.source())

    def _header(self) -> str:
        fields = "\n".join(f"  int {f.name};" for f in self.spec.fields)
        return (
            f"// synthetic driver model: {self.spec.name} "
            f"({self.spec.kloc} KLOC in the paper)\n"
            f"struct {EXTENSION} {{\n{fields}\n}}\n"
            "int SpinLock;\n"
        )

    def _place_field_accesses(self) -> None:
        heavy: List[FieldSpec] = []
        clean: List[FieldSpec] = []
        for f in self.spec.fields:
            if f.kind is FieldKind.CLEAN:
                clean.append(f)
            elif f.kind is FieldKind.UNRESOLVED:
                heavy.append(f)
            else:
                self._add_racy(f)
        self._add_clean(clean)
        self._heavy_fields = heavy

    def _add_clean(self, fields: Sequence[FieldSpec]) -> None:
        # one locked section per routine covering all clean fields:
        # increments in WRITE, reads in READ (race-free under any harness)
        if not fields:
            return
        self._bodies[Routine.WRITE] += (
            ["KeAcquireSpinLock(&SpinLock);"]
            + [f"e->{f.name} = e->{f.name} + 1;" for f in fields]
            + ["KeReleaseSpinLock(&SpinLock);"]
        )
        reads: List[str] = ["KeAcquireSpinLock(&SpinLock);"]
        for f in fields:
            reads.append(f"tmp = e->{f.name};")
        reads += ["tmp = 0;", "KeReleaseSpinLock(&SpinLock);"]
        self._bodies[Routine.READ] += reads

    def _add_racy(self, f: FieldSpec) -> None:
        writer, reader = _writer_reader(f.kind)
        if writer == reader:
            # same-routine conflict (A3 / Ioctl pattern): an unprotected
            # read-modify-write — two concurrent instances race
            self._bodies[writer] += [
                f"tmp = e->{f.name};",
                f"e->{f.name} = tmp + 1;",
                "tmp = 0;",
            ]
        else:
            self._bodies[writer].append(f"e->{f.name} = 1;")
            self._bodies[reader] += [f"tmp = e->{f.name};", "tmp = 0;"]

    def _heavy_work(self) -> str:
        body = ["  KeAcquireSpinLock(&SpinLock);"]
        for f in getattr(self, "_heavy_fields", []):
            body.append(f"  e->{f.name} = e->{f.name} + 1;")
        body.append("  KeReleaseSpinLock(&SpinLock);")
        return f"void HeavyWork({EXTENSION} *e) {{\n" + "\n".join(body) + "\n}\n"

    def _routine(self, r: Routine) -> str:
        lines = ["  int tmp;"]
        lines += [f"  {line}" for line in self._bodies[r]]
        if r in (Routine.READ, Routine.WRITE):
            lines.append("  HeavyWork(e);")
        return f"void {r.value}({EXTENSION} *e) {{\n" + "\n".join(lines) + "\n}\n"

    def _main(self) -> str:
        pairs = harness_pairs(self.spec, ALL_ROUTINES, refined=self.refined)
        branches = []
        for a, b in pairs:
            branches.append(f"{{ async {b.value}(e); {a.value}(e); }}")
        init = "\n".join(f"  e->{f.name} = 0;" for f in self.spec.fields)
        choice = "  choice " + " or ".join(branches) if branches else "  skip;"
        return (
            "void main() {\n"
            f"  {EXTENSION} *e;\n"
            f"  e = malloc({EXTENSION});\n"
            f"{init}\n"
            f"{choice}\n"
            "}\n"
        )

    def _filler(self) -> str:
        """Uncalled helper functions scaling source volume with the paper's
        KLOC figure (code volume only — never executed)."""
        n = max(0, int(self.spec.kloc * self.loc_scale))
        funcs = []
        for i in range(n):
            funcs.append(
                f"int {self.spec_safe_name()}_helper{i}(int x) {{\n"
                "  int a; int b;\n"
                "  a = x + 1;\n"
                "  b = a * 2;\n"
                "  if (b > 10) { b = b - x; } else { b = b + x; }\n"
                "  return b;\n"
                "}\n"
            )
        return "\n".join(funcs)

    def spec_safe_name(self) -> str:
        name = self.spec.name.replace("/", "_").replace("-", "_")
        # "1394diag" etc. would otherwise yield an illegal identifier
        return name if not name[:1].isdigit() else f"drv{name}"


def generate_driver(spec: DriverSpec, refined_harness: bool = False, loc_scale: int = 6) -> Program:
    """Generate the driver model for ``spec`` as a core program."""
    return DriverGenerator(spec, refined_harness=refined_harness, loc_scale=loc_scale).program()


def generate_source(spec: DriverSpec, refined_harness: bool = False, loc_scale: int = 6) -> str:
    """Generate the driver model as source text."""
    return DriverGenerator(spec, refined_harness=refined_harness, loc_scale=loc_scale).source()
