"""Checking-as-a-service: a long-lived JSON API over the campaign engine.

``python -m repro serve`` hosts a zero-dependency (stdlib asyncio)
HTTP/1.1 service on a shared
:class:`~repro.campaign.runtime.CampaignRuntime` — the same engine the
batch CLI and the fuzz runner drive, so a program checked over HTTP
yields the identical verdict and the identical content-addressed cache
entry as the same program checked in a batch campaign.

Layers:

* :mod:`service` — admission policy (per-tenant token-bucket quotas,
  bounded queue with 429 backpressure, cache/in-flight dedupe), the
  engine thread, the drain ladder, and the per-job ``kiss-serve/1``
  event records;
* :mod:`http` — the asyncio HTTP frontage (``/v1/jobs``,
  ``/v1/swarm``, ``/healthz``, ``/stats``, NDJSON event streams,
  ``DELETE`` cancellation) and :func:`run_server` /
  :class:`ServerThread`;
* :mod:`client` — the stdlib client used by tests and CI.

Protocol and semantics: docs/SERVICE.md.
"""

from repro.schemas import (  # noqa: F401  (re-exported API)
    SERVE_CACHE_STATES,
    SERVE_EVENTS,
    SERVE_SCHEMA,
    validate_serve_event,
)

from .client import ServeClient, ServeError
from .http import ServerThread, run_server
from .service import (
    AdmissionError,
    CheckService,
    JobRecord,
    ServeConfig,
    SwarmRecord,
    TokenBucket,
)

__all__ = [
    "AdmissionError",
    "CheckService",
    "JobRecord",
    "ServeConfig",
    "SwarmRecord",
    "ServeClient",
    "ServeError",
    "ServerThread",
    "TokenBucket",
    "run_server",
    "SERVE_SCHEMA",
    "SERVE_EVENTS",
    "SERVE_CACHE_STATES",
    "validate_serve_event",
]
