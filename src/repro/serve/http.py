"""The HTTP/1.1 frontage of the checking service (stdlib asyncio only).

A deliberately small close-delimited protocol — every response carries
``Connection: close``, so clients never need chunked decoding and the
NDJSON event stream simply ends when the connection does:

====== ============================ =========================================
POST   ``/v1/jobs``                 submit (JSON body; see ``repro.serve``)
GET    ``/v1/jobs/<id>``            status; ``?wait=S`` long-polls completion
GET    ``/v1/jobs/<id>/events``     the ``kiss-serve/1`` NDJSON event stream
DELETE ``/v1/jobs/<id>``            cooperative cancel (stream ends
                                    ``cancelled``)
POST   ``/v1/swarm``                server-side swarm fan-out (tiles,
                                    first-error cancellation)
GET    ``/v1/swarm/<id>``           swarm status; ``?wait=S`` long-polls
GET    ``/v1/swarm/<id>/events``    interleaved tile events + aggregate done
DELETE ``/v1/swarm/<id>``           cancel every unsettled tile
GET    ``/healthz``                 liveness / drain state
GET    ``/stats``                   admission counters, queue, cache, obs
====== ============================ =========================================

Submission responses: 200 (answered from the persistent cache — the
status document is already final), 202 (admitted; fresh or deduped onto
an identical in-flight job), 400 (malformed), 429 (tenant quota or full
admission queue; ``Retry-After`` header set), 503 (draining).  The
tenant is the ``X-Kiss-Tenant`` header, else the body's ``tenant``
field, else ``"anon"``.

:func:`run_server` is the ``python -m repro serve`` entry point: it
prints one ``serve_listening`` JSON line to stdout once bound (so
callers using ``--port 0`` can discover the port), and wires signals to
the service's drain ladder — first SIGTERM/SIGINT stops admission and
finishes admitted work, a second one degrades the not-yet-started
backlog, exactly like a batch campaign interrupt.  Blocking service
calls run in the loop's default executor so slow checks never stall
``/healthz``.

:class:`ServerThread` hosts the same server on a background thread for
tests and embedding.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
from typing import Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from .service import AdmissionError, CheckService

#: Pacing of the NDJSON event stream's poll of the record (seconds).
STREAM_POLL_S = 0.03

#: Cap on ``?wait=`` long-polling (seconds).
MAX_WAIT_S = 120.0

_MAX_BODY = 8 * 1024 * 1024


def _response(status: int, body: bytes, content_type: str = "application/json",
              extra_headers: Tuple[Tuple[str, str], ...] = ()) -> bytes:
    reason = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
              405: "Method Not Allowed", 413: "Payload Too Large",
              429: "Too Many Requests", 500: "Internal Server Error",
              503: "Service Unavailable"}.get(status, "Unknown")
    head = [f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close"]
    head.extend(f"{k}: {v}" for k, v in extra_headers)
    return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body


def _json_response(status: int, doc: dict,
                   extra_headers: Tuple[Tuple[str, str], ...] = ()) -> bytes:
    return _response(status, (json.dumps(doc) + "\n").encode("utf-8"),
                     extra_headers=extra_headers)


def _error(status: int, message: str,
           retry_after: Optional[float] = None) -> bytes:
    extra = ()
    if retry_after is not None:
        extra = (("Retry-After", f"{retry_after:.3f}"),)
    return _json_response(status, {"error": message}, extra_headers=extra)


class _BadRequest(Exception):
    pass


async def _read_request(reader: asyncio.StreamReader):
    line = await reader.readline()
    if not line:
        return None
    try:
        method, raw_path, _version = line.decode("ascii").split()
    except ValueError:
        raise _BadRequest("malformed request line")
    headers = {}
    while True:
        h = await reader.readline()
        if h in (b"\r\n", b"\n", b""):
            break
        name, _, value = h.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _BadRequest("bad Content-Length")
    if length > _MAX_BODY:
        raise _BadRequest("body too large")
    body = await reader.readexactly(length) if length else b""
    return method, raw_path, headers, body


class _Handler:
    """Routes one connection; one instance per server."""

    def __init__(self, service: CheckService):
        self.service = service

    async def __call__(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await _read_request(reader)
                if request is None:
                    return
                method, raw_path, headers, body = request
            except (_BadRequest, asyncio.IncompleteReadError, UnicodeDecodeError):
                writer.write(_error(400, "malformed request"))
                return
            await self._route(writer, method, raw_path, headers, body)
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception as exc:  # never take the server down for one request
            try:
                writer.write(_error(500, f"internal error: {exc!r}"))
            except ConnectionError:
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
            except ConnectionError:
                pass

    async def _route(self, writer, method: str, raw_path: str, headers, body: bytes) -> None:
        loop = asyncio.get_running_loop()
        parts = urlsplit(raw_path)
        path = unquote(parts.path)
        query = parse_qs(parts.query)

        if path == "/healthz" and method == "GET":
            writer.write(_json_response(200, self.service.healthz_doc()))
            return
        if path == "/stats" and method == "GET":
            writer.write(_json_response(200, self.service.stats_doc()))
            return
        if path in ("/v1/jobs", "/v1/swarm") and method == "POST":
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                writer.write(_error(400, "body is not valid JSON"))
                return
            tenant = headers.get("x-kiss-tenant") or (
                payload.get("tenant") if isinstance(payload, dict) else None) or "anon"
            admit = (self.service.submit if path == "/v1/jobs"
                     else self.service.submit_swarm)
            try:
                status, doc = await loop.run_in_executor(None, admit, tenant, payload)
            except AdmissionError as exc:
                writer.write(_error(exc.status, exc.error, exc.retry_after))
                return
            writer.write(_json_response(status, doc))
            return
        for prefix, getter, streamer, canceller in (
            ("/v1/jobs/", self.service.get, self.service.events_since,
             self.service.cancel),
            ("/v1/swarm/", self.service.get_swarm, self.service.swarm_events_since,
             self.service.cancel_swarm),
        ):
            if not path.startswith(prefix):
                continue
            rest = path[len(prefix):]
            if method == "DELETE":
                got = await loop.run_in_executor(None, canceller, rest)
                if got is None:
                    writer.write(_error(404, f"unknown id {rest!r}"))
                    return
                status, doc = got
                writer.write(_json_response(status, doc))
                return
            if method != "GET":
                break
            if rest.endswith("/events"):
                await self._stream_events(
                    writer, rest[: -len("/events")].rstrip("/"), streamer)
                return
            wait_s = None
            if "wait" in query:
                try:
                    wait_s = min(float(query["wait"][0]), MAX_WAIT_S)
                except ValueError:
                    writer.write(_error(400, "bad wait parameter"))
                    return
            doc = await loop.run_in_executor(None, getter, rest, wait_s)
            if doc is None:
                writer.write(_error(404, f"unknown id {rest!r}"))
                return
            writer.write(_json_response(200, doc))
            return
        if (path in ("/healthz", "/stats", "/v1/jobs", "/v1/swarm")
                or path.startswith(("/v1/jobs/", "/v1/swarm/"))):
            writer.write(_error(405, f"method {method} not allowed on {path}"))
            return
        writer.write(_error(404, f"no such route {path!r}"))

    async def _stream_events(self, writer, stream_id: str, events_since) -> None:
        """The close-delimited NDJSON stream: replay the record's events
        and follow it until its terminal event, then close."""
        first = events_since(stream_id, 0)
        if first is None:
            writer.write(_error(404, f"unknown id {stream_id!r}"))
            return
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        sent = 0
        while True:
            got = events_since(stream_id, sent)
            if got is None:  # evicted mid-stream: the stream just ends
                return
            events, finished = got
            for event in events:
                writer.write((json.dumps(event) + "\n").encode("utf-8"))
            sent += len(events)
            await writer.drain()
            if finished and not events:
                return
            if finished:
                continue  # flush any events that landed with the terminal
            await asyncio.sleep(STREAM_POLL_S)


async def _serve(service: CheckService, host: str, port: int,
                 ready_cb=None, install_signals: bool = False) -> None:
    server = await asyncio.start_server(_Handler(service), host, port)
    bound = server.sockets[0].getsockname()
    if ready_cb is not None:
        ready_cb(bound[0], bound[1])

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()

    if install_signals:
        signalled = {"n": 0}

        def on_signal():
            signalled["n"] += 1
            if signalled["n"] == 1:
                service.drain()
            else:
                service.degrade_pending()

        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, on_signal)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

    async def watch_engine():
        while not service.stopped:
            await asyncio.sleep(0.05)
        stop.set()

    watcher = asyncio.ensure_future(watch_engine())
    try:
        await stop.wait()
    finally:
        watcher.cancel()
        server.close()
        await server.wait_closed()


def run_server(service: CheckService, host: str = "127.0.0.1", port: int = 8731,
               ready_stream=None) -> int:
    """Serve until drained (the ``python -m repro serve`` main loop).

    Prints the ``serve_listening`` ready line to ``ready_stream``
    (default stdout) once bound; returns the process exit code (0 — a
    drain-triggered exit is the *clean* path)."""
    stream = sys.stdout if ready_stream is None else ready_stream

    def ready(bound_host: str, bound_port: int):
        stream.write(json.dumps({"event": "serve_listening", "host": bound_host,
                                 "port": bound_port}) + "\n")
        stream.flush()

    try:
        asyncio.run(_serve(service, host, port, ready_cb=ready, install_signals=True))
    finally:
        service.stop()
    return 0


class ServerThread:
    """An HTTP server on a background thread, for tests and embedding.

    Context-manager use::

        with ServerThread(CheckService(config)) as srv:
            client = ServeClient("127.0.0.1", srv.port)
    """

    def __init__(self, service: CheckService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port: Optional[int] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, args=(host, port),
                                        name="kiss-serve-http", daemon=True)
        self._thread.start()
        self._ready.wait(10.0)
        if self._error is not None:
            raise self._error
        if self.port is None:
            raise RuntimeError("server thread failed to bind")

    def _run(self, host: str, port: int) -> None:
        try:
            asyncio.run(self._main(host, port))
        except BaseException as exc:  # surface bind errors to the constructor
            self._error = exc
            self._ready.set()

    async def _main(self, host: str, port: int) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(_Handler(self.service), host, port)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()

    def close(self) -> None:
        """Stop the HTTP listener and shut the service down."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # loop already gone
                pass
        self._thread.join(10.0)
        self.service.stop()

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
