"""The checking service core: admission, quotas, dedupe, drain.

:class:`CheckService` is the third frontend over
:class:`~repro.campaign.runtime.CampaignRuntime` (after the batch
scheduler and the fuzz runner): a long-lived engine thread pumps the
runtime forever while HTTP handler threads admit work through
:meth:`submit`.  The service owns the *service* policy the batch
frontend has no use for:

* **per-tenant token-bucket quotas** — a tenant sustaining more than
  ``quota_rate`` submissions/s (above a ``quota_burst`` burst) is
  rejected with a retry hint, not queued without bound;
* **bounded admission** — at most ``max_queue`` distinct jobs may be
  admitted-but-unfinished; past that, submission fails with
  backpressure (HTTP 429) instead of growing an unbounded backlog;
* **dedupe** — a submission whose cache key matches a persisted result
  answers immediately (``cache: "hit"``); one matching a job already
  in flight piggybacks on it (``cache: "dedup"``) and streams the same
  lifecycle events under its own job id;
* **graceful drain** — :meth:`drain` stops admission (503) while the
  engine finishes everything already admitted; :meth:`degrade_pending`
  (the second-signal path) additionally degrades the not-yet-started
  backlog to ``resource-bound``, exactly like a batch campaign's
  SIGTERM remainder.  Either way every stream ends with a schema-valid
  terminal event;
* **cancellation** — :meth:`cancel` (HTTP ``DELETE /v1/jobs/<id>``)
  cooperatively cancels one admitted job: a deduped rider detaches
  alone (the underlying check keeps running for its siblings), the last
  record on a key cancels the runtime job itself
  (:meth:`~repro.campaign.runtime.CampaignRuntime.request_cancel`),
  and the stream ends with a ``cancelled`` terminal event.  Cancelled
  jobs are never cached and never produce a verdict;
* **server-side swarms** — :meth:`submit_swarm` (``POST /v1/swarm``)
  fans one program out into schedule tiles (:mod:`repro.campaign.swarm`)
  on the shared engine; tile lifecycle events stream both on the tile
  records and interleaved into the swarm's own stream, first-error
  cancellation stops sibling tiles the moment any tile errs, and the
  aggregate verdict (witness re-check included) lands as one ``done``
  event on the swarm stream;
* **durability** — with a ``journal_path`` every admission writes a
  ``kiss-journal/1`` write-ahead record through the runtime
  (:mod:`repro.campaign.journal`); ``resume=True`` replays the journal
  at startup, answers recovered jobs from the result cache where
  possible, and re-enqueues the rest (no quota charge), so a ``kill
  -9``'d server picks up exactly the work it still owed.

Each admitted submission gets a :class:`JobRecord` accumulating its
``kiss-serve/1`` event stream (``queued`` → ``started`` → ``retry``* →
``done`` | ``cancelled``); handler threads read records under the
service lock and long-poll on the record's ``done`` event.  Chaos
behavior is inherited: a :class:`~repro.faults.FaultPlan` installs in
the engine thread and ships to pool workers (the ``engine_crash`` point
fires at the top of every engine step), and the runtime's retry/degrade
policy holds for served traffic (faults may cost coverage, never a
wrong verdict — docs/ROBUSTNESS.md).

Caveat (shared with in-process batch runs): with ``jobs <= 1`` the
engine checks in its own thread, where the ``SIGALRM``-based per-job
timeout cannot arm, so ``timeout`` is only enforced with ``jobs >= 2``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import faults, obs, package_version
from repro.campaign.cache import cache_key
from repro.campaign.jobs import KISS_DEFAULTS, CheckJob, JobResult
from repro.campaign.journal import replay as journal_replay
from repro.campaign.runtime import CampaignConfig, CampaignRuntime
from repro.campaign.swarm import SwarmReport, TilePlan, aggregate, plan_tiles, swarm_jobs
from repro.campaign.telemetry import Telemetry
from repro.faults import FaultPlan
from repro.obs import make_event
from repro.schemas import SERVE_SCHEMA, validate_serve_event

#: Completed records retained for late ``GET`` readers before eviction.
DONE_RETENTION = 4096

#: Config keys a submission may override (everything else is a 400).
_ALLOWED_CONFIG = set(KISS_DEFAULTS)


class AdmissionError(Exception):
    """A submission the service refuses; carries the HTTP shape."""

    def __init__(self, status: int, error: str, retry_after: Optional[float] = None):
        super().__init__(error)
        self.status = status
        self.error = error
        self.retry_after = retry_after


@dataclass
class ServeConfig:
    """Service knobs: the engine subset mirrors
    :class:`~repro.campaign.runtime.CampaignConfig` (``deadline`` has no
    service analogue — a server has no end); the rest is admission
    policy."""

    jobs: int = 1
    timeout: Optional[float] = None
    retries: int = 1
    cache_dir: Optional[str] = None
    memory_limit: Optional[int] = None
    fault_plan: Optional[FaultPlan] = None
    telemetry_path: Optional[str] = None
    #: sustained submissions/second allowed per tenant ...
    quota_rate: float = 20.0
    #: ... above an initial burst of this many.
    quota_burst: int = 40
    #: admitted-but-unfinished jobs (distinct cache keys) before 429.
    max_queue: int = 256
    #: engine wait granularity (pool poll / idle sleep), seconds.
    poll_s: float = 0.05
    #: write-ahead job journal destination (None = no durability).
    journal_path: Optional[str] = None
    #: replay the journal at startup and re-enqueue the incomplete jobs.
    resume: bool = False
    #: hedged-retry latency quantile (see ``CampaignConfig.hedge``).
    hedge: Optional[float] = None


class TokenBucket:
    """Classic token bucket; ``clock`` is injectable for tests."""

    def __init__(self, rate: float, burst: int, clock=time.monotonic):
        self.rate = float(rate)
        self.burst = float(max(1, burst))
        self._clock = clock
        self._tokens = self.burst
        self._t = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._t) * self.rate)
        self._t = now

    def try_take(self) -> bool:
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until the next token exists (0 when one is ready)."""
        self._refill()
        missing = 1.0 - self._tokens
        return 0.0 if missing <= 0 else missing / self.rate


@dataclass
class JobRecord:
    """One admitted submission and its ``kiss-serve/1`` event stream.

    Deduped followers are separate records sharing the primary's cache
    key: they receive the same lifecycle events relabelled with their
    own job id."""

    job_id: str
    tenant: str
    key: str
    deduped: bool
    #: the parsed job spec (every record keeps its own — riders too),
    #: so a cancellation can synthesize a result without the runtime.
    job: Optional[CheckJob] = None
    events: List[dict] = field(default_factory=list)
    result: Optional[JobResult] = None
    done: threading.Event = field(default_factory=threading.Event)

    def status_doc(self) -> dict:
        terminal = next(
            (e for e in reversed(self.events) if e["event"] in ("done", "cancelled")),
            None,
        )
        state = "queued"
        if self.done.is_set():
            state = "cancelled" if (
                terminal is not None and terminal["event"] == "cancelled"
            ) else "done"
        elif any(e["event"] == "started" for e in self.events):
            state = "running"
        out: Dict[str, Any] = {
            "job": self.job_id,
            "tenant": self.tenant,
            "state": state,
            "deduped": self.deduped,
            "events": len(self.events),
            "result": None,
        }
        if self.result is not None and terminal is not None:
            out["result"] = {
                "verdict": self.result.verdict,
                "error_kind": self.result.error_kind,
                "attempts": terminal.get("attempts", self.result.attempts),
                "cache": terminal.get("cache"),
                "wall_s": terminal.get("wall_s", round(self.result.wall_s, 6)),
                "detail": self.result.detail,
            }
        return out


@dataclass
class SwarmRecord:
    """One server-side swarm: N tile jobs plus the aggregate stream.

    The swarm's event list interleaves every tile's lifecycle events
    (each tagged with the tile's own job id) and ends with exactly one
    aggregate ``done`` event tagged with the swarm id."""

    swarm_id: str
    tenant: str
    source: str
    plan: TilePlan
    por: bool
    max_states: int
    first_error: bool
    tile_ids: List[str]
    events: List[dict] = field(default_factory=list)
    #: tile job_id -> settled result (terminal events only).
    results: Dict[str, JobResult] = field(default_factory=dict)
    report: Optional[SwarmReport] = None
    #: the first-error cancellation fired (at most once per swarm).
    cancelled_sent: bool = False
    done: threading.Event = field(default_factory=threading.Event)

    def status_doc(self) -> dict:
        out: Dict[str, Any] = {
            "swarm": self.swarm_id,
            "tenant": self.tenant,
            "state": "done" if self.done.is_set() else "running",
            "tiles": len(self.tile_ids),
            "tile_jobs": list(self.tile_ids),
            "exhaustive": self.plan.exhaustive,
            "first_error": self.first_error,
            "settled": len(self.results),
            "events": len(self.events),
            "verdict": None,
        }
        if self.report is not None:
            out["verdict"] = self.report.verdict
            out["witness_tile"] = self.report.witness_tile
            out["trace_validated"] = self.report.trace_validated
            out["trace"] = self.report.trace
            out["cancelled_tiles"] = sum(
                1 for r in self.results.values() if r.verdict == "cancelled"
            )
        return out


class _ServiceTelemetry(Telemetry):
    """The engine's telemetry stream, teed into serve event records:
    ``job_start``/``job_retry`` emitted by the runtime during a pump
    become ``started``/``retry`` events on every record attached to the
    job's cache key."""

    def __init__(self, service: "CheckService", path: Optional[str] = None):
        super().__init__(path)
        self._service = service

    def emit(self, event: str, **fields) -> dict:
        obj = super().emit(event, **fields)
        if event == "job_start":
            self._service._fanout(fields["job"], "started", attempt=fields["attempt"])
        elif event == "job_retry":
            self._service._fanout(fields["job"], "retry", attempt=fields["attempt"],
                                  reason=fields["reason"])
        return obj


class CheckService:
    """The long-lived checking service (see module doc).

    Thread model: HTTP handlers call :meth:`submit` / :meth:`get` /
    :meth:`events_since` from any thread; one engine thread owns the
    runtime.  All shared state lives behind ``_lock``.  Tests may pass
    ``start_engine=False`` to drive :meth:`pump_once` deterministically.
    """

    def __init__(self, config: Optional[ServeConfig] = None, start_engine: bool = True):
        self.config = config or ServeConfig()
        self.runtime = CampaignRuntime(CampaignConfig(
            jobs=self.config.jobs,
            timeout=self.config.timeout,
            retries=self.config.retries,
            cache_dir=self.config.cache_dir,
            memory_limit=self.config.memory_limit,
            fault_plan=self.config.fault_plan,
            journal_path=self.config.journal_path,
            hedge=self.config.hedge,
        ))
        self.runtime.origin = "serve"
        self._lock = threading.RLock()
        self._t0 = time.monotonic()
        self._tel = _ServiceTelemetry(self, self.config.telemetry_path)
        #: job_id -> record, insertion-ordered for done-record eviction.
        self._records: "OrderedDict[str, JobRecord]" = OrderedDict()
        #: cache key -> records riding the in-flight check of that key.
        self._active: Dict[str, List[JobRecord]] = {}
        #: cache key -> the job id actually submitted to the runtime.
        self._key_job: Dict[str, str] = {}
        #: admitted jobs the engine has not yet moved into the runtime.
        self._inbox: List[Tuple[CheckJob, str, str]] = []
        #: swarm_id -> record, insertion-ordered for eviction.
        self._swarms: "OrderedDict[str, SwarmRecord]" = OrderedDict()
        #: tile job_id -> its swarm, while the tile is unsettled.
        self._swarm_by_tile: Dict[str, SwarmRecord] = {}
        #: fully settled swarms awaiting aggregation (engine thread,
        #: outside the lock — the witness re-check is a real check).
        self._swarm_ready: List[SwarmRecord] = []
        self._buckets: Dict[str, TokenBucket] = {}
        self._seq = 0
        self.draining = False
        self._force_detail: Optional[str] = None
        self.counts: Dict[str, int] = {
            "submitted": 0, "completed": 0, "cancelled": 0, "cache_hits": 0,
            "deduped": 0, "swarms": 0, "cancel_requests": 0, "recovered": 0,
            "rejected_quota": 0, "rejected_queue": 0, "rejected_invalid": 0,
            "rejected_draining": 0,
        }
        #: the ``kiss-recovery/1`` summary of a ``resume=True`` startup.
        self.recovery: Optional[dict] = None
        if self.config.resume:
            self._recover()
        self._engine: Optional[threading.Thread] = None
        self._engine_stopped = threading.Event()
        if start_engine:
            self.start()

    def _recover(self) -> None:
        """Replay the journal and re-own every incomplete job: answer
        from the result cache where possible (writing the owed ``done``
        terminal record), re-enqueue the rest — no quota charge, the
        work was admitted before the crash."""
        journal = self.runtime.journal
        if not journal.enabled:
            return
        plan = journal_replay(self.config.journal_path)
        self.recovery = plan.summary_doc()
        for job in plan.jobs:
            # a recovered id may collide with nothing (ids are
            # tenant/seq and _seq resumes past them, below)
            key = plan.keys.get(job.job_id) or cache_key(job)
            tenant = plan.tenants.get(job.job_id) or "anon"
            record = JobRecord(job_id=job.job_id, tenant=tenant, key=key,
                               deduped=False, job=job)
            self._records[job.job_id] = record
            self._push(record, self._event("queued", job.job_id, tenant=tenant,
                                           key=key, deduped=False))
            tail = job.job_id.rsplit("/", 1)[-1]
            try:
                self._seq = max(self._seq, int(tail) + 1)
            except ValueError:
                pass
            hit = self.runtime.cache.get(key)
            if hit is not None:
                # crash landed between the cache append and the journal
                # terminal: settle from the cache, close the journal.
                self.counts["cache_hits"] += 1
                journal.done(job.job_id, hit.verdict)
                result = dataclasses.replace(hit, job_id=job.job_id,
                                             driver=job.driver)
                self._complete(record, result, cache_state="hit")
                continue
            riders = self._active.get(key)
            if riders is not None:
                record.deduped = True
                riders.append(record)
                continue
            self._active[key] = [record]
            self._key_job[key] = job.job_id
            self._inbox.append((job, key, tenant))
            self.counts["recovered"] += 1
        self._tel.emit("recovery", path=self.config.journal_path,
                       **{k: v for k, v in self.recovery.items() if k != "schema"})

    # -- engine lifecycle --------------------------------------------------------

    def start(self) -> None:
        if self._engine is not None:
            return
        self._engine = threading.Thread(target=self._engine_loop,
                                        name="kiss-serve-engine", daemon=True)
        self._engine.start()

    def _engine_loop(self) -> None:
        try:
            with faults.plan_context(self.config.fault_plan):
                while self._engine_step():
                    pass
        finally:
            self.runtime.close()
            self._engine_stopped.set()

    def _engine_step(self) -> bool:
        """One engine iteration; False once a drain has completed."""
        rt = self.runtime
        faults.fire("engine_crash")
        with self._lock:
            for job, key, tenant in self._inbox:
                rt.submit(job, key, tenant=tenant)
            self._inbox.clear()
            if self._force_detail is not None and rt.backlog:
                for job, key, result in rt.drain_pending(self._force_detail):
                    self._finish(job, key, result)
        if not rt.idle:
            finished = rt.pump(self._tel, submit=True, poll_s=self.config.poll_s)
            with self._lock:
                for job, key, result in finished:
                    self._finish(job, key, result)
        # Aggregate fully settled swarms on this thread, outside the
        # lock — the witness re-check is an ordinary in-process check.
        ready = self._take_ready_swarms()
        for swarm in ready:
            self._aggregate_swarm(swarm)
        with self._lock:
            if (self.draining and rt.idle and not self._inbox
                    and not self._swarm_ready):
                return False
        if rt.idle and not ready:
            time.sleep(self.config.poll_s)
        return True

    def pump_once(self) -> None:
        """Drive one engine iteration on the calling thread (only valid
        with ``start_engine=False``; deterministic tests use this)."""
        with faults.plan_context(self.config.fault_plan):
            self._engine_step()

    @property
    def stopped(self) -> bool:
        """True once the engine thread has drained and exited."""
        return self._engine is not None and self._engine_stopped.is_set()

    def drain(self) -> None:
        """Stop admitting (submissions get 503); the engine finishes
        everything already admitted, then exits."""
        with self._lock:
            self.draining = True

    def degrade_pending(self, detail: str = "interrupted: SIGTERM") -> None:
        """Second-signal drain: also degrade the not-yet-started backlog
        to ``resource-bound`` (in-flight work still completes)."""
        with self._lock:
            self.draining = True
            self._force_detail = detail

    def stop(self, timeout: float = 30.0) -> None:
        """Shut down for tests/embedding: force-drain and join the
        engine, then close the telemetry stream."""
        self.degrade_pending("interrupted: shutdown")
        if self._engine is not None:
            self._engine_stopped.wait(timeout)
        self._tel.close()

    # -- admission ---------------------------------------------------------------

    def submit(self, tenant: str, payload: dict) -> Tuple[int, dict]:
        """Admit one submission; returns ``(http_status, body)``.

        200 = answered from the persistent cache (already done),
        202 = admitted (fresh, or deduped onto an identical in-flight
        job), and :class:`AdmissionError` carries the 4xx/5xx shape.
        """
        with self._lock:
            if self.draining:
                self.counts["rejected_draining"] += 1
                raise AdmissionError(503, "draining: not admitting new jobs")
            bucket = self._buckets.setdefault(
                tenant, TokenBucket(self.config.quota_rate, self.config.quota_burst))
            if not bucket.try_take():
                self.counts["rejected_quota"] += 1
                obs.inc("serve_rejected_quota")
                raise AdmissionError(429, f"quota exceeded for tenant {tenant!r}",
                                     retry_after=max(0.05, bucket.retry_after()))
            try:
                job_id = f"{tenant}/{self._seq}"
                job = self._job_from_payload(job_id, tenant, payload)
                key = cache_key(job)
            except AdmissionError:
                self.counts["rejected_invalid"] += 1
                raise
            record = JobRecord(job_id=job_id, tenant=tenant, key=key,
                               deduped=False, job=job)

            hit = self.runtime.cache.get(key)
            if hit is not None:
                self._seq += 1
                self.counts["cache_hits"] += 1
                obs.inc("serve_cache_hits")
                self._records[job_id] = record
                record.events.append(self._event("queued", job_id, tenant=tenant,
                                                 key=key, deduped=False))
                result = dataclasses.replace(hit, job_id=job_id, driver=job.driver)
                self._complete(record, result, cache_state="hit")
                self._evict_done()
                return 200, record.status_doc()

            riders = self._active.get(key)
            if riders is not None:
                self._seq += 1
                record.deduped = True
                self.counts["deduped"] += 1
                obs.inc("serve_deduped")
                riders.append(record)
                self._records[job_id] = record
                record.events.append(self._event("queued", job_id, tenant=tenant,
                                                 key=key, deduped=True))
                return 202, record.status_doc()

            if len(self._active) >= self.config.max_queue:
                self.counts["rejected_queue"] += 1
                obs.inc("serve_rejected_queue")
                raise AdmissionError(429, "admission queue full",
                                     retry_after=1.0)

            self._seq += 1
            self.counts["submitted"] += 1
            obs.inc("serve_submissions")
            self._active[key] = [record]
            self._key_job[key] = job_id
            self._records[job_id] = record
            self._inbox.append((job, key, tenant))
            record.events.append(self._event("queued", job_id, tenant=tenant,
                                             key=key, deduped=False))
            return 202, record.status_doc()

    # -- swarm admission ----------------------------------------------------------

    def submit_swarm(self, tenant: str, payload: dict) -> Tuple[int, dict]:
        """Admit one swarm: plan the tiles server-side and fan them out
        as ordinary tile jobs on the shared engine.  Returns
        ``(202, swarm status doc)``; the aggregate verdict arrives as
        the swarm stream's ``done`` event once every tile settles."""
        with self._lock:
            if self.draining:
                self.counts["rejected_draining"] += 1
                raise AdmissionError(503, "draining: not admitting new jobs")
            bucket = self._buckets.setdefault(
                tenant, TokenBucket(self.config.quota_rate, self.config.quota_burst))
            if not bucket.try_take():
                self.counts["rejected_quota"] += 1
                obs.inc("serve_rejected_quota")
                raise AdmissionError(429, f"quota exceeded for tenant {tenant!r}",
                                     retry_after=max(0.05, bucket.retry_after()))
            try:
                params = self._swarm_from_payload(payload)
            except AdmissionError:
                self.counts["rejected_invalid"] += 1
                raise
            swarm_id = f"{tenant}/swarm{self._seq}"
            try:
                plan = plan_tiles(params["program"], tiles=params["tiles"],
                                  rounds=params["rounds"], seed=params["seed"])
            except Exception as exc:
                self.counts["rejected_invalid"] += 1
                raise AdmissionError(400, f"swarm planning failed: {exc}")
            jobs = swarm_jobs(params["program"], plan,
                              max_states=params["max_states"],
                              por=params["por"], name=swarm_id)
            if len(self._active) + len(jobs) > self.config.max_queue:
                self.counts["rejected_queue"] += 1
                obs.inc("serve_rejected_queue")
                raise AdmissionError(429, "admission queue full", retry_after=1.0)
            self._seq += 1
            self.counts["swarms"] += 1
            obs.inc("serve_swarms")
            swarm = SwarmRecord(
                swarm_id=swarm_id, tenant=tenant, source=params["program"],
                plan=plan, por=params["por"], max_states=params["max_states"],
                first_error=params["first_error"],
                tile_ids=[j.job_id for j in jobs],
            )
            self._swarms[swarm_id] = swarm
            swarm.events.append(self._event(
                "queued", swarm_id, tenant=tenant,
                key=hashlib.sha256(params["program"].encode()).hexdigest(),
                deduped=False))
            for job in jobs:
                key = cache_key(job)
                record = JobRecord(job_id=job.job_id, tenant=tenant, key=key,
                                   deduped=False, job=job)
                self._records[job.job_id] = record
                self._swarm_by_tile[job.job_id] = swarm
                self._push(record, self._event("queued", job.job_id, tenant=tenant,
                                               key=key, deduped=False))
                hit = self.runtime.cache.get(key)
                if hit is not None:
                    self.counts["cache_hits"] += 1
                    obs.inc("serve_cache_hits")
                    result = dataclasses.replace(hit, job_id=job.job_id,
                                                 driver=job.driver)
                    self._complete(record, result, cache_state="hit")
                    continue
                riders = self._active.get(key)
                if riders is not None:
                    record.deduped = True
                    self.counts["deduped"] += 1
                    riders.append(record)
                    continue
                self.counts["submitted"] += 1
                self._active[key] = [record]
                self._key_job[key] = job.job_id
                self._inbox.append((job, key, tenant))
            self._evict_done()
            return 202, swarm.status_doc()

    def _swarm_from_payload(self, payload: dict) -> Dict[str, Any]:
        if not isinstance(payload, dict):
            raise AdmissionError(400, "swarm body must be a JSON object")
        program = payload.get("program")
        if not isinstance(program, str) or not program.strip():
            raise AdmissionError(400, "swarm needs a non-empty 'program' string")
        out: Dict[str, Any] = {"program": program}
        for name, default, lo, hi in (("tiles", 8, 1, 64), ("rounds", 3, 1, 16),
                                      ("seed", 0, 0, 2**31), ("max_states", 300_000, 1, 10**8)):
            value = payload.get(name, default)
            if not isinstance(value, int) or isinstance(value, bool) or not (lo <= value <= hi):
                raise AdmissionError(400, f"'{name}' must be an int in [{lo}, {hi}]")
            out[name] = value
        for name in ("por", "first_error"):
            value = payload.get(name, False)
            if not isinstance(value, bool):
                raise AdmissionError(400, f"'{name}' must be a boolean")
            out[name] = value
        return out

    # -- cancellation -------------------------------------------------------------

    def cancel(self, job_id: str, reason: str = "client-cancel") -> Optional[Tuple[int, dict]]:
        """Cooperatively cancel one admitted job (``DELETE
        /v1/jobs/<id>``).  Returns None for an unknown id, ``(409, ...)``
        when the job already finished, ``(200, status)`` when it settled
        immediately (still queued, or a deduped rider detaching), and
        ``(202, status)`` when the in-flight attempt will settle as
        ``cancelled`` within one backend poll."""
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                return None
            self.counts["cancel_requests"] += 1
            if record.done.is_set():
                return 409, {"error": f"job {job_id} already finished",
                             "status": record.status_doc()}
            self._cancel_record_locked(record, reason)
            status = 200 if record.done.is_set() else 202
            return status, record.status_doc()

    def cancel_swarm(self, swarm_id: str, reason: str = "client-cancel"
                     ) -> Optional[Tuple[int, dict]]:
        """Cancel every unsettled tile of a swarm; the aggregate still
        runs once the tiles settle (cancelled tiles make it
        ``resource-bound`` unless an error already landed)."""
        with self._lock:
            swarm = self._swarms.get(swarm_id)
            if swarm is None:
                return None
            self.counts["cancel_requests"] += 1
            if swarm.done.is_set():
                return 409, {"error": f"swarm {swarm_id} already finished",
                             "status": swarm.status_doc()}
            self._cancel_swarm_siblings(swarm, reason=reason)
            return 202, swarm.status_doc()

    def _cancel_record_locked(self, record: JobRecord, reason: str) -> None:
        """Deliver one cancellation (caller holds the lock).  A record
        sharing its key with other live records detaches alone; the last
        record on a key cancels the underlying runtime job."""
        riders = self._active.get(record.key, [])
        others = [r for r in riders if r.job_id != record.job_id and not r.done.is_set()]
        if others:
            # Detach just this record; the check keeps running for the
            # siblings.  The runtime job (journal included) is untouched.
            if record in riders:
                riders.remove(record)
            self._complete(record, self.runtime._cancelled_result(
                record.job, reason), cache_state="off")
            self._evict_done()
            return
        for i, (job, key, _tenant) in enumerate(self._inbox):
            if key == record.key:
                # Not yet handed to the runtime: settle right here.
                del self._inbox[i]
                self._active.pop(record.key, None)
                self._key_job.pop(record.key, None)
                self._complete(record, self.runtime._cancelled_result(
                    job, reason), cache_state="off")
                self._evict_done()
                return
        runtime_id = self._key_job.get(record.key)
        if runtime_id is None or not self.runtime.request_cancel(runtime_id, reason):
            # The runtime does not know the job (engine already finished
            # it and the completion is racing us, or it was lost to a
            # pool rebuild): leave the record alone — its terminal event
            # arrives through the ordinary completion path.
            return

    def _cancel_swarm_siblings(self, swarm: SwarmRecord, reason: str) -> None:
        """First-error (or client) cancellation: cancel every tile of
        ``swarm`` that has not settled yet.  Caller holds the lock."""
        for tile_id in swarm.tile_ids:
            if tile_id in swarm.results:
                continue
            record = self._records.get(tile_id)
            if record is not None and not record.done.is_set():
                self._cancel_record_locked(record, reason)

    def _job_from_payload(self, job_id: str, tenant: str, payload: dict) -> CheckJob:
        if not isinstance(payload, dict):
            raise AdmissionError(400, "submission body must be a JSON object")
        program = payload.get("program")
        if not isinstance(program, str) or not program.strip():
            raise AdmissionError(400, "submission needs a non-empty 'program' string")
        prop = payload.get("prop", "assertion")
        if prop not in ("race", "assertion", "fuzz"):
            raise AdmissionError(400, f"unknown prop {prop!r}")
        target = payload.get("target")
        if target is not None and not isinstance(target, str):
            raise AdmissionError(400, "'target' must be a string")
        if prop == "race" and not target:
            raise AdmissionError(400, "race jobs need a 'target'")
        config = payload.get("config", {})
        if not isinstance(config, dict):
            raise AdmissionError(400, "'config' must be an object")
        unknown = [k for k in config
                   if k not in _ALLOWED_CONFIG and not k.startswith("fuzz_")]
        if unknown:
            raise AdmissionError(400, f"unknown config keys: {sorted(unknown)}")
        driver = payload.get("driver", tenant)
        if not isinstance(driver, str) or not driver:
            raise AdmissionError(400, "'driver' must be a non-empty string")
        try:
            return CheckJob(job_id=job_id, driver=driver, source=program,
                            prop=prop, target=target, config=dict(config))
        except ValueError as exc:
            raise AdmissionError(400, str(exc))

    # -- completion and event fan-out --------------------------------------------

    def _event(self, name: str, job_id: str, **fields) -> dict:
        obj = make_event(name, time.monotonic() - self._t0, **fields)
        obj["schema"] = SERVE_SCHEMA
        obj["job"] = job_id
        return validate_serve_event(obj)

    def _push(self, record: JobRecord, event: dict) -> None:
        """Append one event to a record, interleaving it into the owning
        swarm's stream when the record is a tile.  Caller holds the
        lock."""
        record.events.append(event)
        swarm = self._swarm_by_tile.get(record.job_id)
        if swarm is not None:
            swarm.events.append(event)

    def _fanout(self, job_id: str, name: str, **fields) -> None:
        """Relabel one runtime lifecycle event onto every record riding
        the job's cache key (called from telemetry, engine thread)."""
        with self._lock:
            primary = self._records.get(job_id)
            if primary is None:
                return
            for r in self._active.get(primary.key, [primary]):
                self._push(r, self._event(name, r.job_id, **fields))

    def _finish(self, job: CheckJob, key: str, result: JobResult) -> None:
        """Record one finished job (cache append + telemetry) and
        complete every record riding its key.  Caller holds the lock."""
        self.runtime.record(self._tel, job, key, result)
        self._key_job.pop(key, None)
        primary_cache = "miss" if self.runtime.cache.enabled else "off"
        for r in self._active.pop(key, []):
            res = dataclasses.replace(result, job_id=r.job_id)
            self._complete(r, res, cache_state="dedup" if r.deduped else primary_cache)
        self._evict_done()

    def _complete(self, record: JobRecord, result: JobResult, cache_state: str) -> None:
        record.result = result
        if result.verdict == "cancelled":
            # Cancellation is its own terminal event: no verdict, no
            # cache provenance, just the reason.
            self._push(record, self._event(
                "cancelled", record.job_id, reason=result.detail or "cancelled"))
            self.counts["cancelled"] += 1
            obs.inc("serve_cancelled")
            record.done.set()
            self._tile_settled(record, result)
            return
        extra: Dict[str, Any] = {}
        if result.witness is not None:
            # Certificate provenance only — the full kiss-witness/1
            # document stays on the result; streams carry the claim
            # (kind + program digest), not the megabyte of states.
            extra["witness"] = {
                "kind": result.witness["kind"],
                "program_sha256": result.witness["program_sha256"],
            }
        self._push(record, self._event(
            "done", record.job_id,
            verdict=result.verdict, error_kind=result.error_kind,
            attempts=result.attempts, cache=cache_state,
            wall_s=round(result.wall_s, 6), states=result.states,
            detail=result.detail, version=package_version(), **extra,
        ))
        self.counts["completed"] += 1
        record.done.set()
        self._tile_settled(record, result)

    # -- swarm settlement and aggregation ------------------------------------------

    def _tile_settled(self, record: JobRecord, result: JobResult) -> None:
        """Note one tile's terminal result on its swarm; fire the
        first-error cancellation and queue the aggregate when the last
        tile lands.  No-op for ordinary jobs.  Caller holds the lock."""
        swarm = self._swarm_by_tile.pop(record.job_id, None)
        if swarm is None:
            return
        swarm.results[record.job_id] = result
        if (swarm.first_error and result.verdict == "error"
                and not swarm.cancelled_sent):
            swarm.cancelled_sent = True
            self._cancel_swarm_siblings(swarm, reason="first-error")
        if len(swarm.results) == len(swarm.tile_ids) and swarm.report is None:
            self._swarm_ready.append(swarm)

    def _take_ready_swarms(self) -> List[SwarmRecord]:
        with self._lock:
            ready, self._swarm_ready = self._swarm_ready, []
            return ready

    def _aggregate_swarm(self, swarm: SwarmRecord) -> None:
        """Fold one fully settled swarm (engine thread, outside the
        lock: an error verdict re-checks the witnessing tile in process
        with trace mapping and replay on)."""
        results = [swarm.results[tid] for tid in swarm.tile_ids]
        report = aggregate(swarm.source, swarm.plan, results,
                           max_states=swarm.max_states, por=swarm.por)
        with self._lock:
            swarm.report = report
            detail = f"swarm {report.verdict}: {len(results)} tiles"
            cancelled = sum(1 for r in results if r.verdict == "cancelled")
            if cancelled:
                detail += f", {cancelled} cancelled"
            if report.witness_tile is not None:
                validated = "replay-validated" if report.trace_validated else "not validated"
                detail += f", witness tile {report.witness_tile} ({validated})"
            witness = results[report.witness_tile] if report.witness_tile is not None else None
            swarm.events.append(self._event(
                "done", swarm.swarm_id,
                verdict=report.verdict,
                error_kind=witness.error_kind if witness is not None else None,
                attempts=sum(r.attempts for r in results),
                cache="aggregate",
                wall_s=round(sum(r.wall_s for r in results), 6),
                states=sum(r.states for r in results),
                detail=detail, version=package_version(),
            ))
            swarm.done.set()
            self._tel.emit("swarm_done", swarm=swarm.swarm_id,
                           verdict=report.verdict, tiles=len(results),
                           cancelled=cancelled,
                           witness_tile=report.witness_tile,
                           trace_validated=report.trace_validated)

    def _evict_done(self) -> None:
        """Bound the record index: drop the oldest *completed* records
        past the retention cap (live records are never evicted)."""
        excess = len(self._records) - DONE_RETENTION
        if excess > 0:
            for job_id in [jid for jid, r in self._records.items()
                           if r.done.is_set()][:excess]:
                del self._records[job_id]
        excess = len(self._swarms) - DONE_RETENTION
        if excess > 0:
            for swarm_id in [sid for sid, s in self._swarms.items()
                             if s.done.is_set()][:excess]:
                del self._swarms[swarm_id]

    # -- reads -------------------------------------------------------------------

    def get(self, job_id: str, wait_s: Optional[float] = None) -> Optional[dict]:
        """The status document for a job, or None for an unknown id.
        ``wait_s`` long-polls on completion (bounded by the caller)."""
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            return None
        if wait_s:
            record.done.wait(min(wait_s, 300.0))
        with self._lock:
            return record.status_doc()

    def events_since(self, job_id: str, start: int) -> Optional[Tuple[List[dict], bool]]:
        """``(new events, stream finished)`` for a job from index
        ``start``, or None for an unknown id."""
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                return None
            return list(record.events[start:]), record.done.is_set()

    def get_swarm(self, swarm_id: str, wait_s: Optional[float] = None) -> Optional[dict]:
        """The status document for a swarm, or None for an unknown id.
        ``wait_s`` long-polls on the aggregate verdict."""
        with self._lock:
            swarm = self._swarms.get(swarm_id)
        if swarm is None:
            return None
        if wait_s:
            swarm.done.wait(min(wait_s, 300.0))
        with self._lock:
            return swarm.status_doc()

    def swarm_events_since(self, swarm_id: str, start: int
                           ) -> Optional[Tuple[List[dict], bool]]:
        """``(new events, stream finished)`` for a swarm — the
        interleaved tile streams plus the final aggregate ``done``."""
        with self._lock:
            swarm = self._swarms.get(swarm_id)
            if swarm is None:
                return None
            return list(swarm.events[start:]), swarm.done.is_set()

    def stats_doc(self) -> dict:
        """The ``/stats`` document: admission counters, queue shape,
        cache state, and the process obs counters."""
        with self._lock:
            rt = self.runtime
            return {
                "version": package_version(),
                "uptime_s": round(time.monotonic() - self._t0, 3),
                "draining": self.draining,
                "workers": max(1, self.config.jobs),
                "counts": dict(self.counts),
                "queue": {
                    "active": len(self._active),
                    "inbox": len(self._inbox),
                    "backlog": rt.backlog,
                    "inflight": rt.inflight,
                    "max_queue": self.config.max_queue,
                    "swarms_open": sum(
                        1 for s in self._swarms.values() if not s.done.is_set()),
                },
                "journal": {
                    "enabled": rt.journal.enabled,
                    "path": rt.journal.path,
                    "write_errors": rt.journal.write_errors,
                },
                "recovery": self.recovery,
                "quota": {"rate": self.config.quota_rate,
                          "burst": self.config.quota_burst},
                "cache": {
                    "enabled": rt.cache.enabled,
                    "entries": len(rt.cache),
                    "hits": rt.cache.hits,
                    "misses": rt.cache.misses,
                    "write_errors": rt.cache.write_errors,
                },
                "telemetry_write_errors": self._tel.write_errors,
                "obs": obs.current().counters.as_dict()
                       if obs.current().enabled else {},
            }

    def healthz_doc(self) -> dict:
        return {
            "status": "draining" if self.draining else "ok",
            "version": package_version(),
            "uptime_s": round(time.monotonic() - self._t0, 3),
        }
