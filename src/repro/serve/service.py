"""The checking service core: admission, quotas, dedupe, drain.

:class:`CheckService` is the third frontend over
:class:`~repro.campaign.runtime.CampaignRuntime` (after the batch
scheduler and the fuzz runner): a long-lived engine thread pumps the
runtime forever while HTTP handler threads admit work through
:meth:`submit`.  The service owns the *service* policy the batch
frontend has no use for:

* **per-tenant token-bucket quotas** — a tenant sustaining more than
  ``quota_rate`` submissions/s (above a ``quota_burst`` burst) is
  rejected with a retry hint, not queued without bound;
* **bounded admission** — at most ``max_queue`` distinct jobs may be
  admitted-but-unfinished; past that, submission fails with
  backpressure (HTTP 429) instead of growing an unbounded backlog;
* **dedupe** — a submission whose cache key matches a persisted result
  answers immediately (``cache: "hit"``); one matching a job already
  in flight piggybacks on it (``cache: "dedup"``) and streams the same
  lifecycle events under its own job id;
* **graceful drain** — :meth:`drain` stops admission (503) while the
  engine finishes everything already admitted; :meth:`degrade_pending`
  (the second-signal path) additionally degrades the not-yet-started
  backlog to ``resource-bound``, exactly like a batch campaign's
  SIGTERM remainder.  Either way every stream ends with a schema-valid
  ``done`` event.

Each admitted submission gets a :class:`JobRecord` accumulating its
``kiss-serve/1`` event stream (``queued`` → ``started`` → ``retry``* →
``done``); handler threads read records under the service lock and
long-poll on the record's ``done`` event.  Chaos behavior is inherited:
a :class:`~repro.faults.FaultPlan` installs in the engine thread and
ships to pool workers, and the runtime's retry/degrade policy holds for
served traffic (faults may cost coverage, never a wrong verdict —
docs/ROBUSTNESS.md).

Caveat (shared with in-process batch runs): with ``jobs <= 1`` the
engine checks in its own thread, where the ``SIGALRM``-based per-job
timeout cannot arm, so ``timeout`` is only enforced with ``jobs >= 2``.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import faults, obs, package_version
from repro.campaign.cache import cache_key
from repro.campaign.jobs import KISS_DEFAULTS, CheckJob, JobResult
from repro.campaign.runtime import CampaignConfig, CampaignRuntime
from repro.campaign.telemetry import Telemetry
from repro.faults import FaultPlan
from repro.obs import make_event
from repro.schemas import SERVE_SCHEMA, validate_serve_event

#: Completed records retained for late ``GET`` readers before eviction.
DONE_RETENTION = 4096

#: Config keys a submission may override (everything else is a 400).
_ALLOWED_CONFIG = set(KISS_DEFAULTS)


class AdmissionError(Exception):
    """A submission the service refuses; carries the HTTP shape."""

    def __init__(self, status: int, error: str, retry_after: Optional[float] = None):
        super().__init__(error)
        self.status = status
        self.error = error
        self.retry_after = retry_after


@dataclass
class ServeConfig:
    """Service knobs: the engine subset mirrors
    :class:`~repro.campaign.runtime.CampaignConfig` (``deadline`` has no
    service analogue — a server has no end); the rest is admission
    policy."""

    jobs: int = 1
    timeout: Optional[float] = None
    retries: int = 1
    cache_dir: Optional[str] = None
    memory_limit: Optional[int] = None
    fault_plan: Optional[FaultPlan] = None
    telemetry_path: Optional[str] = None
    #: sustained submissions/second allowed per tenant ...
    quota_rate: float = 20.0
    #: ... above an initial burst of this many.
    quota_burst: int = 40
    #: admitted-but-unfinished jobs (distinct cache keys) before 429.
    max_queue: int = 256
    #: engine wait granularity (pool poll / idle sleep), seconds.
    poll_s: float = 0.05


class TokenBucket:
    """Classic token bucket; ``clock`` is injectable for tests."""

    def __init__(self, rate: float, burst: int, clock=time.monotonic):
        self.rate = float(rate)
        self.burst = float(max(1, burst))
        self._clock = clock
        self._tokens = self.burst
        self._t = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._t) * self.rate)
        self._t = now

    def try_take(self) -> bool:
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until the next token exists (0 when one is ready)."""
        self._refill()
        missing = 1.0 - self._tokens
        return 0.0 if missing <= 0 else missing / self.rate


@dataclass
class JobRecord:
    """One admitted submission and its ``kiss-serve/1`` event stream.

    Deduped followers are separate records sharing the primary's cache
    key: they receive the same lifecycle events relabelled with their
    own job id."""

    job_id: str
    tenant: str
    key: str
    deduped: bool
    events: List[dict] = field(default_factory=list)
    result: Optional[JobResult] = None
    done: threading.Event = field(default_factory=threading.Event)

    def status_doc(self) -> dict:
        state = "queued"
        if self.done.is_set():
            state = "done"
        elif any(e["event"] == "started" for e in self.events):
            state = "running"
        out: Dict[str, Any] = {
            "job": self.job_id,
            "tenant": self.tenant,
            "state": state,
            "deduped": self.deduped,
            "events": len(self.events),
            "result": None,
        }
        if self.result is not None:
            done = next(e for e in reversed(self.events) if e["event"] == "done")
            out["result"] = {
                "verdict": self.result.verdict,
                "error_kind": self.result.error_kind,
                "attempts": done["attempts"],
                "cache": done["cache"],
                "wall_s": done["wall_s"],
                "detail": self.result.detail,
            }
        return out


class _ServiceTelemetry(Telemetry):
    """The engine's telemetry stream, teed into serve event records:
    ``job_start``/``job_retry`` emitted by the runtime during a pump
    become ``started``/``retry`` events on every record attached to the
    job's cache key."""

    def __init__(self, service: "CheckService", path: Optional[str] = None):
        super().__init__(path)
        self._service = service

    def emit(self, event: str, **fields) -> dict:
        obj = super().emit(event, **fields)
        if event == "job_start":
            self._service._fanout(fields["job"], "started", attempt=fields["attempt"])
        elif event == "job_retry":
            self._service._fanout(fields["job"], "retry", attempt=fields["attempt"],
                                  reason=fields["reason"])
        return obj


class CheckService:
    """The long-lived checking service (see module doc).

    Thread model: HTTP handlers call :meth:`submit` / :meth:`get` /
    :meth:`events_since` from any thread; one engine thread owns the
    runtime.  All shared state lives behind ``_lock``.  Tests may pass
    ``start_engine=False`` to drive :meth:`pump_once` deterministically.
    """

    def __init__(self, config: Optional[ServeConfig] = None, start_engine: bool = True):
        self.config = config or ServeConfig()
        self.runtime = CampaignRuntime(CampaignConfig(
            jobs=self.config.jobs,
            timeout=self.config.timeout,
            retries=self.config.retries,
            cache_dir=self.config.cache_dir,
            memory_limit=self.config.memory_limit,
            fault_plan=self.config.fault_plan,
        ))
        self._lock = threading.RLock()
        self._t0 = time.monotonic()
        self._tel = _ServiceTelemetry(self, self.config.telemetry_path)
        #: job_id -> record, insertion-ordered for done-record eviction.
        self._records: "OrderedDict[str, JobRecord]" = OrderedDict()
        #: cache key -> records riding the in-flight check of that key.
        self._active: Dict[str, List[JobRecord]] = {}
        #: admitted jobs the engine has not yet moved into the runtime.
        self._inbox: List[Tuple[CheckJob, str]] = []
        self._buckets: Dict[str, TokenBucket] = {}
        self._seq = 0
        self.draining = False
        self._force_detail: Optional[str] = None
        self.counts: Dict[str, int] = {
            "submitted": 0, "completed": 0, "cache_hits": 0, "deduped": 0,
            "rejected_quota": 0, "rejected_queue": 0, "rejected_invalid": 0,
            "rejected_draining": 0,
        }
        self._engine: Optional[threading.Thread] = None
        self._engine_stopped = threading.Event()
        if start_engine:
            self.start()

    # -- engine lifecycle --------------------------------------------------------

    def start(self) -> None:
        if self._engine is not None:
            return
        self._engine = threading.Thread(target=self._engine_loop,
                                        name="kiss-serve-engine", daemon=True)
        self._engine.start()

    def _engine_loop(self) -> None:
        try:
            with faults.plan_context(self.config.fault_plan):
                while self._engine_step():
                    pass
        finally:
            self.runtime.close()
            self._engine_stopped.set()

    def _engine_step(self) -> bool:
        """One engine iteration; False once a drain has completed."""
        rt = self.runtime
        with self._lock:
            for job, key in self._inbox:
                rt.submit(job, key)
            self._inbox.clear()
            if self._force_detail is not None and rt.backlog:
                for job, key, result in rt.drain_pending(self._force_detail):
                    self._finish(job, key, result)
            if self.draining and rt.idle and not self._inbox:
                return False
        if rt.idle:
            time.sleep(self.config.poll_s)
            return True
        finished = rt.pump(self._tel, submit=True, poll_s=self.config.poll_s)
        with self._lock:
            for job, key, result in finished:
                self._finish(job, key, result)
        return True

    def pump_once(self) -> None:
        """Drive one engine iteration on the calling thread (only valid
        with ``start_engine=False``; deterministic tests use this)."""
        with faults.plan_context(self.config.fault_plan):
            self._engine_step()

    @property
    def stopped(self) -> bool:
        """True once the engine thread has drained and exited."""
        return self._engine is not None and self._engine_stopped.is_set()

    def drain(self) -> None:
        """Stop admitting (submissions get 503); the engine finishes
        everything already admitted, then exits."""
        with self._lock:
            self.draining = True

    def degrade_pending(self, detail: str = "interrupted: SIGTERM") -> None:
        """Second-signal drain: also degrade the not-yet-started backlog
        to ``resource-bound`` (in-flight work still completes)."""
        with self._lock:
            self.draining = True
            self._force_detail = detail

    def stop(self, timeout: float = 30.0) -> None:
        """Shut down for tests/embedding: force-drain and join the
        engine, then close the telemetry stream."""
        self.degrade_pending("interrupted: shutdown")
        if self._engine is not None:
            self._engine_stopped.wait(timeout)
        self._tel.close()

    # -- admission ---------------------------------------------------------------

    def submit(self, tenant: str, payload: dict) -> Tuple[int, dict]:
        """Admit one submission; returns ``(http_status, body)``.

        200 = answered from the persistent cache (already done),
        202 = admitted (fresh, or deduped onto an identical in-flight
        job), and :class:`AdmissionError` carries the 4xx/5xx shape.
        """
        with self._lock:
            if self.draining:
                self.counts["rejected_draining"] += 1
                raise AdmissionError(503, "draining: not admitting new jobs")
            bucket = self._buckets.setdefault(
                tenant, TokenBucket(self.config.quota_rate, self.config.quota_burst))
            if not bucket.try_take():
                self.counts["rejected_quota"] += 1
                obs.inc("serve_rejected_quota")
                raise AdmissionError(429, f"quota exceeded for tenant {tenant!r}",
                                     retry_after=max(0.05, bucket.retry_after()))
            try:
                job_id = f"{tenant}/{self._seq}"
                job = self._job_from_payload(job_id, tenant, payload)
                key = cache_key(job)
            except AdmissionError:
                self.counts["rejected_invalid"] += 1
                raise
            record = JobRecord(job_id=job_id, tenant=tenant, key=key, deduped=False)

            hit = self.runtime.cache.get(key)
            if hit is not None:
                self._seq += 1
                self.counts["cache_hits"] += 1
                obs.inc("serve_cache_hits")
                self._records[job_id] = record
                record.events.append(self._event("queued", job_id, tenant=tenant,
                                                 key=key, deduped=False))
                result = dataclasses.replace(hit, job_id=job_id, driver=job.driver)
                self._complete(record, result, cache_state="hit")
                self._evict_done()
                return 200, record.status_doc()

            riders = self._active.get(key)
            if riders is not None:
                self._seq += 1
                record.deduped = True
                self.counts["deduped"] += 1
                obs.inc("serve_deduped")
                riders.append(record)
                self._records[job_id] = record
                record.events.append(self._event("queued", job_id, tenant=tenant,
                                                 key=key, deduped=True))
                return 202, record.status_doc()

            if len(self._active) >= self.config.max_queue:
                self.counts["rejected_queue"] += 1
                obs.inc("serve_rejected_queue")
                raise AdmissionError(429, "admission queue full",
                                     retry_after=1.0)

            self._seq += 1
            self.counts["submitted"] += 1
            obs.inc("serve_submissions")
            self._active[key] = [record]
            self._records[job_id] = record
            self._inbox.append((job, key))
            record.events.append(self._event("queued", job_id, tenant=tenant,
                                             key=key, deduped=False))
            return 202, record.status_doc()

    def _job_from_payload(self, job_id: str, tenant: str, payload: dict) -> CheckJob:
        if not isinstance(payload, dict):
            raise AdmissionError(400, "submission body must be a JSON object")
        program = payload.get("program")
        if not isinstance(program, str) or not program.strip():
            raise AdmissionError(400, "submission needs a non-empty 'program' string")
        prop = payload.get("prop", "assertion")
        if prop not in ("race", "assertion", "fuzz"):
            raise AdmissionError(400, f"unknown prop {prop!r}")
        target = payload.get("target")
        if target is not None and not isinstance(target, str):
            raise AdmissionError(400, "'target' must be a string")
        if prop == "race" and not target:
            raise AdmissionError(400, "race jobs need a 'target'")
        config = payload.get("config", {})
        if not isinstance(config, dict):
            raise AdmissionError(400, "'config' must be an object")
        unknown = [k for k in config
                   if k not in _ALLOWED_CONFIG and not k.startswith("fuzz_")]
        if unknown:
            raise AdmissionError(400, f"unknown config keys: {sorted(unknown)}")
        driver = payload.get("driver", tenant)
        if not isinstance(driver, str) or not driver:
            raise AdmissionError(400, "'driver' must be a non-empty string")
        try:
            return CheckJob(job_id=job_id, driver=driver, source=program,
                            prop=prop, target=target, config=dict(config))
        except ValueError as exc:
            raise AdmissionError(400, str(exc))

    # -- completion and event fan-out --------------------------------------------

    def _event(self, name: str, job_id: str, **fields) -> dict:
        obj = make_event(name, time.monotonic() - self._t0, **fields)
        obj["schema"] = SERVE_SCHEMA
        obj["job"] = job_id
        return validate_serve_event(obj)

    def _fanout(self, job_id: str, name: str, **fields) -> None:
        """Relabel one runtime lifecycle event onto every record riding
        the job's cache key (called from telemetry, engine thread)."""
        with self._lock:
            primary = self._records.get(job_id)
            if primary is None:
                return
            for r in self._active.get(primary.key, [primary]):
                r.events.append(self._event(name, r.job_id, **fields))

    def _finish(self, job: CheckJob, key: str, result: JobResult) -> None:
        """Record one finished job (cache append + telemetry) and
        complete every record riding its key.  Caller holds the lock."""
        self.runtime.record(self._tel, job, key, result)
        primary_cache = "miss" if self.runtime.cache.enabled else "off"
        for r in self._active.pop(key, []):
            res = dataclasses.replace(result, job_id=r.job_id)
            self._complete(r, res, cache_state="dedup" if r.deduped else primary_cache)
        self._evict_done()

    def _complete(self, record: JobRecord, result: JobResult, cache_state: str) -> None:
        record.result = result
        extra: Dict[str, Any] = {}
        if result.witness is not None:
            # Certificate provenance only — the full kiss-witness/1
            # document stays on the result; streams carry the claim
            # (kind + program digest), not the megabyte of states.
            extra["witness"] = {
                "kind": result.witness["kind"],
                "program_sha256": result.witness["program_sha256"],
            }
        record.events.append(self._event(
            "done", record.job_id,
            verdict=result.verdict, error_kind=result.error_kind,
            attempts=result.attempts, cache=cache_state,
            wall_s=round(result.wall_s, 6), states=result.states,
            detail=result.detail, version=package_version(), **extra,
        ))
        self.counts["completed"] += 1
        record.done.set()

    def _evict_done(self) -> None:
        """Bound the record index: drop the oldest *completed* records
        past the retention cap (live records are never evicted)."""
        excess = len(self._records) - DONE_RETENTION
        if excess <= 0:
            return
        for job_id in [jid for jid, r in self._records.items() if r.done.is_set()][:excess]:
            del self._records[job_id]

    # -- reads -------------------------------------------------------------------

    def get(self, job_id: str, wait_s: Optional[float] = None) -> Optional[dict]:
        """The status document for a job, or None for an unknown id.
        ``wait_s`` long-polls on completion (bounded by the caller)."""
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            return None
        if wait_s:
            record.done.wait(min(wait_s, 300.0))
        with self._lock:
            return record.status_doc()

    def events_since(self, job_id: str, start: int) -> Optional[Tuple[List[dict], bool]]:
        """``(new events, stream finished)`` for a job from index
        ``start``, or None for an unknown id."""
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                return None
            return list(record.events[start:]), record.done.is_set()

    def stats_doc(self) -> dict:
        """The ``/stats`` document: admission counters, queue shape,
        cache state, and the process obs counters."""
        with self._lock:
            rt = self.runtime
            return {
                "version": package_version(),
                "uptime_s": round(time.monotonic() - self._t0, 3),
                "draining": self.draining,
                "workers": max(1, self.config.jobs),
                "counts": dict(self.counts),
                "queue": {
                    "active": len(self._active),
                    "inbox": len(self._inbox),
                    "backlog": rt.backlog,
                    "inflight": rt.inflight,
                    "max_queue": self.config.max_queue,
                },
                "quota": {"rate": self.config.quota_rate,
                          "burst": self.config.quota_burst},
                "cache": {
                    "enabled": rt.cache.enabled,
                    "entries": len(rt.cache),
                    "hits": rt.cache.hits,
                    "misses": rt.cache.misses,
                    "write_errors": rt.cache.write_errors,
                },
                "telemetry_write_errors": self._tel.write_errors,
                "obs": obs.current().counters.as_dict()
                       if obs.current().enabled else {},
            }

    def healthz_doc(self) -> dict:
        return {
            "status": "draining" if self.draining else "ok",
            "version": package_version(),
            "uptime_s": round(time.monotonic() - self._t0, 3),
        }
