"""Stdlib client for the checking service (``http.client`` only).

The test suite and the CI serve job drive the server exclusively through
this module, so it doubles as the reference protocol implementation:

* :meth:`ServeClient.submit` — POST one program/property/config, get
  ``(http_status, body)`` back without raising on 4xx/5xx (callers
  assert on quota 429s and drain 503s);
* :meth:`ServeClient.wait` — long-poll a job to completion;
* :meth:`ServeClient.events` — iterate the ``kiss-serve/1`` NDJSON
  stream (close-delimited: the iterator ends when the server finishes
  the stream);
* :meth:`ServeClient.check` — submit + wait, returning the final status
  document; raises :class:`ServeError` when the job is refused.

One connection per request (the server is ``Connection: close``), so a
client object is cheap, stateless, and safe to share across threads.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Iterator, Optional, Tuple
from urllib.parse import quote

DEFAULT_TIMEOUT_S = 60.0


class ServeError(RuntimeError):
    """A refused request (or a malformed response)."""

    def __init__(self, status: int, message: str, body: Optional[dict] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.body = body or {}


class ServeClient:
    """Client for one server address."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8731,
                 tenant: Optional[str] = None, timeout: float = DEFAULT_TIMEOUT_S):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------------

    def _connect(self, timeout: Optional[float] = None) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout if timeout is None else timeout)

    def _request(self, method: str, path: str, payload: Optional[dict] = None,
                 timeout: Optional[float] = None) -> Tuple[int, dict]:
        conn = self._connect(timeout)
        try:
            headers = {"Connection": "close"}
            body = None
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            if self.tenant:
                headers["X-Kiss-Tenant"] = self.tenant
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
            try:
                doc = json.loads(raw.decode("utf-8")) if raw else {}
            except (json.JSONDecodeError, UnicodeDecodeError):
                raise ServeError(resp.status, f"non-JSON response: {raw[:200]!r}")
            if resp.status == 429 and resp.getheader("Retry-After"):
                doc.setdefault("retry_after", float(resp.getheader("Retry-After")))
            return resp.status, doc
        finally:
            conn.close()

    @staticmethod
    def _job_path(job_id: str, suffix: str = "") -> str:
        return "/v1/jobs/" + quote(job_id, safe="") + suffix

    # -- API ---------------------------------------------------------------------

    def healthz(self) -> dict:
        status, doc = self._request("GET", "/healthz")
        if status != 200:
            raise ServeError(status, doc.get("error", "healthz failed"), doc)
        return doc

    def stats(self) -> dict:
        status, doc = self._request("GET", "/stats")
        if status != 200:
            raise ServeError(status, doc.get("error", "stats failed"), doc)
        return doc

    def submit(self, program: str, prop: str = "assertion",
               target: Optional[str] = None,
               config: Optional[Dict[str, Any]] = None,
               driver: Optional[str] = None,
               tenant: Optional[str] = None) -> Tuple[int, dict]:
        """Submit one job; returns ``(http_status, body)`` verbatim —
        200 body is a final status document, 202 an admission document,
        4xx/5xx an ``{"error": ...}`` document (429 adds
        ``retry_after``)."""
        payload: Dict[str, Any] = {"program": program, "prop": prop}
        if target is not None:
            payload["target"] = target
        if config:
            payload["config"] = config
        if driver is not None:
            payload["driver"] = driver
        if tenant or self.tenant:
            payload["tenant"] = tenant or self.tenant
        return self._request("POST", "/v1/jobs", payload)

    def status(self, job_id: str) -> dict:
        http_status, doc = self._request("GET", self._job_path(job_id))
        if http_status != 200:
            raise ServeError(http_status, doc.get("error", "status failed"), doc)
        return doc

    def wait(self, job_id: str, timeout: float = DEFAULT_TIMEOUT_S) -> dict:
        """Long-poll one job to a terminal state (``done`` or
        ``cancelled``); returns the final status document (raises
        :class:`ServeError` on timeout)."""
        path = self._job_path(job_id) + f"?wait={timeout:g}"
        http_status, doc = self._request("GET", path, timeout=timeout + 10.0)
        if http_status != 200:
            raise ServeError(http_status, doc.get("error", "wait failed"), doc)
        if doc.get("state") not in ("done", "cancelled"):
            raise ServeError(200, f"job {job_id} not done after {timeout}s", doc)
        return doc

    def cancel(self, job_id: str) -> Tuple[int, dict]:
        """Cooperatively cancel one job (``DELETE``); returns
        ``(http_status, body)`` verbatim — 200 settled immediately,
        202 cancelling in flight, 404 unknown, 409 already finished."""
        return self._request("DELETE", self._job_path(job_id))

    def events(self, job_id: str, timeout: float = DEFAULT_TIMEOUT_S) -> Iterator[dict]:
        """Iterate the job's NDJSON event stream until the server closes
        it (which it does right after the ``done`` event)."""
        conn = self._connect(timeout)
        try:
            conn.request("GET", self._job_path(job_id, "/events"),
                         headers={"Connection": "close"})
            resp = conn.getresponse()
            if resp.status != 200:
                raw = resp.read()
                try:
                    doc = json.loads(raw.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    doc = {}
                raise ServeError(resp.status, doc.get("error", "stream refused"), doc)
            for line in resp:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    # -- swarms ------------------------------------------------------------------

    @staticmethod
    def _swarm_path(swarm_id: str, suffix: str = "") -> str:
        return "/v1/swarm/" + quote(swarm_id, safe="") + suffix

    def submit_swarm(self, program: str, tiles: int = 8, rounds: int = 3,
                     seed: int = 0, por: bool = False,
                     max_states: int = 300_000,
                     first_error: bool = False) -> Tuple[int, dict]:
        """Submit one server-side swarm; returns ``(http_status, body)``
        verbatim (202 = admitted, body is the swarm status document)."""
        payload: Dict[str, Any] = {
            "program": program, "tiles": tiles, "rounds": rounds, "seed": seed,
            "por": por, "max_states": max_states, "first_error": first_error,
        }
        if self.tenant:
            payload["tenant"] = self.tenant
        return self._request("POST", "/v1/swarm", payload)

    def swarm_status(self, swarm_id: str) -> dict:
        status, doc = self._request("GET", self._swarm_path(swarm_id))
        if status != 200:
            raise ServeError(status, doc.get("error", "swarm status failed"), doc)
        return doc

    def swarm_wait(self, swarm_id: str, timeout: float = DEFAULT_TIMEOUT_S) -> dict:
        """Long-poll one swarm to its aggregate verdict."""
        path = self._swarm_path(swarm_id) + f"?wait={timeout:g}"
        status, doc = self._request("GET", path, timeout=timeout + 10.0)
        if status != 200:
            raise ServeError(status, doc.get("error", "swarm wait failed"), doc)
        if doc.get("state") != "done":
            raise ServeError(200, f"swarm {swarm_id} not done after {timeout}s", doc)
        return doc

    def swarm_events(self, swarm_id: str,
                     timeout: float = DEFAULT_TIMEOUT_S) -> Iterator[dict]:
        """Iterate the swarm's interleaved NDJSON stream (tile events
        plus the final aggregate ``done``)."""
        conn = self._connect(timeout)
        try:
            conn.request("GET", self._swarm_path(swarm_id, "/events"),
                         headers={"Connection": "close"})
            resp = conn.getresponse()
            if resp.status != 200:
                raw = resp.read()
                try:
                    doc = json.loads(raw.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    doc = {}
                raise ServeError(resp.status, doc.get("error", "stream refused"), doc)
            for line in resp:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    def cancel_swarm(self, swarm_id: str) -> Tuple[int, dict]:
        """Cancel every unsettled tile of a swarm (``DELETE``)."""
        return self._request("DELETE", self._swarm_path(swarm_id))

    def check(self, program: str, prop: str = "assertion",
              target: Optional[str] = None,
              config: Optional[Dict[str, Any]] = None,
              driver: Optional[str] = None,
              timeout: float = DEFAULT_TIMEOUT_S) -> dict:
        """Submit one job and wait for its verdict; the one-call path.
        Raises :class:`ServeError` when the submission is refused."""
        status, doc = self.submit(program, prop=prop, target=target,
                                  config=config, driver=driver)
        if status == 200:
            return doc
        if status != 202:
            raise ServeError(status, doc.get("error", "submission refused"), doc)
        return self.wait(doc["job"], timeout=timeout)
