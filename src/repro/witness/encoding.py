"""The tagged-JSON codec shared by witness emission and validation.

A ``kiss-witness/1`` reached-set certificate serializes the explicit
checker's *frozen* states — the canonical, identity-free tuples produced
by :class:`repro.seqcheck.interp.Freezer` — and a predicate certificate
serializes predicate expressions.  Both sides of the trust boundary
(the emitter, which trusts the checker, and the standalone validator,
which does not) must agree byte-for-byte on this encoding, so it lives
in its own module with no imports from ``repro.seqcheck``.

Values are encoded as small tagged JSON arrays:

=====================  ====================================================
``["i", n]``           integer
``["b", v]``           boolean
``["fn", name]``       function value (including ``"__undefined__"``)
``["null"]``           the null pointer
``["pc", canon]``      pointer to heap cell ``canon`` (canonical index)
``["pf", canon, f]``   pointer to field ``f`` of cell ``canon``
``["pl", t, d, x]``    pointer to local ``x`` of live frame ``(t, d)``
``["pld", k, x]``      dangling pointer to local ``x`` of dead frame ``k``
``["pg", name]``       pointer to a global
=====================  ====================================================

States are positional: global values in sorted-name order, heap cells in
canonical order with fields in sorted order, frame locals in sorted
order.  The names themselves are recovered from the embedded program
text, which keeps certificates compact and forces the validator to parse
the program for itself.
"""

from __future__ import annotations

import json
from typing import Any, List, Tuple

from repro.lang.ast import Binary, BoolLit, Expr, IntLit, NullLit, Unary, Var


class EncodeError(ValueError):
    """A runtime value or expression has no witness encoding."""


def encode_value(v: Any) -> list:
    """Encode one frozen runtime value as a tagged JSON array."""
    if isinstance(v, bool):
        return ["b", v]
    if isinstance(v, int):
        return ["i", v]
    if isinstance(v, tuple):
        if v[0] == "fn":
            return ["fn", v[1]]
        if v[0] == "ptr":
            if v[1] is None:
                return ["null"]
            if v[1] == "c" and isinstance(v[2], int):
                return ["pc", v[2]]
            if v[1] == "f" and isinstance(v[2], int):
                return ["pf", v[2], v[3]]
            if v[1] == "l":
                t, d = v[2]
                return ["pl", t, d, v[3]]
            if v[1] == "ld":
                return ["pld", v[2], v[3]]
            if v[1] == "g":
                return ["pg", v[2]]
    raise EncodeError(f"unencodable value {v!r}")


def decode_value(doc: Any) -> Any:
    """Decode a tagged JSON array back to the frozen tuple form."""
    if not isinstance(doc, list) or not doc or not isinstance(doc[0], str):
        raise EncodeError(f"malformed encoded value {doc!r}")
    tag = doc[0]
    try:
        if tag == "b" and isinstance(doc[1], bool):
            return doc[1]
        if tag == "i" and isinstance(doc[1], int) and not isinstance(doc[1], bool):
            return doc[1]
        if tag == "fn" and isinstance(doc[1], str):
            return ("fn", doc[1])
        if tag == "null" and len(doc) == 1:
            return ("ptr", None)
        if tag == "pc" and isinstance(doc[1], int):
            return ("ptr", "c", doc[1])
        if tag == "pf" and isinstance(doc[1], int) and isinstance(doc[2], str):
            return ("ptr", "f", doc[1], doc[2])
        if tag == "pl" and isinstance(doc[1], int) and isinstance(doc[2], int) \
                and isinstance(doc[3], str):
            return ("ptr", "l", (doc[1], doc[2]), doc[3])
        if tag == "pld" and isinstance(doc[1], int) and isinstance(doc[2], str):
            return ("ptr", "ld", doc[1], doc[2])
        if tag == "pg" and isinstance(doc[1], str):
            return ("ptr", "g", doc[1])
    except IndexError:
        pass
    raise EncodeError(f"malformed encoded value {doc!r}")


def encode_state(frozen: Tuple[tuple, tuple, tuple]) -> dict:
    """Encode one frozen world ``(globals, heap, stacks)`` as a JSON
    object with positional value arrays."""
    globals_t, heap_t, stacks_t = frozen
    return {
        "globals": [encode_value(v) for v in globals_t],
        "heap": [[canon, sname, [encode_value(v) for v in fields]]
                 for canon, sname, fields in heap_t],
        "stacks": [[[func, node, [encode_value(v) for v in locs]]
                    for func, node, locs in stack]
                   for stack in stacks_t],
    }


def decode_state(doc: dict) -> Tuple[tuple, tuple, tuple]:
    """Decode a witness state object back to a frozen world tuple."""
    if not isinstance(doc, dict):
        raise EncodeError(f"witness state must be an object, got {type(doc).__name__}")
    try:
        globals_t = tuple(decode_value(v) for v in doc["globals"])
        heap_t = tuple(
            (int(canon), str(sname), tuple(decode_value(v) for v in fields))
            for canon, sname, fields in doc["heap"])
        stacks_t = tuple(
            tuple((str(func), int(node), tuple(decode_value(v) for v in locs))
                  for func, node, locs in stack)
            for stack in doc["stacks"])
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, EncodeError):
            raise
        raise EncodeError(f"malformed witness state: {exc}") from exc
    return (globals_t, heap_t, stacks_t)


def state_sort_key(doc: dict) -> str:
    """Deterministic ordering key for encoded states (their canonical
    JSON serialization)."""
    return json.dumps(doc, sort_keys=True)


def encode_expr(e: Expr) -> list:
    """Encode a scalar predicate expression as a tagged JSON array."""
    if isinstance(e, IntLit):
        return ["int", e.value]
    if isinstance(e, BoolLit):
        return ["bool", e.value]
    if isinstance(e, NullLit):
        return ["nullexpr"]
    if isinstance(e, Var):
        return ["var", e.name]
    if isinstance(e, Unary):
        return ["un", e.op, encode_expr(e.operand)]
    if isinstance(e, Binary):
        return ["bin", e.op, encode_expr(e.left), encode_expr(e.right)]
    raise EncodeError(f"unencodable predicate expression {e!r}")


def decode_expr(doc: Any) -> Expr:
    """Decode a tagged JSON array back to a ``repro.lang.ast`` expression."""
    if not isinstance(doc, list) or not doc or not isinstance(doc[0], str):
        raise EncodeError(f"malformed encoded expression {doc!r}")
    tag = doc[0]
    try:
        if tag == "int" and isinstance(doc[1], int) and not isinstance(doc[1], bool):
            return IntLit(doc[1])
        if tag == "bool" and isinstance(doc[1], bool):
            return BoolLit(doc[1])
        if tag == "nullexpr" and len(doc) == 1:
            return NullLit()
        if tag == "var" and isinstance(doc[1], str):
            return Var(doc[1])
        if tag == "un" and isinstance(doc[1], str):
            return Unary(doc[1], decode_expr(doc[2]))
        if tag == "bin" and isinstance(doc[1], str):
            return Binary(doc[1], decode_expr(doc[2]), decode_expr(doc[3]))
    except IndexError:
        pass
    raise EncodeError(f"malformed encoded expression {doc!r}")


def encode_expr_list(exprs: List[Expr]) -> List[list]:
    """Encode a predicate list in order."""
    return [encode_expr(e) for e in exprs]
