"""Mapping witnesses back to ghost annotations on the concurrent program.

A witness certifies the *sequential* program the KISS (or K-round)
transformation produced; the user wrote the *concurrent* one.  This
module lifts the certified invariant back through the transform the same
way the trace mappers (:mod:`repro.core.tracemap`,
:mod:`repro.rounds.tracemap`) lift error traces: instrumentation state
(every ``__kiss_``-prefixed variable, function, and statement) is
dropped, and the K-round transform's versioned globals ``__kiss_r<k>_g``
are folded back onto their source global ``g`` with a per-round
breakdown — the ghost-variable view of Erhard et al. (arXiv:2411.16612),
where a concurrent invariant is expressed as observations about shared
state at user program points.

The ghost section is *informational provenance*: the independent
validator deliberately ignores it (it is derived from the same checker
output the certificate is, so it adds no trust), but it is what a human
— or a downstream concurrent-witness consumer — reads.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set, Tuple

from repro.cfg.graph import ProgramCfg
from repro.core.names import PREFIX
from repro.witness.encoding import encode_value

#: ``__kiss_r<k>_<name>`` — a K-round versioned copy of global ``<name>``.
_RR_GLOBAL = re.compile(r"^__kiss_r(\d+)_(.+)$")

#: Cap on distinct recorded values per (location, variable) — ghost
#: annotations are a summary for humans, not a second invariant.
_MAX_VALUES = 32


def _fold_global(name: str, rounds: Optional[int]) -> Optional[Tuple[str, Optional[int]]]:
    """Map a sequential global to ``(concurrent name, round)`` or None
    for pure instrumentation state.  Round 0 uses the original global
    itself, so an unprefixed name folds to round 0 under K-rounds."""
    m = _RR_GLOBAL.match(name)
    if m is not None:
        return (m.group(2), int(m.group(1)))
    if name.startswith(PREFIX):
        return None
    return (name, 0 if rounds else None)


def _render(value) -> str:
    """Compact deterministic rendering of one frozen value."""
    try:
        enc = encode_value(value)
    except Exception:
        return repr(value)
    if enc[0] in ("i", "b"):
        return str(enc[1]).lower() if enc[0] == "b" else str(enc[1])
    if enc[0] == "null":
        return "null"
    return ":".join(str(p) for p in enc)


def reached_ghost(states: List[tuple], prog, pcfg: ProgramCfg,
                  rounds: Optional[int]) -> dict:
    """Ghost annotations from a reached-set witness: per user program
    point, the values each user-visible shared global takes there
    (folded across K-round versions when ``rounds`` is set)."""
    gkeys = sorted(prog.globals)
    folded = [(i, _fold_global(n, rounds)) for i, n in enumerate(gkeys)]
    folded = [(i, f) for i, f in folded if f is not None]
    # locations["func: text"][var][round] = set of rendered values
    locations: Dict[str, Dict[str, Dict[Optional[int], Set[str]]]] = {}
    for globals_t, _, stacks_t in states:
        if not stacks_t or not stacks_t[0]:
            continue
        func, node_id, _ = stacks_t[0][-1]
        if func.startswith(PREFIX):
            continue
        try:
            node = pcfg.cfg(func).node(node_id)
        except (KeyError, IndexError):
            continue
        text = node.origin.text if node.origin and node.origin.text else node.kind
        if PREFIX in text:
            continue
        at = f"{func}: {text}"
        vars_ = locations.setdefault(at, {})
        for i, (base, k) in folded:
            buckets = vars_.setdefault(base, {})
            bucket = buckets.setdefault(k, set())
            if len(bucket) < _MAX_VALUES:
                bucket.add(_render(globals_t[i]))
    out = []
    for at in sorted(locations):
        row: Dict[str, object] = {"at": at, "globals": {}}
        for var in sorted(locations[at]):
            buckets = locations[at][var]
            if rounds:
                row["globals"][var] = {
                    f"r{k}": sorted(vals) for k, vals in sorted(buckets.items())
                }
            else:
                merged: Set[str] = set()
                for vals in buckets.values():
                    merged |= vals
                row["globals"][var] = sorted(merged)
        out.append(row)
    return {
        "note": "informational provenance — not checked by the validator",
        "locations": out,
    }


def predicate_ghost(global_preds: List, local_preds: Dict[str, List],
                    rounds: Optional[int]) -> dict:
    """Ghost annotations from a predicate-invariant witness: the final
    abstraction's predicates restricted to user-visible state (a
    predicate mentioning any instrumentation variable is dropped; under
    K-rounds, versioned globals are folded back to their source name
    with a round marker)."""

    def fold_pred(p) -> Optional[str]:
        text = str(p)
        names = re.findall(r"__kiss_\w+", text)
        folded = text
        for n in names:
            m = _RR_GLOBAL.match(n)
            if m is None:
                return None  # mentions pure instrumentation state
            folded = folded.replace(n, f"{m.group(2)}@r{m.group(1)}")
        return folded

    out_global = sorted({f for f in (fold_pred(p) for p in global_preds) if f is not None})
    out_local = {}
    for fname in sorted(local_preds):
        if fname.startswith(PREFIX):
            continue
        kept = sorted({f for f in (fold_pred(p) for p in local_preds[fname]) if f is not None})
        if kept:
            out_local[fname] = kept
    return {
        "note": "informational provenance — not checked by the validator",
        "predicates": {"global": out_global, "local": out_local},
    }
