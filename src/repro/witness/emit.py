"""Emission of ``kiss-witness/1`` safety certificates.

This is the *trusting* side of the witness protocol: it runs inside the
checker's process and may import anything.  Its one subtlety is the
**canonical re-run**: the certificate must describe the program *text*
it embeds, but an in-memory transformed AST and its reparse produce
structurally different CFGs (node ids, chain layouts), so state/location
keys minted against one do not validate against the other.  Emission
therefore pretty-prints the transformed program, re-parses that text,
and re-runs the appropriate backend on the reparse with collection
enabled — the embedded text, the invariant, and the sha256 are then all
facts about one artifact, and the independent validator reconstructs the
very same CFG from the text alone.  The primary check (whose verdict the
caller reports, and which cache keys are derived from) is untouched.

If the canonical re-run does not come back safe within budget — or the
reached states fall outside the encodable fragment — no witness is
emitted (``None``); a safe verdict without a certificate is an honest
outcome, a wrong certificate is not.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from repro.cfg.build import build_program_cfg
from repro.lang import parse_core
from repro.lang.ast import Program
from repro.lang.pretty import pretty_program
from repro.schemas import WITNESS_SCHEMA, validate_witness
from repro.seqcheck.cegar import CegarChecker
from repro.seqcheck.explicit import SequentialChecker
from repro.seqcheck.trace import CheckStatus
from repro.witness.encoding import (
    EncodeError,
    encode_expr_list,
    encode_state,
    state_sort_key,
)
from repro.witness.ghost import predicate_ghost, reached_ghost


def emit_witness(
    transformed: Program,
    backend: str = "explicit",
    strategy: str = "kiss",
    rounds: Optional[int] = None,
    max_states: int = 500_000,
    cegar_rounds: int = 16,
    target: Optional[str] = None,
) -> Optional[dict]:
    """Build a ``kiss-witness/1`` certificate for a sequentialized
    program the primary check found safe; returns None when no witness
    can be honestly emitted (re-run not safe within budget, or states
    outside the encodable fragment)."""
    text = pretty_program(transformed)
    try:
        canon = parse_core(text)
    except Exception:
        return None
    if backend == "cegar":
        built = _emit_predicates(canon, cegar_rounds, rounds)
    else:
        built = _emit_reached(canon, max_states, rounds)
    if built is None:
        return None
    kind, invariant, ghost, meta = built
    doc = {
        "schema": WITNESS_SCHEMA,
        "kind": kind,
        "backend": backend,
        "strategy": strategy,
        "rounds": rounds,
        "entry": canon.entry,
        "program": text,
        "program_sha256": hashlib.sha256(text.encode()).hexdigest(),
        "invariant": invariant,
        "ghost": ghost,
        "meta": meta,
    }
    if target is not None:
        doc["meta"]["target"] = target
    validate_witness(doc)
    return doc


def _emit_reached(canon: Program, max_states: int,
                  rounds: Optional[int]) -> Optional[Tuple[str, dict, dict, dict]]:
    """Re-run the explicit checker on the canonical reparse collecting
    its single-step-closed reached-set."""
    pcfg = build_program_cfg(canon)
    checker = SequentialChecker(pcfg, max_states=max_states, collect_reached=True)
    try:
        result = checker.check()
    except Exception:
        return None
    if result.status is not CheckStatus.SAFE or not checker.reached:
        return None
    # Frozen tuples are heterogeneous (None / str / int) and not mutually
    # orderable; determinism comes from sorting the *encoded* states.
    frozen_states = list(checker.reached)
    try:
        encoded = sorted((encode_state(s) for s in frozen_states), key=state_sort_key)
    except EncodeError:
        return None
    invariant = {"states": encoded}
    ghost = reached_ghost(frozen_states, canon, pcfg, rounds)
    meta = {
        "states": len(encoded),
        "explored_states": result.stats.states,
        "explored_transitions": result.stats.transitions,
    }
    return ("reached-set", invariant, ghost, meta)


def _emit_predicates(canon: Program, cegar_rounds: int,
                     rounds: Optional[int]) -> Optional[Tuple[str, dict, dict, dict]]:
    """Re-run the full CEGAR loop on the canonical reparse collecting the
    final safe abstraction as a predicate invariant."""
    try:
        result = CegarChecker(canon, max_rounds=cegar_rounds,
                              collect_certificate=True).check()
    except Exception:
        return None
    if result.status != "safe" or result.certificate is None:
        return None
    cert = result.certificate
    try:
        predicates = {
            "global": encode_expr_list(cert["global_preds"]),
            "local": {f: encode_expr_list(ps)
                      for f, ps in sorted(cert["local_preds"].items())},
        }
        locations = [
            {
                "func": func,
                "ordinal": ordinal,
                "stmt": entry["stmt"],
                "cubes": sorted([list(c) for c in entry["cubes"]]),
            }
            for (func, ordinal), entry in sorted(cert["locations"].items())
        ]
    except EncodeError:
        return None
    invariant = {"predicates": predicates, "locations": locations}
    ghost = predicate_ghost(cert["global_preds"], cert["local_preds"], rounds)
    meta = {
        "cegar_rounds": result.rounds,
        "predicates": result.predicates,
        "locations": len(locations),
    }
    return ("predicate-invariant", invariant, ghost, meta)
