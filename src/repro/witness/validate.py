"""Independent validation of ``kiss-witness/1`` safety certificates.

This module is the *untrusting* side of the witness protocol: it checks
a certificate against the embedded sequential core program using its own
tiny value model, its own canonical freezing, and its own single-step
interpreter.  It imports **nothing** from ``repro.seqcheck`` — that is
the whole point (and is enforced by a test): a bug in the explicit
checker or the CEGAR loop cannot silently vouch for itself.

The three judgments (the classic inductive-invariant obligations):

* **initiation** — the program's initial configuration is covered by the
  invariant;
* **inductiveness** — the invariant is closed under one observable
  transition (for reached-set witnesses: every single-step successor of
  every member state is again a member; for predicate witnesses: every
  configuration met during the validator's own exhaustive exploration
  conforms to the certified cube set at its location);
* **safety** — no covered configuration violates an assertion or memory
  safety (checked by actually executing each member's next statement).

The verdict is ``certified`` when all three hold, ``refuted`` when any
fails (with the failing judgment and a localized detail), and
``unsupported`` when the validator cannot decide (budget exhausted,
entry with parameters, malformed encodings) — never a silent pass.

Run standalone (no ``repro.seqcheck`` ever loaded)::

    PYTHONPATH=src python -m repro.witness.validate cert.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.cfg.build import build_program_cfg
from repro.cfg.graph import Node, ProgramCfg
from repro.lang import parse_core
from repro.lang.ast import (
    Binary,
    BoolLit,
    BoolType,
    Expr,
    Field,
    FuncType,
    IntLit,
    IntType,
    NullLit,
    Program,
    PtrType,
    Unary,
    Var,
    walk_stmts,
)
from repro.schemas import SchemaError, validate_witness
from repro.witness.encoding import EncodeError, decode_expr, decode_state, encode_state

#: Default budget on inductiveness transitions (reached-set) and on
#: explored configurations (predicate-invariant).
DEFAULT_MAX_TRANSITIONS = 2_000_000
DEFAULT_MAX_STATES = 500_000


@dataclass
class ValidationReport:
    """The outcome of one certificate validation.

    ``status`` is one of :data:`repro.schemas.WITNESS_STATUSES`;
    ``judgment`` names the failed obligation (``"integrity"``,
    ``"initiation"``, ``"inductiveness"``, ``"safety"``) or the
    abstention reason when ``unsupported``; ``location`` pinpoints the
    failing transition (``"func:node"`` or ``"func:ordinal"``) and
    ``missing_state`` carries the encoded successor a reached-set
    witness failed to contain.
    """

    status: str
    judgment: str = ""
    location: str = ""
    detail: str = ""
    states_checked: int = 0
    transitions_checked: int = 0
    missing_state: Optional[dict] = None

    def to_dict(self) -> dict:
        """Plain-dict form for JSON output."""
        out = {
            "status": self.status,
            "judgment": self.judgment,
            "location": self.location,
            "detail": self.detail,
            "states_checked": self.states_checked,
            "transitions_checked": self.transitions_checked,
        }
        if self.missing_state is not None:
            out["missing_state"] = self.missing_state
        return out

    def __str__(self) -> str:
        if self.status == "certified":
            return (f"certified ({self.states_checked} states, "
                    f"{self.transitions_checked} transitions)")
        where = f" at {self.location}" if self.location else ""
        return f"{self.status}: {self.judgment}{where}: {self.detail}"


class _Refuted(Exception):
    """Internal: a judgment failed."""

    def __init__(self, judgment: str, location: str, detail: str,
                 missing: Optional[dict] = None):
        super().__init__(detail)
        self.judgment = judgment
        self.location = location
        self.detail = detail
        self.missing = missing


class _Unsupported(Exception):
    """Internal: the validator abstains."""


class _Halt(Exception):
    """Internal: a safety violation during mirrored execution."""

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind


# ---------------------------------------------------------------------------
# The validator's own value model (mirrors repro.seqcheck.state without
# importing it)
# ---------------------------------------------------------------------------


class _Fn:
    """A function value."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other: object) -> bool:
        return type(other) is _Fn and other.name == self.name

    def __hash__(self) -> int:
        return hash(("fn", self.name))


class _Ptr:
    """A pointer value; ``addr`` is None (null) or an address tuple."""

    __slots__ = ("addr",)

    def __init__(self, addr: Optional[Tuple]):
        self.addr = addr

    def __eq__(self, other: object) -> bool:
        return type(other) is _Ptr and other.addr == self.addr

    def __hash__(self) -> int:
        return hash(("ptr", self.addr))


_NULL = _Ptr(None)


def _default(typ) -> Any:
    """Type-default values (mirrors ``repro.seqcheck.state.default_value``)."""
    if isinstance(typ, BoolType):
        return False
    if isinstance(typ, IntType):
        return 0
    if isinstance(typ, PtrType):
        return _NULL
    if isinstance(typ, FuncType):
        return _Fn("__undefined__")
    raise _Unsupported(f"no default value for type {typ}")


class _Frame:
    """One stack frame."""

    __slots__ = ("func", "node", "locals", "fid")

    def __init__(self, func: str, node: int, locals_: Dict[str, Any], fid: int):
        self.func = func
        self.node = node
        self.locals = locals_
        self.fid = fid

    def clone(self) -> "_Frame":
        return _Frame(self.func, self.node, dict(self.locals), self.fid)


class _World:
    """A full configuration: globals, heap, one stack per thread."""

    __slots__ = ("globals", "heap", "stacks", "alloc", "next_fid")

    def __init__(self, globals_: Dict[str, Any], heap: Dict[int, Tuple[str, Dict[str, Any]]],
                 stacks: List[List[_Frame]], alloc: int, next_fid: int):
        self.globals = globals_
        self.heap = heap
        self.stacks = stacks
        self.alloc = alloc
        self.next_fid = next_fid

    def clone(self) -> "_World":
        return _World(
            dict(self.globals),
            {cid: (sname, dict(fields)) for cid, (sname, fields) in self.heap.items()},
            [[f.clone() for f in s] for s in self.stacks],
            self.alloc,
            self.next_fid,
        )

    def frames(self) -> Dict[int, _Frame]:
        out: Dict[int, _Frame] = {}
        for s in self.stacks:
            for f in s:
                out[f.fid] = f
        return out


def _freeze(world: _World) -> Tuple:
    """Canonical freezing — an independent re-implementation of
    ``repro.seqcheck.interp.Freezer.freeze`` (deterministic reachability
    renumbering of heap cells, (thread, depth) positions for live frames,
    discovery order for dead frames, sorted key orders throughout)."""
    live_pos: Dict[int, Tuple[int, int]] = {}
    for t, stack in enumerate(world.stacks):
        for d, frame in enumerate(stack):
            live_pos[frame.fid] = (t, d)

    cell_order: Dict[int, int] = {}
    dead_order: Dict[int, int] = {}
    queue: List[int] = []
    heap = world.heap

    def discover(v: Any) -> None:
        a = v.addr
        if a is None:
            return
        k = a[0]
        if k == "c" or k == "f":
            cid = a[1]
            if cid in heap and cid not in cell_order:
                cell_order[cid] = len(cell_order)
                queue.append(cid)
        elif k == "l":
            fid = a[1]
            if fid not in live_pos and fid not in dead_order:
                dead_order[fid] = len(dead_order)

    gkeys = sorted(world.globals)
    for name in gkeys:
        v = world.globals[name]
        if type(v) is _Ptr:
            discover(v)
    frame_orders: List[List[str]] = []
    for stack in world.stacks:
        for frame in stack:
            order = sorted(frame.locals)
            frame_orders.append(order)
            for name in order:
                v = frame.locals[name]
                if type(v) is _Ptr:
                    discover(v)
    qi = 0
    while qi < len(queue):
        cid = queue[qi]
        qi += 1
        fields = heap[cid][1]
        for fname in sorted(fields):
            v = fields[fname]
            if type(v) is _Ptr:
                discover(v)

    def rewrite(v: Any):
        t = type(v)
        if t is _Ptr:
            a = v.addr
            if a is None:
                return ("ptr", None)
            k = a[0]
            if k == "c":
                return ("ptr", "c", cell_order.get(a[1], ("?", a[1])))
            if k == "f":
                return ("ptr", "f", cell_order.get(a[1], ("?", a[1])), a[2])
            if k == "l":
                fid = a[1]
                if fid in live_pos:
                    return ("ptr", "l", live_pos[fid], a[2])
                return ("ptr", "ld", dead_order[fid], a[2])
            return ("ptr", "g", a[1])
        if t is _Fn:
            return ("fn", v.name)
        return v

    globals_t = tuple(rewrite(world.globals[n]) for n in gkeys)
    cells = sorted(cell_order.items(), key=lambda kv: kv[1])
    heap_t = tuple(
        (canon, heap[cid][0],
         tuple(rewrite(heap[cid][1][fn]) for fn in sorted(heap[cid][1])))
        for cid, canon in cells
    )
    fo = iter(frame_orders)
    stacks_t = tuple(
        tuple((f.func, f.node, tuple(rewrite(f.locals[n]) for n in next(fo)))
              for f in stack)
        for stack in world.stacks
    )
    return (globals_t, heap_t, stacks_t)


def _thaw_value(v: Any, pos2fid: Dict[Tuple[int, int], int]) -> Any:
    """Turn one frozen value back into a runtime value."""
    if isinstance(v, tuple):
        if v[0] == "fn":
            return _Fn(v[1])
        if v[0] == "ptr":
            if v[1] is None:
                return _NULL
            k = v[1]
            if k == "c":
                return _Ptr(("c", v[2]))
            if k == "f":
                return _Ptr(("f", v[2], v[3]))
            if k == "l":
                fid = pos2fid.get(v[2])
                if fid is None:
                    raise _Refuted("integrity", "",
                                   f"pointer into nonexistent frame {v[2]!r}")
                return _Ptr(("l", fid, v[3]))
            if k == "ld":
                return _Ptr(("l", -(v[2] + 1), v[3]))
            if k == "g":
                return _Ptr(("g", v[2]))
        raise _Refuted("integrity", "", f"unknown frozen value {v!r}")
    return v


def _materialize(frozen: Tuple, prog: Program, pcfg: ProgramCfg) -> _World:
    """Reconstruct a runtime configuration from a frozen state.

    Canonical heap indices become concrete cell ids, live frames get
    fresh ids by stack position, dead frames negative ids — chosen so
    that :func:`_freeze` of the result reproduces ``frozen`` exactly.
    """
    globals_t, heap_t, stacks_t = frozen
    gkeys = sorted(prog.globals)
    if len(gkeys) != len(globals_t):
        raise _Refuted("integrity", "",
                       f"state has {len(globals_t)} globals, program has {len(gkeys)}")
    pos2fid: Dict[Tuple[int, int], int] = {}
    fid = 0
    for t, stack in enumerate(stacks_t):
        for d, _ in enumerate(stack):
            pos2fid[(t, d)] = fid
            fid += 1

    globals_ = {n: _thaw_value(v, pos2fid) for n, v in zip(gkeys, globals_t)}
    heap: Dict[int, Tuple[str, Dict[str, Any]]] = {}
    for canon, sname, fields_t in heap_t:
        if sname not in prog.structs:
            raise _Refuted("integrity", "", f"state references unknown struct '{sname}'")
        fkeys = sorted(prog.structs[sname].fields)
        if len(fkeys) != len(fields_t):
            raise _Refuted("integrity", "",
                           f"cell of struct '{sname}' has {len(fields_t)} fields")
        heap[canon] = (sname, {k: _thaw_value(v, pos2fid) for k, v in zip(fkeys, fields_t)})
    stacks: List[List[_Frame]] = []
    for t, stack_t in enumerate(stacks_t):
        stack = []
        for d, (func, node, locs_t) in enumerate(stack_t):
            if func not in prog.functions:
                raise _Refuted("integrity", "", f"state references unknown function '{func}'")
            decl = prog.functions[func]
            lkeys = sorted([p.name for p in decl.params] + list(decl.locals))
            if len(lkeys) != len(locs_t):
                raise _Refuted("integrity", "",
                               f"frame of '{func}' has {len(locs_t)} locals, "
                               f"declaration has {len(lkeys)}")
            try:
                pcfg.cfg(func).node(node)
            except (KeyError, IndexError):
                raise _Refuted("integrity", "",
                               f"state references unknown node {func}:{node}") from None
            stack.append(_Frame(func, node,
                                {k: _thaw_value(v, pos2fid) for k, v in zip(lkeys, locs_t)},
                                pos2fid[(t, d)]))
        stacks.append(stack)
    return _World(globals_, heap, stacks, max(heap) + 1 if heap else 0, fid)


# ---------------------------------------------------------------------------
# The validator's own single-step interpreter (mirrors
# repro.seqcheck.interp/explicit without importing them)
# ---------------------------------------------------------------------------


class _Stepper:
    """One-observable-transition successor computation for sequential
    core programs, faithful to the explicit checker's semantics (atomic
    regions execute indivisibly; everything else is one node)."""

    MAX_ATOMIC_STEPS = 100_000

    def __init__(self, prog: Program, pcfg: ProgramCfg):
        self.prog = prog
        self.pcfg = pcfg

    # -- value access ------------------------------------------------------

    def _eval_atom(self, e: Expr, frame: _Frame, world: _World) -> Any:
        if isinstance(e, IntLit):
            return e.value
        if isinstance(e, BoolLit):
            return e.value
        if isinstance(e, NullLit):
            return _NULL
        if isinstance(e, Var):
            name = e.name
            if name in frame.locals:
                return frame.locals[name]
            if name in world.globals:
                return world.globals[name]
            if name in self.prog.functions:
                return _Fn(name)
            raise _Halt("undef-var", f"read of undefined variable '{name}'")
        raise _Halt("not-atom", f"expression {e} is not an atom")

    def _write_var(self, name: str, value: Any, frame: _Frame, world: _World) -> None:
        if name in frame.locals:
            frame.locals[name] = value
        elif name in world.globals:
            world.globals[name] = value
        else:
            raise _Halt("undef-var", f"write to undefined variable '{name}'")

    def _addr_of_var(self, name: str, frame: _Frame) -> Tuple:
        if name in frame.locals:
            return ("l", frame.fid, name)
        if name in self.prog.globals:
            return ("g", name)
        raise _Halt("undef-var", f"address of undefined variable '{name}'")

    def _read(self, addr: Optional[Tuple], world: _World, frames: Dict[int, _Frame]) -> Any:
        if addr is None:
            raise _Halt("null-deref", "read through null pointer")
        kind = addr[0]
        if kind == "g":
            if addr[1] not in world.globals:
                raise _Halt("bad-addr", f"read of unknown global '{addr[1]}'")
            return world.globals[addr[1]]
        if kind == "l":
            _, fid, name = addr
            frame = frames.get(fid)
            if frame is None or name not in frame.locals:
                raise _Halt("dangling", f"read through dangling pointer to local '{name}'")
            return frame.locals[name]
        if kind == "f":
            _, cid, fname = addr
            if cid not in world.heap:
                raise _Halt("dangling", f"read of freed/unknown cell {cid}")
            sname, fields = world.heap[cid]
            if fname not in fields:
                raise _Halt("bad-addr", f"struct {sname} has no field '{fname}'")
            return fields[fname]
        raise _Halt("bad-addr", f"read through malformed address {addr!r}")

    def _write(self, addr: Optional[Tuple], value: Any, world: _World,
               frames: Dict[int, _Frame]) -> None:
        if addr is None:
            raise _Halt("null-deref", "write through null pointer")
        kind = addr[0]
        if kind == "g":
            if addr[1] not in world.globals:
                raise _Halt("bad-addr", f"write to unknown global '{addr[1]}'")
            world.globals[addr[1]] = value
            return
        if kind == "l":
            _, fid, name = addr
            frame = frames.get(fid)
            if frame is None or name not in frame.locals:
                raise _Halt("dangling", f"write through dangling pointer to local '{name}'")
            frame.locals[name] = value
            return
        if kind == "f":
            _, cid, fname = addr
            if cid not in world.heap:
                raise _Halt("dangling", f"write to freed/unknown cell {cid}")
            sname, fields = world.heap[cid]
            if fname not in fields:
                raise _Halt("bad-addr", f"struct {sname} has no field '{fname}'")
            fields[fname] = value
            return
        raise _Halt("bad-addr", f"write through malformed address {addr!r}")

    @staticmethod
    def _field_addr(base: _Ptr, fname: str) -> Tuple:
        if base.addr is None:
            raise _Halt("null-deref", f"field access ->{fname} through null pointer")
        if base.addr[0] != "c":
            raise _Halt("bad-addr", f"field access ->{fname} on non-struct pointer")
        return ("f", base.addr[1], fname)

    @staticmethod
    def _expect_ptr(v: Any) -> None:
        if not isinstance(v, _Ptr):
            raise _Halt("bad-addr", f"pointer operation on non-pointer value {v!r}")

    def _malloc(self, world: _World, struct_name: str) -> _Ptr:
        if struct_name not in self.prog.structs:
            raise _Unsupported(f"malloc of unknown struct '{struct_name}'")
        decl = self.prog.structs[struct_name]
        cid = world.alloc
        world.alloc += 1
        world.heap[cid] = (struct_name, {f: _default(t) for f, t in decl.fields.items()})
        return _Ptr(("c", cid))

    # -- primitive execution ----------------------------------------------

    def _binop(self, e: Binary, frame: _Frame, world: _World) -> Any:
        a = self._eval_atom(e.left, frame, world)
        b = self._eval_atom(e.right, frame, world)
        return _apply_binop(e.op, a, b)

    def _exec_assign(self, stmt, frame: _Frame, world: _World,
                     frames: Dict[int, _Frame]) -> None:
        lhs, rhs = stmt.lhs, stmt.rhs
        if isinstance(lhs, Unary) and lhs.op == "*":
            ptr = self._eval_atom(lhs.operand, frame, world)
            self._expect_ptr(ptr)
            value = self._eval_atom(rhs, frame, world)
            self._write(ptr.addr, value, world, frames)
            return
        if isinstance(lhs, Field):
            base = self._eval_atom(lhs.base, frame, world)
            self._expect_ptr(base)
            addr = self._field_addr(base, lhs.name)
            value = self._eval_atom(rhs, frame, world)
            self._write(addr, value, world, frames)
            return
        name = lhs.name
        if isinstance(rhs, Unary) and rhs.op == "&":
            target = rhs.operand
            if isinstance(target, Var):
                addr = self._addr_of_var(target.name, frame)
            else:
                base = self._eval_atom(target.base, frame, world)
                self._expect_ptr(base)
                addr = self._field_addr(base, target.name)
            self._write_var(name, _Ptr(addr), frame, world)
            return
        if isinstance(rhs, Unary) and rhs.op == "*":
            ptr = self._eval_atom(rhs.operand, frame, world)
            self._expect_ptr(ptr)
            self._write_var(name, self._read(ptr.addr, world, frames), frame, world)
            return
        if isinstance(rhs, Unary):
            v = self._eval_atom(rhs.operand, frame, world)
            if rhs.op == "-":
                self._write_var(name, -v, frame, world)
            elif rhs.op == "!":
                self._write_var(name, not v, frame, world)
            else:
                raise _Unsupported(f"unary operator {rhs.op}")
            return
        if isinstance(rhs, Binary):
            self._write_var(name, self._binop(rhs, frame, world), frame, world)
            return
        if isinstance(rhs, Field):
            base = self._eval_atom(rhs.base, frame, world)
            self._expect_ptr(base)
            self._write_var(name, self._read(self._field_addr(base, rhs.name), world, frames),
                            frame, world)
            return
        self._write_var(name, self._eval_atom(rhs, frame, world), frame, world)

    def _exec_simple(self, node: Node, frame: _Frame, world: _World,
                     frames: Dict[int, _Frame]) -> bool:
        kind = node.kind
        if kind == "skip":
            return True
        stmt = node.stmt
        if kind == "assume":
            return bool(self._eval_atom(stmt.cond, frame, world))
        if kind == "assert":
            if not self._eval_atom(stmt.cond, frame, world):
                raise _Halt("assert", f"assertion failed: {stmt}")
            return True
        if kind == "malloc":
            ptr = self._malloc(world, stmt.struct_name)
            self._write_var(stmt.lhs.name, ptr, frame, world)
            return True
        if kind == "assign":
            self._exec_assign(stmt, frame, world, frames)
            return True
        raise _Unsupported(f"cannot execute node kind {kind}")

    # -- atomic regions ----------------------------------------------------

    def _run_atomic(self, world: _World, node: Node) -> List[_World]:
        sub = node.sub
        if sub is None:
            raise _Unsupported("atomic node without a sub-CFG")
        results: List[_World] = []
        seen: Set[Tuple] = set()
        work: List[Tuple[_World, int]] = [(world.clone(), sub.entry)]
        steps = 0
        while work:
            w, pc = work.pop()
            steps += 1
            if steps > self.MAX_ATOMIC_STEPS:
                raise _Unsupported("atomic region exceeded step budget")
            key = (pc, _freeze(w))
            if key in seen:
                continue
            seen.add(key)
            sub_node = sub.node(pc)
            if sub_node.kind in ("call", "async", "return"):
                raise _Unsupported(f"{sub_node.kind} inside atomic")
            w2 = w.clone()
            frame2 = w2.stacks[0][-1]
            ok = self._exec_simple(sub_node, frame2, w2, w2.frames())
            if not ok:
                continue
            if not sub_node.succs:
                results.append(w2)
            else:
                for s in sub_node.succs:
                    work.append((w2.clone() if len(sub_node.succs) > 1 else w2, s))
        return results

    # -- calls and returns -------------------------------------------------

    def _fresh_frame(self, func_name: str, args: List[Any], world: _World) -> _Frame:
        decl = self.prog.functions.get(func_name)
        if decl is None:
            raise _Halt("undef-call", f"call of unknown function '{func_name}'")
        if len(args) != len(decl.params):
            raise _Halt("arity", f"call of {func_name} with {len(args)} args")
        locals_: Dict[str, Any] = {}
        for p, a in zip(decl.params, args):
            locals_[p.name] = a
        for name, typ in decl.locals.items():
            locals_[name] = _default(typ)
        fid = world.next_fid
        world.next_fid += 1
        return _Frame(func_name, self.pcfg.cfg(func_name).entry, locals_, fid)

    def _resolve_callee(self, name: str, frame: _Frame, world: _World) -> str:
        if name in frame.locals or name in world.globals:
            v = frame.locals.get(name, world.globals.get(name))
            if not isinstance(v, _Fn):
                raise _Halt("bad-call", f"call through non-function value {v!r}")
            if v.name not in self.prog.functions:
                raise _Halt("undef-call", f"call of undefined function value {v.name}")
            return v.name
        if name in self.prog.functions:
            return name
        raise _Halt("undef-call", f"call of unknown function '{name}'")

    def _exec_return(self, world: _World, node: Node) -> List[_World]:
        w = world.clone()
        stack = w.stacks[0]
        frame = stack[-1]
        stmt = node.stmt
        decl = self.prog.functions[frame.func]
        if stmt.value is not None:
            value = self._eval_atom(stmt.value, frame, w)
        elif decl.ret is not None:
            value = _default(decl.ret)
        else:
            value = None
        stack.pop()
        if not stack:
            return [w]  # entry returned: terminal safe leaf
        caller = stack[-1]
        call_node = self.pcfg.cfg(caller.func).node(caller.node)
        if call_node.kind != "call":
            raise _Unsupported("return into a non-call continuation")
        call_stmt = call_node.stmt
        if call_stmt.lhs is not None:
            if value is None:
                raise _Halt("void-result", f"void result of {frame.func} used as a value")
            self._write_var(call_stmt.lhs.name, value, caller, w)
        out = []
        for succ_id in call_node.succs:
            w2 = w.clone() if len(call_node.succs) > 1 else w
            w2.stacks[0][-1].node = succ_id
            out.append(w2)
        return out

    # -- the transition relation -------------------------------------------

    def initial_world(self) -> _World:
        """The program's initial configuration (globals at their declared
        initializers, one frame for the parameterless entry function)."""
        globals_: Dict[str, Any] = {}
        for name, g in self.prog.globals.items():
            globals_[name] = (_const_value(g.init, self.prog)
                              if g.init is not None else _default(g.type))
        entry = self.prog.functions[self.prog.entry]
        if entry.params:
            raise _Unsupported(f"entry function '{entry.name}' takes parameters")
        world = _World(globals_, {}, [[]], 0, 0)
        world.stacks[0].append(self._fresh_frame(entry.name, [], world))
        return world

    def successors(self, world: _World) -> List[_World]:
        """All configurations one observable transition away (an empty
        list for terminated programs and failed assumes)."""
        stack = world.stacks[0]
        if not stack:
            return []
        frame = stack[-1]
        node = self.pcfg.cfg(frame.func).node(frame.node)
        kind = node.kind

        if kind == "async":
            raise _Unsupported("async statement in a sequential witness program")
        if kind == "return":
            return self._exec_return(world, node)
        if kind == "call":
            stmt = node.stmt
            w = world.clone()
            f = w.stacks[0][-1]
            callee = self._resolve_callee(stmt.func.name, f, w)
            args = [self._eval_atom(a, f, w) for a in stmt.args]
            w.stacks[0].append(self._fresh_frame(callee, args, w))
            return [w]
        if kind == "atomic":
            out: List[_World] = []
            for w in self._run_atomic(world, node):
                for succ_id in node.succs:
                    w2 = w.clone() if len(node.succs) > 1 else w
                    w2.stacks[0][-1].node = succ_id
                    out.append(w2)
            return out

        # simple nodes: skip / assign / malloc / assert / assume
        w = world.clone()
        f = w.stacks[0][-1]
        ok = self._exec_simple(node, f, w, w.frames())
        if not ok:
            return []
        out = []
        for succ_id in node.succs:
            w2 = w.clone() if len(node.succs) > 1 else w
            w2.stacks[0][-1].node = succ_id
            out.append(w2)
        return out


def _apply_binop(op: str, a: Any, b: Any) -> Any:
    """Arithmetic/comparison with the checker's C-truncation division."""
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            raise _Halt("div-zero", "division by zero")
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    if op == "%":
        if b == 0:
            raise _Halt("div-zero", "modulo by zero")
        return a - b * _apply_binop("/", a, b)
    if op == "==":
        return a == b
    if op == "!=":
        return a != b
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    raise _Unsupported(f"binary operator {op}")


def _const_value(e: Expr, prog: Program) -> Any:
    """Evaluate a global initializer (constants and unary ops only)."""
    if isinstance(e, IntLit):
        return e.value
    if isinstance(e, BoolLit):
        return e.value
    if isinstance(e, NullLit):
        return _NULL
    if isinstance(e, Unary) and e.op == "-":
        return -_const_value(e.operand, prog)
    if isinstance(e, Unary) and e.op == "!":
        return not _const_value(e.operand, prog)
    if isinstance(e, Var) and e.name in prog.functions:
        return _Fn(e.name)
    raise _Unsupported(f"non-constant global initializer {e}")


# ---------------------------------------------------------------------------
# Judgment: reached-set witnesses
# ---------------------------------------------------------------------------


def _loc_of(world: _World, pcfg: ProgramCfg) -> str:
    """Human-readable location of a configuration's next transition."""
    stack = world.stacks[0]
    if not stack:
        return "terminal"
    frame = stack[-1]
    node = pcfg.cfg(frame.func).node(frame.node)
    text = node.origin.text if node.origin and node.origin.text else node.kind
    return f"{frame.func}:{frame.node} ({text})"


def _validate_reached(doc: dict, prog: Program, pcfg: ProgramCfg,
                      max_transitions: int) -> ValidationReport:
    """Initiation + inductiveness + safety for a reached-set witness."""
    stepper = _Stepper(prog, pcfg)
    members: List[Tuple] = []
    invariant: Set[Tuple] = set()
    for state_doc in doc["invariant"]["states"]:
        frozen = decode_state(state_doc)
        members.append(frozen)
        invariant.add(frozen)

    init = stepper.initial_world()
    init_key = _freeze(init)
    if init_key not in invariant:
        raise _Refuted("initiation", _loc_of(init, pcfg),
                       "the initial configuration is not covered by the invariant",
                       missing=encode_state(init_key))

    transitions = 0
    for frozen in members:
        world = _materialize(frozen, prog, pcfg)
        if _freeze(world) != frozen:
            raise _Refuted("integrity", "",
                           "state does not round-trip through canonical freezing")
        loc = _loc_of(world, pcfg)
        try:
            succs = stepper.successors(world)
        except _Halt as exc:
            raise _Refuted("safety", loc,
                           f"a covered configuration violates safety — "
                           f"{exc.kind}: {exc}") from None
        for succ in succs:
            transitions += 1
            if transitions > max_transitions:
                raise _Unsupported(f"transition budget of {max_transitions} exceeded")
            succ_key = _freeze(succ)
            if succ_key not in invariant:
                raise _Refuted("inductiveness", loc,
                               "a single-step successor of a covered configuration "
                               "is not covered",
                               missing=encode_state(succ_key))
    return ValidationReport("certified", states_checked=len(members),
                            transitions_checked=transitions)


# ---------------------------------------------------------------------------
# Judgment: predicate-invariant witnesses
# ---------------------------------------------------------------------------


def _eval_pred(e: Expr, frame: _Frame, world: _World) -> bool:
    """Recursive concrete evaluation of a predicate expression over the
    globals and the top frame's locals."""
    if isinstance(e, IntLit):
        return e.value  # type: ignore[return-value]
    if isinstance(e, BoolLit):
        return e.value
    if isinstance(e, NullLit):
        return _NULL  # type: ignore[return-value]
    if isinstance(e, Var):
        if e.name in frame.locals:
            return frame.locals[e.name]
        if e.name in world.globals:
            return world.globals[e.name]
        raise _Unsupported(f"predicate reads unknown variable '{e.name}'")
    if isinstance(e, Unary):
        v = _eval_pred(e.operand, frame, world)
        if e.op == "-":
            return -v  # type: ignore[return-value]
        if e.op == "!":
            return not v
        raise _Unsupported(f"predicate unary operator {e.op}")
    if isinstance(e, Binary):
        if e.op == "&&":
            return bool(_eval_pred(e.left, frame, world)) and \
                bool(_eval_pred(e.right, frame, world))
        if e.op == "||":
            return bool(_eval_pred(e.left, frame, world)) or \
                bool(_eval_pred(e.right, frame, world))
        a = _eval_pred(e.left, frame, world)
        b = _eval_pred(e.right, frame, world)
        try:
            return _apply_binop(e.op, a, b)
        except _Halt as exc:
            raise _Unsupported(f"predicate evaluation failed: {exc}") from None
    raise _Unsupported(f"unsupported predicate expression {e}")


def _ordinal_map(prog: Program) -> Dict[int, Tuple[str, int]]:
    """Map ``id(stmt)`` to ``(func, pre-order ordinal within func.body)``
    — the location key shared with the emitter (both sides compute it
    over a parse of the same embedded text, so ordinals agree)."""
    out: Dict[int, Tuple[str, int]] = {}
    for fname, decl in prog.functions.items():
        for i, s in enumerate(walk_stmts(decl.body)):
            out[id(s)] = (fname, i)
    return out


def _validate_predicates(doc: dict, prog: Program, pcfg: ProgramCfg,
                         max_states: int) -> ValidationReport:
    """Exhaustive concrete exploration + per-location conformance against
    the certified cube sets (see docs/WITNESSES.md for the argument)."""
    inv = doc["invariant"]
    global_preds = [decode_expr(p) for p in inv["predicates"]["global"]]
    local_preds = {f: [decode_expr(p) for p in ps]
                   for f, ps in inv["predicates"]["local"].items()}
    locations: Dict[Tuple[str, int], Set[Tuple[bool, ...]]] = {}
    loc_stmt: Dict[Tuple[str, int], str] = {}
    for loc in inv["locations"]:
        key = (loc["func"], loc["ordinal"])
        width = len(global_preds) + len(local_preds.get(loc["func"], []))
        cubes = set()
        for cube in loc["cubes"]:
            if len(cube) != width or not all(isinstance(b, bool) for b in cube):
                raise _Refuted("integrity", f"{key[0]}:{key[1]}",
                               f"cube width {len(cube)} does not match the "
                               f"{width} predicates in scope")
            cubes.add(tuple(cube))
        locations[key] = cubes
        loc_stmt[key] = loc["stmt"]

    ordinals = _ordinal_map(prog)
    stepper = _Stepper(prog, pcfg)
    init = stepper.initial_world()
    seen: Set[Tuple] = set()
    queue: List[_World] = [init]
    seen.add(_freeze(init))
    states = 0
    transitions = 0
    qi = 0
    while qi < len(queue):
        world = queue[qi]
        qi += 1
        states += 1
        if states > max_states:
            raise _Unsupported(f"state budget of {max_states} exceeded")
        stack = world.stacks[0]
        if stack:
            frame = stack[-1]
            node = pcfg.cfg(frame.func).node(frame.node)
            stmt = node.stmt
            key = ordinals.get(id(stmt)) if stmt is not None else None
            if key is not None and key in locations:
                scope = global_preds + local_preds.get(frame.func, [])
                vector = tuple(bool(_eval_pred(p, frame, world)) for p in scope)
                if vector not in locations[key]:
                    raise _Refuted(
                        "inductiveness", f"{key[0]}:{key[1]} ({loc_stmt[key]})",
                        f"reachable predicate valuation {list(vector)} is not "
                        f"covered by the certified cubes")
        loc = _loc_of(world, pcfg)
        try:
            succs = stepper.successors(world)
        except _Halt as exc:
            raise _Refuted("safety", loc,
                           f"a reachable configuration violates safety — "
                           f"{exc.kind}: {exc}") from None
        for succ in succs:
            transitions += 1
            k = _freeze(succ)
            if k not in seen:
                seen.add(k)
                queue.append(succ)
    return ValidationReport("certified", states_checked=states,
                            transitions_checked=transitions)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def validate_witness_doc(doc: dict, max_transitions: int = DEFAULT_MAX_TRANSITIONS,
                         max_states: int = DEFAULT_MAX_STATES) -> ValidationReport:
    """Validate one ``kiss-witness/1`` document; never raises — every
    outcome (including malformed documents and internal surprises) is
    folded into a :class:`ValidationReport`."""
    try:
        validate_witness(doc)
    except SchemaError as exc:
        return ValidationReport("refuted", judgment="schema", detail=str(exc))
    digest = hashlib.sha256(doc["program"].encode()).hexdigest()
    if digest != doc["program_sha256"]:
        return ValidationReport("refuted", judgment="integrity",
                                detail="program text does not match program_sha256")
    try:
        prog = parse_core(doc["program"])
        pcfg = build_program_cfg(prog)
    except Exception as exc:  # lex/parse/type errors on the embedded text
        return ValidationReport("refuted", judgment="integrity",
                                detail=f"embedded program does not parse: {exc}")
    if prog.entry != doc["entry"] or prog.entry not in prog.functions:
        return ValidationReport("refuted", judgment="integrity",
                                detail=f"entry '{doc['entry']}' does not match program")
    try:
        if doc["kind"] == "reached-set":
            return _validate_reached(doc, prog, pcfg, max_transitions)
        return _validate_predicates(doc, prog, pcfg, max_states)
    except _Refuted as exc:
        return ValidationReport("refuted", judgment=exc.judgment,
                                location=exc.location, detail=exc.detail,
                                missing_state=exc.missing)
    except (_Unsupported, EncodeError) as exc:
        return ValidationReport("unsupported", judgment="abstained", detail=str(exc))
    except RecursionError as exc:  # pathological embedded programs
        return ValidationReport("unsupported", judgment="abstained", detail=str(exc))


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.witness.validate cert.json`` — the standalone
    checker (exit 0 certified, 1 refuted, 2 unsupported, 3 usage)."""
    ap = argparse.ArgumentParser(
        prog="python -m repro.witness.validate",
        description="Independently validate a kiss-witness/1 certificate.")
    ap.add_argument("file", help="path to a kiss-witness/1 JSON document")
    ap.add_argument("--json", action="store_true", help="emit the report as JSON")
    args = ap.parse_args(argv)
    try:
        with open(args.file, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    report = validate_witness_doc(doc)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report)
    return {"certified": 0, "refuted": 1, "unsupported": 2}[report.status]


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    sys.exit(main())
