"""Safety certificates: emission and independent validation.

A safe verdict from :class:`repro.core.checker.Kiss` is, by itself, a
claim you must trust.  This package turns it into a claim you can
*check*: the explicit backend exports its reached-set and the cegar
backend its final predicate abstraction as an inductive invariant over
the sequential program, serialized as a self-contained ``kiss-witness/1``
document (:func:`repro.witness.emit.emit_witness`), and a standalone
validator re-checks initiation, inductiveness, and safety against the
embedded program text with its own interpreter
(:func:`repro.witness.validate.validate_witness_doc`) — without
importing anything from ``repro.seqcheck``.

Every name resolves lazily (PEP 562): ``import repro.witness`` loads
nothing from ``repro.seqcheck`` (the validator side is checker-free by
construction, the emission side only pulls the checkers in when
:func:`emit_witness` is actually called), and ``python -m
repro.witness.validate`` runs the validator module exactly once.
"""

_VALIDATE_NAMES = ("ValidationReport", "validate_witness_doc")


def __getattr__(name: str):
    """Lazily resolve the public entry points (PEP 562)."""
    if name in _VALIDATE_NAMES:
        from repro.witness import validate

        return getattr(validate, name)
    if name == "emit_witness":
        from repro.witness.emit import emit_witness

        return emit_witness
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
