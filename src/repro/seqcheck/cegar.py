"""Counterexample-guided abstraction refinement (SLAM's outer loop).

``abstract → check (Bebop) → concretize (Newton's role) → refine``:

1. abstract the program with the current predicates
   (:mod:`repro.seqcheck.abstraction`);
2. check the boolean program (:mod:`repro.seqcheck.bebop`); if safe, the
   concrete program is safe (the abstraction over-approximates);
3. otherwise extract an abstract error trace, replay it *concretely* as
   an SSA path condition, and decide it with the bit-blaster: satisfiable
   means a real error (with a model as witness);
4. an unsatisfiable trace is a false alarm: refine by adding the atomic
   predicates of the weakest preconditions along the trace, and repeat.

When the refinement fails to converge within ``max_rounds``, the run
reports *divergence* — the property-dependent resource-bound behaviour
the paper's Table 1 attributes to some (driver, field) runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import cancel, obs
from repro.lang.ast import (
    Assert,
    Assign,
    Assume,
    Binary,
    BoolLit,
    Call,
    IntLit,
    Expr,
    Program,
    Return,
    Stmt,
    Unary,
    Var,
)

from .abstraction import AbstractionError, Abstractor, PredicateSet, atoms_of, expr_vars, subst
from .bebop import check_boolean_program, find_error_trace
from .decide import DecideError, check_sat


@dataclass
class CegarResult:
    status: str  # "safe" | "error" | "diverged" | "unsupported"
    rounds: int = 0
    predicates: int = 0
    message: str = ""
    witness: Optional[Dict[str, object]] = None
    trace: List[str] = field(default_factory=list)
    #: When certificate collection was requested and the program is
    #: safe: the final abstraction's predicates and per-location reached
    #: cubes, keyed for :mod:`repro.witness.emit` (raw Python objects —
    #: the emitter serializes them).
    certificate: Optional[Dict[str, object]] = None

    @property
    def is_error(self) -> bool:
        return self.status == "error"

    @property
    def is_safe(self) -> bool:
        return self.status == "safe"


class CegarChecker:
    """SLAM-lite for scalar sequential core programs."""

    def __init__(
        self,
        prog: Program,
        max_rounds: int = 16,
        width: int = 8,
        max_cube: int = 3,
        seed_predicates: Optional[List[Expr]] = None,
        collect_certificate: bool = False,
    ):
        self.prog = prog
        self.max_rounds = max_rounds
        self.width = width
        self.max_cube = max_cube
        self.seed_predicates = seed_predicates or []
        self.collect_certificate = collect_certificate

    def check(self) -> CegarResult:
        with obs.span("cegar", max_rounds=self.max_rounds):
            return self._check()

    def _check(self) -> CegarResult:
        preds = PredicateSet()
        for p in self.seed_predicates:
            preds.add(self.prog, self.prog.entry, p)
        for round_no in range(1, self.max_rounds + 1):
            cancel.poll()
            obs.inc("cegar_iterations")
            try:
                with obs.span("abstract", round=round_no, predicates=preds.count()):
                    abstractor = Abstractor(self.prog, preds, self.width, self.max_cube)
                    bprog = abstractor.abstract()
            except AbstractionError as exc:
                return CegarResult("unsupported", rounds=round_no, message=str(exc))
            result = check_boolean_program(bprog, collect_reached=self.collect_certificate)
            if result.safe:
                certificate = None
                if self.collect_certificate and result.reached is not None:
                    certificate = self._build_certificate(preds, abstractor, result.reached)
                return CegarResult("safe", rounds=round_no, predicates=preds.count(),
                                   certificate=certificate)
            with obs.span("bebop-trace", round=round_no):
                trace = find_error_trace(bprog)
            if trace is None:
                return CegarResult(
                    "diverged", rounds=round_no, predicates=preds.count(),
                    message="abstract error not reproducible explicitly",
                )
            concrete = [
                (proc, abstractor.provenance.get((proc, pc)))
                for proc, pc, _ in trace
            ]
            with obs.span("concretize", round=round_no):
                feasible, witness, new_preds = self._concretize(concrete)
            if feasible:
                return CegarResult(
                    "error",
                    rounds=round_no,
                    predicates=preds.count(),
                    witness=witness,
                    trace=[str(s) for _, s in concrete if s is not None],
                )
            added = False
            for fname, p in new_preds:
                added |= preds.add(self.prog, fname, p)
            if not added:
                return CegarResult(
                    "diverged",
                    rounds=round_no,
                    predicates=preds.count(),
                    message="refinement produced no new predicates",
                )
        return CegarResult(
            "diverged",
            rounds=self.max_rounds,
            predicates=preds.count(),
            message=f"no convergence within {self.max_rounds} refinement rounds",
        )

    def _build_certificate(self, preds, abstractor, reached) -> Dict[str, object]:
        """Project the safe abstraction's reached valuations onto source
        locations keyed by ``(func, pre-order ordinal in func.body)`` —
        a key both the emitter and the independent validator can compute
        from the program text alone (statement identities do not survive
        serialization, ordinals do)."""
        from repro.lang.ast import walk_stmts

        ordinals: Dict[int, Tuple[str, int]] = {}
        for fname, decl in self.prog.functions.items():
            for i, s in enumerate(walk_stmts(decl.body)):
                ordinals[id(s)] = (fname, i)
        locations: Dict[Tuple[str, int], Dict[str, object]] = {}
        for (proc, pc), valuations in reached.items():
            stmt = abstractor.provenance.get((proc, pc))
            if stmt is None:
                continue  # prologue/dispatch instructions have no source home
            key = ordinals.get(id(stmt))
            if key is None:
                continue
            entry = locations.setdefault(key, {"stmt": str(stmt), "cubes": set()})
            for g, l in valuations:
                entry["cubes"].add(tuple(g) + tuple(l))
        return {
            "global_preds": list(preds.global_preds),
            "local_preds": {f: list(ps) for f, ps in preds.local_preds.items()},
            "locations": locations,
        }

    # -- concrete trace simulation --------------------------------------------------

    def _concretize(
        self, steps: List[Tuple[str, Optional[Stmt]]]
    ) -> Tuple[bool, Optional[Dict[str, object]], List[Tuple[str, Expr]]]:
        """Replay the abstract trace concretely.

        Returns (feasible, model, refinement predicates).  Variables are
        SSA-versioned per (function, name); the final step must be the
        failing assertion, contributing its negation.
        """
        versions: Dict[str, int] = {}
        types: Dict[str, object] = {}

        def v(fname: str, name: str) -> str:
            base = name if name in self.prog.globals else f"{fname}.{name}"
            return f"{base}#{versions.get(base, 0)}"

        def bump(fname: str, name: str) -> str:
            base = name if name in self.prog.globals else f"{fname}.{name}"
            versions[base] = versions.get(base, 0) + 1
            return f"{base}#{versions[base]}"

        def rename(fname: str, e: Expr) -> Expr:
            if isinstance(e, Var):
                nm = v(fname, e.name)
                types[nm] = self._type_of(fname, e.name)
                return Var(nm)
            if isinstance(e, Unary):
                return Unary(e.op, rename(fname, e.operand))
            if isinstance(e, Binary):
                return Binary(e.op, rename(fname, e.left), rename(fname, e.right))
            return e

        constraints: List[Expr] = []
        wp_targets: List[Tuple[int, str, Expr]] = []  # (step, fname, pred source)

        # version-0 variables carry the initial concrete values: globals
        # from their declared initializers (or defaults), entry locals
        # from their type defaults.  (Locals of other functions are left
        # unconstrained — sound, since fewer constraints over-approximate
        # feasibility and real errors are confirmed by the model.)
        from repro.lang.ast import BoolType as _BT, IntType as _IT

        def init_expr_of(typ, declared):
            if declared is not None and isinstance(declared, (IntLit, BoolLit, Unary)):
                return declared
            if isinstance(typ, _IT):
                return IntLit(0)
            if isinstance(typ, _BT):
                return BoolLit(False)
            return None

        for gname, g in self.prog.globals.items():
            init = init_expr_of(g.type, g.init)
            if init is not None:
                nm = f"{gname}#0"
                types[nm] = g.type
                constraints.append(Binary("==", Var(nm), init))
        entry_fn = self.prog.functions[self.prog.entry]
        for lname, ltype in entry_fn.locals.items():
            init = init_expr_of(ltype, None)
            if init is not None:
                nm = f"{self.prog.entry}.{lname}#0"
                types[nm] = ltype
                constraints.append(Binary("==", Var(nm), init))

        for i, (fname, stmt) in enumerate(steps):
            if stmt is None:
                continue
            last = i == len(steps) - 1
            if isinstance(stmt, Assign):
                rhs = rename(fname, stmt.rhs)
                lhs = bump(fname, stmt.lhs.name)
                types[lhs] = self._type_of(fname, stmt.lhs.name)
                constraints.append(Binary("==", Var(lhs), rhs))
                types[lhs] = self._type_of(fname, stmt.lhs.name)
            elif isinstance(stmt, Assume):
                constraints.append(rename(fname, stmt.cond))
                wp_targets.append((i, fname, stmt.cond))
            elif isinstance(stmt, Assert):
                if last:
                    constraints.append(Unary("!", rename(fname, stmt.cond)))
                    wp_targets.append((i, fname, stmt.cond))
                else:
                    constraints.append(rename(fname, stmt.cond))
            elif isinstance(stmt, (Call, Return)):
                # calls/returns only shuffle control here; assignments of
                # return values were havocked in the abstraction and are
                # not constrained concretely (sound: fewer constraints
                # keeps feasibility over-approximate, and real errors are
                # confirmed by the model)
                continue

        try:
            model = check_sat(constraints, types, self.width)
        except DecideError as exc:
            return False, None, self._refinement_preds(steps, wp_targets)
        if model is not None:
            return True, model, []
        return False, None, self._refinement_preds(steps, wp_targets)

    def _type_of(self, fname: str, name: str):
        if name in self.prog.globals:
            return self.prog.globals[name].type
        func = self.prog.functions[fname]
        if name in func.locals:
            return func.locals[name]
        for p in func.params:
            if p.name == name:
                return p.type
        raise KeyError(f"unknown variable {name} in {fname}")

    def _qualify(self, fname: str, e: Expr) -> Expr:
        """Prefix non-global variables with their owning function."""
        if isinstance(e, Var):
            return e if e.name in self.prog.globals else Var(f"{fname}.{e.name}")
        if isinstance(e, Unary):
            return Unary(e.op, self._qualify(fname, e.operand))
        if isinstance(e, Binary):
            return Binary(e.op, self._qualify(fname, e.left), self._qualify(fname, e.right))
        return e

    def _unqualify(self, e: Expr) -> Expr:
        if isinstance(e, Var):
            return Var(e.name.split(".", 1)[1]) if "." in e.name else e
        if isinstance(e, Unary):
            return Unary(e.op, self._unqualify(e.operand))
        if isinstance(e, Binary):
            return Binary(e.op, self._unqualify(e.left), self._unqualify(e.right))
        return e

    def _refinement_preds(
        self, steps: List[Tuple[str, Optional[Stmt]]], wp_targets: List[Tuple[int, str, Expr]]
    ) -> List[Tuple[str, Expr]]:
        """Predicates from weakest preconditions along the infeasible trace.

        For every branch/assertion condition on the trace, push it
        backwards through the preceding assignments — *across* function
        boundaries, with locals qualified by their owning function (a
        global can flow through another function's temporaries, e.g. the
        round-flag restore in the rounds dispatch driver) — collecting
        the atoms of every intermediate formula (Newton's role,
        heuristically).  Atoms mixing locals of two functions cannot be
        expressed as single-scope predicates and are dropped."""
        out: List[Tuple[str, Expr]] = []
        seen = set()

        def add(e: Expr) -> None:
            for atom in atoms_of(e):
                if isinstance(atom, BoolLit):
                    continue
                owners = {n.split(".", 1)[0] for n in expr_vars(atom) if "." in n}
                if len(owners) > 1:
                    continue
                fname = owners.pop() if owners else self.prog.entry
                plain = self._unqualify(atom)
                key = (fname, str(plain))
                if key not in seen:
                    seen.add(key)
                    out.append((fname, plain))

        for idx, target_fname, cond in wp_targets:
            phi = self._qualify(target_fname, cond)
            add(phi)
            # walk the trace backwards from the target, applying assignments
            for fname, stmt in reversed(steps[:idx]):
                if not isinstance(stmt, Assign) or not isinstance(stmt.lhs, Var):
                    continue
                name = stmt.lhs.name
                lhs = name if name in self.prog.globals else f"{fname}.{name}"
                if lhs in expr_vars(phi):
                    phi = subst(phi, lhs, self._qualify(fname, stmt.rhs))
                    add(phi)
        return out


def check_cegar(prog: Program, **kw) -> CegarResult:
    """Run the SLAM-lite CEGAR loop on a scalar sequential core program."""
    return CegarChecker(prog, **kw).check()
