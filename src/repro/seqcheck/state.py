"""Runtime values, addresses, and program states for the checkers.

Both the sequential checker and the concurrent checker share this value
model.  States are mutable while a transition executes and *frozen* into
hashable tuples for visited-set deduplication.

Value kinds
-----------
* Python ``int`` and ``bool`` (``bool`` checked first — it subclasses int)
* :class:`FuncVal` — a function name, the target of indirect calls
* :class:`PtrVal` — an address, or the null pointer (``addr is None``)

Addresses
---------
* ``("g", name)`` — a global variable
* ``("l", frame_id, name)`` — a local in a specific activation record
* ``("f", cell_id, field)`` — a field of a heap cell

Heap cells are created by ``malloc`` with ids from a per-state counter, so
cell identity is deterministic along any execution path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lang.ast import (
    BoolType,
    FuncType,
    IntType,
    Program,
    PtrType,
    Type,
)


@dataclass(frozen=True)
class FuncVal:
    name: str

    def __str__(self) -> str:
        return f"&{self.name}"


@dataclass(frozen=True)
class PtrVal:
    """A pointer value; ``addr is None`` is the null pointer."""

    addr: Optional[Tuple] = None

    @property
    def is_null(self) -> bool:
        return self.addr is None

    def __str__(self) -> str:
        return "null" if self.is_null else f"ptr{self.addr}"


NULL = PtrVal(None)

Value = object  # int | bool | FuncVal | PtrVal


def default_value(typ: Type) -> Value:
    """The initial value of an uninitialized variable or fresh heap field."""
    if isinstance(typ, BoolType):
        return False
    if isinstance(typ, IntType):
        return 0
    if isinstance(typ, PtrType):
        return NULL
    if isinstance(typ, FuncType):
        return FuncVal("__undefined__")
    raise ValueError(f"no default value for type {typ}")


class MemoryError_(Exception):
    """Raised by state accessors on bad memory operations; the checkers
    convert it into a reported violation."""

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind


@dataclass
class Frame:
    """One activation record."""

    func: str
    node: int  # current CFG node id within the function's CFG
    locals: Dict[str, Value]
    frame_id: int

    def clone(self) -> "Frame":
        return Frame(self.func, self.node, dict(self.locals), self.frame_id)

    def freeze(self) -> Tuple:
        return (self.func, self.node, self.frame_id, tuple(sorted(self.locals.items(), key=lambda kv: kv[0])))


class Store:
    """Globals + heap, shared by all threads."""

    __slots__ = ("globals", "heap", "alloc_count", "frame_count")

    def __init__(
        self,
        globals_: Optional[Dict[str, Value]] = None,
        heap: Optional[Dict[int, Tuple[str, Dict[str, Value]]]] = None,
        alloc_count: int = 0,
        frame_count: int = 0,
    ):
        self.globals = globals_ if globals_ is not None else {}
        self.heap = heap if heap is not None else {}
        self.alloc_count = alloc_count
        self.frame_count = frame_count

    def clone(self) -> "Store":
        heap = {cid: (sname, dict(fields)) for cid, (sname, fields) in self.heap.items()}
        return Store(dict(self.globals), heap, self.alloc_count, self.frame_count)

    def freeze(self) -> Tuple:
        globals_t = tuple(sorted(self.globals.items(), key=lambda kv: kv[0]))
        heap_t = tuple(
            (cid, sname, tuple(sorted(fields.items(), key=lambda kv: kv[0])))
            for cid, (sname, fields) in sorted(self.heap.items())
        )
        return (globals_t, heap_t, self.alloc_count, self.frame_count)

    # -- allocation -----------------------------------------------------------

    def malloc(self, prog: Program, struct_name: str) -> PtrVal:
        decl = prog.struct(struct_name)
        cid = self.alloc_count
        self.alloc_count += 1
        self.heap[cid] = (struct_name, {f: default_value(t) for f, t in decl.fields.items()})
        return PtrVal(("c", cid))

    def fresh_frame_id(self) -> int:
        fid = self.frame_count
        self.frame_count += 1
        return fid

    # -- addressed access -------------------------------------------------------

    def read(self, addr: Optional[Tuple], frames: Dict[int, Frame]) -> Value:
        if addr is None:
            raise MemoryError_("null-deref", "read through null pointer")
        kind = addr[0]
        if kind == "g":
            name = addr[1]
            if name not in self.globals:
                raise MemoryError_("bad-addr", f"read of unknown global '{name}'")
            return self.globals[name]
        if kind == "l":
            _, fid, name = addr
            frame = frames.get(fid)
            if frame is None or name not in frame.locals:
                raise MemoryError_("dangling", f"read through dangling pointer to local '{name}'")
            return frame.locals[name]
        if kind == "f":
            _, cid, fname = addr
            if cid not in self.heap:
                raise MemoryError_("dangling", f"read of freed/unknown cell {cid}")
            sname, fields = self.heap[cid]
            if fname not in fields:
                raise MemoryError_("bad-addr", f"struct {sname} has no field '{fname}'")
            return fields[fname]
        if kind == "c":
            raise MemoryError_("bad-addr", "read of whole struct cell")
        raise MemoryError_("bad-addr", f"malformed address {addr}")

    def write(self, addr: Optional[Tuple], value: Value, frames: Dict[int, Frame]) -> None:
        if addr is None:
            raise MemoryError_("null-deref", "write through null pointer")
        kind = addr[0]
        if kind == "g":
            name = addr[1]
            if name not in self.globals:
                raise MemoryError_("bad-addr", f"write to unknown global '{name}'")
            self.globals[name] = value
            return
        if kind == "l":
            _, fid, name = addr
            frame = frames.get(fid)
            if frame is None or name not in frame.locals:
                raise MemoryError_("dangling", f"write through dangling pointer to local '{name}'")
            frame.locals[name] = value
            return
        if kind == "f":
            _, cid, fname = addr
            if cid not in self.heap:
                raise MemoryError_("dangling", f"write to freed/unknown cell {cid}")
            sname, fields = self.heap[cid]
            if fname not in fields:
                raise MemoryError_("bad-addr", f"struct {sname} has no field '{fname}'")
            fields[fname] = value
            return
        raise MemoryError_("bad-addr", f"malformed address {addr}")


def field_addr(base: PtrVal, field: str) -> Tuple:
    """The address of ``base->field``; ``base`` must point at a cell."""
    if base.is_null:
        raise MemoryError_("null-deref", f"field access ->{field} through null pointer")
    if base.addr[0] != "c":
        raise MemoryError_("bad-addr", f"field access ->{field} on non-struct pointer {base}")
    return ("f", base.addr[1], field)
