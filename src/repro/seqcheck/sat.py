"""A small DPLL SAT solver (unit propagation + watched-literal-free
two-level search with activity-free branching).

This is the decision-procedure core of the SLAM-lite tier: the
bit-blasting layer (:mod:`repro.seqcheck.decide`) reduces queries about
program expressions to CNF, and predicate abstraction
(:mod:`repro.seqcheck.abstraction`) asks implication questions through
it.  The solver is deliberately simple — formulas here are small (tens
of variables) — but complete.

Representation: variables are positive integers; a literal is ``+v`` or
``-v``; a clause is a tuple of literals; a formula is a list of clauses.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

Literal = int
Clause = Tuple[Literal, ...]


class CnfBuilder:
    """Fresh-variable management and Tseitin-style gate encoding."""

    def __init__(self) -> None:
        self._next = 1
        self.clauses: List[Clause] = []

    def fresh(self) -> int:
        v = self._next
        self._next += 1
        return v

    @property
    def num_vars(self) -> int:
        return self._next - 1

    def add(self, *lits: Literal) -> None:
        self.clauses.append(tuple(lits))

    # -- gates (each returns the output literal) ------------------------------

    def const(self, value: bool) -> Literal:
        v = self.fresh()
        self.add(v if value else -v)
        return v

    def not_(self, a: Literal) -> Literal:
        return -a

    def and_(self, a: Literal, b: Literal) -> Literal:
        o = self.fresh()
        self.add(-o, a)
        self.add(-o, b)
        self.add(o, -a, -b)
        return o

    def or_(self, a: Literal, b: Literal) -> Literal:
        o = self.fresh()
        self.add(o, -a)
        self.add(o, -b)
        self.add(-o, a, b)
        return o

    def xor_(self, a: Literal, b: Literal) -> Literal:
        o = self.fresh()
        self.add(-o, a, b)
        self.add(-o, -a, -b)
        self.add(o, -a, b)
        self.add(o, a, -b)
        return o

    def iff(self, a: Literal, b: Literal) -> Literal:
        return -self.xor_(a, b)

    def ite(self, c: Literal, t: Literal, e: Literal) -> Literal:
        o = self.fresh()
        self.add(-o, -c, t)
        self.add(-o, c, e)
        self.add(o, -c, -t)
        self.add(o, c, -e)
        return o

    def and_many(self, lits: Sequence[Literal]) -> Literal:
        if not lits:
            return self.const(True)
        out = lits[0]
        for l in lits[1:]:
            out = self.and_(out, l)
        return out

    def or_many(self, lits: Sequence[Literal]) -> Literal:
        if not lits:
            return self.const(False)
        out = lits[0]
        for l in lits[1:]:
            out = self.or_(out, l)
        return out


def solve(
    clauses: Iterable[Clause], num_vars: int, assumptions: Sequence[Literal] = ()
) -> Optional[Dict[int, bool]]:
    """DPLL with unit propagation.  Returns a satisfying assignment
    (complete over 1..num_vars) or ``None`` if unsatisfiable."""
    clause_list = [tuple(c) for c in clauses]
    assign: Dict[int, bool] = {}
    for lit in assumptions:
        v, val = abs(lit), lit > 0
        if assign.get(v, val) != val:
            return None
        assign[v] = val

    def propagate(local: Dict[int, bool]) -> Optional[Dict[int, bool]]:
        changed = True
        while changed:
            changed = False
            for clause in clause_list:
                unassigned: List[Literal] = []
                satisfied = False
                for lit in clause:
                    v = abs(lit)
                    if v in local:
                        if local[v] == (lit > 0):
                            satisfied = True
                            break
                    else:
                        unassigned.append(lit)
                if satisfied:
                    continue
                if not unassigned:
                    return None  # conflict
                if len(unassigned) == 1:
                    lit = unassigned[0]
                    local[abs(lit)] = lit > 0
                    changed = True
        return local

    def dpll(local: Dict[int, bool]) -> Optional[Dict[int, bool]]:
        local = dict(local)
        if propagate(local) is None:
            return None
        pick = None
        for clause in clause_list:
            for lit in clause:
                if abs(lit) not in local:
                    pick = abs(lit)
                    break
            if pick:
                break
        if pick is None:
            return local
        for val in (True, False):
            trial = dict(local)
            trial[pick] = val
            result = dpll(trial)
            if result is not None:
                return result
        return None

    model = dpll(assign)
    if model is None:
        return None
    for v in range(1, num_vars + 1):
        model.setdefault(v, False)
    return model


def is_satisfiable(builder: CnfBuilder, assumptions: Sequence[Literal] = ()) -> bool:
    """Convenience wrapper over :func:`solve`."""
    return solve(builder.clauses, builder.num_vars, assumptions) is not None
