"""Summary-based interprocedural reachability for boolean programs.

This is the Bebop role in SLAM: the RHS (Reps–Horwitz–Sagiv) tabulation
algorithm specialized to boolean programs.  *Path edges*
``⟨entry valuation⟩ → ⟨point, valuation⟩`` are tabulated per procedure;
*summaries* ``⟨globals, args⟩ → ⟨globals', rets⟩`` shortcut calls.  The
running time is ``O(|C| · 4^(g+l))`` in the worst case — the
``O(|C| · 2^(g+l))`` bound the paper cites for the sequential backend
(per entry valuation).

An ``assert`` whose condition can be false at a reachable valuation
yields a hierarchical error trace, reconstructed from back-pointers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .boolprog import (
    BAssert,
    BAssign,
    BAssume,
    BCall,
    BConst,
    BExpr,
    BGoto,
    BProc,
    BProgram,
    BReturn,
    BSkip,
    BStmt,
    eval_bexpr,
)

Valuation = Tuple[bool, ...]  # globals or frame variables, in declared order


@dataclass
class BebopResult:
    safe: bool
    error_proc: Optional[str] = None
    error_index: Optional[int] = None
    message: str = ""
    trace: List[Tuple[str, int, str]] = field(default_factory=list)  # (proc, index, text)
    path_edges: int = 0
    summaries: int = 0
    #: When collection was requested and the program is safe: every
    #: reached valuation per point, ``{(proc, pc): {(g, l), ...}}``
    #: (pre-statement, like the path edges they are projected from).
    reached: Optional[Dict[Tuple[str, int], Set[Tuple[Valuation, Valuation]]]] = None


# A path edge within a procedure:
#   (g_in, l_in)  — valuation at procedure entry
#   (pc, g, l)    — current point and valuation
PathEdge = Tuple[Valuation, Valuation, int, Valuation, Valuation]


class BebopChecker:
    """The RHS tabulation engine (see module doc)."""
    def __init__(self, prog: BProgram, max_edges: int = 2_000_000,
                 collect_reached: bool = False):
        prog.validate()
        self.prog = prog
        self.max_edges = max_edges
        self.collect_reached = collect_reached
        self._labels: Dict[str, Dict[str, int]] = {
            p.name: p.label_index() for p in prog.procs.values()
        }

    # -- helpers ---------------------------------------------------------------

    def _env(self, proc: BProc, g: Valuation, l: Valuation) -> Dict[str, bool]:
        env = dict(zip(self.prog.globals, g))
        env.update(zip(proc.frame_vars, l))
        return env

    def _pack(self, proc: BProc, env: Dict[str, bool]) -> Tuple[Valuation, Valuation]:
        return (
            tuple(env[x] for x in self.prog.globals),
            tuple(env[x] for x in proc.frame_vars),
        )

    def _eval_all(self, exprs: List[BExpr], env: Dict[str, bool]) -> List[List[bool]]:
        """Cartesian evaluation of a list of expressions (``*`` branches)."""
        results: List[List[bool]] = [[]]
        for e in exprs:
            vals = eval_bexpr(e, env)
            results = [prefix + [v] for prefix in results for v in vals]
        return results

    # -- the tabulation ----------------------------------------------------------

    def check(self) -> BebopResult:
        prog = self.prog
        entry_proc = prog.proc(prog.entry)
        g0 = tuple(False for _ in prog.globals)
        l0 = tuple(False for _ in entry_proc.frame_vars)

        # tabulated edges and back-pointers for trace rebuilding,
        # keyed by (proc, edge) — edge tuples alone are ambiguous across procs
        edges: Set[Tuple[str, PathEdge]] = set()
        # parent[(proc, edge)] = ((proc', edge'), text) or ("call", ...) or ("root",)
        parent: Dict[Tuple[str, PathEdge], Tuple] = {}
        # summaries[proc][(g_in, l_in)] = set of (g_out, rets)
        summaries: Dict[str, Dict[Tuple[Valuation, Valuation], Set[Tuple[Valuation, Tuple[bool, ...]]]]] = {
            p: {} for p in prog.procs
        }
        # callers waiting on a summary: callers[(proc, g_in, l_in)] = list of (caller_edge, call_stmt)
        waiting: Dict[Tuple[str, Valuation, Valuation], List[Tuple[str, PathEdge]]] = {}
        # entry contexts already seeded per proc
        seeded: Set[Tuple[str, Valuation, Valuation]] = set()

        work: deque = deque()

        def add_edge(proc_name: str, e: PathEdge, via: Tuple) -> None:
            key = (proc_name, e)
            if key in edges:
                return
            edges.add(key)
            parent[key] = via
            work.append((proc_name, e))

        def seed(proc_name: str, g_in: Valuation, l_in: Valuation, via: Tuple) -> None:
            key = (proc_name, g_in, l_in)
            e = (g_in, l_in, 0, g_in, l_in)
            if key not in seeded:
                seeded.add(key)
            add_edge(proc_name, e, via)

        seed(prog.entry, g0, l0, ("root",))

        while work:
            if len(edges) > self.max_edges:
                return BebopResult(False, message="path-edge budget exceeded")
            proc_name, edge = work.popleft()
            proc = prog.proc(proc_name)
            g_in, l_in, pc, g, l = edge
            if pc >= len(proc.body):
                stmt: BStmt = BReturn([])  # implicit return (nrets must be 0)
                if proc.nrets:
                    # falling off a value-returning proc: treat as returning
                    # all-False (mirrors the concrete checker's defaults)
                    stmt = BReturn([BConst(False)] * proc.nrets)
            else:
                stmt = proc.body[pc]
            env = self._env(proc, g, l)

            if isinstance(stmt, (BSkip,)):
                g2, l2 = self._pack(proc, env)
                add_edge(proc_name, (g_in, l_in, pc + 1, g2, l2), ((proc_name, edge), str(stmt)))
            elif isinstance(stmt, BAssign):
                for values in self._eval_all(stmt.exprs, env):
                    env2 = dict(env)
                    for t, v in zip(stmt.targets, values):
                        env2[t] = v
                    g2, l2 = self._pack(proc, env2)
                    add_edge(proc_name, (g_in, l_in, pc + 1, g2, l2), ((proc_name, edge), str(stmt)))
            elif isinstance(stmt, BAssume):
                if True in eval_bexpr(stmt.cond, env):
                    add_edge(proc_name, (g_in, l_in, pc + 1, g, l), ((proc_name, edge), str(stmt)))
            elif isinstance(stmt, BAssert):
                vals = eval_bexpr(stmt.cond, env)
                if False in vals:
                    trace = self._rebuild_trace(parent, (proc_name, edge))
                    trace.append((proc_name, pc, str(stmt)))
                    return BebopResult(
                        False,
                        error_proc=proc_name,
                        error_index=pc,
                        message=f"assertion may fail: {stmt}",
                        trace=trace,
                        path_edges=len(edges),
                        summaries=sum(len(v) for s in summaries.values() for v in s.values()),
                    )
                add_edge(proc_name, (g_in, l_in, pc + 1, g, l), ((proc_name, edge), str(stmt)))
            elif isinstance(stmt, BGoto):
                for lbl in stmt.labels:
                    target = self._labels[proc_name][lbl]
                    add_edge(proc_name, (g_in, l_in, target, g, l), ((proc_name, edge), str(stmt)))
            elif isinstance(stmt, BReturn):
                for values in self._eval_all(stmt.exprs, env):
                    rets = tuple(values)
                    summ = summaries[proc_name].setdefault((g_in, l_in), set())
                    item = (g, rets)
                    if item in summ:
                        continue
                    summ.add(item)
                    for caller_name, caller_edge in waiting.get((proc_name, g_in, l_in), []):
                        self._apply_summary(caller_name, caller_edge, g, rets, add_edge, parent)
            elif isinstance(stmt, BCall):
                callee = prog.proc(stmt.proc)
                for argvals in self._eval_all(stmt.args, env):
                    l_callee = tuple(argvals) + tuple(False for _ in callee.locals)
                    key = (stmt.proc, g, l_callee)
                    waiting.setdefault(key, []).append((proc_name, edge))
                    seed(stmt.proc, g, l_callee, ("call", edge, proc_name))
                    for g_out, rets in summaries[stmt.proc].get((g, l_callee), set()):
                        self._apply_summary(proc_name, edge, g_out, rets, add_edge, parent)
            else:
                raise TypeError(f"unknown statement {stmt!r}")

        reached: Optional[Dict[Tuple[str, int], Set[Tuple[Valuation, Valuation]]]] = None
        if self.collect_reached:
            # Project the tabulated path edges down to per-point reached
            # valuations — the raw material of a predicate-invariant
            # witness (points past the body end are implicit returns).
            reached = {}
            for proc_name, (_, _, pc, g, l) in edges:
                if pc < len(prog.proc(proc_name).body):
                    reached.setdefault((proc_name, pc), set()).add((g, l))
        return BebopResult(
            True,
            path_edges=len(edges),
            summaries=sum(len(v) for s in summaries.values() for v in s.values()),
            reached=reached,
        )

    def _apply_summary(self, caller_name, caller_edge, g_out, rets, add_edge, parent) -> None:
        proc = self.prog.proc(caller_name)
        g_in, l_in, pc, g, l = caller_edge
        stmt = proc.body[pc]
        env = self._env(proc, g_out, l)  # globals from callee exit, locals unchanged
        for t, v in zip(stmt.rets, rets):
            env[t] = v
        g2, l2 = self._pack(proc, env)
        add_edge(caller_name, (g_in, l_in, pc + 1, g2, l2), ((caller_name, caller_edge), f"{stmt} [summary]"))

    @staticmethod
    def _rebuild_trace(parent: Dict, key: Tuple[str, PathEdge]) -> List[Tuple[str, int, str]]:
        # walk back-pointers within and across procedures; the trace lists
        # (proc, stmt-index, text) oldest-first.  Steps hidden inside
        # applied summaries are elided (the CEGAR loop re-derives precise
        # traces with the explicit executor below).
        steps: List[Tuple[str, int, str]] = []
        seen = set()
        cur = key
        while True:
            if cur in seen:
                break
            seen.add(cur)
            via = parent.get(cur)
            if via is None or via[0] == "root":
                break
            if via[0] == "call":
                _, caller_edge, caller_name = via
                cur = (caller_name, caller_edge)
                continue
            prev_key, text = via
            steps.append((prev_key[0], prev_key[1][2], text))
            cur = prev_key
        steps.reverse()
        return steps


def check_boolean_program(prog: BProgram, max_edges: int = 2_000_000,
                          collect_reached: bool = False) -> BebopResult:
    """Reachability check of a boolean program's assertions."""
    from repro import obs

    with obs.span("bebop", procs=len(prog.procs)):
        result = BebopChecker(prog, max_edges=max_edges,
                              collect_reached=collect_reached).check()
    obs.inc("bebop_path_edges", result.path_edges)
    obs.inc("bebop_summaries", result.summaries)
    return result


# ---------------------------------------------------------------------------
# Explicit trace extraction (used by the CEGAR loop)
# ---------------------------------------------------------------------------


def find_error_trace(
    prog: BProgram, max_states: int = 500_000
) -> Optional[List[Tuple[str, int, BStmt]]]:
    """BFS over concrete boolean-program configurations, returning the
    shortest statement-level trace to a failing assertion, or None.

    The Bebop tabulation answers reachability fast but its summary-based
    back-pointers elide callee steps; the CEGAR loop needs every executed
    statement to build the concrete path condition, so it re-derives the
    trace here (boolean programs produced by abstraction are small).
    """
    from repro import obs

    prog.validate()
    labels = {p.name: p.label_index() for p in prog.procs.values()}
    entry = prog.proc(prog.entry)
    g0 = tuple(False for _ in prog.globals)
    l0 = tuple(False for _ in entry.frame_vars)
    # configuration: (globals, stack of (proc, pc, frame-valuation))
    init = (g0, ((prog.entry, 0, l0),))
    parents: Dict[Tuple, Optional[Tuple[Tuple, Tuple[str, int, BStmt]]]] = {init: None}
    queue: deque = deque([init])

    def env_of(proc: BProc, g, l) -> Dict[str, bool]:
        env = dict(zip(prog.globals, g))
        env.update(zip(proc.frame_vars, l))
        return env

    def rebuild(cfg) -> List[Tuple[str, int, BStmt]]:
        steps = []
        cur = cfg
        while parents.get(cur) is not None:
            prev, step = parents[cur]
            steps.append(step)
            cur = prev
        steps.reverse()
        return steps

    def eval_tuple(exprs, env):
        results = [[]]
        for e in exprs:
            vals = eval_bexpr(e, env)
            results = [p + [v] for p in results for v in vals]
        return [tuple(r) for r in results]

    while queue:
        cfg = queue.popleft()
        if len(parents) > max_states:
            return None
        g, stack = cfg
        if not stack:
            continue
        proc_name, pc, l = stack[-1]
        proc = prog.proc(proc_name)
        if pc >= len(proc.body):
            stmt: BStmt = BReturn([BConst(False)] * proc.nrets)
        else:
            stmt = proc.body[pc]
        env = env_of(proc, g, l)
        step = (proc_name, pc, stmt)
        succs: List[Tuple] = []
        if isinstance(stmt, BSkip):
            succs.append((g, stack[:-1] + ((proc_name, pc + 1, l),)))
        elif isinstance(stmt, BAssign):
            for values in eval_tuple(stmt.exprs, env):
                env2 = dict(env)
                for t, v in zip(stmt.targets, values):
                    env2[t] = v
                g2 = tuple(env2[x] for x in prog.globals)
                l2 = tuple(env2[x] for x in proc.frame_vars)
                succs.append((g2, stack[:-1] + ((proc_name, pc + 1, l2),)))
        elif isinstance(stmt, BAssume):
            if True in eval_bexpr(stmt.cond, env):
                succs.append((g, stack[:-1] + ((proc_name, pc + 1, l),)))
        elif isinstance(stmt, BAssert):
            if False in eval_bexpr(stmt.cond, env):
                return rebuild(cfg) + [step]
            succs.append((g, stack[:-1] + ((proc_name, pc + 1, l),)))
        elif isinstance(stmt, BGoto):
            for lbl in stmt.labels:
                succs.append((g, stack[:-1] + ((proc_name, labels[proc_name][lbl], l),)))
        elif isinstance(stmt, BCall):
            callee = prog.proc(stmt.proc)
            for argvals in eval_tuple(stmt.args, env):
                lc = argvals + tuple(False for _ in callee.locals)
                succs.append((g, stack + ((stmt.proc, 0, lc),)))
        elif isinstance(stmt, BReturn):
            for values in eval_tuple(stmt.exprs, env):
                if len(stack) == 1:
                    succs.append((g, ()))
                    continue
                caller_name, caller_pc, caller_l = stack[-2]
                caller = prog.proc(caller_name)
                call_stmt = caller.body[caller_pc]
                env2 = env_of(caller, g, caller_l)
                for t, v in zip(call_stmt.rets, values):
                    env2[t] = v
                g2 = tuple(env2[x] for x in prog.globals)
                l2 = tuple(env2[x] for x in caller.frame_vars)
                succs.append((g2, stack[:-2] + ((caller_name, caller_pc + 1, l2),)))
        for s in succs:
            if s not in parents:
                parents[s] = (cfg, step)
                queue.append(s)
    return None
