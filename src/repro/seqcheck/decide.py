"""A bit-blasting decision procedure for program predicates.

Predicate abstraction (:mod:`repro.seqcheck.abstraction`) needs to answer
entailment questions between boolean combinations of program predicates —
expressions over ``int`` and ``bool`` program variables.  This module
decides them by bit-blasting integers to fixed-width two's-complement
vectors (default 8 bits) and calling the DPLL solver.

The width is a soundness *parameter*: driver models use tiny constants,
and the CEGAR loop validates abstract counterexamples concretely before
reporting, so a too-small width can cost precision but never produces a
false error.  Division/modulo are not supported in predicates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.lang.ast import (
    Binary,
    BoolLit,
    BoolType,
    Expr,
    IntLit,
    IntType,
    Type,
    Unary,
    Var,
)

from .sat import CnfBuilder, Literal, solve


class DecideError(Exception):
    pass


class BitBlaster:
    """One query context: variables shared across all expressions."""

    def __init__(self, width: int = 8):
        self.width = width
        self.cnf = CnfBuilder()
        self._int_vars: Dict[str, List[Literal]] = {}
        self._bool_vars: Dict[str, Literal] = {}

    # -- variable management -------------------------------------------------

    def int_var(self, name: str) -> List[Literal]:
        if name not in self._int_vars:
            self._int_vars[name] = [self.cnf.fresh() for _ in range(self.width)]
        return self._int_vars[name]

    def bool_var(self, name: str) -> Literal:
        if name not in self._bool_vars:
            self._bool_vars[name] = self.cnf.fresh()
        return self._bool_vars[name]

    # -- vectors ------------------------------------------------------------------

    def const_vec(self, value: int) -> List[Literal]:
        mask = (1 << self.width) - 1
        bits = value & mask
        return [self.cnf.const(bool((bits >> i) & 1)) for i in range(self.width)]

    def add_vec(self, a: List[Literal], b: List[Literal]) -> List[Literal]:
        out: List[Literal] = []
        carry = self.cnf.const(False)
        for x, y in zip(a, b):
            s = self.cnf.xor_(self.cnf.xor_(x, y), carry)
            carry = self.cnf.or_(
                self.cnf.and_(x, y), self.cnf.and_(carry, self.cnf.xor_(x, y))
            )
            out.append(s)
        return out

    def neg_vec(self, a: List[Literal]) -> List[Literal]:
        inverted = [-x for x in a]
        return self.add_vec(inverted, self.const_vec(1))

    def sub_vec(self, a: List[Literal], b: List[Literal]) -> List[Literal]:
        return self.add_vec(a, self.neg_vec(b))

    def mul_vec(self, a: List[Literal], b: List[Literal]) -> List[Literal]:
        acc = self.const_vec(0)
        for i, bit in enumerate(b):
            shifted = [self.cnf.const(False)] * i + a[: self.width - i]
            masked = [self.cnf.and_(bit, s) for s in shifted]
            acc = self.add_vec(acc, masked)
        return acc

    def eq_vec(self, a: List[Literal], b: List[Literal]) -> Literal:
        eqs = [self.cnf.iff(x, y) for x, y in zip(a, b)]
        return self.cnf.and_many(eqs)

    def lt_vec(self, a: List[Literal], b: List[Literal]) -> Literal:
        """Signed a < b: compare with flipped sign bits, unsigned."""
        a2 = list(a)
        b2 = list(b)
        a2[-1] = -a2[-1]
        b2[-1] = -b2[-1]
        # unsigned less-than, MSB downward
        lt = self.cnf.const(False)
        eq_so_far = self.cnf.const(True)
        for x, y in reversed(list(zip(a2, b2))):
            bit_lt = self.cnf.and_(-x, y)
            lt = self.cnf.or_(lt, self.cnf.and_(eq_so_far, bit_lt))
            eq_so_far = self.cnf.and_(eq_so_far, self.cnf.iff(x, y))
        return lt

    # -- expressions ----------------------------------------------------------------

    def blast_int(self, e: Expr, types: Dict[str, Type]) -> List[Literal]:
        if isinstance(e, IntLit):
            return self.const_vec(e.value)
        if isinstance(e, Var):
            t = types.get(e.name)
            if not isinstance(t, IntType):
                raise DecideError(f"variable {e.name} is not int in predicate")
            return self.int_var(e.name)
        if isinstance(e, Unary) and e.op == "-":
            return self.neg_vec(self.blast_int(e.operand, types))
        if isinstance(e, Binary):
            if e.op == "+":
                return self.add_vec(self.blast_int(e.left, types), self.blast_int(e.right, types))
            if e.op == "-":
                return self.sub_vec(self.blast_int(e.left, types), self.blast_int(e.right, types))
            if e.op == "*":
                return self.mul_vec(self.blast_int(e.left, types), self.blast_int(e.right, types))
        raise DecideError(f"unsupported integer expression in predicate: {e}")

    def blast_bool(self, e: Expr, types: Dict[str, Type]) -> Literal:
        if isinstance(e, BoolLit):
            return self.cnf.const(e.value)
        if isinstance(e, Var):
            t = types.get(e.name)
            if not isinstance(t, BoolType):
                raise DecideError(f"variable {e.name} is not bool in predicate")
            return self.bool_var(e.name)
        if isinstance(e, Unary) and e.op == "!":
            return -self.blast_bool(e.operand, types)
        if isinstance(e, Binary):
            if e.op == "&&":
                return self.cnf.and_(self.blast_bool(e.left, types), self.blast_bool(e.right, types))
            if e.op == "||":
                return self.cnf.or_(self.blast_bool(e.left, types), self.blast_bool(e.right, types))
            if e.op in ("==", "!="):
                lt = self._operand_type(e.left, types)
                if isinstance(lt, BoolType):
                    out = self.cnf.iff(self.blast_bool(e.left, types), self.blast_bool(e.right, types))
                else:
                    out = self.eq_vec(self.blast_int(e.left, types), self.blast_int(e.right, types))
                return out if e.op == "==" else -out
            if e.op in ("<", "<=", ">", ">="):
                a = self.blast_int(e.left, types)
                b = self.blast_int(e.right, types)
                if e.op == "<":
                    return self.lt_vec(a, b)
                if e.op == ">":
                    return self.lt_vec(b, a)
                if e.op == "<=":
                    return -self.lt_vec(b, a)
                return -self.lt_vec(a, b)
        raise DecideError(f"unsupported boolean expression in predicate: {e}")

    def _operand_type(self, e: Expr, types: Dict[str, Type]) -> Type:
        if isinstance(e, BoolLit):
            return BoolType()
        if isinstance(e, IntLit):
            return IntType()
        if isinstance(e, Var):
            t = types.get(e.name)
            if t is None:
                raise DecideError(f"untyped variable {e.name}")
            return t
        if isinstance(e, Unary) and e.op == "!":
            return BoolType()
        if isinstance(e, Unary) and e.op == "-":
            return IntType()
        if isinstance(e, Binary):
            return BoolType() if e.op in ("&&", "||", "==", "!=", "<", "<=", ">", ">=") else IntType()
        raise DecideError(f"cannot type predicate operand {e}")


def check_sat(
    exprs: Sequence[Expr], types: Dict[str, Type], width: int = 8
) -> Optional[Dict[str, object]]:
    """Is the conjunction of ``exprs`` satisfiable?  Returns a model
    (variable -> int/bool) or ``None``."""
    from repro import obs

    obs.inc("sat_calls")
    bb = BitBlaster(width)
    for e in exprs:
        bb.cnf.add(bb.blast_bool(e, types))
    model = solve(bb.cnf.clauses, bb.cnf.num_vars)
    if model is None:
        return None
    out: Dict[str, object] = {}
    for name, lit in bb._bool_vars.items():
        out[name] = model[abs(lit)] if lit > 0 else not model[abs(lit)]
    for name, bits in bb._int_vars.items():
        value = 0
        for i, lit in enumerate(bits):
            bit = model[abs(lit)] if lit > 0 else not model[abs(lit)]
            if bit:
                value |= 1 << i
        if value >= 1 << (width - 1):
            value -= 1 << width
        out[name] = value
    return out


def entails(
    antecedents: Sequence[Expr], consequent: Expr, types: Dict[str, Type], width: int = 8
) -> bool:
    """Does ``/\\ antecedents`` imply ``consequent`` (modulo the width)?"""
    negated = Unary("!", consequent)
    return check_sat(list(antecedents) + [negated], types, width) is None
