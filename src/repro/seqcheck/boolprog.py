"""Boolean programs — the input language of the Bebop-style engine.

A boolean program (Ball & Rajamani's formalism, the output of SLAM's
predicate-abstraction step) has only ``bool`` variables; expressions may
use the unknown value ``*`` (nondeterministic choice).  Procedures take
bool parameters and return a tuple of bools.  Control is structured as a
statement list per procedure with nondeterministic ``goto`` over labels.

The complexity the paper cites for the sequential backend —
``O(|C| · 2^(g+l))`` — is the cost of reachability over this IR, realized
by :mod:`repro.seqcheck.bebop`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


# -- expressions ---------------------------------------------------------------


class BExpr:
    """Base class of boolean-program expressions."""
    pass


@dataclass(frozen=True)
class BConst(BExpr):
    value: bool

    def __str__(self) -> str:
        return "T" if self.value else "F"


@dataclass(frozen=True)
class BVar(BExpr):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BNondet(BExpr):
    """The unknown value ``*``."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class BNot(BExpr):
    operand: BExpr

    def __str__(self) -> str:
        return f"!{self.operand}"


@dataclass(frozen=True)
class BAnd(BExpr):
    left: BExpr
    right: BExpr

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True)
class BOr(BExpr):
    left: BExpr
    right: BExpr

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


def bor_many(es: Sequence[BExpr]) -> BExpr:
    """Disjunction of a list (False when empty)."""
    if not es:
        return BConst(False)
    out = es[0]
    for e in es[1:]:
        out = BOr(out, e)
    return out


def band_many(es: Sequence[BExpr]) -> BExpr:
    """Conjunction of a list (True when empty)."""
    if not es:
        return BConst(True)
    out = es[0]
    for e in es[1:]:
        out = BAnd(out, e)
    return out


def eval_bexpr(e: BExpr, env: Dict[str, bool], choice: Optional[bool] = None) -> List[bool]:
    """All possible values of ``e`` under ``env`` (``*`` yields both)."""
    if isinstance(e, BConst):
        return [e.value]
    if isinstance(e, BVar):
        return [env[e.name]]
    if isinstance(e, BNondet):
        return [True, False] if choice is None else [choice]
    if isinstance(e, BNot):
        return [not v for v in eval_bexpr(e.operand, env, choice)]
    if isinstance(e, BAnd):
        return sorted({a and b for a in eval_bexpr(e.left, env, choice) for b in eval_bexpr(e.right, env, choice)})
    if isinstance(e, BOr):
        return sorted({a or b for a in eval_bexpr(e.left, env, choice) for b in eval_bexpr(e.right, env, choice)})
    raise TypeError(f"unknown BExpr {e!r}")


# -- statements -----------------------------------------------------------------


@dataclass
class BStmt:
    # keyword-only so subclass payloads can be passed positionally
    label: Optional[str] = field(default=None, kw_only=True)


@dataclass
class BSkip(BStmt):
    def __str__(self) -> str:
        return "skip"


@dataclass
class BAssign(BStmt):
    """Parallel assignment ``x1, x2 := e1, e2``."""

    targets: List[str] = field(default_factory=list)
    exprs: List[BExpr] = field(default_factory=list)

    def __str__(self) -> str:
        return f"{', '.join(self.targets)} := {', '.join(map(str, self.exprs))}"


@dataclass
class BAssume(BStmt):
    cond: BExpr = field(default_factory=lambda: BConst(True))

    def __str__(self) -> str:
        return f"assume({self.cond})"


@dataclass
class BAssert(BStmt):
    cond: BExpr = field(default_factory=lambda: BConst(True))

    def __str__(self) -> str:
        return f"assert({self.cond})"


@dataclass
class BGoto(BStmt):
    labels: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        return f"goto {', '.join(self.labels)}"


@dataclass
class BCall(BStmt):
    proc: str = ""
    args: List[BExpr] = field(default_factory=list)
    rets: List[str] = field(default_factory=list)  # caller variables receiving returns

    def __str__(self) -> str:
        rets = f"{', '.join(self.rets)} := " if self.rets else ""
        return f"{rets}{self.proc}({', '.join(map(str, self.args))})"


@dataclass
class BReturn(BStmt):
    exprs: List[BExpr] = field(default_factory=list)

    def __str__(self) -> str:
        return f"return {', '.join(map(str, self.exprs))}"


# -- procedures and programs -------------------------------------------------------


@dataclass
class BProc:
    name: str
    params: List[str] = field(default_factory=list)
    locals: List[str] = field(default_factory=list)
    nrets: int = 0
    body: List[BStmt] = field(default_factory=list)

    def label_index(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for i, s in enumerate(self.body):
            if s.label is not None:
                if s.label in out:
                    raise ValueError(f"duplicate label '{s.label}' in {self.name}")
                out[s.label] = i
        return out

    @property
    def frame_vars(self) -> List[str]:
        return self.params + self.locals

    def __str__(self) -> str:
        lines = [f"proc {self.name}({', '.join(self.params)}) returns {self.nrets}"]
        for s in self.body:
            prefix = f"{s.label}: " if s.label else "    "
            lines.append(f"  {prefix}{s}")
        return "\n".join(lines)


@dataclass
class BProgram:
    globals: List[str] = field(default_factory=list)
    procs: Dict[str, BProc] = field(default_factory=dict)
    entry: str = "main"

    def proc(self, name: str) -> BProc:
        try:
            return self.procs[name]
        except KeyError:
            raise KeyError(f"no procedure '{name}'") from None

    def validate(self) -> None:
        gset = set(self.globals)
        if len(gset) != len(self.globals):
            raise ValueError("duplicate global")
        if self.entry not in self.procs:
            raise ValueError(f"missing entry '{self.entry}'")
        for p in self.procs.values():
            labels = p.label_index()
            scope = gset | set(p.frame_vars)
            for s in p.body:
                if isinstance(s, BGoto):
                    for lbl in s.labels:
                        if lbl not in labels:
                            raise ValueError(f"{p.name}: goto to unknown label '{lbl}'")
                if isinstance(s, BAssign):
                    if len(s.targets) != len(s.exprs):
                        raise ValueError(f"{p.name}: malformed parallel assignment {s}")
                    for t in s.targets:
                        if t not in scope:
                            raise ValueError(f"{p.name}: assignment to unknown '{t}'")
                if isinstance(s, BCall):
                    callee = self.proc(s.proc)
                    if len(s.args) != len(callee.params):
                        raise ValueError(f"{p.name}: call {s} arity mismatch")
                    if len(s.rets) != callee.nrets:
                        raise ValueError(f"{p.name}: call {s} return arity mismatch")
                if isinstance(s, BReturn) and len(s.exprs) != p.nrets:
                    raise ValueError(f"{p.name}: return arity mismatch")

    def __str__(self) -> str:
        head = f"globals: {', '.join(self.globals)}"
        return head + "\n" + "\n".join(str(p) for p in self.procs.values())
