"""Small-step execution of core statements over CFGs.

This module is shared by the sequential checker (:mod:`repro.seqcheck.explicit`)
and the concurrent checker (:mod:`repro.concheck.interleave`).  It provides:

* :class:`World` — a full runtime configuration (store + one stack per
  thread) with canonical freezing for visited-set deduplication,
* :class:`Interp` — evaluation of atoms and execution of primitive nodes,
  including indivisible execution of ``atomic`` regions,
* :class:`Violation` — a detected safety violation.

Canonical freezing renames heap cells (by deterministic reachability
order, which also garbage-collects unreachable cells) and frame ids (by
stack position), so that states differing only in allocation history
merge in the visited set.  Without this, any program that allocates or
calls functions inside a loop would have an unbounded state space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cfg.graph import Cfg, Node, ProgramCfg
from repro.lang.ast import (
    Assert,
    Assign,
    Assume,
    Binary,
    BoolLit,
    Call,
    Expr,
    Field,
    FuncDecl,
    IntLit,
    Malloc,
    NullLit,
    Program,
    Unary,
    Var,
)
from repro.lang.types import KissTypeError

from .state import NULL, Frame, FuncVal, MemoryError_, PtrVal, Store, Value, default_value, field_addr


class Violation(Exception):
    """A safety violation (assertion failure, memory error, ...)."""

    def __init__(self, kind: str, message: str, node: Optional[Node] = None):
        super().__init__(message)
        self.kind = kind
        self.message = message
        self.node = node

    def __str__(self) -> str:
        return f"{self.kind}: {self.message}"


class ResourceLimit(Exception):
    """The checker exceeded its configured budget."""


@dataclass
class World:
    """A full configuration: shared store plus one stack per live thread.

    The sequential checker uses a single stack.  ``stacks`` entries are
    never empty lists except transiently; a thread whose stack empties is
    removed by the owning checker.
    """

    store: Store
    stacks: List[List[Frame]]

    def clone(self) -> "World":
        return World(self.store.clone(), [[f.clone() for f in s] for s in self.stacks])

    def frames(self) -> Dict[int, Frame]:
        out: Dict[int, Frame] = {}
        for s in self.stacks:
            for f in s:
                out[f.frame_id] = f
        return out

    def freeze(self) -> Tuple:
        return canonical_freeze(self.store, self.stacks)


class Freezer:
    """Canonical freezing with cached key orders.

    Heap cells are renumbered in deterministic reachability order
    (unreachable cells vanish — this is what keeps allocate-in-a-loop
    programs finite-state); live frame ids become (thread, depth)
    positions; dead frame ids referenced by dangling pointers are
    renumbered in discovery order.

    Key orders (global names, struct field names, per-function local
    names) are fixed for a program, so they are computed once and reused
    — freezing is the checker's hot path.
    """

    def __init__(self) -> None:
        self._global_keys: Optional[List[str]] = None
        self._local_keys: Dict[str, List[str]] = {}
        self._field_keys: Dict[int, List[str]] = {}

    def _globals_order(self, store: Store) -> List[str]:
        keys = self._global_keys
        if keys is None or len(keys) != len(store.globals):
            keys = self._global_keys = sorted(store.globals)
        return keys

    def _locals_order(self, frame: Frame) -> List[str]:
        keys = self._local_keys.get(frame.func)
        if keys is None or len(keys) != len(frame.locals):
            keys = self._local_keys[frame.func] = sorted(frame.locals)
        return keys

    def _fields_order(self, fields: Dict[str, Value]) -> List[str]:
        keys = self._field_keys.get(len(fields))
        # field sets are per struct; cache by cardinality with validation
        if keys is None or any(k not in fields for k in keys):
            keys = sorted(fields)
            self._field_keys[len(fields)] = keys
        return keys

    def freeze(self, store: Store, stacks: List[List[Frame]]) -> Tuple:
        live_pos: Dict[int, Tuple[int, int]] = {}
        for t, stack in enumerate(stacks):
            for d, frame in enumerate(stack):
                live_pos[frame.frame_id] = (t, d)

        cell_order: Dict[int, int] = {}
        dead_order: Dict[int, int] = {}
        queue: List[int] = []
        heap = store.heap

        def discover(v: Value) -> None:
            a = v.addr
            if a is None:
                return
            k = a[0]
            if k == "c" or k == "f":
                cid = a[1]
                if cid in heap and cid not in cell_order:
                    cell_order[cid] = len(cell_order)
                    queue.append(cid)
            elif k == "l":
                fid = a[1]
                if fid not in live_pos and fid not in dead_order:
                    dead_order[fid] = len(dead_order)

        gkeys = self._globals_order(store)
        globals_ = store.globals
        for name in gkeys:
            v = globals_[name]
            if type(v) is PtrVal:
                discover(v)
        frame_orders: List[List[str]] = []
        for stack in stacks:
            for frame in stack:
                order = self._locals_order(frame)
                frame_orders.append(order)
                locs = frame.locals
                for name in order:
                    v = locs[name]
                    if type(v) is PtrVal:
                        discover(v)
        qi = 0
        while qi < len(queue):
            cid = queue[qi]
            qi += 1
            fields = heap[cid][1]
            for fname in self._fields_order(fields):
                v = fields[fname]
                if type(v) is PtrVal:
                    discover(v)

        def rewrite(v: Value):
            t = type(v)
            if t is PtrVal:
                a = v.addr
                if a is None:
                    return ("ptr", None)
                k = a[0]
                if k == "c":
                    return ("ptr", "c", cell_order.get(a[1], ("?", a[1])))
                if k == "f":
                    return ("ptr", "f", cell_order.get(a[1], ("?", a[1])), a[2])
                if k == "l":
                    fid = a[1]
                    if fid in live_pos:
                        return ("ptr", "l", live_pos[fid], a[2])
                    return ("ptr", "ld", dead_order[fid], a[2])
                return ("ptr", "g", a[1])
            if t is FuncVal:
                return ("fn", v.name)
            return v

        globals_t = tuple(rewrite(globals_[n]) for n in gkeys)
        cells = sorted(cell_order.items(), key=lambda kv: kv[1])
        heap_t = tuple(
            (
                canon,
                heap[cid][0],
                tuple(rewrite(heap[cid][1][fn]) for fn in self._fields_order(heap[cid][1])),
            )
            for cid, canon in cells
        )
        fo = iter(frame_orders)
        stacks_t = tuple(
            tuple(
                (f.func, f.node, tuple(rewrite(f.locals[n]) for n in next(fo)))
                for f in stack
            )
            for stack in stacks
        )
        return (globals_t, heap_t, stacks_t)


_DEFAULT_FREEZER = Freezer()


def canonical_freeze(store: Store, stacks: List[List[Frame]]) -> Tuple:
    """Hashable canonical form of a configuration (module-level helper;
    checkers hold their own :class:`Freezer` for key-order caching)."""
    return Freezer().freeze(store, stacks)


class Interp:
    """Execution of primitive core statements."""

    def __init__(self, pcfg: ProgramCfg, max_atomic_steps: int = 100_000):
        self.pcfg = pcfg
        self.prog: Program = pcfg.program
        self.max_atomic_steps = max_atomic_steps
        self.freezer = Freezer()

    # -- atoms -----------------------------------------------------------------

    def eval_atom(self, e: Expr, frame: Frame, store: Store) -> Value:
        if isinstance(e, IntLit):
            return e.value
        if isinstance(e, BoolLit):
            return e.value
        if isinstance(e, NullLit):
            return NULL
        if isinstance(e, Var):
            name = e.name
            if name in frame.locals:
                return frame.locals[name]
            if name in store.globals:
                return store.globals[name]
            if name in self.prog.functions:
                return FuncVal(name)
            raise Violation("undef-var", f"read of undefined variable '{name}'")
        raise Violation("not-atom", f"expression {e} is not an atom")

    def eval_const_expr(self, e: Expr) -> Value:
        """Evaluate a global initializer (constants and unary ops only)."""
        if isinstance(e, IntLit):
            return e.value
        if isinstance(e, BoolLit):
            return e.value
        if isinstance(e, NullLit):
            return NULL
        if isinstance(e, Unary) and e.op == "-":
            v = self.eval_const_expr(e.operand)
            return -v
        if isinstance(e, Unary) and e.op == "!":
            return not self.eval_const_expr(e.operand)
        if isinstance(e, Var) and e.name in self.prog.functions:
            return FuncVal(e.name)
        raise KissTypeError(f"global initializer must be constant, got {e}")

    def _write_var(self, name: str, value: Value, frame: Frame, store: Store) -> None:
        if name in frame.locals:
            frame.locals[name] = value
        elif name in store.globals:
            store.globals[name] = value
        else:
            raise Violation("undef-var", f"write to undefined variable '{name}'")

    def _addr_of_var(self, name: str, frame: Frame) -> Tuple:
        if name in frame.locals:
            return ("l", frame.frame_id, name)
        if name in self.prog.globals:
            return ("g", name)
        raise Violation("undef-var", f"address of undefined variable '{name}'")

    # -- primitive execution ------------------------------------------------------

    def exec_simple(self, node: Node, frame: Frame, store: Store, frames: Dict[int, Frame]) -> bool:
        """Execute a non-control node in place.

        Returns False when an ``assume`` is not satisfied (the configuration
        is blocked / the path is infeasible); True otherwise.  Raises
        :class:`Violation` on safety violations.
        """
        try:
            return self._exec_simple(node, frame, store, frames)
        except MemoryError_ as exc:
            raise Violation(exc.kind, str(exc), node) from None

    def _exec_simple(self, node: Node, frame: Frame, store: Store, frames: Dict[int, Frame]) -> bool:
        kind = node.kind
        if kind == "skip":
            return True
        stmt = node.stmt
        if kind == "assume":
            cond = self.eval_atom(stmt.cond, frame, store)
            return bool(cond)
        if kind == "assert":
            cond = self.eval_atom(stmt.cond, frame, store)
            if not cond:
                raise Violation("assert", f"assertion failed: {stmt}", node)
            return True
        if kind == "malloc":
            ptr = store.malloc(self.prog, stmt.struct_name)
            self._write_var(stmt.lhs.name, ptr, frame, store)
            return True
        if kind == "assign":
            self._exec_assign(stmt, frame, store, frames, node)
            return True
        raise Violation("internal", f"exec_simple on node kind {kind}", node)

    def _exec_assign(self, stmt: Assign, frame: Frame, store: Store, frames: Dict[int, Frame], node: Node) -> None:
        lhs, rhs = stmt.lhs, stmt.rhs
        # Stores through pointers / into fields.
        if isinstance(lhs, Unary) and lhs.op == "*":
            ptr = self.eval_atom(lhs.operand, frame, store)
            self._expect_ptr(ptr, node)
            value = self.eval_atom(rhs, frame, store)
            store.write(ptr.addr, value, frames)
            return
        if isinstance(lhs, Field):
            base = self.eval_atom(lhs.base, frame, store)
            self._expect_ptr(base, node)
            addr = field_addr(base, lhs.name)
            value = self.eval_atom(rhs, frame, store)
            store.write(addr, value, frames)
            return
        # Var := ...
        name = lhs.name
        if isinstance(rhs, Unary) and rhs.op == "&":
            target = rhs.operand
            if isinstance(target, Var):
                addr = self._addr_of_var(target.name, frame)
                if addr[0] == "l" and target.name not in frame.locals:
                    raise Violation("undef-var", f"&{target.name}", node)
            else:  # Field
                base = self.eval_atom(target.base, frame, store)
                self._expect_ptr(base, node)
                addr = field_addr(base, target.name)
            self._write_var(name, PtrVal(addr), frame, store)
            return
        if isinstance(rhs, Unary) and rhs.op == "*":
            ptr = self.eval_atom(rhs.operand, frame, store)
            self._expect_ptr(ptr, node)
            self._write_var(name, store.read(ptr.addr, frames), frame, store)
            return
        if isinstance(rhs, Unary):
            v = self.eval_atom(rhs.operand, frame, store)
            if rhs.op == "-":
                self._write_var(name, -v, frame, store)
            elif rhs.op == "!":
                self._write_var(name, not v, frame, store)
            else:
                raise Violation("internal", f"unary {rhs.op}", node)
            return
        if isinstance(rhs, Binary):
            self._write_var(name, self._binop(rhs, frame, store, node), frame, store)
            return
        if isinstance(rhs, Field):
            base = self.eval_atom(rhs.base, frame, store)
            self._expect_ptr(base, node)
            self._write_var(name, store.read(field_addr(base, rhs.name), frames), frame, store)
            return
        # plain copy
        self._write_var(name, self.eval_atom(rhs, frame, store), frame, store)

    def _binop(self, e: Binary, frame: Frame, store: Store, node: Node) -> Value:
        a = self.eval_atom(e.left, frame, store)
        b = self.eval_atom(e.right, frame, store)
        op = e.op
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if b == 0:
                raise Violation("div-zero", "division by zero", node)
            q = abs(a) // abs(b)
            return q if (a >= 0) == (b >= 0) else -q  # C truncation semantics
        if op == "%":
            if b == 0:
                raise Violation("div-zero", "modulo by zero", node)
            return a - b * (self._binop(Binary("/", e.left, e.right), frame, store, node))
        if op == "==":
            return a == b
        if op == "!=":
            return a != b
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
        raise Violation("internal", f"binop {op}", node)

    @staticmethod
    def _expect_ptr(v: Value, node: Node) -> None:
        if not isinstance(v, PtrVal):
            raise Violation("bad-addr", f"pointer operation on non-pointer value {v!r}", node)

    # -- atomic regions -----------------------------------------------------------

    def run_atomic(self, world: World, tid: int, node: Node) -> List[World]:
        """Execute an ``atomic`` node indivisibly in thread ``tid``.

        Explores the atomic region's sub-CFG (it may branch via lowered
        ``choice``/``nondet``) and returns the resulting worlds at region
        exit, with the thread's pc NOT yet advanced (caller does that).
        Paths blocked by a failed ``assume`` are dropped; if every path is
        dropped, the returned list is empty — in concurrent semantics the
        atomic region is *blocked* and the thread is simply not enabled.
        """
        sub = node.sub
        assert sub is not None
        results: List[World] = []
        seen = set()
        start = world.clone()
        work: List[Tuple[World, int]] = [(start, sub.entry)]
        steps = 0
        while work:
            w, pc = work.pop()
            steps += 1
            if steps > self.max_atomic_steps:
                raise ResourceLimit("atomic region exceeded step budget")
            key = (pc, self.freezer.freeze(w.store, w.stacks))
            if key in seen:
                continue
            seen.add(key)
            sub_node = sub.node(pc)
            frame = w.stacks[tid][-1]
            frames = w.frames()
            if sub_node.kind in ("call", "async", "return"):
                raise Violation("internal", f"{sub_node.kind} inside atomic", sub_node)
            w2 = w.clone()
            frame2 = w2.stacks[tid][-1]
            ok = self.exec_simple(sub_node, frame2, w2.store, w2.frames())
            if not ok:
                continue
            if not sub_node.succs:
                results.append(w2)
            else:
                for s in sub_node.succs:
                    work.append((w2.clone() if len(sub_node.succs) > 1 else w2, s))
        return results
